"""1x1 convolution kernels — functional reference implementations.

The paper's operator ladder (Fig. 10) starts from a naive per-element
convolution loop and converts it to a matrix multiplication (Fig. 6a).  Both
forms are implemented here and proven equivalent by the tests; the naive loop
is intentionally written the way the scalar base kernel works (explicit
per-pixel / per-channel accumulation).
"""

from __future__ import annotations

import numpy as np

__all__ = ["conv1x1_loop", "conv1x1_matmul", "bias_add", "relu"]


def conv1x1_loop(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """Naive 1x1 convolution: explicit loops over pixels and channels.

    Parameters
    ----------
    x: ``(m, c_in)`` input pixels (atoms).
    w: ``(c_in, c_out)`` 1x1 kernel.
    """
    m, c_in = x.shape
    c_in_w, c_out = w.shape
    if c_in != c_in_w:
        raise ValueError(f"channel mismatch: {c_in} vs {c_in_w}")
    out = np.zeros((m, c_out), dtype=x.dtype)
    for i in range(m):
        for o in range(c_out):
            acc = x.dtype.type(0)
            for c in range(c_in):
                acc += x[i, c] * w[c, o]
            out[i, o] = acc
    return out


def conv1x1_matmul(x: np.ndarray, w: np.ndarray) -> np.ndarray:
    """The same convolution as a single GEMM (paper Fig. 6a)."""
    return x @ w


def bias_add(x: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Standalone bias pass (its own main-memory round trip when unfused)."""
    return x + b


def relu(x: np.ndarray) -> np.ndarray:
    """Standalone ReLU pass."""
    return np.maximum(x, 0.0)
