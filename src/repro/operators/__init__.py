"""Sunway operator kernels: conv, fusion, big-fusion, and feature operators."""

from .bigfusion import BigFusionOperator
from .conv import bias_add, conv1x1_loop, conv1x1_matmul, relu
from .feature_op import FEATURE_ENTRY_BYTES, FastFeatureOperator, features_mpe_serial
from .fused import fused_layer, layered_forward
from .tilegemm import TileGEMMKernel, TilePlan, plan_tiles, tiled_matmul
from .variants import (
    FUSED_GEMM_EFF,
    MATMUL_BLOCKING,
    SIMD_GEMM_EFF,
    OperatorVariant,
    fig10_ladder,
    ladder_speedups,
    paper_bands,
)

__all__ = [
    "BigFusionOperator",
    "bias_add",
    "conv1x1_loop",
    "conv1x1_matmul",
    "relu",
    "FEATURE_ENTRY_BYTES",
    "FastFeatureOperator",
    "features_mpe_serial",
    "fused_layer",
    "layered_forward",
    "TileGEMMKernel",
    "TilePlan",
    "plan_tiles",
    "tiled_matmul",
    "FUSED_GEMM_EFF",
    "MATMUL_BLOCKING",
    "SIMD_GEMM_EFF",
    "OperatorVariant",
    "fig10_ladder",
    "ladder_speedups",
    "paper_bands",
]
