"""Fused (Conv2D + Bias + ReLU) layer and the per-layer network executors.

``fused_layer`` merges the three element-wise passes into one kernel (paper
Fig. 6b) — bias and ReLU happen "in the registers" right after the GEMM.
``layered_forward`` executes a whole network one layer at a time, optionally
unfused; it is the SWDNN/TensorFlow-style execution whose per-layer
main-memory round trips the big-fusion operator eliminates.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.backend import get_backend
from ..sunway.costmodel import CostLedger
from ..sunway.spec import SunwaySpec

__all__ = ["fused_layer", "layered_forward"]

_F32 = 4


def fused_layer(
    x: np.ndarray, w: np.ndarray, b: np.ndarray, last: bool = False, xp=None
) -> np.ndarray:
    """One fused (GEMM + bias + ReLU) layer; no activation on the last layer.

    ``xp`` selects the array backend (default: the NumPy reference, under
    which every op is the identical pre-backend NumPy call).
    """
    xp = get_backend("numpy") if xp is None else get_backend(xp)
    out = xp.matmul(x, w)
    out += b
    if not last:
        xp.relu_(out)
    return out


def layered_forward(
    x: np.ndarray,
    weights: Sequence[np.ndarray],
    biases: Sequence[np.ndarray],
    fused: bool = True,
    ledger: Optional[CostLedger] = None,
    spec: Optional[SunwaySpec] = None,
    simd: bool = True,
    gemm_efficiency: float = 0.38,
) -> np.ndarray:
    """Per-layer network execution with optional cost accounting.

    Every layer's input and output make a main-memory round trip (the
    defining property of the unfused/per-layer operators in Fig. 9's upper
    panel).  With ``fused=False`` the bias and ReLU passes are charged as
    separate read-modify-write sweeps as well.

    Parameters
    ----------
    ledger:
        If given, FLOPs and main-memory traffic are charged to it.
    simd:
        Whether compute is charged to the SIMD pipes (True) or the scalar
        pipeline (False; the Fig. 10 base variants).
    gemm_efficiency:
        Fraction of SIMD peak sustained by the per-layer GEMMs.
    """
    h = x
    n_layers = len(weights)
    for l, (w, b) in enumerate(zip(weights, biases)):
        last = l == n_layers - 1
        m, c_in = h.shape
        c_out = w.shape[1]
        if ledger is not None:
            gemm_flops = 2.0 * m * c_in * c_out
            ew_flops = 2.0 * m * c_out  # bias + relu
            if simd:
                ledger.add_simd(gemm_flops + ew_flops)
                ledger.simd_efficiency = gemm_efficiency
            else:
                ledger.add_scalar(gemm_flops + ew_flops)
            # conv pass: read input + weights, write output.
            ledger.add_dma(_F32 * (m * c_in + c_in * c_out + c_out), transactions=2)
            ledger.add_dma(_F32 * m * c_out, transactions=1)
            if not fused:
                # bias pass + relu pass: two more read/write sweeps each.
                ledger.add_dma(2 * 2 * _F32 * m * c_out, transactions=4)
        if fused:
            h = fused_layer(h, w, b, last=last)
        else:
            h = h @ w
            h = h + b
            if not last:
                h = np.maximum(h, 0.0)
    return h


def network_shapes(
    channels: Sequence[int],
) -> Tuple[List[Tuple[int, int]], int]:
    """Layer (c_in, c_out) pairs and total parameter count for a channel list."""
    pairs = list(zip(channels[:-1], channels[1:]))
    n_params = sum(ci * co + co for ci, co in pairs)
    return pairs, n_params
