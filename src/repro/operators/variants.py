"""The Fig. 10 optimisation ladder — five operator variants, one workload.

Each variant evaluates the same NNP batch; they differ in *how* the modeled
machine executes it:

========  ============================================================
variant   execution model
========  ============================================================
base      scalar convolution loops on the CPEs, unfused bias/ReLU
          passes, scattered input reads (no DMA blocking)
matmul    conv converted to GEMM (register blocking on the scalar
          pipeline, Fig. 6a); same memory behaviour
simd      SIMD-vectorised per-layer GEMMs with blocked DMA, still one
          kernel per pass
fusion    (Conv2D + Bias + ReLU) fused per layer (Fig. 6b) — the
          SWDNN / TensorFlow FusedConv2D equivalent
bigfusion all layers merged, LDM-resident state, DMA/RMA overlapped
          (Fig. 6c-f, Algorithm 1)
========  ============================================================

The paper's measured speedups over *base* are 1.23x (matmul), 16-22x (simd),
33-41x (fusion), and 131-161x (bigfusion); the cost-model constants below
(scalar blocking 1.3, GEMM efficiencies 0.30 / 0.38 / 0.7664) were chosen
once so the modeled ladder lands inside those bands, and the benchmark prints
both side by side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from ..sunway.costmodel import CostLedger
from ..sunway.spec import SW26010_PRO, SunwaySpec
from .bigfusion import BigFusionOperator
from .fused import layered_forward

__all__ = ["OperatorVariant", "fig10_ladder", "MATMUL_BLOCKING", "SIMD_GEMM_EFF", "FUSED_GEMM_EFF"]

_F32 = 4

#: Scalar-pipeline efficiency gain of the GEMM conversion (paper: 1.23x).
MATMUL_BLOCKING = 1.3
#: Sustained SIMD fraction of per-layer *unfused* GEMM kernels.
SIMD_GEMM_EFF = 0.30
#: Sustained SIMD fraction of per-layer fused (SWDNN-style) kernels.
FUSED_GEMM_EFF = 0.38


@dataclass
class OperatorVariant:
    """One rung of the Fig. 10 ladder."""

    name: str
    #: Functional executor: features (m, c_in) -> energies column (m, 1).
    run: Callable[[np.ndarray], np.ndarray]
    #: Modeled execution time in seconds.
    modeled_time: float
    ledger: CostLedger

    def speedup_over(self, base: "OperatorVariant") -> float:
        return base.modeled_time / self.modeled_time


def _per_layer_ledger(
    m: int,
    channels: Sequence[int],
    spec: SunwaySpec,
    scalar: bool,
    scalar_efficiency: float,
    simd_efficiency: float,
    fused: bool,
    scattered_input: bool,
) -> CostLedger:
    """Charge a per-layer network execution to a fresh ledger."""
    ledger = CostLedger(spec)
    for c_in, c_out in zip(channels[:-1], channels[1:]):
        gemm = 2.0 * m * c_in * c_out
        elementwise = 2.0 * m * c_out
        if scalar:
            ledger.add_scalar(gemm + elementwise)
            ledger.scalar_efficiency = scalar_efficiency
        else:
            ledger.add_simd(gemm + elementwise)
            ledger.simd_efficiency = simd_efficiency
        input_bytes = _F32 * m * c_in
        if scattered_input:
            ledger.add_random_access(input_bytes)
        else:
            ledger.add_dma(input_bytes, transactions=1)
        ledger.add_dma(_F32 * (c_in * c_out + c_out), transactions=1)  # weights
        ledger.add_dma(_F32 * m * c_out, transactions=1)  # output
        if not fused:
            # separate bias and ReLU sweeps: read + write each.
            ledger.add_dma(4 * _F32 * m * c_out, transactions=4)
    return ledger


def fig10_ladder(
    weights: Sequence[np.ndarray],
    biases: Sequence[np.ndarray],
    m: int,
    spec: SunwaySpec = SW26010_PRO,
) -> List[OperatorVariant]:
    """Build all five variants for an ``m``-atom batch of the given network."""
    channels = [weights[0].shape[0]] + [w.shape[1] for w in weights]

    def run_layered(fused: bool) -> Callable[[np.ndarray], np.ndarray]:
        def _run(x: np.ndarray) -> np.ndarray:
            return layered_forward(x, weights, biases, fused=fused)

        return _run

    bigfusion = BigFusionOperator(weights, biases, spec=spec)

    variants = [
        OperatorVariant(
            name="base",
            run=run_layered(fused=False),
            modeled_time=0.0,
            ledger=_per_layer_ledger(
                m, channels, spec, scalar=True, scalar_efficiency=1.0,
                simd_efficiency=1.0, fused=False, scattered_input=True,
            ),
        ),
        OperatorVariant(
            name="matmul",
            run=run_layered(fused=False),
            modeled_time=0.0,
            ledger=_per_layer_ledger(
                m, channels, spec, scalar=True,
                scalar_efficiency=MATMUL_BLOCKING,
                simd_efficiency=1.0, fused=False, scattered_input=True,
            ),
        ),
        OperatorVariant(
            name="simd",
            run=run_layered(fused=False),
            modeled_time=0.0,
            ledger=_per_layer_ledger(
                m, channels, spec, scalar=False, scalar_efficiency=1.0,
                simd_efficiency=SIMD_GEMM_EFF, fused=False,
                scattered_input=False,
            ),
        ),
        OperatorVariant(
            name="fusion",
            run=run_layered(fused=True),
            modeled_time=0.0,
            ledger=_per_layer_ledger(
                m, channels, spec, scalar=False, scalar_efficiency=1.0,
                simd_efficiency=FUSED_GEMM_EFF, fused=True,
                scattered_input=False,
            ),
        ),
    ]
    for v in variants:
        v.modeled_time = v.ledger.serial_time()

    bf_ledger = CostLedger(spec)

    def run_bigfusion(x: np.ndarray) -> np.ndarray:
        return bigfusion(x)

    bf_time = bigfusion.modeled_time(m)
    variants.append(
        OperatorVariant(
            name="bigfusion", run=run_bigfusion, modeled_time=bf_time,
            ledger=bf_ledger,
        )
    )
    return variants


def ladder_speedups(variants: List[OperatorVariant]) -> dict:
    """Speedups of every variant over the base rung."""
    base = variants[0]
    return {v.name: v.speedup_over(base) for v in variants}


def paper_bands() -> dict:
    """The Fig. 10 speedup bands reported by the paper."""
    return {
        "base": (1.0, 1.0),
        "matmul": (1.2, 1.3),
        "simd": (16.0, 22.0),
        "fusion": (33.0, 41.0),
        "bigfusion": (131.0, 161.0),
    }
