"""Feature operators — paper Sec. 3.4 and the Fig. 11 'Feature' bars.

Computing the tabulated descriptor (Eq. 6) is a pure gather/accumulate task.
Two executors are provided:

* :func:`features_mpe_serial` — the reference loop, the way the MPE-serial
  (and x86) versions run: for every state, every region site, every
  neighbour, fetch the neighbour's species and accumulate the pre-computed
  TABLE row.  Memory-bound on scattered accesses.
* :class:`FastFeatureOperator` — the paper's CPE-parallel operator: region
  sites are assigned to CPEs circularly, the NET/VET/TABLE live in LDM, and
  all ``1 + N_f`` states are produced in one batch.  Functionally this is the
  vectorised counts path of the production engine; the ledger charges the
  modeled LDM-gather cost.

Both produce bit-identical features (asserted in the tests).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..constants import N_ELEMENTS, VACANCY
from ..core.tet import TripleEncoding
from ..potentials.base import counts_from_types
from ..potentials.tables import FeatureTable
from ..sunway.costmodel import CostLedger
from ..sunway.ldm import LDMBudget
from ..sunway.spec import SW26010_PRO, SunwaySpec

__all__ = ["features_mpe_serial", "FastFeatureOperator", "FEATURE_ENTRY_BYTES"]

#: Effective bytes touched per (state, site, neighbour) gather entry:
#: neighbour id (int32) + species (byte) + shell (byte) + the accumulated
#: table-row traffic amortised over cache lines.  Calibration constant of the
#: feature cost model.
FEATURE_ENTRY_BYTES = 16.0


def features_mpe_serial(
    states: np.ndarray,
    tet: TripleEncoding,
    table: FeatureTable,
    ledger: Optional[CostLedger] = None,
) -> np.ndarray:
    """Reference serial feature computation (MPE-style nested loops).

    Parameters
    ----------
    states:
        ``(n_states, n_all)`` VETs (state 0 plus the trial final states).

    Returns
    -------
    ``(n_states, n_region, n_elements * n_dim)`` float32 features.
    """
    states = np.asarray(states)
    n_states = states.shape[0]
    n_dim = table.n_dim
    out = np.zeros(
        (n_states, tet.n_region, N_ELEMENTS * n_dim), dtype=np.float32
    )
    table32 = table.table.astype(np.float32)
    for s in range(n_states):
        vet = states[s]
        for i in range(tet.n_region):
            row = out[s, i]
            for j in range(tet.n_local):
                t = vet[tet.net_ids[i, j]]
                if t == VACANCY:
                    continue
                shell = tet.cet_shell[j]
                row[t * n_dim : (t + 1) * n_dim] += table32[shell]
    if ledger is not None:
        entries = n_states * tet.n_region * tet.n_local
        ledger.add_random_access(entries * FEATURE_ENTRY_BYTES)
    return out


class FastFeatureOperator:
    """The CPE-parallel fast feature operator (paper Sec. 3.4).

    Construction verifies the LDM residency claim: the NET, a VET copy, the
    TABLE, and the per-CPE feature block must fit in one CPE's scratchpad —
    this is exactly what the triple encoding makes possible and what
    OpenKMC's whole-domain ``lattice`` array makes impossible (Sec. 2.4).
    """

    def __init__(
        self,
        tet: TripleEncoding,
        table: FeatureTable,
        spec: SunwaySpec = SW26010_PRO,
    ) -> None:
        self.tet = tet
        self.table = table
        self.spec = spec
        n_dim = table.n_dim
        budget = LDMBudget(spec.ldm_bytes)
        budget.alloc("NET", tet.net_ids.nbytes + tet.cet_shell.nbytes)
        budget.alloc("VET", tet.n_all * 1)
        budget.alloc("TABLE", table.table.nbytes)
        n_states = 1 + tet.N_DIRECTIONS
        sites_per_cpe = int(np.ceil(tet.n_region / spec.n_cpes))
        budget.alloc(
            "features", n_states * sites_per_cpe * N_ELEMENTS * n_dim * 4
        )
        self.ldm = budget
        self.sites_per_cpe = sites_per_cpe

    def __call__(
        self, states: np.ndarray, ledger: Optional[CostLedger] = None
    ) -> np.ndarray:
        """Features of all states' region sites; see :func:`features_mpe_serial`."""
        states = np.asarray(states)
        neighbor_types = states[:, self.tet.net_ids]
        counts = counts_from_types(
            neighbor_types, self.tet.cet_shell, self.tet.n_shells
        )
        feats = self.table.features_from_counts(counts).astype(np.float32)
        if ledger is not None:
            n_states = states.shape[0]
            entries = n_states * self.tet.n_region * self.tet.n_local
            spec = self.spec
            # Per-CPE scalar gather over LDM-resident tables.
            gather_bytes = entries * FEATURE_ENTRY_BYTES
            gather_time = gather_bytes / (spec.n_cpes * spec.ldm_gather_bandwidth)
            # Model the LDM gather as an equivalent-cost DMA-phase entry so
            # the composition rules apply uniformly.
            ledger.add_dma(gather_time * spec.mem_bandwidth, transactions=0)
            # VET in / features out through real DMA.
            ledger.add_dma(states.nbytes + feats.nbytes, transactions=2)
            ledger.notes["gather_time"] = gather_time
        return feats
