"""Deterministic tiled-GEMM inference — the batch-invariant big-fusion path.

float32 GEMMs dispatched straight to BLAS pick their blocking — and with it
the accumulation order of every dot product — from the *row count* of the
call, so the same atom evaluated in a batch of 1 and a batch of 1000 can
differ in the last bits.  That reassociation freedom is exactly what the
real CPE kernels do not have: the paper's big-fusion operator (Sec. 3.5)
walks fixed ``m_block x k_pane`` LDM tiles in a fixed order regardless of
how many atoms the MPE enqueued, which is why TensorKMC can batch NNP
inference *and* keep the Fig. 8 bitwise cache-equivalence.

This module reproduces that property in NumPy.  :func:`tiled_matmul` runs a
float32 (or float64) matmul as a grid of **fixed-shape** GEMM calls — every
row block is padded to exactly ``m_tile`` rows and every reduction panel to
exactly ``k_tile`` columns, and the per-panel partial products are summed in
ascending-``k`` order.  Because BLAS blocking depends only on the call
shape, and every call has the same shape, each output row is a pure
function of that row's input: bit-identical for a batch of 1, a batch of
1000, or any permutation thereof (property-tested in
``tests/test_tilegemm.py``).

:class:`TileGEMMKernel` chains tiled layers into the whole-network fused
executor the NNP inference paths use; tile sizes come from the same LDM
pane plan as :class:`~repro.operators.bigfusion.BigFusionOperator`, so the
modeled kernel and the executed arithmetic agree on their blocking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.backend import get_backend
from ..sunway.costmodel import CostLedger
from ..sunway.ldm import LDMBudget, LDMOverflowError
from ..sunway.spec import SW26010_PRO, SunwaySpec

__all__ = ["TilePlan", "plan_tiles", "tiled_matmul", "TileGEMMKernel"]

_F32 = 4

#: Hard ceiling on the row-tile size.  The LDM plan can produce very large
#: ``m_block`` values for small networks, but every call — including a
#: single-VET scalar miss — pads its row block to the full ``m_tile``, so an
#: unbounded tile would make the scalar path pay thousands of wasted rows
#: per GEMM.  256 rows is the paper-scale ``m_block`` for the production
#: (64, 128, ..., 1) networks; capping there keeps the padding overhead of a
#: one-VET call below ~2x while leaving batched calls fully amortised.
MAX_M_TILE = 256

#: Floor for the tile sizes (a degenerate 1-row tile would devolve into the
#: per-row scalar path).
MIN_TILE = 8


@dataclass(frozen=True)
class TilePlan:
    """Fixed blocking of the deterministic kernel.

    The plan is a pure function of the network shape and the machine spec —
    never of the batch size — which is the whole point: the accumulation
    order it induces is identical for every call.
    """

    #: Rows per GEMM call; every row block is padded to exactly this.
    m_tile: int
    #: Reduction-panel width; every K panel is padded to exactly this.
    k_tile: int
    #: Layer widths including input and output.
    channels: Tuple[int, ...]

    def k_panels(self, k: int) -> int:
        """Number of reduction panels covering a ``k``-wide layer input."""
        return -(-k // self.k_tile)


def _pow2_floor(n: int) -> int:
    return 1 << int(np.floor(np.log2(max(n, 1))))


def plan_tiles(
    weights: Sequence[np.ndarray],
    biases: Sequence[np.ndarray],
    spec: SunwaySpec = SW26010_PRO,
) -> TilePlan:
    """Derive the fixed (m, k) tile sizes from the LDM pane plan.

    Mirrors :meth:`BigFusionOperator._plan_ldm`: per CPE the kernel keeps
    its parameter shard, one broadcast pane for the RMA operator flow, and
    two double-buffered state blocks.  ``m_tile`` is the state-block row
    count that fits what remains.  ``k_tile`` is the reduction-panel width
    whose ``k_tile x c_max`` weight slab fills the broadcast pane — the
    slice of the layer the RMA flow can stage per panel step.  Both are
    rounded down to powers of two for clean DMA strides and clamped to
    ``[MIN_TILE, MAX_M_TILE]`` / ``[MIN_TILE, c_max]``.
    """
    if len(weights) != len(biases):
        raise ValueError("weights/biases length mismatch")
    if not weights:
        raise ValueError("need at least one layer")
    channels = tuple(
        [int(weights[0].shape[0])] + [int(w.shape[1]) for w in weights]
    )
    c_max = max(channels)
    param_bytes = sum(w.size * _F32 for w in weights) + sum(
        b.size * _F32 for b in biases
    )
    shard = int(np.ceil(param_bytes / spec.n_cpes))
    pane = max(w.size * _F32 + b.size * _F32 for w, b in zip(weights, biases))
    budget = LDMBudget(spec.ldm_bytes)
    budget.alloc("param_shard", shard)
    budget.alloc("layer_broadcast", pane)
    per_row = 2 * c_max * _F32  # two double-buffered state rows
    m_block = budget.available // per_row
    if m_block < 1:
        raise LDMOverflowError(
            f"network too large for LDM: fixed buffers take "
            f"{shard + pane} of {spec.ldm_bytes} bytes"
        )
    m_tile = min(MAX_M_TILE, max(MIN_TILE, _pow2_floor(m_block)))
    k_tile = min(
        _pow2_floor(c_max), max(MIN_TILE, _pow2_floor(pane // (_F32 * c_max)))
    )
    return TilePlan(m_tile=int(m_tile), k_tile=int(k_tile), channels=channels)


def _pad_rows(x, m_tile: int, dtype, xp) -> np.ndarray:
    """A ``(m_tile, k)`` C-contiguous block holding ``x`` in its top rows.

    The pad rows are zero so downstream layers never see NaN/Inf garbage;
    their outputs are sliced away, so they cannot influence real rows (GEMM
    output row ``i`` reads input row ``i`` only).
    """
    blk = xp.zeros((m_tile, x.shape[1]), dtype=dtype)
    blk[: x.shape[0]] = x
    return blk


def tiled_matmul(
    x: np.ndarray,
    w: np.ndarray,
    m_tile: int,
    k_tile: int,
    out: Optional[np.ndarray] = None,
    xp=None,
) -> np.ndarray:
    """``x @ w`` with a fixed blocking independent of ``x.shape[0]``.

    Every GEMM call the routine issues has the exact shape
    ``(m_tile, k_tile) @ (k_tile, n)`` — partial row blocks and partial
    reduction panels are zero-padded up to it — and the per-panel partial
    products accumulate in ascending-``k`` order.  Fixed shapes mean fixed
    BLAS blocking, so row ``i`` of the result is bit-identical no matter
    which other rows share the call or where in the batch it sits.

    ``out``, when given, must be a fresh ``(m, n)`` array of the working
    dtype; it is overwritten and returned.  ``xp`` selects the array
    backend; the default is the NumPy reference (never the ``REPRO_BACKEND``
    env — utility calls stay bit-reproducible unless a backend is passed
    explicitly), under which every op below is the identical NumPy call.
    """
    xp = get_backend("numpy") if xp is None else get_backend(xp)
    x = xp.asarray(x)
    w = xp.asarray(w)
    dtype = xp.result_type(x, w)
    m, k = x.shape
    n = w.shape[1]
    if w.shape[0] != k:
        raise ValueError(f"inner dims mismatch: {tuple(x.shape)} @ {tuple(w.shape)}")
    if out is None:
        out = xp.empty((m, n), dtype=dtype)
    for r0 in range(0, m, m_tile):
        rows = min(m_tile, m - r0)
        blk = x[r0 : r0 + rows]
        if rows < m_tile:
            blk = _pad_rows(blk, m_tile, dtype, xp)
        acc = xp.zeros((m_tile, n), dtype=dtype)
        for k0 in range(0, k, k_tile):
            kk = min(k_tile, k - k0)
            # Both operands are materialised as C-contiguous full-size tiles
            # so every BLAS call sees the same shapes *and* layout.
            xb = xp.zeros((m_tile, k_tile), dtype=dtype)
            xb[:, :kk] = blk[:, k0 : k0 + kk]
            wb = xp.zeros((k_tile, n), dtype=dtype)
            wb[:kk] = w[k0 : k0 + kk]
            acc += xp.matmul(xb, wb)
        out[r0 : r0 + rows] = acc[:rows]
    return out


class TileGEMMKernel:
    """Whole-network fused executor over the deterministic tiled GEMM.

    This is the execution engine behind all rigid-lattice NNP inference
    (``ElementNetworks.forward`` / ``forward_big_fusion`` and the
    ``NNPotential`` counts paths): each ``m_tile``-row block flows through
    every layer while "LDM-resident" (only the first input and last output
    cross the block boundary, as in Algorithm 1), with the reduction of each
    layer split into fixed ``k_tile`` panels accumulated in ascending
    order.

    Determinism contract
    --------------------
    The tile plan depends only on the network shape and the *canonical*
    machine spec fixed at construction — never on the batch — so output row
    ``i`` is a pure function of input row ``i``: evaluating an atom alone,
    inside any batch, or at any batch position gives bit-identical energies.
    This is what lets :class:`~repro.nnp.model.NNPotential` declare
    ``batch_row_invariant = True`` and the engines take the batched miss
    path without perturbing fixed-seed trajectories or bit-exact restarts.

    Weight aliasing
    ---------------
    Full reduction panels are *views* of the live weight arrays (training
    and ``set_parameters`` update weights in place), so no cache
    invalidation is needed; only the trailing partial panel of a layer whose
    input width is not a ``k_tile`` multiple is re-padded per call.

    Parameters
    ----------
    weights, biases:
        The network layers.  The last layer's output width is unrestricted
        (the NNP uses 1).
    spec:
        Machine model the tile plan is derived from *and* costs are charged
        against.  Changing the spec changes the plan and therefore the bits;
        the NNP pins the default SW26010-pro plan for exactly that reason.
    gemm_efficiency:
        Sustained fraction of SIMD peak charged to ledgers; defaults to the
        spec's measured value.
    backend:
        Array backend the GEMMs execute on (default: the NumPy reference).
        On host-aliasing backends (NumPy, torch CPU) the staged weights are
        zero-copy views of the live arrays, preserving the aliasing
        contract above; device backends re-stage per call.
    """

    def __init__(
        self,
        weights: Sequence[np.ndarray],
        biases: Sequence[np.ndarray],
        spec: SunwaySpec = SW26010_PRO,
        gemm_efficiency: Optional[float] = None,
        dtype: Optional[np.dtype] = None,
        backend=None,
    ) -> None:
        if len(weights) != len(biases):
            raise ValueError("weights/biases length mismatch")
        self.weights = list(weights)
        self.biases = list(biases)
        self.spec = spec
        self.gemm_efficiency = (
            spec.gemm_efficiency if gemm_efficiency is None else gemm_efficiency
        )
        self.xp = get_backend("numpy") if backend is None else get_backend(backend)
        self.dtype = np.dtype(dtype if dtype is not None else weights[0].dtype)
        self.plan = plan_tiles(self.weights, self.biases, spec=spec)
        self.channels = self.plan.channels
        self.param_bytes = sum(w.nbytes for w in self.weights) + sum(
            b.nbytes for b in self.biases
        )
        self.n_k_panels = sum(self.plan.k_panels(c) for c in self.channels[:-1])
        # Backend-staged parameters: identity passes under NumPy, zero-copy
        # aliases under torch CPU (both track in-place weight updates).
        self._weights_x = [self.xp.from_numpy(w) for w in self.weights]
        self._biases_x = [self.xp.from_numpy(b) for b in self.biases]

    @property
    def n_layers(self) -> int:
        return len(self.weights)

    def _live_params(self) -> Tuple[List[np.ndarray], List[np.ndarray]]:
        """Backend-resident weights/biases that reflect the live arrays."""
        if self.xp.aliases_host:
            return self._weights_x, self._biases_x
        return (
            [self.xp.from_numpy(w) for w in self.weights],
            [self.xp.from_numpy(b) for b in self.biases],
        )

    def _layer_tiles(self, w) -> List[np.ndarray]:
        """The ``(k_tile, n)`` reduction panels of a staged layer weight.

        Full panels are row-slice *views* of the live (C-contiguous) weight
        array — they track in-place training updates for free and keep the
        call shape/layout fixed; only a trailing partial panel is re-padded
        (small copy, once per call).
        """
        k, kt = w.shape[0], self.plan.k_tile
        tiles: List[np.ndarray] = []
        for k0 in range(0, k, kt):
            if k0 + kt <= k:
                tiles.append(w[k0 : k0 + kt])
            else:
                pad = self.xp.zeros((kt, w.shape[1]), dtype=self.dtype)
                pad[: k - k0] = w[k0:]
                tiles.append(pad)
        return tiles

    # ------------------------------------------------------------------
    def __call__(
        self, x: np.ndarray, ledger: Optional[CostLedger] = None
    ) -> np.ndarray:
        """Run the fused network on ``(m, c_in)`` features -> ``(m, c_out)``.

        Arithmetic is bias + ReLU fused after each tiled layer (no
        activation on the last), identical in structure to
        :func:`~repro.operators.fused.fused_layer` but with the fixed-tile
        accumulation order described in the class docstring: every GEMM is
        exactly ``(m_tile, k_tile) @ (k_tile, n)``, panels summed in
        ascending-``k`` order.  The host walks the same per-block layer
        chain as Algorithm 1 — each padded ``m_tile`` row block runs through
        *all* layers before the next block starts, mirroring the
        LDM-resident state flow of the modeled CPE kernel.
        """
        xp = self.xp
        x = xp.asarray(x, dtype=self.dtype)
        m = x.shape[0]
        if x.ndim != 2 or x.shape[1] != self.channels[0]:
            raise ValueError(
                f"expected (m, {self.channels[0]}) features, got {tuple(x.shape)}"
            )
        mt, kt = self.plan.m_tile, self.plan.k_tile
        last = self.n_layers - 1
        weights_x, biases_x = self._live_params()
        tiles = [self._layer_tiles(w) for w in weights_x]
        out = xp.empty((m, self.channels[-1]), dtype=self.dtype)
        for r0 in range(0, m, mt):
            rows = min(mt, m - r0)
            # Row/column zero-padded activations: pad rows never feed back
            # into real rows (GEMM row purity) and pad columns multiply zero
            # weight rows, so both only add exact zeros to every
            # accumulation.
            hb = xp.zeros(
                (mt, self.plan.k_panels(self.channels[0]) * kt),
                dtype=self.dtype,
            )
            hb[:rows, : self.channels[0]] = x[r0 : r0 + rows]
            for l, (w, b) in enumerate(zip(weights_x, biases_x)):
                n = w.shape[1]
                lt = tiles[l]
                acc = xp.zeros((mt, n), dtype=self.dtype)
                for i in range(len(lt)):
                    acc += xp.matmul(hb[:, i * kt : (i + 1) * kt], lt[i])
                acc += b
                if l != last:
                    xp.relu_(acc)
                    hb = xp.zeros(
                        (mt, self.plan.k_panels(n) * kt), dtype=self.dtype
                    )
                    hb[:, :n] = acc
                else:
                    hb = acc
            out[r0 : r0 + rows] = hb[:rows]
        if ledger is not None:
            self._charge(ledger, m)
        return out

    # ------------------------------------------------------------------
    def _charge(self, ledger: CostLedger, m: int) -> None:
        """Charge one ``m``-row launch per Algorithm 1 (big-fusion flow).

        FLOPs are charged for the useful rows (padding is an artefact of the
        NumPy host, not of the modeled CPE kernel, whose partial tiles
        simply run shorter loops); DMA covers the first input and last
        output, and the RMA operator flow delivers one weight pane per
        reduction panel per block iteration.
        """
        n_blocks = max(-(-m // self.plan.m_tile), 1)
        gemm_flops = sum(
            2.0 * m * ci * co
            for ci, co in zip(self.channels[:-1], self.channels[1:])
        )
        ew_flops = sum(2.0 * m * co for co in self.channels[1:])
        ledger.add_simd(gemm_flops + ew_flops)
        ledger.simd_efficiency = self.gemm_efficiency
        ledger.add_dma(_F32 * m * self.channels[0], transactions=n_blocks)
        ledger.add_dma(_F32 * m * self.channels[-1], transactions=n_blocks)
        ledger.add_rma(
            8.0 * self.param_bytes * n_blocks,
            transactions=n_blocks * self.n_k_panels,
        )
        ledger.notes["n_blocks"] = ledger.notes.get("n_blocks", 0.0) + float(
            n_blocks
        )
        ledger.notes["m_tile"] = float(self.plan.m_tile)
        ledger.notes["k_tile"] = float(self.plan.k_tile)

    def modeled_time(self, m: int) -> float:
        """Modeled (overlapped) execution time for an ``m``-row batch."""
        ledger = CostLedger(self.spec)
        self._charge(ledger, m)
        return ledger.overlapped_time()
