"""The big-fusion operator — paper Sec. 3.5, Fig. 6, Algorithm 1.

All fused layers of the NNP are merged into one kernel.  The CPE cluster
processes the atom batch in blocks: each block is DMA'd into LDM once,
flows through *all* layers while staying resident (the RMA operator flow of
Fig. 6f supplies each layer's filters from the CPEs that own them), and only
the final layer's output returns to main memory.  Main-memory traffic is
therefore the first input plus the last output — the property that pushes
arithmetic intensity past the machine's ridge point (Fig. 9).

The implementation here executes the identical arithmetic in NumPy (verified
against the plain per-layer forward by the tests) while charging DMA/RMA/
compute to a :class:`~repro.sunway.costmodel.CostLedger` per Algorithm 1, and
enforcing the LDM budget a real CPE kernel would have to respect.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..core.backend import get_backend
from ..sunway.costmodel import CostLedger
from ..sunway.ldm import LDMBudget
from ..sunway.spec import SW26010_PRO, SunwaySpec
from .fused import fused_layer

__all__ = ["BigFusionOperator"]

_F32 = 4


class BigFusionOperator:
    """Whole-network fused executor with Sunway cost accounting.

    Parameters
    ----------
    weights, biases:
        The network layers (float32).  At most ``max_layers`` layers — the
        paper's implementation supports up to eight convolutional layers with
        64 CPEs per MPE (Sec. 3.5).
    spec:
        Machine model to charge against.
    gemm_efficiency:
        Sustained fraction of SIMD peak; defaults to the paper's measured
        76.64%.
    backend:
        Array backend the GEMM + pane accumulation executes on (default:
        the NumPy reference).
    """

    MAX_LAYERS = 8

    def __init__(
        self,
        weights: Sequence[np.ndarray],
        biases: Sequence[np.ndarray],
        spec: SunwaySpec = SW26010_PRO,
        gemm_efficiency: Optional[float] = None,
        backend=None,
    ) -> None:
        if len(weights) != len(biases):
            raise ValueError("weights/biases length mismatch")
        if len(weights) > self.MAX_LAYERS:
            raise ValueError(
                f"big-fusion supports at most {self.MAX_LAYERS} layers "
                f"(got {len(weights)}); the paper states the same limit"
            )
        self.xp = get_backend("numpy") if backend is None else get_backend(backend)
        self.weights = [np.asarray(w, dtype=np.float32) for w in weights]
        self.biases = [np.asarray(b, dtype=np.float32) for b in biases]
        # Backend-staged copies (identity under NumPy, zero-copy on torch CPU).
        self._weights_x = [self.xp.from_numpy(w) for w in self.weights]
        self._biases_x = [self.xp.from_numpy(b) for b in self.biases]
        self.spec = spec
        self.gemm_efficiency = (
            spec.gemm_efficiency if gemm_efficiency is None else gemm_efficiency
        )
        self.channels = [self.weights[0].shape[0]] + [
            w.shape[1] for w in self.weights
        ]
        self.param_bytes = sum(w.nbytes for w in self.weights) + sum(
            b.nbytes for b in self.biases
        )
        self.c_max = max(self.channels)
        self.m_block = self._plan_ldm()

    # ------------------------------------------------------------------
    def _plan_ldm(self) -> int:
        """Pick the per-CPE block size that fits the LDM budget (Fig. 6d/e).

        Per CPE the kernel keeps: two double-buffered state blocks of
        ``m_block x c_max`` floats (DMA state flow), its owned parameter
        shard (1/n_cpes of the model), and one broadcast buffer for the
        largest single layer (RMA operator flow).
        """
        spec = self.spec
        shard = int(np.ceil(self.param_bytes / spec.n_cpes))
        largest_layer = max(
            w.nbytes + b.nbytes for w, b in zip(self.weights, self.biases)
        )
        fixed = shard + largest_layer
        budget = LDMBudget(spec.ldm_bytes)
        budget.alloc("param_shard", shard)
        budget.alloc("layer_broadcast", largest_layer)
        per_row = 2 * self.c_max * _F32  # two buffers, c_max floats per row
        m_block = budget.available // per_row
        if m_block < 1:
            from ..sunway.ldm import LDMOverflowError

            raise LDMOverflowError(
                f"network too large for LDM: fixed buffers take {fixed} of "
                f"{spec.ldm_bytes} bytes"
            )
        # Round down to a power of two for clean DMA strides.
        return 1 << int(np.floor(np.log2(m_block)))

    # ------------------------------------------------------------------
    def __call__(
        self, x: np.ndarray, ledger: Optional[CostLedger] = None
    ) -> np.ndarray:
        """Run the fused network on ``(m, c_in)`` features.

        Functionally identical to chaining :func:`fused_layer`; executed in
        ``m_block``-row blocks per CPE to mirror Algorithm 1, with costs
        charged to ``ledger`` when given.
        """
        xp = self.xp
        if xp.aliases_host:
            weights_x, biases_x = self._weights_x, self._biases_x
        else:
            weights_x = [xp.from_numpy(w) for w in self.weights]
            biases_x = [xp.from_numpy(b) for b in self.biases]
        x = xp.asarray(x, dtype=np.float32)
        m = x.shape[0]
        spec = self.spec
        rows_per_iter = spec.n_cpes * self.m_block
        n_blocks = max(int(np.ceil(m / rows_per_iter)), 1)

        outputs: List[np.ndarray] = []
        n_layers = len(self.weights)
        for blk in range(n_blocks):
            lo = blk * rows_per_iter
            hi = min(m, lo + rows_per_iter)
            h = x[lo:hi]
            for l, (w, b) in enumerate(zip(weights_x, biases_x)):
                h = fused_layer(h, w, b, last=(l == n_layers - 1), xp=xp)
            outputs.append(h)

        if ledger is not None:
            gemm_flops = sum(
                2.0 * m * ci * co for ci, co in zip(self.channels[:-1], self.channels[1:])
            )
            ew_flops = sum(2.0 * m * co for co in self.channels[1:])
            ledger.add_simd(gemm_flops + ew_flops)
            ledger.simd_efficiency = self.gemm_efficiency
            # DMA: first layer input in, last layer output out; double
            # buffered, so the transactions pipeline with compute.
            ledger.add_dma(_F32 * m * self.channels[0], transactions=n_blocks)
            ledger.add_dma(_F32 * m * self.channels[-1], transactions=n_blocks)
            # RMA operator flow: every block iteration each of the 8 CPE rows
            # receives the full parameter set via row broadcasts.
            ledger.add_rma(
                8.0 * self.param_bytes * n_blocks,
                transactions=n_blocks * len(self.weights),
            )
            ledger.notes["n_blocks"] = float(n_blocks)
            ledger.notes["m_block"] = float(self.m_block)
        return (
            self.xp.concatenate(outputs, axis=0)
            if len(outputs) > 1
            else outputs[0]
        )

    # ------------------------------------------------------------------
    def modeled_time(self, m: int) -> float:
        """Modeled (overlapped) execution time for an ``m``-atom batch."""
        ledger = CostLedger(self.spec)
        gemm_flops = sum(
            2.0 * m * ci * co for ci, co in zip(self.channels[:-1], self.channels[1:])
        )
        ew_flops = sum(2.0 * m * co for co in self.channels[1:])
        ledger.add_simd(gemm_flops + ew_flops)
        ledger.simd_efficiency = self.gemm_efficiency
        rows_per_iter = self.spec.n_cpes * self.m_block
        n_blocks = max(int(np.ceil(m / rows_per_iter)), 1)
        ledger.add_dma(_F32 * m * (self.channels[0] + self.channels[-1]), transactions=2 * n_blocks)
        ledger.add_rma(8.0 * self.param_bytes * n_blocks, transactions=n_blocks * len(self.weights))
        return ledger.overlapped_time()
