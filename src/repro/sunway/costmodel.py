"""Cost accounting for kernels on the modeled SW26010-pro.

Kernels record their resource usage in a :class:`CostLedger`; the ledger
converts the totals into a modeled execution time under two composition
rules:

* ``serial_time`` — compute and memory phases alternate (no overlap): the
  behaviour of the unoptimised per-layer operators;
* ``overlapped_time`` — DMA/RMA are hidden behind computation via double
  buffering (paper Figs. 6e/6f): time is the *maximum* of the phases plus
  the un-hideable pipeline fill.

These two rules are exactly what turns the same FLOP/byte totals into the
Fig. 10 performance ladder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from .spec import SunwaySpec

__all__ = ["CostLedger", "charge_batched_rate_eval"]


@dataclass
class CostLedger:
    """Accumulated resource usage of one kernel invocation on one CG."""

    spec: SunwaySpec
    #: Floating point operations executed on the CPE cluster (SIMD path).
    simd_flops: float = 0.0
    #: Floating point operations executed scalar (no SIMD).
    scalar_flops: float = 0.0
    #: Floating point operations executed on the MPE.
    mpe_flops: float = 0.0
    #: Bytes moved between main memory and LDM via DMA (contiguous).
    dma_bytes: float = 0.0
    #: Bytes accessed from main memory with poor locality (gathers).
    random_bytes: float = 0.0
    #: Bytes moved between CPEs via RMA.
    rma_bytes: float = 0.0
    #: Number of DMA / RMA transactions (latency terms).
    dma_transactions: int = 0
    rma_transactions: int = 0
    #: Effective efficiency of the SIMD compute phase (fraction of peak).
    simd_efficiency: float = 1.0
    #: Effective efficiency of the scalar pipeline (register blocking etc.).
    scalar_efficiency: float = 1.0
    #: Free-form annotations for reports.
    notes: Dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Recording helpers
    # ------------------------------------------------------------------
    def add_dma(self, nbytes: float, transactions: int = 1) -> None:
        self.dma_bytes += nbytes
        self.dma_transactions += transactions

    def add_random_access(self, nbytes: float) -> None:
        self.random_bytes += nbytes

    def add_rma(self, nbytes: float, transactions: int = 1) -> None:
        self.rma_bytes += nbytes
        self.rma_transactions += transactions

    def add_simd(self, flops: float) -> None:
        self.simd_flops += flops

    def add_scalar(self, flops: float) -> None:
        self.scalar_flops += flops

    def add_mpe(self, flops: float) -> None:
        self.mpe_flops += flops

    # ------------------------------------------------------------------
    # Phase times
    # ------------------------------------------------------------------
    @property
    def compute_time(self) -> float:
        s = self.spec
        t = 0.0
        if self.simd_flops:
            t += self.simd_flops / (
                s.peak_flops_sp * max(self.simd_efficiency, 1e-9)
            )
        if self.scalar_flops:
            t += self.scalar_flops / (
                s.cpe_scalar_flops * s.n_cpes * max(self.scalar_efficiency, 1e-9)
            )
        if self.mpe_flops:
            t += self.mpe_flops / s.mpe_scalar_flops
        return t

    @property
    def memory_time(self) -> float:
        s = self.spec
        return (
            self.dma_bytes / s.mem_bandwidth
            + self.random_bytes / s.mpe_random_bandwidth
            + self.dma_transactions * s.dma_latency
        )

    @property
    def rma_time(self) -> float:
        s = self.spec
        return self.rma_bytes / s.rma_bandwidth + self.rma_transactions * s.rma_latency

    @property
    def total_bytes(self) -> float:
        """All main-memory traffic (the roofline denominator)."""
        return self.dma_bytes + self.random_bytes

    @property
    def total_flops(self) -> float:
        return self.simd_flops + self.scalar_flops + self.mpe_flops

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per main-memory byte."""
        return self.total_flops / self.total_bytes if self.total_bytes else float("inf")

    # ------------------------------------------------------------------
    # Composition rules
    # ------------------------------------------------------------------
    def serial_time(self) -> float:
        """Modeled time when compute and data movement do not overlap."""
        return self.compute_time + self.memory_time + self.rma_time

    def overlapped_time(self) -> float:
        """Modeled time with DMA/RMA hidden behind compute (double buffering)."""
        return max(self.compute_time, self.memory_time, self.rma_time)

    def merge(self, other: "CostLedger") -> None:
        """Accumulate another ledger into this one (same spec)."""
        self.simd_flops += other.simd_flops
        self.scalar_flops += other.scalar_flops
        self.mpe_flops += other.mpe_flops
        self.dma_bytes += other.dma_bytes
        self.random_bytes += other.random_bytes
        self.rma_bytes += other.rma_bytes
        self.dma_transactions += other.dma_transactions
        self.rma_transactions += other.rma_transactions
        for key, value in other.notes.items():
            self.notes[key] = self.notes.get(key, 0.0) + value


def charge_batched_rate_eval(
    ledger: CostLedger,
    *,
    n_vets: int,
    n_states: int,
    n_region: int,
    n_local: int,
    channels: Sequence[int],
    gemm_efficiency: Optional[float] = None,
    feature_entry_bytes: float = 16.0,
    fused: bool = True,
) -> CostLedger:
    """Charge one batched rate evaluation (``n_vets`` VETs through the NNP).

    Models the full miss-path pipeline of the engines: for every queued
    vacancy, all ``n_states`` trial states' region features are gathered and
    pushed through the atomistic network.  Two operator variants:

    * ``fused=True`` — the big-fusion batched operator (Sec. 3.5/Fig. 9):
      feature gathers run CPE-parallel over LDM-resident TET tables, the
      whole ``n_vets * n_states * n_region`` atom batch enters main memory
      once and only the final energies come back, and the layer parameters
      circulate via the RMA operator flow — a handful of transactions per
      *batch*.
    * ``fused=False`` — the per-VET per-layer baseline: every vacancy is its
      own kernel launch, every layer's activations round-trip through main
      memory, and the parameters are re-fetched each time — the transaction
      count scales with ``n_vets * n_layers``.

    Parameters mirror the engine geometry: ``n_states`` is ``1 + 8`` trial
    states per vacancy, ``n_region``/``n_local`` the TET region and
    neighbourhood sizes, ``channels`` the network layer widths, and
    ``feature_entry_bytes`` the calibrated per-gather traffic (see
    :data:`repro.operators.feature_op.FEATURE_ENTRY_BYTES`).

    The ledger is mutated and returned, so totals from several batches can be
    accumulated by repeated calls (or via :meth:`CostLedger.merge`).
    """
    if n_vets < 0:
        raise ValueError(f"n_vets must be >= 0, got {n_vets!r}")
    spec = ledger.spec
    widths = [int(c) for c in channels]
    if len(widths) < 2:
        raise ValueError("channels needs at least input and output widths")
    n_layers = len(widths) - 1
    rows = float(n_vets) * n_states * n_region
    entries = rows * n_local
    gemm_flops = sum(
        2.0 * rows * ci * co for ci, co in zip(widths[:-1], widths[1:])
    )
    ew_flops = sum(2.0 * rows * co for co in widths[1:])
    ledger.add_simd(gemm_flops + ew_flops)
    ledger.simd_efficiency = (
        spec.gemm_efficiency if gemm_efficiency is None else gemm_efficiency
    )
    param_bytes = sum(
        4.0 * (ci * co + co) for ci, co in zip(widths[:-1], widths[1:])
    )
    if fused:
        # CPE-parallel LDM gather, expressed as equivalent-cost DMA so the
        # composition rules apply uniformly (as in FastFeatureOperator).
        gather_time = (entries * feature_entry_bytes) / (
            spec.n_cpes * spec.ldm_gather_bandwidth
        )
        ledger.add_dma(gather_time * spec.mem_bandwidth, transactions=0)
        # Big fusion: the batch enters once, the energies leave once.
        ledger.add_dma(4.0 * rows * widths[0], transactions=1)
        ledger.add_dma(4.0 * rows * widths[-1], transactions=1)
        # RMA operator flow: each CPE row receives the parameter set once
        # per batch, layer by layer.
        ledger.add_rma(8.0 * param_bytes, transactions=n_layers)
    else:
        # MPE-style scattered gathers — no LDM residency to exploit.
        ledger.add_random_access(entries * feature_entry_bytes)
        # Every layer's activations round-trip per VET, and the parameters
        # are re-fetched for each of the n_vets kernel launches.
        activation_bytes = sum(
            4.0 * rows * (ci + co) for ci, co in zip(widths[:-1], widths[1:])
        )
        ledger.add_dma(
            activation_bytes + n_vets * param_bytes,
            transactions=3 * n_vets * n_layers,
        )
    ledger.notes["rate_eval_vets"] = (
        ledger.notes.get("rate_eval_vets", 0.0) + float(n_vets)
    )
    ledger.notes["rate_eval_rows"] = (
        ledger.notes.get("rate_eval_rows", 0.0) + rows
    )
    return ledger
