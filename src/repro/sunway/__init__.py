"""Simulated SW26010-pro: machine spec, LDM budget, cost model, roofline."""

from .costmodel import CostLedger, charge_batched_rate_eval
from .ldm import LDMBudget, LDMOverflowError
from .portability import (
    FUGAKU_CMG,
    ManycoreTarget,
    MappedOperator,
    compare_targets,
    map_bigfusion,
    sunway_target,
)
from .roofline import LayerRoofline, RooflineAnalysis, analyse_network, layer_flops
from .spec import EPYC_7452, SW26010_PRO, SunwaySpec, X86Spec

__all__ = [
    "FUGAKU_CMG",
    "ManycoreTarget",
    "MappedOperator",
    "compare_targets",
    "map_bigfusion",
    "sunway_target",
    "CostLedger",
    "charge_batched_rate_eval",
    "LDMBudget",
    "LDMOverflowError",
    "LayerRoofline",
    "RooflineAnalysis",
    "analyse_network",
    "layer_flops",
    "EPYC_7452",
    "SW26010_PRO",
    "SunwaySpec",
    "X86Spec",
]
