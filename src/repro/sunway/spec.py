"""SW26010-pro machine description — the simulated Sunway substrate.

We do not have the hardware, so the operator experiments (Figs. 9-11) run
against this explicit machine model: every kernel executes *functionally* in
NumPy while its cost is charged to the modeled core group.  Parameters are
chosen to match the public SW26010-pro numbers and the paper's own roofline:
the paper quotes a machine balance point of 43.63 FLOPs/Byte (Fig. 9), which
pins ``peak_flops_sp / mem_bandwidth``.

Derived single-CG figures:

* 64 CPEs x ~34.9 GFLOPS (SP, SIMD) = 2.234 TFLOPS peak
* main-memory bandwidth 51.2 GB/s  -> ridge 2.234e12 / 51.2e9 = 43.63 ✓
* LDM 256 KiB per CPE, RMA ~8x main-memory bandwidth inside a CG

The x86 comparison platform of Fig. 11 (AMD EPYC 7452, one core,
libtensorflow) is modeled alongside.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SunwaySpec", "X86Spec", "SW26010_PRO", "EPYC_7452"]


@dataclass(frozen=True)
class SunwaySpec:
    """One SW26010-pro core group (CG) and its CPE cluster."""

    #: Number of CPEs in the cluster (8 x 8 mesh).
    n_cpes: int = 64
    #: Local device memory per CPE in bytes (256 KiB).
    ldm_bytes: int = 256 * 1024
    #: Single-precision SIMD peak of one CPE (FLOP/s).
    cpe_peak_flops: float = 34.9e9
    #: Sustained fraction of peak for well-blocked fused GEMM kernels —
    #: the paper reports the big-fusion operator reaching 76.64% of peak.
    gemm_efficiency: float = 0.7664
    #: Effective scalar (non-SIMD) throughput of one CPE (FLOP/s) for a
    #: naive convolution loop (no SIMD, no FMA pairing, little ILP).
    cpe_scalar_flops: float = 0.235e9
    #: Effective scalar throughput of the MPE (FLOP/s).
    mpe_scalar_flops: float = 2.2e9
    #: Main-memory (DMA) bandwidth shared by a CG (B/s).
    mem_bandwidth: float = 51.2e9
    #: Effective bandwidth of strided/random main-memory access from the
    #: MPE (gather-heavy code like the serial feature loop), B/s.
    mpe_random_bandwidth: float = 2.0e9
    #: Effective per-CPE bandwidth for scalar gather loops over LDM-resident
    #: tables (the fast feature operator's inner loop), B/s.
    ldm_gather_bandwidth: float = 1.875e9
    #: Aggregate RMA bandwidth between CPEs of one CG (B/s).
    rma_bandwidth: float = 400.0e9
    #: Per-DMA-transaction latency (s).
    dma_latency: float = 1.0e-6
    #: Per-RMA-transaction latency (s).
    rma_latency: float = 0.2e-6

    @property
    def peak_flops_sp(self) -> float:
        """Aggregate single-precision peak of the CPE cluster (FLOP/s)."""
        return self.n_cpes * self.cpe_peak_flops

    @property
    def ridge_point(self) -> float:
        """Roofline balance point in FLOPs/Byte (paper: 43.63)."""
        return self.peak_flops_sp / self.mem_bandwidth


@dataclass(frozen=True)
class X86Spec:
    """One AMD EPYC 7452 core running libtensorflow (Fig. 11's 'x86')."""

    #: Effective SP throughput of TensorFlow's FusedConv2D on the EPYC 7452
    #: socket (libtensorflow_cc runs its kernels multi-threaded even from a
    #: serial driver, which is how the paper's 'serial x86' is configured).
    peak_flops: float = 180.0e9
    gemm_efficiency: float = 0.65
    #: Per-core share of memory bandwidth (B/s).
    mem_bandwidth: float = 20.0e9
    #: Effective bandwidth for gather-heavy scalar code (B/s) — large caches
    #: make the EPYC far better at this than the MPE (paper Sec. 4.3.1 finds
    #: the MPE ~5x slower on the feature gather).
    random_bandwidth: float = 9.0e9

    @property
    def ridge_point(self) -> float:
        return self.peak_flops * self.gemm_efficiency / self.mem_bandwidth


#: Default instances used across the benchmarks.
SW26010_PRO = SunwaySpec()
EPYC_7452 = X86Spec()
