"""Roofline model of the energy kernels (paper Fig. 9).

The roofline bounds attainable performance by
``min(peak, AI * bandwidth)`` where AI is the kernel's arithmetic intensity.
This module computes, for the paper's NNP workload, the per-layer AI of the
original per-layer fused operator and the single AI of the big-fusion
operator, together with their total main-memory traffic — the quantities the
Fig. 9 table reports (AI 0.48-21.3 vs ~500; traffic tens of MB vs ~2 MB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from .spec import SunwaySpec

__all__ = ["LayerRoofline", "RooflineAnalysis", "analyse_network"]

_F32 = 4  # bytes per float32


@dataclass(frozen=True)
class LayerRoofline:
    """Roofline data of one (Conv2D + Bias + ReLU) layer."""

    c_in: int
    c_out: int
    flops: float
    bytes: float

    @property
    def arithmetic_intensity(self) -> float:
        return self.flops / self.bytes


@dataclass(frozen=True)
class RooflineAnalysis:
    """Fig. 9 summary for one workload (batch of M atoms, given channels)."""

    m: int
    channels: Tuple[int, ...]
    layers: List[LayerRoofline]
    fused_flops: float
    fused_bytes: float
    spec: SunwaySpec

    @property
    def per_layer_ai(self) -> List[float]:
        return [l.arithmetic_intensity for l in self.layers]

    @property
    def original_total_bytes(self) -> float:
        return sum(l.bytes for l in self.layers)

    @property
    def fused_ai(self) -> float:
        return self.fused_flops / self.fused_bytes

    def attainable(self, ai: float) -> float:
        """Roofline-attainable FLOP/s at a given arithmetic intensity."""
        return min(self.spec.peak_flops_sp, ai * self.spec.mem_bandwidth)

    @property
    def original_bound(self) -> str:
        """Which roof limits the per-layer operator."""
        worst = min(self.per_layer_ai)
        return "memory" if worst < self.spec.ridge_point else "compute"

    @property
    def fused_bound(self) -> str:
        return "memory" if self.fused_ai < self.spec.ridge_point else "compute"


def layer_flops(m: int, c_in: int, c_out: int) -> float:
    """FLOPs of one 1x1-conv layer: GEMM (2 m c_in c_out) + bias + ReLU."""
    return 2.0 * m * c_in * c_out + 2.0 * m * c_out


def analyse_network(
    m: int,
    channels: Sequence[int],
    spec: SunwaySpec,
) -> RooflineAnalysis:
    """Roofline analysis of an NNP evaluated on ``m`` atoms.

    The *original* operator runs each layer as its own kernel: it reads the
    layer input and weights from main memory and writes the output back, so
    each layer is charged ``m*(c_in + c_out)*4 + weights`` bytes.  The
    *big-fusion* operator keeps everything in LDM: only the first input and
    final output touch main memory (paper Fig. 6c).
    """
    channels = tuple(int(c) for c in channels)
    layers: List[LayerRoofline] = []
    for c_in, c_out in zip(channels[:-1], channels[1:]):
        nbytes = _F32 * (m * c_in + m * c_out + c_in * c_out + c_out)
        layers.append(
            LayerRoofline(
                c_in=c_in, c_out=c_out, flops=layer_flops(m, c_in, c_out),
                bytes=nbytes,
            )
        )
    fused_flops = sum(l.flops for l in layers)
    fused_bytes = _F32 * (m * channels[0] + m * channels[-1])
    return RooflineAnalysis(
        m=m,
        channels=channels,
        layers=layers,
        fused_flops=fused_flops,
        fused_bytes=fused_bytes,
        spec=spec,
    )
