"""LDM (local device memory) budget tracking.

Every CPE has a small software-controlled scratchpad (256 KiB on the
SW26010-pro).  Kernels in :mod:`repro.operators` declare their per-CPE
buffers against an :class:`LDMBudget`; exceeding the budget raises, exactly
the way an over-allocated LDM kernel fails to build on the real machine.
This is what enforces the paper's observation that OpenKMC's big ``lattice``
array cannot live in LDM (Sec. 2.4) while the triple-encoded vacancy systems
can (Sec. 3.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

__all__ = ["LDMOverflowError", "LDMBudget"]


class LDMOverflowError(MemoryError):
    """A kernel requested more LDM than one CPE has."""


@dataclass
class LDMBudget:
    """Named-buffer allocator for one CPE's scratchpad."""

    capacity: int
    allocations: Dict[str, int] = field(default_factory=dict)

    def alloc(self, name: str, nbytes: int) -> None:
        """Reserve a named buffer; raises :class:`LDMOverflowError` on overflow."""
        if nbytes < 0:
            raise ValueError(f"negative allocation {name!r}: {nbytes}")
        if name in self.allocations:
            raise ValueError(f"buffer {name!r} already allocated")
        if self.used + nbytes > self.capacity:
            raise LDMOverflowError(
                f"LDM overflow allocating {name!r} ({nbytes} B): "
                f"{self.used} B used of {self.capacity} B"
            )
        self.allocations[name] = int(nbytes)

    def free(self, name: str) -> None:
        """Release a named buffer."""
        self.allocations.pop(name)

    @property
    def used(self) -> int:
        return sum(self.allocations.values())

    @property
    def available(self) -> int:
        return self.capacity - self.used

    def fits(self, nbytes: int) -> bool:
        """Whether an allocation of ``nbytes`` would succeed."""
        return self.used + nbytes <= self.capacity
