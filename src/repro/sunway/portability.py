"""Portability of the operators to other many-core machines (paper Sec. 3.6).

The paper argues its innovations are architecture-independent: the triple
encoding and vacancy cache carry over unchanged, and the operator mapping
only needs a machine-specific substitute for each Sunway feature — e.g. on
Fugaku's A64FX the *shared L2 cache* plays the role RMA plays on the Sunway
(distributing the NNP parameters across the cores of a CMG), and SVE takes
the place of the 512-bit Sunway SIMD.

This module expresses that claim executably: a generic
:class:`ManycoreTarget` description, a Fugaku CMG instance, and a mapper
that re-derives the big-fusion operator's cost on any target.  The test
suite checks the qualitative portability statement — the operator stays
compute-bound (its defining property) on both machines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .spec import SW26010_PRO, SunwaySpec

__all__ = [
    "ManycoreTarget",
    "FUGAKU_CMG",
    "MappedOperator",
    "sunway_target",
    "map_bigfusion",
    "compare_targets",
]

_F32 = 4


@dataclass(frozen=True)
class ManycoreTarget:
    """Architecture-neutral description of one scheduling domain.

    A "scheduling domain" is whatever owns a fast local store: a Sunway core
    group (64 CPEs + LDM + RMA) or a Fugaku CMG (12-13 cores + shared L2).
    """

    name: str
    n_cores: int
    #: Fast local store per core in bytes (LDM, or the per-core L2 share).
    local_store_bytes: int
    #: Aggregate single-precision peak of the domain (FLOP/s).
    peak_flops_sp: float
    #: Sustained fraction of peak for fused GEMM chains.
    gemm_efficiency: float
    #: Main-memory bandwidth of the domain (B/s).
    mem_bandwidth: float
    #: Bandwidth of the parameter-sharing fabric: RMA on Sunway, the shared
    #: L2 on Fugaku (where sharing is implicit — reads hit cache).
    share_bandwidth: float

    @property
    def ridge_point(self) -> float:
        return self.peak_flops_sp / self.mem_bandwidth


def sunway_target(spec: SunwaySpec = SW26010_PRO) -> ManycoreTarget:
    """The SW26010-pro core group expressed as a generic target."""
    return ManycoreTarget(
        name="SW26010-pro CG",
        n_cores=spec.n_cpes,
        local_store_bytes=spec.ldm_bytes,
        peak_flops_sp=spec.peak_flops_sp,
        gemm_efficiency=spec.gemm_efficiency,
        mem_bandwidth=spec.mem_bandwidth,
        share_bandwidth=spec.rma_bandwidth,
    )


#: One Fugaku A64FX core-memory group: 12 compute cores, 8 MiB shared L2
#: (the paper quotes "8 MB for 12 computing nodes [cores]"), HBM2 at
#: 256 GB/s per CMG, ~1.7 TFLOPS SP (dual 512-bit SVE FMA at 2.2 GHz).
FUGAKU_CMG = ManycoreTarget(
    name="Fugaku A64FX CMG",
    n_cores=12,
    local_store_bytes=8 * 1024 * 1024 // 12,
    peak_flops_sp=1.69e12,
    gemm_efficiency=0.70,
    mem_bandwidth=256.0e9,
    share_bandwidth=900.0e9,  # L2 read bandwidth
)


@dataclass(frozen=True)
class MappedOperator:
    """Cost summary of the big-fusion operator mapped onto a target."""

    target: ManycoreTarget
    m: int
    flops: float
    mem_bytes: float
    share_bytes: float

    @property
    def arithmetic_intensity(self) -> float:
        return self.flops / self.mem_bytes

    @property
    def compute_bound(self) -> bool:
        return self.arithmetic_intensity > self.target.ridge_point

    @property
    def modeled_time(self) -> float:
        compute = self.flops / (
            self.target.peak_flops_sp * self.target.gemm_efficiency
        )
        memory = self.mem_bytes / self.target.mem_bandwidth
        share = self.share_bytes / self.target.share_bandwidth
        return max(compute, memory, share)


def map_bigfusion(
    channels: Sequence[int],
    m: int,
    target: ManycoreTarget,
) -> MappedOperator:
    """Map the big-fusion operator onto a target ("data centric" principle).

    Main-memory traffic stays first-input + last-output regardless of the
    machine; the parameter-sharing traffic is carried by the target's share
    fabric (RMA or shared cache).  The local store must hold one feature
    block plus the largest layer — checked, as the LDM planner does.
    """
    channels = tuple(int(c) for c in channels)
    flops = sum(
        2.0 * m * ci * co + 2.0 * m * co
        for ci, co in zip(channels[:-1], channels[1:])
    )
    mem_bytes = _F32 * m * (channels[0] + channels[-1])
    params = sum(
        ci * co + co for ci, co in zip(channels[:-1], channels[1:])
    ) * _F32
    largest_layer = max(
        (ci * co + co) * _F32 for ci, co in zip(channels[:-1], channels[1:])
    )
    c_max = max(channels)
    per_row = 2 * c_max * _F32
    if largest_layer + per_row > target.local_store_bytes:
        raise ValueError(
            f"{target.name}: local store too small for one layer + one row "
            f"({largest_layer + per_row} > {target.local_store_bytes} B)"
        )
    # each core sees all parameters once per block sweep.
    rows_per_core = max(
        (target.local_store_bytes - largest_layer) // per_row, 1
    )
    n_blocks = max(-(-m // (rows_per_core * target.n_cores)), 1)
    share_bytes = float(params * target.n_cores * n_blocks)
    return MappedOperator(
        target=target, m=m, flops=flops, mem_bytes=float(mem_bytes),
        share_bytes=share_bytes,
    )


def compare_targets(channels: Sequence[int], m: int) -> dict:
    """Big-fusion mapped on Sunway and Fugaku side by side (Sec. 3.6)."""
    out = {}
    for target in (sunway_target(), FUGAKU_CMG):
        mapped = map_bigfusion(channels, m, target)
        out[target.name] = mapped
    return out

