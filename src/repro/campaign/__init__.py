"""Cross-replica campaigns: many independent KMC replicas, one hot loop.

See :mod:`repro.campaign.engine` for the design; the public surface is

* :class:`ReplicaSpec` / :func:`seed_sweep` / :func:`temperature_ladder` —
  describing what to run;
* :func:`alloy_engine_factory` — the CLI-convention engine builder;
* :class:`ReplicaCampaign` — the driver (``mode="shared"`` funnels every
  replica's stale rows into one batched potential call per round);
* :func:`occupancy_digest` — order-independent trajectory fingerprint used
  by the bit-identity tests and benchmarks.
"""

from .engine import (
    ReplicaCampaign,
    ReplicaResult,
    ReplicaSpec,
    alloy_engine_factory,
    occupancy_digest,
    seed_sweep,
    temperature_ladder,
)

__all__ = [
    "ReplicaCampaign",
    "ReplicaResult",
    "ReplicaSpec",
    "alloy_engine_factory",
    "occupancy_digest",
    "seed_sweep",
    "temperature_ladder",
]
