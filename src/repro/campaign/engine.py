"""Cross-replica campaign driver with autobatched miss evaluation.

A production KMC study is rarely one trajectory: it is a *campaign* — a seed
sweep for statistics, or a temperature ladder for Arrhenius fits — of many
small, independent replicas.  Run naively, each replica funnels its handful
of stale vacancy systems through its own potential call per step, and the
expensive evaluator (the NNP's tiled-GEMM inference in particular) sees a
stream of tiny batches that waste its throughput.

:class:`ReplicaCampaign` runs R replicas in one process and, once per round,
stacks *every* replica's stale rows into a single
:meth:`~repro.core.vacancy_system.VacancySystemEvaluator.evaluate_batch`
call — the same autobatching idea popularised by batched MD front-ends:
independent systems share one forward pass, and a replica that finishes (or
freezes) is hot-swapped out for the next queued spec so the shared batch
stays full.  Cross-replica deduplication comes for free: the shared call
goes through ``evaluate_batch``, whose row dedup now sees identical vacancy
environments from *different* replicas (common in a seed sweep's dilute
matrix) and evaluates them once.

**Bit-identity.**  The campaign changes *when and where* rows are evaluated,
never their values.  Shared mode requires ``batch_row_invariant`` potentials
(per-row results independent of batch composition — see
:class:`~repro.potentials.base.CountsPotential`), gathers each replica's
rows with the engine's own
:meth:`~repro.core.engine.SerialAKMCBase._gather_for_sites`, converts
energies to rates with each replica's own
:class:`~repro.core.rates.RateModel` (temperatures may differ per replica),
and hands the results back through
:meth:`~repro.core.kernel.EventKernel.apply_refresh`.  Each replica's
subsequent :meth:`step` finds nothing stale and draws from its own RNG in
the usual order, so every fixed-seed trajectory is bit-identical to running
that replica solo — asserted over the full campaign, hot swaps included, in
``tests/test_campaign.py``.

``mode="sequential"`` runs the same specs one after another through the
ordinary per-engine loop — the baseline the benchmarks compare against.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..constants import TEMPERATURE_RPV, VACANCY_CONCENTRATION
from ..core.engine import SerialAKMCBase, TensorKMCEngine
from ..core.kernel import NoMovesError
from ..core.profiling import PhaseProfiler, merge_disjoint
from ..core.rowcache import (
    ROW_CACHE_MODES,
    RowEnergyCache,
    resolve_row_cache,
)
from ..core.vacancy_cache import BatchEntries
from ..lattice import LatticeState

__all__ = [
    "ReplicaCampaign",
    "ReplicaResult",
    "ReplicaSpec",
    "alloy_engine_factory",
    "occupancy_digest",
    "seed_sweep",
    "temperature_ladder",
]

#: Campaign phase names, in reporting order: replica admission/hot swap,
#: the stale-row gather, the shared potential call, the per-replica
#: scatter, and the per-replica KMC steps.
CAMPAIGN_PHASES = ("admit", "gather", "evaluate", "scatter", "step")


@dataclass(frozen=True)
class ReplicaSpec:
    """One replica of a campaign: a name, its RNG seed, its temperature,
    and its event budget.  The seed follows the CLI convention — lattice
    disorder from ``default_rng(seed)``, the engine's event stream from
    ``default_rng(seed + 1)`` — so a campaign replica and a ``repro run
    --seed N`` invocation describe the same trajectory."""

    name: str
    seed: int
    temperature: float = TEMPERATURE_RPV
    n_steps: int = 100

    def __post_init__(self) -> None:
        if self.n_steps < 0:
            raise ValueError(f"n_steps must be >= 0, got {self.n_steps}")


def seed_sweep(
    seeds: Iterable[int],
    n_steps: int = 100,
    temperature: float = TEMPERATURE_RPV,
) -> List[ReplicaSpec]:
    """One replica per seed, all at one temperature (statistics sweep)."""
    return [
        ReplicaSpec(
            name=f"seed{int(s)}", seed=int(s), temperature=temperature,
            n_steps=n_steps,
        )
        for s in seeds
    ]


def temperature_ladder(
    temperatures: Iterable[float],
    n_steps: int = 100,
    seed: int = 0,
) -> List[ReplicaSpec]:
    """One replica per temperature, all from one seed (Arrhenius ladder)."""
    return [
        ReplicaSpec(
            name=f"T{float(t):g}", seed=int(seed), temperature=float(t),
            n_steps=n_steps,
        )
        for t in temperatures
    ]


def alloy_engine_factory(
    box: int,
    potential,
    tet,
    cu_fraction: float,
    vacancy_fraction: float = VACANCY_CONCENTRATION,
    backend=None,
    rebuild_path: str = "full",
    row_cache: str = "auto",
    row_cache_mb: Optional[float] = None,
) -> Callable[[ReplicaSpec], TensorKMCEngine]:
    """Engine builder matching the CLI's ``run`` construction per spec.

    Every replica gets its own lattice (disorder drawn from
    ``default_rng(spec.seed)``) and its own engine RNG
    (``default_rng(spec.seed + 1)``); the potential and TET are shared.
    ``rebuild_path`` defaults to ``"full"`` rather than the engine's
    ``"auto"``: the incremental delta path patches rows *inside* the
    kernel, which would fragment the campaign's shared batch — and the
    rebuild paths are bit-identical anyway, so nothing is lost.
    """

    def build(spec: ReplicaSpec) -> TensorKMCEngine:
        lattice = LatticeState((box,) * 3)
        lattice.randomize_alloy(
            np.random.default_rng(spec.seed), cu_fraction=cu_fraction,
            vacancy_fraction=vacancy_fraction,
        )
        return TensorKMCEngine(
            lattice, potential, tet, temperature=spec.temperature,
            rng=np.random.default_rng(spec.seed + 1), backend=backend,
            rebuild_path=rebuild_path, row_cache=row_cache,
            row_cache_mb=row_cache_mb,
        )

    return build


def occupancy_digest(lattice: LatticeState) -> str:
    """SHA-256 fingerprint of a lattice's occupancy (shape included).

    Two engines that executed the same trajectory have equal digests; the
    bit-identity tests and the campaign benchmark compare these instead of
    hauling whole occupancy arrays around.
    """
    h = hashlib.sha256()
    h.update(np.asarray(lattice.shape, dtype=np.int64).tobytes())
    h.update(np.ascontiguousarray(np.asarray(lattice.occupancy)).tobytes())
    return h.hexdigest()


@dataclass
class ReplicaResult:
    """Outcome of one replica: its spec, the events it executed, whether it
    froze before exhausting its budget, its final clock and occupancy
    digest, and the engine's full :meth:`summary` counters."""

    spec: ReplicaSpec
    executed: int
    frozen: bool
    time: float
    digest: str
    summary: Dict[str, float] = field(repr=False, default_factory=dict)


class _Replica:
    """In-flight bookkeeping for one admitted replica."""

    __slots__ = ("index", "spec", "engine", "executed", "frozen")

    def __init__(self, index: int, spec: ReplicaSpec, engine) -> None:
        self.index = index
        self.spec = spec
        self.engine = engine
        self.executed = 0
        self.frozen = False

    @property
    def done(self) -> bool:
        return self.frozen or self.executed >= self.spec.n_steps


class ReplicaCampaign:
    """Run a list of :class:`ReplicaSpec` through one shared hot loop.

    Parameters
    ----------
    specs:
        The replicas, in result order.
    engine_factory:
        ``spec -> engine`` builder (see :func:`alloy_engine_factory`).
        Called lazily: a queued spec costs nothing until a slot frees up.
    max_in_flight:
        How many replicas run concurrently (default: all of them).  When
        a replica completes — budget exhausted or frozen — the next queued
        spec is admitted in its place at the start of the following round.
    mode:
        ``"shared"`` (default): one fused ``evaluate_batch`` per round over
        every in-flight replica's stale rows.  ``"sequential"``: each
        replica runs solo via :meth:`~repro.core.engine.SerialAKMCBase.run`
        with ``on_no_moves="stop"`` — the benchmark baseline.
    row_cache / row_cache_mb:
        Persistent row-energy memoization knobs (``"auto"``/``"on"``/
        ``"off"`` and an optional MiB budget).  In shared mode every
        admitted replica is attached to *one* campaign-wide
        :class:`~repro.core.rowcache.RowEnergyCache` — a seed sweep's
        replicas revisit the same dilute-matrix environments, and a
        temperature ladder shares *energies* outright (rates differ, the
        cached energies do not) — so the memo spans replicas and hot
        swaps.  ``"off"`` detaches any factory-installed cache; in
        sequential mode each engine keeps (or loses, under ``"off"``) its
        own cache, preserving the solo-run baseline.
    """

    MODES = ("shared", "sequential")

    def __init__(
        self,
        specs: Sequence[ReplicaSpec],
        engine_factory: Callable[[ReplicaSpec], SerialAKMCBase],
        max_in_flight: Optional[int] = None,
        mode: str = "shared",
        row_cache: str = "auto",
        row_cache_mb: Optional[float] = None,
    ) -> None:
        specs = list(specs)
        if not specs:
            raise ValueError("a campaign needs at least one replica spec")
        if len({s.name for s in specs}) != len(specs):
            raise ValueError("replica names must be unique")
        if mode not in self.MODES:
            raise ValueError(
                f"unknown campaign mode {mode!r}; allowed: {self.MODES}"
            )
        if row_cache not in ROW_CACHE_MODES:
            raise ValueError(
                f"unknown row_cache mode {row_cache!r}; allowed modes: "
                f"{ROW_CACHE_MODES}"
            )
        if max_in_flight is None:
            max_in_flight = len(specs)
        if max_in_flight < 1:
            raise ValueError(f"max_in_flight must be >= 1, got {max_in_flight}")
        self.specs = specs
        self.engine_factory = engine_factory
        self.max_in_flight = int(max_in_flight)
        self.mode = mode
        #: Aggregate wall-time attribution over :data:`CAMPAIGN_PHASES`
        #: (per-replica select/hop/invalidate timing stays on each engine's
        #: own profiler, surfaced through :attr:`ReplicaResult.summary`).
        self.profiler = PhaseProfiler()
        self.rounds = 0
        self.admitted = 0
        self.shared_batches = 0
        self.shared_rows = 0
        self.max_shared_batch = 0
        self._evaluator = None  # batch-compatibility reference
        self.row_cache_mode = row_cache
        self._row_cache_mb = row_cache_mb
        #: The campaign-wide shared row-energy cache (shared mode only);
        #: created lazily at first admission, once the potential is known.
        self.row_cache: Optional[RowEnergyCache] = None

    # ------------------------------------------------------------------
    def run(self) -> List[ReplicaResult]:
        """Execute the campaign; results are ordered like ``specs``."""
        if self.mode == "sequential":
            return self._run_sequential()
        return self._run_shared()

    def summary(self) -> Dict[str, float]:
        """Aggregate campaign counters + phase timings (flat namespace)."""
        out = {
            "mode": self.mode,
            "replicas": len(self.specs),
            "rounds": self.rounds,
            "admitted": self.admitted,
            "shared_batches": self.shared_batches,
            "shared_rows": self.shared_rows,
            "max_shared_batch": self.max_shared_batch,
        }
        if self.row_cache is not None:
            out.update(self.row_cache.summary())
        return merge_disjoint(out, self.profiler.summary())

    # ------------------------------------------------------------------
    def _result(self, rep: _Replica) -> ReplicaResult:
        return ReplicaResult(
            spec=rep.spec,
            executed=rep.executed,
            frozen=rep.frozen,
            time=float(rep.engine.time),
            digest=occupancy_digest(rep.engine.lattice),
            summary=rep.engine.summary(),
        )

    def _admit(self, index: int, spec: ReplicaSpec) -> _Replica:
        engine = self.engine_factory(spec)
        if not getattr(engine.potential, "batch_row_invariant", False):
            raise ValueError(
                "shared campaign mode needs a batch_row_invariant potential "
                "(per-row results must not depend on batch composition); "
                "use mode='sequential' for this potential"
            )
        if self._evaluator is None:
            self._evaluator = engine.evaluator
        elif not self._evaluator.batch_compatible(engine.evaluator):
            raise ValueError(
                f"replica {spec.name!r} is not batch-compatible with the "
                "campaign (potential / element count / TET mismatch)"
            )
        # One cache for the whole campaign: every admitted engine (and the
        # shared `_evaluator` — it belongs to the first of them) consults
        # the same memo, so environments seen by any replica are hits for
        # all.  "off" detaches whatever the factory may have installed.
        if resolve_row_cache(self.row_cache_mode, engine.potential):
            if self.row_cache is None:
                budget = (
                    None if self._row_cache_mb is None
                    else int(float(self._row_cache_mb) * 1024 * 1024)
                )
                self.row_cache = RowEnergyCache(max_bytes=budget)
            engine.attach_row_cache(self.row_cache)
        elif self.row_cache_mode == "off":
            engine.attach_row_cache(None)
        self.admitted += 1
        return _Replica(index, spec, engine)

    def _run_shared(self) -> List[ReplicaResult]:
        queue = deque(enumerate(self.specs))
        active: List[_Replica] = []
        results: List[Optional[ReplicaResult]] = [None] * len(self.specs)

        while queue or active:
            # Hot swap: fill freed slots from the queue before the round's
            # shared batch, so a retired replica's rows are replaced by the
            # newcomer's cold-start rows in the very next fused call.
            with self.profiler.phase("admit"):
                while queue and len(active) < self.max_in_flight:
                    index, spec = queue.popleft()
                    active.append(self._admit(index, spec))

            # Gather every in-flight replica's stale rows (read-only).
            work = []
            with self.profiler.phase("gather"):
                for rep in active:
                    stale = rep.engine.kernel.stale_batch()
                    if stale.size == 0:
                        continue
                    keys = rep.engine.kernel.cache.keys_of(stale)
                    ids, vet_ids, vets = rep.engine._gather_for_sites(keys)
                    work.append((rep, stale, ids, vet_ids, vets))

            # One potential call for all replicas; evaluate_batch's row
            # dedup now operates across replica boundaries.
            with self.profiler.phase("evaluate"):
                batches = self._evaluator.evaluate_batch_segments(
                    [vets for (_, _, _, _, vets) in work]
                )
                if work:
                    rows = sum(stale.size for (_, stale, _, _, _) in work)
                    self.shared_batches += 1
                    self.shared_rows += int(rows)
                    self.max_shared_batch = max(
                        self.max_shared_batch, int(rows)
                    )

            # Scatter each replica's segment back through its own rate
            # model (temperatures may differ) and its kernel's store path.
            with self.profiler.phase("scatter"):
                for (rep, stale, ids, vet_ids, vets), energies in zip(
                    work, batches
                ):
                    rates = rep.engine.rate_model.rates_batch(energies)
                    rep.engine.kernel.apply_refresh(
                        stale,
                        BatchEntries(
                            sites=ids, vet_ids=vet_ids, vets=vets,
                            energies=energies, rates=rates,
                        ),
                    )

            # One KMC event per replica; refresh inside step() finds
            # nothing stale, so each replica's RNG draw order matches its
            # solo run exactly.
            with self.profiler.phase("step"):
                for rep in active:
                    try:
                        rep.engine.step()
                        rep.executed += 1
                    except NoMovesError:
                        rep.frozen = True
            self.rounds += 1

            retired = [rep for rep in active if rep.done]
            for rep in retired:
                results[rep.index] = self._result(rep)
                active.remove(rep)

        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def _run_sequential(self) -> List[ReplicaResult]:
        results: List[ReplicaResult] = []
        for spec in self.specs:
            with self.profiler.phase("admit"):
                engine = self.engine_factory(spec)
                if self.row_cache_mode == "off":
                    engine.attach_row_cache(None)
                self.admitted += 1
            with self.profiler.phase("step"):
                rep = _Replica(len(results), spec, engine)
                rep.executed = engine.run(
                    n_steps=spec.n_steps, on_no_moves="stop"
                )
                rep.frozen = rep.executed < spec.n_steps
            results.append(self._result(rep))
        return results
