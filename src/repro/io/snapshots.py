"""Lattice snapshot persistence (npz)."""

from __future__ import annotations

import numpy as np

from ..lattice.occupancy import LatticeState

__all__ = ["save_lattice", "load_lattice"]


def save_lattice(path: str, lattice: LatticeState, time: float = 0.0) -> None:
    """Write a lattice state (occupancy + geometry + clock) to ``path``."""
    np.savez_compressed(
        path,
        occupancy=lattice.occupancy,
        shape=np.array(lattice.shape, dtype=np.int64),
        a=np.array([lattice.a]),
        time=np.array([time]),
    )


def load_lattice(path: str) -> tuple[LatticeState, float]:
    """Inverse of :func:`save_lattice`; returns ``(lattice, time)``."""
    data = np.load(path)
    lattice = LatticeState(tuple(data["shape"]), a=float(data["a"][0]))
    lattice.occupancy = data["occupancy"].astype(np.uint8)
    return lattice, float(data["time"][0])
