"""Paper-vs-measured report rows — shared by all benchmark harnesses.

Every bench prints its result through :class:`ExperimentReport` so that
EXPERIMENTS.md and the bench output share one format.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["ReportRow", "ExperimentReport"]


@dataclass(frozen=True)
class ReportRow:
    """One quantity compared against the paper."""

    quantity: str
    paper: str
    measured: str
    note: str = ""


@dataclass
class ExperimentReport:
    """A titled collection of paper-vs-measured rows."""

    experiment: str
    description: str
    rows: List[ReportRow] = field(default_factory=list)

    def add(
        self, quantity: str, paper: str, measured: str, note: str = ""
    ) -> None:
        self.rows.append(ReportRow(quantity, paper, measured, note))

    def render(self, width: Optional[int] = None) -> str:
        """Aligned text table."""
        headers = ("quantity", "paper", "measured", "note")
        table = [headers] + [
            (r.quantity, r.paper, r.measured, r.note) for r in self.rows
        ]
        widths = [max(len(row[i]) for row in table) for i in range(4)]
        lines = [f"== {self.experiment}: {self.description} =="]
        for row in table:
            lines.append(
                "  ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
            )
        return "\n".join(lines)

    def print(self) -> None:  # pragma: no cover - console helper
        print(self.render())
