"""Engine checkpoint / restart with bit-exact continuation.

Mesoscale AKMC campaigns run for days; a checkpoint stores everything needed
to resume *exactly* — occupancy, simulated clock, step counter, and the
random generator's internal state — so a restarted run produces the same
trajectory as an uninterrupted one (asserted in the tests).  Potentials and
TET tables are deterministic functions of their inputs and are reconstructed
by the caller, not serialised.

Two archive kinds share the ``.npz`` container (a ``kind`` field tells them
apart; archives written before the field existed are serial):

* **serial** — one :class:`~repro.core.engine.TensorKMCEngine`: occupancy,
  clock, RNG state, evaluation/batching/propensity modes, and the kernel
  slot registry *including* parked slots and the free-list stack order
  (after vacancy annihilation/creation the recycling order is
  trajectory-determining state);
* **parallel** — one :class:`~repro.parallel.engine.SublatticeKMC` world at
  a cycle boundary: the gathered global occupancy plus, per rank, the full
  padded window (local + ghost regions), the rank's RNG stream, its kernel
  slot order and free list, and its event counters — together with the
  sector cursor, accumulated :class:`~repro.parallel.comm.CommStats`, and
  the per-cycle statistics history.  Restore rebuilds a world whose
  continuation is bit-identical to the uninterrupted run.
"""

from __future__ import annotations

import json

import numpy as np

from ..core.backend import to_numpy
from ..core.engine import SerialAKMCBase, TensorKMCEngine
from ..core.tet import TripleEncoding
from ..lattice.occupancy import LatticeState
from ..potentials.base import CountsPotential

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "save_parallel_checkpoint",
    "load_parallel_checkpoint",
    "checkpoint_kind",
]

#: Sentinel for a parked (free) slot in serialised registries.
_FREE_SLOT = -1


def checkpoint_kind(path: str) -> str:
    """``"serial"`` or ``"parallel"`` (archives predating the field: serial)."""
    with np.load(path, allow_pickle=False) as data:
        if "kind" in data.files:
            return str(data["kind"][0])
    return "serial"


# ----------------------------------------------------------------------
# Serial engines
# ----------------------------------------------------------------------
def save_checkpoint(path: str, engine: SerialAKMCBase) -> None:
    """Serialise a serial engine's full dynamic state to ``path`` (.npz)."""
    rng_state = json.dumps(engine.rng.bit_generator.state)
    store_kind = type(engine.store).__name__
    # Parked slots (freed by vacancy annihilation) serialise as -1; the
    # free-list stack order is stored separately so recycling resumes in
    # the same order.
    slots = np.array(
        [_FREE_SLOT if s is None else int(s) for s in engine.cache.sites],
        dtype=np.int64,
    )
    np.savez_compressed(
        path,
        kind=np.array(["serial"]),
        # to_numpy: the explicit serialisation boundary — checkpoints hold
        # plain NumPy arrays whichever backend ran the math.
        occupancy=to_numpy(engine.lattice.occupancy),
        shape=np.array(engine.lattice.shape, dtype=np.int64),
        a=np.array([engine.lattice.a]),
        time=np.array([engine.time]),
        step_count=np.array([engine.step_count]),
        temperature=np.array([engine.rate_model.temperature]),
        rcut=np.array([engine.tet.rcut]),
        evaluation=np.array([engine.evaluation]),
        batching=np.array([engine.batching]),
        propensity=np.array(
            ["tree" if store_kind == "FenwickPropensity" else "linear"]
        ),
        rng_state=np.array([rng_state]),
        vacancy_slots=slots,
        free_order=np.array(engine.kernel.cache.free_slots, dtype=np.int64),
        # Row-energy cache: the mode, byte budget (-1 = unbounded), and the
        # monotonic counters persist; the cached *contents* deliberately do
        # not — a resumed run rebuilds the memo from cold, and because every
        # hit is bitwise equal to a fresh evaluation the continuation is
        # bit-identical either way.
        row_cache=np.array([getattr(engine, "row_cache_mode", "auto")]),
        row_cache_budget=np.array(
            [_row_cache_budget(getattr(engine, "row_cache", None))],
            dtype=np.int64,
        ),
        row_cache_counters=_row_cache_counters(
            getattr(engine, "row_cache", None)
        ),
    )


def _row_cache_budget(cache) -> int:
    if cache is None or cache.max_bytes is None:
        return -1
    return int(cache.max_bytes)


def _row_cache_counters(cache) -> np.ndarray:
    if cache is None:
        return np.zeros(3, dtype=np.int64)
    return np.array(
        [cache.hits, cache.misses, cache.evictions], dtype=np.int64
    )


def _restore_row_cache(cache, data) -> None:
    """Resume a cold cache's budget and cumulative counters from ``data``."""
    if cache is None:
        return
    if "row_cache_budget" in data.files:
        budget = int(data["row_cache_budget"][0])
        cache.max_bytes = None if budget < 0 else budget
    if "row_cache_counters" in data.files:
        cache.restore_counters(*(int(v) for v in data["row_cache_counters"]))


def load_checkpoint(
    path: str,
    potential: CountsPotential,
    tet: TripleEncoding | None = None,
    backend=None,
) -> TensorKMCEngine:
    """Rebuild a :class:`TensorKMCEngine` that continues bit-exactly.

    Parameters
    ----------
    potential:
        The potential used by the original run (must be identical for exact
        continuation; it is not stored in the checkpoint).
    tet:
        Optional pre-built TET; rebuilt from the stored cutoff otherwise.
    backend:
        Array backend for the resumed run.  Checkpoints are backend-free
        (everything serialises as NumPy), so a run saved under one backend
        restores under any other.
    """
    data = np.load(path, allow_pickle=False)
    if "kind" in data.files and str(data["kind"][0]) != "serial":
        raise ValueError(
            f"{path} holds a {str(data['kind'][0])!r} checkpoint; use "
            "load_parallel_checkpoint"
        )
    lattice = LatticeState(tuple(int(v) for v in data["shape"]), a=float(data["a"][0]))
    lattice.occupancy = data["occupancy"].astype(np.uint8)
    if tet is None:
        tet = TripleEncoding(rcut=float(data["rcut"][0]), a=lattice.a)

    rng = np.random.default_rng()
    rng.bit_generator.state = json.loads(str(data["rng_state"][0]))

    # Archives written before the batching mode was persisted resume under
    # "auto" (the old, mode-dropping behaviour, kept for compatibility).
    batching = str(data["batching"][0]) if "batching" in data.files else "auto"
    # Same fallback pattern for archives predating the row cache.
    row_cache = (
        str(data["row_cache"][0]) if "row_cache" in data.files else "auto"
    )
    engine = TensorKMCEngine(
        lattice,
        potential,
        tet,
        temperature=float(data["temperature"][0]),
        rng=rng,
        propensity=str(data["propensity"][0]),
        evaluation=str(data["evaluation"][0]),
        batching=batching,
        backend=backend,
        row_cache=row_cache,
    )
    _restore_row_cache(engine.row_cache, data)
    engine.time = float(data["time"][0])
    engine.step_count = int(data["step_count"][0])
    # Restore the vacancy registry's slot order (it encodes event identity);
    # restore_slot_order also resyncs the kernel's spatial invalidation index.
    stored = [None if s < 0 else int(s) for s in data["vacancy_slots"]]
    live = sorted(s for s in stored if s is not None)
    if live != sorted(int(s) for s in engine.cache.sites):
        raise ValueError("checkpoint vacancies do not match the occupancy array")
    free_order = (
        [int(s) for s in data["free_order"]]
        if "free_order" in data.files
        else None
    )
    engine.restore_slot_order(stored, free_order=free_order)
    return engine


# ----------------------------------------------------------------------
# Parallel sublattice worlds
# ----------------------------------------------------------------------
#: CycleStats field order in the serialised history (append-only).
_CYCLE_FIELDS = (
    "sector",
    "events",
    "rejected",
    "compute_seconds",
    "comm_messages",
    "comm_bytes",
    "cache_hits",
    "cache_misses",
    "invalidations",
    "rates_evaluated",
    "selections",
    "selection_depth",
    "rate_batches",
    "batched_rows",
    "rebuild_seconds",
    "select_seconds",
    "hop_seconds",
    "invalidate_seconds",
    "exchange_seconds",
    # Appended after the phase timings (append-only: old archives load
    # with these defaulting to 0 via the zip-stops-at-shortest rule).
    "row_cache_hits",
    "row_cache_misses",
    "row_cache_evictions",
    "exchange_wait_seconds",
)

_COMM_FIELDS = ("messages_sent", "bytes_sent", "barriers", "collectives")


def save_parallel_checkpoint(path: str, sim) -> None:
    """Serialise a :class:`SublatticeKMC` world at a cycle boundary.

    Stores the gathered global occupancy plus everything per-rank that the
    global state does not determine: the padded window (ghost regions
    included), the rank RNG stream, the kernel slot order and free-list
    stack, and the rank's event counters — together with the sector cursor,
    accumulated communicator statistics, and the per-cycle history.  Must be
    called between cycles (the sublattice protocol has no well-defined
    mid-cycle state).

    Executor-transparent: under ``executor="process"`` the driver's shadow
    ranks are synchronised from the worker snapshots first, so the archive
    is byte-identical to one written by an inline run at the same cycle
    (the executor itself is deliberately *not* stored — the resuming
    caller chooses it).
    """
    sync = getattr(sim, "sync_ranks", None)
    if sync is not None:
        sync()
    stats = sim.world.stats
    arrays = {
        "kind": np.array(["parallel"]),
        "shape": np.array(sim.global_shape, dtype=np.int64),
        "a": np.array([sim.a]),
        "rcut": np.array([sim.tet.rcut]),
        "temperature": np.array([sim.ranks[0].rate_model.temperature]),
        "t_stop": np.array([sim.t_stop]),
        "seed": np.array([sim.seed], dtype=np.int64),
        "sector_mode": np.array([sim.sector_mode]),
        "grid": np.array(sim.decomposition.grid, dtype=np.int64),
        "time": np.array([sim.time]),
        "sector_index": np.array([sim.sector_index], dtype=np.int64),
        "proximity_violations": np.array(
            [sim.proximity_violations], dtype=np.int64
        ),
        "occupancy": to_numpy(sim.gather_global().occupancy),
        "world_stats": np.array(
            [getattr(stats, f) for f in _COMM_FIELDS], dtype=np.int64
        ),
        "cycles": np.array(
            [[float(getattr(c, f)) for f in _CYCLE_FIELDS] for c in sim.cycles],
            dtype=np.float64,
        ).reshape(-1, len(_CYCLE_FIELDS)),
        # Shared row-energy cache: mode/budget/counters persist, contents
        # do not (cold rebuild is bit-identical; see the serial saver).
        "row_cache": np.array([getattr(sim, "row_cache_mode", "auto")]),
        "row_cache_budget": np.array(
            [_row_cache_budget(getattr(sim, "row_cache", None))],
            dtype=np.int64,
        ),
        "row_cache_counters": _row_cache_counters(
            getattr(sim, "row_cache", None)
        ),
    }
    for r, rank in enumerate(sim.ranks):
        keys = rank.kernel.cache.sites
        arrays[f"rank{r}_occupancy"] = to_numpy(rank.window.occupancy)
        arrays[f"rank{r}_rng"] = np.array(
            [json.dumps(rank.rng.bit_generator.state)]
        )
        arrays[f"rank{r}_slots"] = np.array(
            [
                (_FREE_SLOT,) * 3 if k is None else tuple(int(v) for v in k)
                for k in keys
            ],
            dtype=np.int64,
        ).reshape(-1, 3)
        arrays[f"rank{r}_free_order"] = np.array(
            rank.kernel.cache.free_slots, dtype=np.int64
        )
        arrays[f"rank{r}_counters"] = np.array(
            [rank.events, rank.rejected, rank.anomalies], dtype=np.int64
        )
        local = rank.exchanger.comm.local_stats
        arrays[f"rank{r}_local_stats"] = np.array(
            [getattr(local, f) for f in _COMM_FIELDS], dtype=np.int64
        )
    np.savez_compressed(path, **arrays)


def load_parallel_checkpoint(
    path: str,
    potential: CountsPotential,
    tet: TripleEncoding | None = None,
    fault_plan=None,
    backend=None,
    executor: str = "inline",
    workers=None,
):
    """Rebuild a :class:`SublatticeKMC` whose continuation is bit-exact.

    ``potential`` (and optionally ``tet``) are reconstructed by the caller
    exactly as for the serial loader; ``fault_plan`` re-attaches a (stateful)
    :class:`~repro.parallel.faults.FaultPlan` so rollback-and-replay recovery
    does not re-trigger already-fired faults.  ``backend`` selects the array
    backend of the resumed run (checkpoints themselves are backend-free), and
    ``executor``/``workers`` the execution backend — archives are
    executor-free, so a run saved under either executor resumes bit-exactly
    under the other (the process pool forks only at the first cycle, after
    this loader's state surgery).
    """
    from ..parallel.engine import CycleStats, SublatticeKMC

    data = np.load(path, allow_pickle=False)
    kind = str(data["kind"][0]) if "kind" in data.files else "serial"
    if kind != "parallel":
        raise ValueError(
            f"{path} holds a {kind!r} checkpoint; use load_checkpoint"
        )
    shape = tuple(int(v) for v in data["shape"])
    a = float(data["a"][0])
    lattice = LatticeState(shape, a=a)
    lattice.occupancy = data["occupancy"].astype(np.uint8)
    if tet is None:
        tet = TripleEncoding(rcut=float(data["rcut"][0]), a=a)

    row_cache = (
        str(data["row_cache"][0]) if "row_cache" in data.files else "auto"
    )
    sim = SublatticeKMC(
        lattice,
        potential,
        tet,
        grid=tuple(int(v) for v in data["grid"]),
        temperature=float(data["temperature"][0]),
        t_stop=float(data["t_stop"][0]),
        seed=int(data["seed"][0]),
        sector_mode=str(data["sector_mode"][0]),
        fault_plan=fault_plan,
        backend=backend,
        row_cache=row_cache,
        executor=executor,
        workers=workers,
    )
    _restore_row_cache(sim.row_cache, data)
    sim.time = float(data["time"][0])
    sim.sector_index = int(data["sector_index"][0])
    sim.proximity_violations = int(data["proximity_violations"][0])
    for name, value in zip(_COMM_FIELDS, data["world_stats"]):
        setattr(sim.world.stats, name, int(value))
    sim.cycles = [
        CycleStats(
            **{
                name: (
                    float(v)
                    if name == "compute_seconds" or name.endswith("_seconds")
                    else int(v)
                )
                for name, v in zip(_CYCLE_FIELDS, row)
            }
        )
        for row in data["cycles"]
    ]

    for r, rank in enumerate(sim.ranks):
        occ = data[f"rank{r}_occupancy"].astype(np.uint8)
        if occ.shape != rank.window.occupancy.shape:
            raise ValueError(
                f"rank {r} window shape {occ.shape} does not match the "
                f"decomposition ({rank.window.occupancy.shape})"
            )
        rank.window.occupancy[:] = occ
        rank.vacancies = rank.window.local_vacancy_half_coords(rank.vacancy_code)
        keys = [
            None if int(row[0]) == _FREE_SLOT else tuple(int(v) for v in row)
            for row in data[f"rank{r}_slots"]
        ]
        live = sorted(k for k in keys if k is not None)
        current = sorted(tuple(int(v) for v in h) for h in rank.vacancies)
        if live != current:
            raise ValueError(
                f"rank {r}: checkpoint slot registry does not match the "
                "stored occupancy"
            )
        rank.kernel.set_keys(
            keys, free_order=[int(s) for s in data[f"rank{r}_free_order"]]
        )
        rng = np.random.default_rng()
        rng.bit_generator.state = json.loads(str(data[f"rank{r}_rng"][0]))
        rank.rng = rng
        rank.events, rank.rejected, rank.anomalies = (
            int(v) for v in data[f"rank{r}_counters"]
        )
        for name, value in zip(_COMM_FIELDS, data[f"rank{r}_local_stats"]):
            setattr(rank.exchanger.comm.local_stats, name, int(value))
    return sim
