"""Engine checkpoint / restart with bit-exact continuation.

Mesoscale AKMC campaigns run for days; a checkpoint stores everything needed
to resume *exactly* — occupancy, simulated clock, step counter, and the
random generator's internal state — so a restarted run produces the same
trajectory as an uninterrupted one (asserted in the tests).  Potentials and
TET tables are deterministic functions of their inputs and are reconstructed
by the caller, not serialised.
"""

from __future__ import annotations

import json

import numpy as np

from ..core.engine import SerialAKMCBase, TensorKMCEngine
from ..core.tet import TripleEncoding
from ..lattice.occupancy import LatticeState
from ..potentials.base import CountsPotential

__all__ = ["save_checkpoint", "load_checkpoint"]


def save_checkpoint(path: str, engine: SerialAKMCBase) -> None:
    """Serialise a serial engine's full dynamic state to ``path`` (.npz)."""
    rng_state = json.dumps(engine.rng.bit_generator.state)
    store_kind = type(engine.store).__name__
    np.savez_compressed(
        path,
        occupancy=engine.lattice.occupancy,
        shape=np.array(engine.lattice.shape, dtype=np.int64),
        a=np.array([engine.lattice.a]),
        time=np.array([engine.time]),
        step_count=np.array([engine.step_count]),
        temperature=np.array([engine.rate_model.temperature]),
        rcut=np.array([engine.tet.rcut]),
        evaluation=np.array([engine.evaluation]),
        propensity=np.array(
            ["tree" if store_kind == "FenwickPropensity" else "linear"]
        ),
        rng_state=np.array([rng_state]),
        vacancy_slots=np.array(engine.cache.sites, dtype=np.int64),
    )


def load_checkpoint(
    path: str,
    potential: CountsPotential,
    tet: TripleEncoding | None = None,
) -> TensorKMCEngine:
    """Rebuild a :class:`TensorKMCEngine` that continues bit-exactly.

    Parameters
    ----------
    potential:
        The potential used by the original run (must be identical for exact
        continuation; it is not stored in the checkpoint).
    tet:
        Optional pre-built TET; rebuilt from the stored cutoff otherwise.
    """
    data = np.load(path, allow_pickle=False)
    lattice = LatticeState(tuple(int(v) for v in data["shape"]), a=float(data["a"][0]))
    lattice.occupancy = data["occupancy"].astype(np.uint8)
    if tet is None:
        tet = TripleEncoding(rcut=float(data["rcut"][0]), a=lattice.a)

    rng = np.random.default_rng()
    rng.bit_generator.state = json.loads(str(data["rng_state"][0]))

    engine = TensorKMCEngine(
        lattice,
        potential,
        tet,
        temperature=float(data["temperature"][0]),
        rng=rng,
        propensity=str(data["propensity"][0]),
        evaluation=str(data["evaluation"][0]),
    )
    engine.time = float(data["time"][0])
    engine.step_count = int(data["step_count"][0])
    # Restore the vacancy registry's slot order (it encodes event identity);
    # restore_slot_order also resyncs the kernel's spatial invalidation index.
    stored = [int(s) for s in data["vacancy_slots"]]
    if sorted(stored) != sorted(engine.cache.sites):
        raise ValueError("checkpoint vacancies do not match the occupancy array")
    engine.restore_slot_order(stored)
    return engine
