"""Extended-XYZ export for visualisation (OVITO / ASE compatible).

The paper's Fig. 14 renders are cluster-coloured atomistic snapshots; this
module writes lattice states (optionally solute-only, the sensible choice for
trillion-site boxes) in the extended-XYZ dialect those tools read.
"""

from __future__ import annotations

from typing import Iterable, Optional, TextIO

import numpy as np

from ..constants import SPECIES_NAMES, VACANCY
from ..lattice.occupancy import LatticeState

__all__ = ["write_xyz", "write_xyz_trajectory"]

_SYMBOLS = {0: "Fe", 1: "Cu", 2: "X"}  # X marks vacancies


def write_xyz(
    fh: TextIO,
    lattice: LatticeState,
    time: float = 0.0,
    species_filter: Optional[Iterable[int]] = None,
    include_vacancies: bool = True,
) -> int:
    """Write one snapshot; returns the number of sites written.

    Parameters
    ----------
    fh:
        Open text file handle.
    species_filter:
        If given, only sites holding one of these species codes are written
        (e.g. ``[CU, VACANCY]`` to export only the interesting defects).
    include_vacancies:
        When no filter is given, whether vacant sites appear (symbol ``X``).
    """
    occupancy = lattice.occupancy
    if species_filter is not None:
        keep = np.isin(occupancy, np.asarray(list(species_filter)))
    elif include_vacancies:
        keep = np.ones(lattice.n_sites, dtype=bool)
    else:
        keep = occupancy != VACANCY
    ids = np.flatnonzero(keep)
    positions = lattice.positions(ids)
    nx, ny, nz = lattice.shape
    a = lattice.a
    fh.write(f"{ids.size}\n")
    fh.write(
        f'Lattice="{nx * a} 0 0 0 {ny * a} 0 0 0 {nz * a}" '
        f'Properties=species:S:1:pos:R:3 Time={float(time)!r}\n'
    )
    for sid, pos in zip(ids, positions):
        symbol = _SYMBOLS[int(occupancy[sid])]
        fh.write(f"{symbol} {pos[0]:.6f} {pos[1]:.6f} {pos[2]:.6f}\n")
    return int(ids.size)


def write_xyz_trajectory(
    path: str,
    snapshots: Iterable[tuple],
    species_filter: Optional[Iterable[int]] = None,
) -> int:
    """Write ``(lattice, time)`` snapshots as a multi-frame XYZ file.

    Returns the number of frames written.
    """
    frames = 0
    with open(path, "w") as fh:
        for lattice, time in snapshots:
            write_xyz(fh, lattice, time=time, species_filter=species_filter)
            frames += 1
    return frames


def _species_name(code: int) -> str:
    """Human-readable species name (exported for CLI summaries)."""
    return SPECIES_NAMES[code]
