"""Snapshot persistence and experiment reporting."""

from .checkpoint import (
    checkpoint_kind,
    load_checkpoint,
    load_parallel_checkpoint,
    save_checkpoint,
    save_parallel_checkpoint,
)
from .events import load_events, replay_events, save_events
from .report import ExperimentReport, ReportRow
from .snapshots import load_lattice, save_lattice
from .xyz import write_xyz, write_xyz_trajectory

__all__ = [
    "checkpoint_kind",
    "load_checkpoint",
    "load_parallel_checkpoint",
    "save_checkpoint",
    "save_parallel_checkpoint",
    "load_events",
    "replay_events",
    "save_events",
    "ExperimentReport",
    "ReportRow",
    "load_lattice",
    "save_lattice",
    "write_xyz",
    "write_xyz_trajectory",
]
