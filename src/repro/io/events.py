"""Event-log persistence and trajectory replay.

A KMC trajectory is fully described by its event sequence; storing the
compact event log (a few ints + floats per hop) lets gigabyte occupancy
snapshots be reconstructed on demand — ``replay_events`` applies the swaps
to the initial configuration and must land exactly on the final one
(asserted in the tests).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..core.engine import KMCEvent
from ..lattice.occupancy import LatticeState

__all__ = ["save_events", "load_events", "replay_events"]


def save_events(path: str, events: Sequence[KMCEvent]) -> None:
    """Write an event log to ``path`` (.npz, one array per field)."""
    np.savez_compressed(
        path,
        step=np.array([e.step for e in events], dtype=np.int64),
        time=np.array([e.time for e in events], dtype=np.float64),
        dt=np.array([e.dt for e in events], dtype=np.float64),
        slot=np.array([e.slot for e in events], dtype=np.int64),
        from_site=np.array([e.from_site for e in events], dtype=np.int64),
        to_site=np.array([e.to_site for e in events], dtype=np.int64),
        direction=np.array([e.direction for e in events], dtype=np.int8),
        migrating_species=np.array(
            [e.migrating_species for e in events], dtype=np.uint8
        ),
        total_rate=np.array([e.total_rate for e in events], dtype=np.float64),
    )


def load_events(path: str) -> List[KMCEvent]:
    """Inverse of :func:`save_events`."""
    data = np.load(path)
    return [
        KMCEvent(
            step=int(data["step"][i]),
            time=float(data["time"][i]),
            dt=float(data["dt"][i]),
            slot=int(data["slot"][i]),
            from_site=int(data["from_site"][i]),
            to_site=int(data["to_site"][i]),
            direction=int(data["direction"][i]),
            migrating_species=int(data["migrating_species"][i]),
            total_rate=float(data["total_rate"][i]),
        )
        for i in range(data["step"].shape[0])
    ]


def replay_events(
    lattice: LatticeState, events: Sequence[KMCEvent]
) -> LatticeState:
    """Apply an event log to (a copy of) an initial configuration.

    Each event's consistency is checked while replaying: the migrating
    species recorded at run time must match the occupant being moved.
    """
    from ..constants import VACANCY

    out = lattice.copy()
    for event in events:
        actual = int(out.occupancy[event.to_site])
        source = int(out.occupancy[event.from_site])
        if actual != event.migrating_species or source != VACANCY:
            raise ValueError(
                f"event {event.step}: expected vacancy at {event.from_site} "
                f"and species {event.migrating_species} at {event.to_site}, "
                f"found {source} and {actual} — wrong initial configuration "
                f"or corrupted log"
            )
        out.swap(event.from_site, event.to_site)
    return out
