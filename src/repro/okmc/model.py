"""Object kinetic Monte Carlo (OKMC) — the coarse-grained comparator model.

The paper's introduction situates AKMC among the KMC family: OKMC abstracts
*defect objects* (here: vacancy clusters) instead of lattice sites, trading
atomistic resolution for reach.  This subsystem implements a classic OKMC
model of vacancy clustering in bcc Fe so the two model classes can be
compared on the same physics (see ``examples``/``benchmarks``):

* objects are vacancy clusters of size ``n`` at continuous positions in a
  periodic box;
* a size-``n`` cluster migrates by jumps of one 1NN distance at rate
  ``Gamma_0 * n^{-q} * exp(-E_m / kT)`` (larger clusters are slower);
* two clusters whose separation falls below the sum of their capture radii
  coalesce (``n = n_1 + n_2``);
* a cluster of size ``n >= 2`` may emit a monovacancy at rate
  ``Gamma_0 * exp(-(E_m + E_b(n)) / kT)`` with a size-dependent binding
  energy ``E_b(n)``.

The total vacancy count is conserved by construction (coalescence and
emission only move vacancies between objects), which the tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..constants import ATTEMPT_FREQUENCY, EA0_FE, KB_EV, LATTICE_CONSTANT

__all__ = ["OKMCParameters", "DefectObject", "OKMCModel"]


@dataclass(frozen=True)
class OKMCParameters:
    """Kinetic parameters of the vacancy-cluster OKMC model."""

    temperature: float = 573.0
    attempt_frequency: float = ATTEMPT_FREQUENCY
    #: Monovacancy migration energy (eV) — the AKMC reference barrier.
    migration_energy: float = EA0_FE
    #: Size exponent of cluster mobility: Gamma(n) = Gamma(1) * n^-q.
    mobility_exponent: float = 1.5
    #: Binding energy of a vacancy to a size-n cluster (eV):
    #: E_b(n) = e_b_bulk - e_b_surf * (n^(2/3) - (n-1)^(2/3)) (capillary law).
    binding_bulk: float = 0.45
    binding_surface: float = 0.30
    #: Capture radius of a size-n cluster: r0 * n^(1/3) (Angstrom).
    capture_radius_prefactor: float = 0.65 * LATTICE_CONSTANT
    #: Jump length (Angstrom): the bcc 1NN distance.
    jump_length: float = LATTICE_CONSTANT * float(np.sqrt(3.0)) / 2.0

    @property
    def beta(self) -> float:
        return 1.0 / (KB_EV * self.temperature)

    def migration_rate(self, size: int) -> float:
        """Total hop rate of a size-``n`` cluster (1/s)."""
        base = self.attempt_frequency * np.exp(
            -self.migration_energy * self.beta
        )
        return float(base * size ** (-self.mobility_exponent))

    def binding_energy(self, size: int) -> float:
        """Vacancy binding energy to a size-``n`` cluster (eV), n >= 2."""
        if size < 2:
            return 0.0
        gain = size ** (2.0 / 3.0) - (size - 1) ** (2.0 / 3.0)
        return max(self.binding_bulk - self.binding_surface * gain, 0.0)

    def emission_rate(self, size: int) -> float:
        """Monovacancy emission rate of a size-``n`` cluster (1/s)."""
        if size < 2:
            return 0.0
        barrier = self.migration_energy + self.binding_energy(size)
        return float(self.attempt_frequency * np.exp(-barrier * self.beta))

    def capture_radius(self, size: int) -> float:
        """Capture radius of a size-``n`` cluster (Angstrom)."""
        return float(self.capture_radius_prefactor * size ** (1.0 / 3.0))


@dataclass
class DefectObject:
    """One vacancy cluster."""

    position: np.ndarray  # (3,) Cartesian, Angstrom
    size: int

    def copy(self) -> "DefectObject":
        return DefectObject(position=self.position.copy(), size=self.size)


@dataclass
class OKMCModel:
    """The OKMC simulation state and event loop.

    Parameters
    ----------
    box:
        Periodic box lengths in Angstrom (3,).
    objects:
        Initial defect objects (monovacancies typically).
    params:
        Kinetic parameters.
    rng:
        Random generator (explicit, for reproducibility).
    """

    box: np.ndarray
    objects: List[DefectObject]
    params: OKMCParameters
    rng: np.random.Generator
    time: float = 0.0
    step_count: int = 0
    n_coalescences: int = 0
    n_emissions: int = 0
    _history: List[dict] = field(default_factory=list)

    @classmethod
    def random_monovacancies(
        cls,
        n_vacancies: int,
        box: np.ndarray,
        params: OKMCParameters,
        rng: np.random.Generator,
    ) -> "OKMCModel":
        """Box seeded with randomly placed monovacancies."""
        box = np.asarray(box, dtype=np.float64)
        objects = [
            DefectObject(position=rng.uniform(0.0, box), size=1)
            for _ in range(n_vacancies)
        ]
        return cls(box=box, objects=objects, params=params, rng=rng)

    # ------------------------------------------------------------------
    @property
    def total_vacancies(self) -> int:
        """Conserved: total vacancy count across all objects."""
        return sum(o.size for o in self.objects)

    def cluster_sizes(self) -> np.ndarray:
        """Sizes of all live objects, largest first."""
        return np.array(sorted((o.size for o in self.objects), reverse=True))

    def _separation(self, a: np.ndarray, b: np.ndarray) -> float:
        delta = a - b
        delta -= self.box * np.round(delta / self.box)
        return float(np.linalg.norm(delta))

    # ------------------------------------------------------------------
    def _event_rates(self) -> np.ndarray:
        """(n_objects, 2) rates: [migration, emission] per object."""
        rates = np.zeros((len(self.objects), 2), dtype=np.float64)
        for i, obj in enumerate(self.objects):
            rates[i, 0] = self.params.migration_rate(obj.size)
            rates[i, 1] = self.params.emission_rate(obj.size)
        return rates

    def step(self) -> Optional[str]:
        """One BKL event; returns the executed event kind or None if frozen."""
        if not self.objects:
            return None
        rates = self._event_rates()
        total = float(rates.sum())
        if total <= 0.0:
            return None
        u = self.rng.random() * total
        flat = np.cumsum(rates.ravel())
        idx = int(np.searchsorted(flat, u, side="right"))
        idx = min(idx, rates.size - 1)
        obj_idx, kind = divmod(idx, 2)

        self.time += -np.log(1.0 - self.rng.random()) / total
        self.step_count += 1

        if kind == 0:
            self._migrate(obj_idx)
            return "migrate"
        self._emit(obj_idx)
        return "emit"

    def _random_direction(self) -> np.ndarray:
        v = self.rng.normal(size=3)
        return v / np.linalg.norm(v)

    def _migrate(self, idx: int) -> None:
        obj = self.objects[idx]
        obj.position = np.mod(
            obj.position + self.params.jump_length * self._random_direction(),
            self.box,
        )
        self._coalesce_around(idx)

    def _emit(self, idx: int) -> None:
        obj = self.objects[idx]
        if obj.size < 2:
            return
        obj.size -= 1
        # The emitted monovacancy appears just outside the capture radius,
        # otherwise it would be recaptured immediately.
        offset = (
            self.params.capture_radius(obj.size)
            + self.params.capture_radius(1)
            + 0.5 * self.params.jump_length
        )
        position = np.mod(
            obj.position + offset * self._random_direction(), self.box
        )
        self.objects.append(DefectObject(position=position, size=1))
        self.n_emissions += 1

    def _coalesce_around(self, idx: int) -> None:
        """Merge any objects captured by the (possibly moved) object."""
        merged = True
        while merged:
            merged = False
            obj = self.objects[idx]
            for j, other in enumerate(self.objects):
                if j == idx:
                    continue
                reach = self.params.capture_radius(obj.size) + (
                    self.params.capture_radius(other.size)
                )
                if self._separation(obj.position, other.position) <= reach:
                    # centre of mass, vacancy-weighted
                    delta = other.position - obj.position
                    delta -= self.box * np.round(delta / self.box)
                    total = obj.size + other.size
                    obj.position = np.mod(
                        obj.position + delta * other.size / total, self.box
                    )
                    obj.size = total
                    self.objects.pop(j)
                    if j < idx:
                        idx -= 1
                    self.n_coalescences += 1
                    merged = True
                    break

    # ------------------------------------------------------------------
    def run(self, n_steps: int, record_every: int = 0) -> int:
        """Run events; optionally record (time, sizes) snapshots."""
        executed = 0
        for i in range(n_steps):
            if self.step() is None:
                break
            executed += 1
            if record_every and (i + 1) % record_every == 0:
                self._history.append(
                    {
                        "time": self.time,
                        "n_objects": len(self.objects),
                        "max_size": int(self.cluster_sizes()[0]),
                    }
                )
        return executed

    @property
    def history(self) -> List[dict]:
        return self._history
