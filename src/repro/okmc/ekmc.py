"""Event kinetic Monte Carlo (EKMC) — the third family of the paper's taxonomy.

Where AKMC evolves lattice sites and OKMC random-walks defect objects, EKMC
abstracts one level further: the elementary entities are *events* (here:
encounters between diffusing vacancy clusters, and emissions), whose rates
come from reaction-rate theory rather than from trajectories.  Positions are
not tracked between events — the model assumes the diffusers stay well
mixed, which is the classic dilute-limit approximation.

Encounter rates use the Smoluchowski coefficient for two diffusers,

.. math::
    k_{ij} = \\frac{4 \\pi (R_i + R_j)(D_i + D_j)}{V},

with ``D(n)`` derived from the same migration law as the OKMC model (so the
three model classes are parameter-compatible and comparable on one
workload), and emission rates identical to OKMC's.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from .model import OKMCParameters

__all__ = ["EKMCModel"]


@dataclass
class EKMCModel:
    """Well-mixed event-KMC over vacancy-cluster sizes.

    State is just the multiset of cluster sizes; every pair has an encounter
    event and every cluster of size >= 2 an emission event.

    Parameters
    ----------
    sizes:
        Initial cluster sizes (e.g. ``[1] * 40`` for 40 monovacancies).
    volume:
        Box volume in Angstrom^3 (enters the encounter rates).
    params:
        The shared OKMC kinetic parameters.
    rng:
        Random generator.
    """

    sizes: List[int]
    volume: float
    params: OKMCParameters
    rng: np.random.Generator
    time: float = 0.0
    step_count: int = 0
    n_encounters: int = 0
    n_emissions: int = 0
    _d_cache: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def diffusivity(self, size: int) -> float:
        """D(n) in A^2/s from the shared migration law (random-walk form)."""
        cached = self._d_cache.get(size)
        if cached is not None:
            return cached
        gamma = self.params.migration_rate(size)
        d = gamma * self.params.jump_length**2 / 6.0
        self._d_cache[size] = d
        return d

    def encounter_rate(self, size_i: int, size_j: int) -> float:
        """Smoluchowski encounter rate (1/s) of two clusters in the box."""
        r = self.params.capture_radius(size_i) + self.params.capture_radius(size_j)
        d = self.diffusivity(size_i) + self.diffusivity(size_j)
        return float(4.0 * np.pi * r * d / self.volume)

    @property
    def total_vacancies(self) -> int:
        return int(sum(self.sizes))

    def cluster_sizes(self) -> np.ndarray:
        return np.array(sorted(self.sizes, reverse=True))

    # ------------------------------------------------------------------
    def _build_events(self):
        """All current events as (rate, kind, i, j) rows."""
        events = []
        n = len(self.sizes)
        for i in range(n):
            for j in range(i + 1, n):
                events.append(
                    (self.encounter_rate(self.sizes[i], self.sizes[j]),
                     "encounter", i, j)
                )
            rate = self.params.emission_rate(self.sizes[i])
            if rate > 0.0:
                events.append((rate, "emit", i, -1))
        return events

    def step(self) -> Optional[str]:
        """One event; returns its kind or None when nothing can happen."""
        if len(self.sizes) == 0:
            return None
        events = self._build_events()
        if not events:
            return None
        rates = np.array([e[0] for e in events])
        total = float(rates.sum())
        if total <= 0.0:
            return None
        self.time += -np.log(1.0 - self.rng.random()) / total
        self.step_count += 1
        u = self.rng.random() * total
        idx = min(int(np.searchsorted(np.cumsum(rates), u, side="right")),
                  len(events) - 1)
        _, kind, i, j = events[idx]
        if kind == "encounter":
            merged = self.sizes[i] + self.sizes[j]
            # remove the higher index first
            self.sizes.pop(j)
            self.sizes.pop(i)
            self.sizes.append(merged)
            self.n_encounters += 1
        else:
            self.sizes[i] -= 1
            if self.sizes[i] == 0:
                self.sizes.pop(i)
            self.sizes.append(1)
            self.n_emissions += 1
        return kind

    def run(self, n_steps: int) -> int:
        executed = 0
        for _ in range(n_steps):
            if self.step() is None:
                break
            executed += 1
        return executed
