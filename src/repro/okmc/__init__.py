"""Object & event kinetic Monte Carlo — the coarse-grained comparators."""

from .ekmc import EKMCModel
from .model import DefectObject, OKMCModel, OKMCParameters

__all__ = ["EKMCModel", "DefectObject", "OKMCModel", "OKMCParameters"]
