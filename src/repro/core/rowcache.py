"""Persistent row-energy memoization for the evaluator miss path.

``VacancySystemEvaluator._dedup_rows`` already proves that most rows in a
dilute alloy recur — it packs each ``(centre species, shell counts)`` row
into one int64 signature and collapses duplicates — but the dedup only
lives *within one batch* and then forgets.  The paper's VET hash cache
(Sec. 3.4) observes that the set of distinct local environments over a
trajectory is tiny and stable, so row energies should be computed once
per *environment*, not once per batch.  :class:`RowEnergyCache` makes the
dedup persistent in time (across batches and steps) and in space (one
cache shared across campaign replicas).

Soundness rests on exactly the same contract as in-batch dedup: the
potential must be ``batch_row_invariant`` — an identical row produces
bit-identical energy regardless of the batch it appears in.  Under that
contract a cache hit returns the same bits a fresh evaluation would, so
trajectories with the cache on are bit-identical to ``row_cache="off"``.

Cached values are stored as Python scalars keyed by the packed Python-int
signature.  The float32/float64 -> Python float widening is exact and the
narrowing back to the original dtype is the identity, so the round-trip
preserves every bit.  Eviction is LRU (an ``OrderedDict`` clock): every
hit touches its entry, inserts append, and the byte budget pops from the
cold end.  Contents are deliberately *not* checkpointed — a restart
rebuilds the cache from cold, bit-identically — but the monotonic
hit/miss/eviction counters are, so resumed runs report honest totals.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

#: Allowed ``row_cache`` modes, mirroring ``DEDUP_MODES``: ``auto`` turns
#: the cache on exactly where in-batch dedup turns on (network potentials
#: with the ``batch_row_invariant`` guarantee), ``on`` forces attachment
#: (a non-invariant potential still never *consults* it — same permissive
#: semantics as ``dedup="always"``), ``off`` disables it.
ROW_CACHE_MODES = ("auto", "on", "off")

#: Analytic per-entry byte charge: one packed int64 key plus one float64
#: value.  ``tensorkmc_memory_model(row_cache=...)`` charges the same
#: constant, and :meth:`RowEnergyCache.memory_bytes` reports it, so the
#: model is validated against live bytes exactly like delta snapshots.
ROW_ENTRY_BYTES = 16


def resolve_row_cache(mode: str, potential) -> bool:
    """Decide whether a row cache should be active for ``potential``.

    Mirrors the ``dedup="auto"`` gate in the evaluator: ``auto`` enables
    the cache only for ``batch_row_invariant`` potentials that expose
    ``network_channels`` (the NNP family, where re-evaluating a row costs
    a GEMM stack); table potentials keep it off by default because a
    table lookup is already about as cheap as a cache probe.
    """
    if mode not in ROW_CACHE_MODES:
        raise ValueError(
            f"unknown row_cache mode {mode!r}; allowed modes: {ROW_CACHE_MODES}"
        )
    if mode == "off":
        return False
    if mode == "on":
        return True
    if not getattr(potential, "batch_row_invariant", False):
        return False
    return getattr(potential, "network_channels", None) is not None


class RowEnergyCache:
    """Content-addressed LRU map from packed row signatures to energies.

    Parameters
    ----------
    max_bytes:
        Resident-size budget in bytes (``ROW_ENTRY_BYTES`` per entry);
        ``None`` means unbounded.  Inserting past the budget evicts from
        the least-recently-used end until the cache fits again.
    """

    def __init__(self, max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes < ROW_ENTRY_BYTES:
            raise ValueError(
                f"row cache budget {max_bytes} B cannot hold a single "
                f"{ROW_ENTRY_BYTES} B entry"
            )
        self.max_bytes = max_bytes
        self._entries: OrderedDict[int, float] = OrderedDict()
        self._value_dtype: np.dtype | None = None
        self._potential_token: tuple[int, int] | None = None
        # Monotonic counters: they survive clears and invalidations so
        # checkpoint-resumed runs keep reporting cumulative totals.
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- identity / invalidation --------------------------------------

    def sync(self, potential) -> None:
        """Bind the cache to ``potential``'s current parameters.

        The token pairs the potential's object identity with its
        ``params_epoch`` (bumped by ``set_standardisation`` / weight
        updates).  A mismatch means cached energies were produced by a
        different energy function, so the contents are dropped; the
        counters persist (they count work, not contents).
        """
        token = (id(potential), int(getattr(potential, "params_epoch", 0)))
        if token != self._potential_token:
            if self._potential_token is not None:
                self.clear()
            self._potential_token = token

    def clear(self) -> None:
        """Drop all cached rows (counters are monotonic and persist)."""
        self._entries.clear()
        self._value_dtype = None

    # -- lookup / insert ----------------------------------------------

    def lookup(self, keys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Probe the cache for each packed key.

        Returns ``(found, values)`` where ``found`` is a boolean mask and
        ``values`` holds the cached energies (in the cache's value dtype)
        at found positions, zeros elsewhere.  Every hit is touched to the
        hot end of the LRU clock.
        """
        entries = self._entries
        n = len(keys)
        dtype = self._value_dtype if self._value_dtype is not None else np.float64
        found = np.zeros(n, dtype=bool)
        values = np.zeros(n, dtype=dtype)
        hits = 0
        for i, key in enumerate(keys.tolist()):
            value = entries.get(key)
            if value is not None:
                entries.move_to_end(key)
                found[i] = True
                values[i] = value
                hits += 1
        self.hits += hits
        self.misses += n - hits
        return found, values

    def insert(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Insert freshly evaluated rows and enforce the byte budget."""
        if len(keys) == 0:
            return
        if self._value_dtype is None:
            self._value_dtype = values.dtype
        entries = self._entries
        for key, value in zip(keys.tolist(), values.tolist()):
            entries[key] = value
            entries.move_to_end(key)
        if self.max_bytes is not None:
            while len(entries) * ROW_ENTRY_BYTES > self.max_bytes:
                entries.popitem(last=False)
                self.evictions += 1

    # -- accounting ----------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def memory_bytes(self) -> int:
        """Resident bytes under the analytic per-entry charge."""
        return len(self._entries) * ROW_ENTRY_BYTES

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> dict:
        """Monotonic counters, in the kernel/CycleStats key namespace."""
        return {
            "row_cache_hits": int(self.hits),
            "row_cache_misses": int(self.misses),
            "row_cache_evictions": int(self.evictions),
        }

    def restore_counters(
        self, hits: int, misses: int, evictions: int
    ) -> None:
        """Resume cumulative counters from a checkpoint (contents stay cold)."""
        self.hits = int(hits)
        self.misses = int(misses)
        self.evictions = int(evictions)

    def absorb_delta(
        self, hits: int, misses: int, evictions: int
    ) -> None:
        """Merge counter deltas from a cache replica in another process.

        Under the process executor every worker owns a forked copy of the
        cache, so the driver-side object never sees their probes directly;
        each cycle the workers report how much their counters advanced and
        this method folds the deltas in, keeping ``sim.summary()`` one
        monotonic hit/miss/eviction total regardless of where the probes
        ran.  Deltas must be non-negative — the counters only ever grow.
        """
        if min(int(hits), int(misses), int(evictions)) < 0:
            raise ValueError(
                "row-cache counter deltas must be non-negative, got "
                f"({hits}, {misses}, {evictions})"
            )
        self.hits += int(hits)
        self.misses += int(misses)
        self.evictions += int(evictions)

    def summary(self) -> dict:
        out = dict(self.counters())
        out["row_cache_hit_rate"] = self.hit_rate
        out["row_cache_entries"] = len(self._entries)
        out["row_cache_bytes"] = self.memory_bytes()
        return out
