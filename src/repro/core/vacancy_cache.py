"""Vacancy-cache mechanism — paper Sec. 3.2.

TensorKMC caches *only* the vacancy systems (VET + site ids + rates) rather
than per-atom properties for the whole domain ("cache all", OpenKMC).  After
a hop or a ghost synchronisation, the Euclidean distances between the active
(changed) sites and the centres of cached systems decide which entries are
stale: anything within the TET invalidation radius is recomputed at the next
propensity refresh, everything else is reused.

The cache is *keyed*: a slot is identified by an opaque hashable key — a flat
lattice site index for the serial engines, a window half-coordinate tuple for
the parallel ranks — so one registry serves every driver.  Slots are stable
(a vacancy keeps its slot when it hops) and freed slots are recycled through
a free list, which is what lets the parallel driver add and remove vacancies
as they enter and leave its subdomain without reindexing the propensity
structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional

import numpy as np

from ..lattice.occupancy import LatticeState
from .vacancy_system import StateEnergies

__all__ = ["CachedVacancySystem", "VacancyCache"]


@dataclass
class CachedVacancySystem:
    """Everything cached for one vacancy between invalidations."""

    #: Flat lattice index of the vacancy (the system centre).
    site: int
    #: Flat lattice indices of all ``n_all`` system sites (VET translation).
    vet_ids: np.ndarray
    #: The VET itself (species codes) at build time.
    vet: np.ndarray
    #: Hop energetics of the 9 states.
    energies: StateEnergies
    #: ``(8,)`` per-direction rates in 1/s.
    rates: np.ndarray

    @property
    def total_rate(self) -> float:
        return float(self.rates.sum())


@dataclass
class CacheStats:
    """Hit/rebuild counters for the ablation study."""

    rebuilds: int = 0
    reuses: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.rebuilds + self.reuses
        return self.reuses / total if total else 0.0


def _canonical_key(key: Hashable) -> Hashable:
    """Normalise keys so equal coordinates always hash equally."""
    if isinstance(key, tuple):
        return tuple(int(v) for v in key)
    if isinstance(key, np.ndarray):
        return tuple(int(v) for v in key)
    return int(key)


class VacancyCache:
    """Key-indexed cache of vacancy systems with distance invalidation.

    Slots correspond to vacancies in a stable registry order (a vacancy keeps
    its slot when it hops), so the propensity structure can address them
    directly.  Keys are flat site indices (serial) or half-coordinate tuples
    (parallel); removed slots are recycled through a free list.
    """

    def __init__(self, keys: Iterable[Hashable]) -> None:
        self._keys: List[Optional[Hashable]] = [_canonical_key(k) for k in keys]
        self.entries: List[Optional[CachedVacancySystem]] = [None] * len(self._keys)
        self._slot_of: Dict[Hashable, int] = {
            k: i for i, k in enumerate(self._keys)
        }
        if len(self._slot_of) != len(self._keys):
            raise ValueError("duplicate vacancy keys")
        self._free: List[int] = []
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    @property
    def sites(self) -> List[Optional[Hashable]]:
        """The slot -> key registry (kept under its historical name)."""
        return self._keys

    @sites.setter
    def sites(self, keys: Iterable[Hashable]) -> None:
        self.set_keys(keys)

    def set_keys(
        self,
        keys: Iterable[Hashable],
        free_order: Optional[Iterable[int]] = None,
    ) -> None:
        """Reset the registry to a new slot order (all entries dropped).

        Used by checkpoint restore, where the stored slot order encodes event
        identity.  ``None`` keys mark parked (free) slots; ``free_order``
        restores the free-list *stack order* (``add_slot`` pops from the
        end), which a bit-exact resume needs whenever slots were freed and
        re-used before the checkpoint.  Engines must re-sync their spatial
        index afterwards (``EventKernel.set_keys`` does both).
        """
        self._keys = [
            None if k is None else _canonical_key(k) for k in keys
        ]
        self.entries = [None] * len(self._keys)
        self._slot_of = {
            k: i for i, k in enumerate(self._keys) if k is not None
        }
        free = [i for i, k in enumerate(self._keys) if k is None]
        if free_order is not None:
            order = [int(s) for s in free_order]
            if sorted(order) != sorted(free):
                raise ValueError(
                    f"free_order {order} is not a permutation of the free "
                    f"slots {sorted(free)}"
                )
            free = order
        self._free = free

    @property
    def n_slots(self) -> int:
        """Slot capacity, including parked (free) slots."""
        return len(self._keys)

    @property
    def free_slots(self) -> List[int]:
        """The free-list in stack order (``add_slot`` pops from the end).

        Serialised by checkpoints: after slot churn the recycling order is
        part of the trajectory-determining state.
        """
        return list(self._free)

    @property
    def n_live(self) -> int:
        """Number of slots currently holding a vacancy."""
        return len(self._keys) - len(self._free)

    def live_slots(self) -> List[int]:
        """Slots currently holding a vacancy, ascending."""
        return [i for i, k in enumerate(self._keys) if k is not None]

    def slot_site(self, slot: int) -> Hashable:
        """Current key (lattice site / half-coordinate) of a slot."""
        return self._keys[slot]

    #: Alias for the keyed reading of :meth:`slot_site`.
    key_of = slot_site

    def slot_of(self, key: Hashable) -> Optional[int]:
        """Slot holding ``key``, or ``None``."""
        return self._slot_of.get(_canonical_key(key))

    def add_slot(self, key: Hashable) -> int:
        """Register a new vacancy, recycling a freed slot when possible."""
        key = _canonical_key(key)
        if key in self._slot_of:
            raise ValueError(f"key {key!r} already registered")
        if self._free:
            slot = self._free.pop()
            self._keys[slot] = key
        else:
            slot = len(self._keys)
            self._keys.append(key)
            self.entries.append(None)
        self._slot_of[key] = slot
        return slot

    def remove_slot(self, slot: int) -> None:
        """Unregister a vacancy; the slot is parked for reuse."""
        key = self._keys[slot]
        if key is None:
            raise ValueError(f"slot {slot} is already free")
        del self._slot_of[key]
        self._keys[slot] = None
        self.entries[slot] = None
        self._free.append(slot)

    def move(self, slot: int, new_key: Hashable) -> None:
        """Record that a vacancy hopped to a new site (entry invalidated)."""
        new_key = _canonical_key(new_key)
        old_key = self._keys[slot]
        if old_key is not None:
            del self._slot_of[old_key]
        self._keys[slot] = new_key
        self._slot_of[new_key] = slot
        self.entries[slot] = None

    # ------------------------------------------------------------------
    # Entries
    # ------------------------------------------------------------------
    def get(self, slot: int) -> Optional[CachedVacancySystem]:
        return self.entries[slot]

    def store(self, slot: int, entry: CachedVacancySystem) -> None:
        self.entries[slot] = entry
        self.stats.rebuilds += 1

    def mark_reused(self, slot: int) -> None:
        self.stats.reuses += 1

    def stale_slots(self) -> List[int]:
        """Live slots whose cached system must be rebuilt."""
        return [
            i
            for i, e in enumerate(self.entries)
            if e is None and self._keys[i] is not None
        ]

    def invalidate_slot(self, slot: int) -> None:
        """Drop one live entry (counted in the invalidation stats)."""
        if self.entries[slot] is not None:
            self.entries[slot] = None
            self.stats.invalidations += 1

    def invalidate_all(self) -> None:
        """Drop every entry (cache-off mode / global resync)."""
        for i in range(len(self.entries)):
            if self.entries[i] is not None:
                self.stats.invalidations += 1
            self.entries[i] = None

    def invalidate_near(
        self,
        changed_sites: Iterable[int],
        lattice: LatticeState,
        radius: float,
    ) -> None:
        """Invalidate systems whose centre is within ``radius`` of a change.

        This is the paper's post-hop / post-synchronisation distance test
        (Sec. 3.2), as a linear scan over every cached entry.  The engines go
        through :class:`repro.core.kernel.EventKernel`, whose spatial hash
        index finds the same stale set in O(|changed|); this method remains
        for int-keyed caches used standalone.
        """
        changed = [int(s) for s in changed_sites]
        if not changed:
            return
        for slot, entry in enumerate(self.entries):
            if entry is None or self._keys[slot] is None:
                continue
            center = self._keys[slot]
            for site in changed:
                d = np.linalg.norm(
                    lattice.minimum_image_displacement(center, site)
                )
                if d <= radius + 1e-9:
                    self.entries[slot] = None
                    self.stats.invalidations += 1
                    break

    def memory_bytes(self) -> int:
        """Bytes held by live cache entries (the Table 1 'VAC Cache' row)."""
        total = 0
        for entry in self.entries:
            if entry is None:
                continue
            if isinstance(entry, CachedVacancySystem):
                total += entry.vet_ids.nbytes + entry.vet.nbytes + entry.rates.nbytes
                total += entry.energies.delta.nbytes + entry.energies.valid.nbytes
                total += entry.energies.migrating_species.nbytes + 8  # initial float
            else:  # generic kernel entry: only the rate row is held
                total += int(getattr(entry.rates, "nbytes", 0))
        return total

    def summary(self) -> Dict[str, float]:
        """Cache statistics snapshot."""
        return {
            "n_slots": self.n_slots,
            "live_entries": sum(e is not None for e in self.entries),
            "rebuilds": self.stats.rebuilds,
            "reuses": self.stats.reuses,
            "invalidations": self.stats.invalidations,
            "hit_rate": self.stats.hit_rate,
            "memory_bytes": self.memory_bytes(),
        }
