"""Vacancy-cache mechanism — paper Sec. 3.2.

TensorKMC caches *only* the vacancy systems (VET + site ids + rates) rather
than per-atom properties for the whole domain ("cache all", OpenKMC).  After
a hop or a ghost synchronisation, the Euclidean distances between the active
(changed) sites and the centres of cached systems decide which entries are
stale: anything within the TET invalidation radius is recomputed at the next
propensity refresh, everything else is reused.

The cache is *keyed*: a slot is identified by an opaque hashable key — a flat
lattice site index for the serial engines, a window half-coordinate tuple for
the parallel ranks — so one registry serves every driver.  Slots are stable
(a vacancy keeps its slot when it hops) and freed slots are recycled through
a free list, which is what lets the parallel driver add and remove vacancies
as they enter and leave its subdomain without reindexing the propensity
structure.

Storage is structure-of-arrays: one ``(capacity, n_all)`` VET matrix, one
``(capacity, 8)`` rate matrix, one ``(capacity, 3)`` centre matrix and
``live``/``fresh`` masks, so invalidation, refresh and propensity updates
run as NumPy array operations over slot batches instead of per-entry Python
objects.  :class:`CachedVacancySystem` is a *view* assembled on demand by
:meth:`VacancyCache.get`; it no longer owns the storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional

import numpy as np

from ..lattice.occupancy import LatticeState
from .vacancy_system import StateEnergies, StateEnergiesBatch

__all__ = [
    "BatchEntries",
    "CachedVacancySystem",
    "SimpleRateEntry",
    "VacancyCache",
]


@dataclass
class CachedVacancySystem:
    """Everything cached for one vacancy between invalidations.

    Instances returned by :meth:`VacancyCache.get` are views into the
    cache's slot arrays (no copies); instances handed *to*
    :meth:`VacancyCache.store` are scattered into those arrays.
    """

    #: Flat lattice index of the vacancy (the system centre).
    site: int
    #: Flat lattice indices of all ``n_all`` system sites (VET translation).
    vet_ids: np.ndarray
    #: The VET itself (species codes) at build time.
    vet: np.ndarray
    #: Hop energetics of the 9 states.
    energies: StateEnergies
    #: ``(8,)`` per-direction rates in 1/s.
    rates: np.ndarray

    @property
    def total_rate(self) -> float:
        return float(self.rates.sum())


@dataclass
class SimpleRateEntry:
    """Minimal cache entry: just a per-direction rate row.

    Used by drivers (the parallel ranks) that do not need the full
    :class:`CachedVacancySystem` payload.
    """

    rates: np.ndarray

    @property
    def total_rate(self) -> float:
        return float(self.rates.sum())


@dataclass
class BatchEntries:
    """A batch of freshly built vacancy systems, still in array form.

    Produced by the engines' batched miss path (one fused
    ``evaluate_batch`` + ``rates_batch`` pipeline) and consumed whole by
    :meth:`VacancyCache.store_batch` — the rows go straight from the
    evaluator's output arrays into the cache's slot arrays without ever
    materialising per-slot Python objects.  Iterating yields per-row
    :class:`CachedVacancySystem` views for consumers that want the scalar
    shape (the legacy refresh path does).
    """

    #: ``(B,)`` centre site ids (keys of the slots being rebuilt).
    sites: np.ndarray
    #: ``(B, n_all)`` flat site ids of every system.
    vet_ids: np.ndarray
    #: ``(B, n_all)`` VET species codes.
    vets: np.ndarray
    #: Batched hop energetics.
    energies: StateEnergiesBatch
    #: ``(B, 8)`` per-direction rates in 1/s.
    rates: np.ndarray
    #: Optional ``(B, 9, n_region)`` per-row trial-state energies.  When
    #: present, :meth:`VacancyCache.store_batch` keeps them resident and
    #: marks the slots delta-ready, enabling the incremental rebuild path
    #: (only rows whose inputs changed are re-evaluated on the next miss).
    row_energies: Optional[np.ndarray] = None
    #: True when ``vet_ids``/``vets`` are fancy reads of the cache's own
    #: slot arrays (the delta build adopts fresh gathers up front via
    #: :meth:`VacancyCache.adopt_vets`); :meth:`VacancyCache.store_batch`
    #: then skips the redundant write-back.
    vets_current: bool = False

    def __len__(self) -> int:
        return int(self.rates.shape[0])

    def entry(self, b: int) -> CachedVacancySystem:
        """Scalar view of row ``b`` (arrays are views into the batch)."""
        return CachedVacancySystem(
            site=int(self.sites[b]),
            vet_ids=self.vet_ids[b],
            vet=self.vets[b],
            energies=self.energies.row(b),
            rates=self.rates[b],
        )

    def __iter__(self):
        return (self.entry(b) for b in range(len(self)))


@dataclass
class CacheStats:
    """Hit/rebuild counters for the ablation study."""

    rebuilds: int = 0
    reuses: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.rebuilds + self.reuses
        return self.reuses / total if total else 0.0


def _canonical_key(key: Hashable) -> Hashable:
    """Normalise keys so equal coordinates always hash equally."""
    if isinstance(key, tuple):
        return tuple(int(v) for v in key)
    if isinstance(key, np.ndarray):
        return tuple(int(v) for v in key)
    return int(key)


class VacancyCache:
    """Key-indexed cache of vacancy systems with distance invalidation.

    Slots correspond to vacancies in a stable registry order (a vacancy keeps
    its slot when it hops), so the propensity structure can address them
    directly.  Keys are flat site indices (serial) or half-coordinate tuples
    (parallel); removed slots are recycled through a free list.

    Slot state lives in structure-of-arrays form, sized to a physical
    ``capacity >= n_slots`` (amortised doubling):

    * ``live[slot]`` — slot holds a vacancy (key is not ``None``);
    * ``fresh[slot]`` — slot holds a valid cached entry (live and not stale);
    * ``centres[slot]`` — canonical half-unit position, maintained by the
      event kernel for its vectorised distance invalidation;
    * ``rates[slot]`` / ``total_rates[slot]`` — the per-direction rate row
      and its sum;
    * VET ids / VET codes / state energies — allocated lazily on the first
      full :class:`CachedVacancySystem` store (rate-only drivers never pay
      for them).

    Entries beyond ``n_slots`` and parked slots always read ``live=False``,
    so vectorised sweeps can safely run over the whole physical arrays.
    """

    def __init__(self, keys: Iterable[Hashable]) -> None:
        self.stats = CacheStats()
        self.set_keys(keys)
        if len(self._slot_of) != len(self._keys):
            raise ValueError("duplicate vacancy keys")

    # ------------------------------------------------------------------
    # Storage allocation
    # ------------------------------------------------------------------
    def _alloc(self, capacity: int) -> None:
        """(Re)allocate the slot arrays for ``capacity`` physical slots."""
        self._cap = int(capacity)
        self.live = np.zeros(self._cap, dtype=bool)
        self.fresh = np.zeros(self._cap, dtype=bool)
        self.centres = np.zeros((self._cap, 3), dtype=np.int32)
        self.rates = np.zeros((self._cap, 8), dtype=np.float64)
        self.total_rates = np.zeros(self._cap, dtype=np.float64)
        self._is_full = np.zeros(self._cap, dtype=bool)
        #: Slot holds a consistent VET + per-row energy snapshot that the
        #: delta rebuild path may patch and re-rate instead of rebuilding.
        #: Stale-but-delta-ready is a valid state: the snapshot tracks the
        #: lattice through scatter patches while ``fresh`` is down.
        self.delta_ready = np.zeros(self._cap, dtype=bool)
        # Full-payload arrays (lazily allocated on the first full store).
        self._vet_ids: Optional[np.ndarray] = None
        self._vets: Optional[np.ndarray] = None
        self._e_initial: Optional[np.ndarray] = None
        self._e_delta: Optional[np.ndarray] = None
        self._e_valid: Optional[np.ndarray] = None
        self._e_mig: Optional[np.ndarray] = None
        # Delta-path arrays (lazily allocated on the first store that
        # carries ``row_energies``).
        self._row_e: Optional[np.ndarray] = None
        self._dirty_rows: Optional[np.ndarray] = None

    def _grow(self, min_capacity: int) -> None:
        """Double the physical capacity, preserving every slot's state.

        Delta snapshots are deliberately *not* carried across a grow: the
        reallocation is rare (amortised doubling) and dropping
        ``delta_ready`` forces a clean full rebuild of every slot's
        snapshot, which is the documented "capacity grow" full-fallback.
        """
        new_cap = max(1, self._cap)
        while new_cap < min_capacity:
            new_cap *= 2
        old = self.__dict__
        arrays = [
            "live", "fresh", "centres", "rates", "total_rates", "_is_full",
            "_vet_ids", "_vets", "_e_initial", "_e_delta", "_e_valid",
            "_e_mig",
        ]
        saved = {name: old[name] for name in arrays}
        self._alloc(new_cap)
        for name, arr in saved.items():
            if arr is None:
                continue
            if self.__dict__[name] is None:  # lazy array existed: re-create
                shape = (new_cap,) + arr.shape[1:]
                self.__dict__[name] = np.zeros(shape, dtype=arr.dtype)
            self.__dict__[name][: arr.shape[0]] = arr

    def _ensure_rates(self, width: int) -> None:
        if width != self.rates.shape[1]:
            rows = self.rates
            self.rates = np.zeros((self._cap, int(width)), dtype=np.float64)
            keep = min(width, rows.shape[1])
            self.rates[: rows.shape[0], :keep] = rows[:, :keep]

    def _ensure_full(
        self, vet_ids: np.ndarray, vets: np.ndarray, mig: np.ndarray
    ) -> None:
        """Allocate the full-payload arrays from the first entry's shapes."""
        if self._vets is not None:
            return
        n_all = int(vets.shape[-1])
        n_dir = int(mig.shape[-1])
        self._vet_ids = np.zeros((self._cap, n_all), dtype=vet_ids.dtype)
        self._vets = np.zeros((self._cap, n_all), dtype=vets.dtype)
        self._e_initial = np.zeros(self._cap, dtype=np.float64)
        self._e_delta = np.zeros((self._cap, n_dir), dtype=np.float64)
        self._e_valid = np.zeros((self._cap, n_dir), dtype=bool)
        self._e_mig = np.zeros((self._cap, n_dir), dtype=mig.dtype)

    def _ensure_delta(self, row_energies: np.ndarray) -> None:
        """Allocate the delta-path arrays from the first snapshot's shape."""
        if self._row_e is not None:
            return
        n_states = int(row_energies.shape[1])
        n_region = int(row_energies.shape[2])
        self._row_e = np.zeros(
            (self._cap, n_states, n_region), dtype=row_energies.dtype
        )
        self._dirty_rows = np.zeros((self._cap, n_region), dtype=bool)

    # ------------------------------------------------------------------
    # Registry
    # ------------------------------------------------------------------
    @property
    def sites(self) -> List[Optional[Hashable]]:
        """The slot -> key registry (kept under its historical name)."""
        return self._keys

    @sites.setter
    def sites(self, keys: Iterable[Hashable]) -> None:
        self.set_keys(keys)

    def set_keys(
        self,
        keys: Iterable[Hashable],
        free_order: Optional[Iterable[int]] = None,
    ) -> None:
        """Reset the registry to a new slot order (all entries dropped).

        Used by checkpoint restore, where the stored slot order encodes event
        identity.  ``None`` keys mark parked (free) slots; ``free_order``
        restores the free-list *stack order* (``add_slot`` pops from the
        end), which a bit-exact resume needs whenever slots were freed and
        re-used before the checkpoint.  Engines must re-sync their centre
        coordinates afterwards (``EventKernel.set_keys`` does both).
        """
        self._keys = [
            None if k is None else _canonical_key(k) for k in keys
        ]
        self._slot_of = {
            k: i for i, k in enumerate(self._keys) if k is not None
        }
        free = [i for i, k in enumerate(self._keys) if k is None]
        if free_order is not None:
            order = [int(s) for s in free_order]
            if sorted(order) != sorted(free):
                raise ValueError(
                    f"free_order {order} is not a permutation of the free "
                    f"slots {sorted(free)}"
                )
            free = order
        self._free = free
        self._alloc(max(1, len(self._keys)))
        for i, k in enumerate(self._keys):
            if k is not None:
                self.live[i] = True

    @property
    def n_slots(self) -> int:
        """Slot count, including parked (free) slots."""
        return len(self._keys)

    @property
    def free_slots(self) -> List[int]:
        """The free-list in stack order (``add_slot`` pops from the end).

        Serialised by checkpoints: after slot churn the recycling order is
        part of the trajectory-determining state.
        """
        return list(self._free)

    @property
    def n_live(self) -> int:
        """Number of slots currently holding a vacancy."""
        return len(self._keys) - len(self._free)

    def live_slots(self) -> List[int]:
        """Slots currently holding a vacancy, ascending."""
        return [int(s) for s in np.flatnonzero(self.live[: self.n_slots])]

    def slot_site(self, slot: int) -> Hashable:
        """Current key (lattice site / half-coordinate) of a slot."""
        return self._keys[slot]

    #: Alias for the keyed reading of :meth:`slot_site`.
    key_of = slot_site

    def keys_of(self, slots: np.ndarray) -> List[Hashable]:
        """Keys of a batch of slots in one registry sweep.

        The batched counterpart of :meth:`key_of` — refresh paths gathering
        the keys of every stale slot use this instead of a per-slot Python
        loop over ``key_of``.
        """
        keys = self._keys
        return [keys[s] for s in np.asarray(slots, dtype=np.int64).tolist()]

    def slot_of(self, key: Hashable) -> Optional[int]:
        """Slot holding ``key``, or ``None``."""
        return self._slot_of.get(_canonical_key(key))

    def add_slot(self, key: Hashable) -> int:
        """Register a new vacancy, recycling a freed slot when possible."""
        key = _canonical_key(key)
        if key in self._slot_of:
            raise ValueError(f"key {key!r} already registered")
        if self._free:
            slot = self._free.pop()
            self._keys[slot] = key
        else:
            slot = len(self._keys)
            self._keys.append(key)
            if slot >= self._cap:
                self._grow(slot + 1)
        self._slot_of[key] = slot
        self.live[slot] = True
        self.fresh[slot] = False
        self.delta_ready[slot] = False
        return slot

    def remove_slot(self, slot: int) -> None:
        """Unregister a vacancy; the slot is parked for reuse."""
        key = self._keys[slot]
        if key is None:
            raise ValueError(f"slot {slot} is already free")
        del self._slot_of[key]
        self._keys[slot] = None
        self.live[slot] = False
        self.fresh[slot] = False
        self.delta_ready[slot] = False
        self._free.append(slot)

    def move(self, slot: int, new_key: Hashable) -> None:
        """Record that a vacancy hopped to a new site (entry invalidated)."""
        new_key = _canonical_key(new_key)
        old_key = self._keys[slot]
        if old_key is not None:
            del self._slot_of[old_key]
        self._keys[slot] = new_key
        self._slot_of[new_key] = slot
        self.live[slot] = True
        self.fresh[slot] = False
        # The hopped vacancy's window shifted: its VET snapshot no longer
        # describes the sites around the new centre, so force a full build.
        self.delta_ready[slot] = False

    # ------------------------------------------------------------------
    # Entries
    # ------------------------------------------------------------------
    @property
    def entries(self) -> List[Optional[object]]:
        """Per-slot entry views, ``None`` where parked or stale.

        Compatibility shim over the slot arrays: materialises a fresh view
        object per fresh slot, so it is for inspection, not the hot path.
        """
        return [self.get(slot) for slot in range(self.n_slots)]

    def get(self, slot: int) -> Optional[object]:
        """View of a slot's cached entry, or ``None`` if parked/stale.

        Full entries come back as :class:`CachedVacancySystem`, rate-only
        ones as :class:`SimpleRateEntry`; either way the arrays are views
        into the cache's slot arrays, valid until the slot is restored.
        """
        if not (self.live[slot] and self.fresh[slot]):
            return None
        if not self._is_full[slot]:
            return SimpleRateEntry(rates=self.rates[slot])
        return CachedVacancySystem(
            site=self._keys[slot],
            vet_ids=self._vet_ids[slot],
            vet=self._vets[slot],
            energies=StateEnergies(
                initial=float(self._e_initial[slot]),
                delta=self._e_delta[slot],
                valid=self._e_valid[slot],
                migrating_species=self._e_mig[slot],
            ),
            rates=self.rates[slot],
        )

    def store(self, slot: int, entry: object) -> None:
        """Scatter one freshly built entry into the slot arrays."""
        rates = np.asarray(entry.rates, dtype=np.float64)
        self._ensure_rates(rates.shape[0])
        self.rates[slot] = rates
        self.total_rates[slot] = rates.sum()
        if isinstance(entry, CachedVacancySystem):
            energies = entry.energies
            self._ensure_full(
                np.asarray(entry.vet_ids),
                np.asarray(entry.vet),
                np.asarray(energies.migrating_species),
            )
            self._vet_ids[slot] = entry.vet_ids
            self._vets[slot] = entry.vet
            self._e_initial[slot] = energies.initial
            self._e_delta[slot] = energies.delta
            self._e_valid[slot] = energies.valid
            self._e_mig[slot] = energies.migrating_species
            self._is_full[slot] = True
        else:
            self._is_full[slot] = False
        # The scalar store carries no per-row energies; any prior snapshot
        # for the slot no longer matches the freshly stored entry.
        self.delta_ready[slot] = False
        self.fresh[slot] = True
        self.stats.rebuilds += 1

    def store_batch(self, slots: np.ndarray, batch: BatchEntries) -> None:
        """Scatter a whole :class:`BatchEntries` into the slot arrays.

        One fancy-indexed write per array — the SoA fast path of the batched
        miss pipeline.  Row sums for ``total_rates`` use the same per-row
        reduction order as the scalar path, so the propensities are
        bit-identical to storing the rows one by one.
        """
        slots = np.asarray(slots, dtype=np.int64)
        if slots.size != len(batch):
            raise ValueError(
                f"store_batch got {slots.size} slots for {len(batch)} entries"
            )
        if slots.size == 0:
            return
        rates = np.asarray(batch.rates, dtype=np.float64)
        self._ensure_rates(rates.shape[1])
        self.rates[slots] = rates
        self.total_rates[slots] = rates.sum(axis=1)
        self._ensure_full(
            np.asarray(batch.vet_ids),
            np.asarray(batch.vets),
            np.asarray(batch.energies.migrating_species),
        )
        if not batch.vets_current:
            self._vet_ids[slots] = batch.vet_ids
            self._vets[slots] = batch.vets
        self._e_initial[slots] = batch.energies.initial
        self._e_delta[slots] = batch.energies.delta
        self._e_valid[slots] = batch.energies.valid
        self._e_mig[slots] = batch.energies.migrating_species
        self._is_full[slots] = True
        if batch.row_energies is not None:
            self._ensure_delta(np.asarray(batch.row_energies))
            self._row_e[slots] = batch.row_energies
            self._dirty_rows[slots] = False
            self.delta_ready[slots] = True
        else:
            self.delta_ready[slots] = False
        self.fresh[slots] = True
        self.stats.rebuilds += int(slots.size)

    def store_rates(self, slots: np.ndarray, rows: np.ndarray) -> None:
        """Scatter a batch of bare rate rows (rate-only drivers)."""
        slots = np.asarray(slots, dtype=np.int64)
        rows = np.asarray(rows, dtype=np.float64)
        if slots.size != rows.shape[0]:
            raise ValueError(
                f"store_rates got {slots.size} slots for {rows.shape[0]} rows"
            )
        if slots.size == 0:
            return
        self._ensure_rates(rows.shape[1])
        self.rates[slots] = rows
        self.total_rates[slots] = rows.sum(axis=1)
        self._is_full[slots] = False
        self.delta_ready[slots] = False
        self.fresh[slots] = True
        self.stats.rebuilds += int(slots.size)

    def mark_reused(self, slot: int) -> None:
        self.stats.reuses += 1

    def stale_slots(self) -> List[int]:
        """Live slots whose cached system must be rebuilt."""
        n = self.n_slots
        return [
            int(s) for s in np.flatnonzero(self.live[:n] & ~self.fresh[:n])
        ]

    def stale_mask(self) -> np.ndarray:
        """Boolean ``live & ~fresh`` over the physical slots (no copy)."""
        return self.live & ~self.fresh

    def invalidate_slot(self, slot: int) -> None:
        """Drop one live entry (counted in the invalidation stats).

        Direct invalidation carries no changed-site payload, so the delta
        snapshot cannot be kept in sync — it is dropped along with the
        entry (the kernel's distance invalidation, which *does* know what
        changed, clears ``fresh`` directly and keeps ``delta_ready`` up).
        """
        self.delta_ready[slot] = False
        if self.live[slot] and self.fresh[slot]:
            self.fresh[slot] = False
            self.stats.invalidations += 1

    def invalidate_slots(self, slots: np.ndarray) -> int:
        """Drop a batch of entries; returns how many were actually live.

        Like :meth:`invalidate_slot`, payload-free invalidation also drops
        the slots' delta snapshots.
        """
        slots = np.asarray(slots, dtype=np.int64)
        if slots.size == 0:
            return 0
        self.delta_ready[slots] = False
        hit = slots[self.live[slots] & self.fresh[slots]]
        self.fresh[hit] = False
        self.stats.invalidations += int(hit.size)
        return int(hit.size)

    def invalidate_all(self) -> None:
        """Drop every entry (cache-off mode / global resync).

        The global hammer guards against out-of-band occupancy mutation,
        so every delta snapshot is dropped too — the next refresh is a
        full rebuild for every slot.
        """
        n_fresh = int(np.count_nonzero(self.live & self.fresh))
        self.fresh[:] = False
        self.delta_ready[:] = False
        self.stats.invalidations += n_fresh

    def invalidate_near(
        self,
        changed_sites: Iterable[int],
        lattice: LatticeState,
        radius: float,
    ) -> None:
        """Invalidate systems whose centre is within ``radius`` of a change.

        This is the paper's post-hop / post-synchronisation distance test
        (Sec. 3.2), as a linear scan over every cached entry.  The engines go
        through :class:`repro.core.kernel.EventKernel`, whose vectorised
        distance query finds the same stale set in one broadcast; this
        method remains for int-keyed caches used standalone.
        """
        changed = [int(s) for s in changed_sites]
        if not changed:
            return
        for slot in range(self.n_slots):
            if not (self.live[slot] and self.fresh[slot]):
                continue
            center = self._keys[slot]
            for site in changed:
                d = np.linalg.norm(
                    lattice.minimum_image_displacement(center, site)
                )
                if d <= radius + 1e-9:
                    self.fresh[slot] = False
                    self.stats.invalidations += 1
                    break

    # ------------------------------------------------------------------
    # Delta snapshots (incremental rebuild path)
    # ------------------------------------------------------------------
    def drop_delta_snapshots(self) -> None:
        """Forget every delta snapshot without touching freshness.

        Mode switches (hot path / rebuild path) call this so the first
        refresh after the switch rebuilds from scratch.
        """
        self.delta_ready[:] = False

    def patch_vets(
        self, slots: np.ndarray, positions: np.ndarray, codes: np.ndarray
    ) -> np.ndarray:
        """Scatter species codes into stored VETs; returns the old codes.

        ``(slots, positions)`` pairs must be unique within one call —
        duplicate pairs would make "old code" ill-defined.  Callers dedup
        before patching (ghost exchanges can report the same site twice).
        """
        slots = np.asarray(slots, dtype=np.int64)
        old = self._vets[slots, positions].copy()
        self._vets[slots, positions] = codes
        return old

    def or_dirty_rows(self, slots: np.ndarray, masks: np.ndarray) -> None:
        """Accumulate ``(k, n_region)`` dirty-row masks into the slots.

        Duplicate slots accumulate (``logical_or.at``): one patch call may
        dirty several positions of the same slot.
        """
        np.logical_or.at(
            self._dirty_rows, np.asarray(slots, dtype=np.int64), masks
        )

    def adopt_vets(
        self, slots: np.ndarray, vet_ids: np.ndarray, vets: np.ndarray
    ) -> None:
        """Write freshly gathered VET ids/codes straight into the slot arrays.

        The delta build calls this for its from-scratch subset *before*
        evaluating, so the whole batch can then be read back as one fancy
        gather and :meth:`store_batch` (``vets_current=True``) skips the
        write-back.  The slot arrays must already exist — the delta build
        only takes this path once at least one snapshot has been stored.
        """
        self._vet_ids[slots] = vet_ids
        self._vets[slots] = vets

    def vet_ids_of(self, slots: np.ndarray) -> np.ndarray:
        """Stored VET site ids for a batch of slots (fancy-read copy)."""
        return self._vet_ids[np.asarray(slots, dtype=np.int64)]

    def vets_of(self, slots: np.ndarray) -> np.ndarray:
        """Stored VET species codes for a batch of slots (fancy-read copy)."""
        return self._vets[slots]

    def row_e_of(self, slots: np.ndarray) -> np.ndarray:
        """Stored per-row trial-state energies (fancy-read copy)."""
        return self._row_e[slots]

    def dirty_rows_of(self, slots: np.ndarray) -> np.ndarray:
        """Pending dirty-row masks for a batch of slots (fancy-read copy)."""
        return self._dirty_rows[slots]

    def memory_bytes(self) -> int:
        """Bytes held by live cache entries (the Table 1 'VAC Cache' row).

        Counts the payload of fresh entries only (stale/parked slots hold no
        usable data), with the same per-entry accounting as the historical
        object store: VET ids + VET codes + rate row + energy rows + the
        initial-energy float for full entries, the rate row alone for
        rate-only entries.
        """
        held = self.live & self.fresh
        n_full = int(np.count_nonzero(held & self._is_full))
        n_rate = int(np.count_nonzero(held & ~self._is_full))
        rate_row = self.rates.shape[1] * self.rates.itemsize
        total = n_rate * rate_row
        if n_full:
            per_full = (
                self._vet_ids.shape[1] * self._vet_ids.itemsize
                + self._vets.shape[1] * self._vets.itemsize
                + rate_row
                + self._e_delta.shape[1] * self._e_delta.itemsize
                + self._e_valid.shape[1] * self._e_valid.itemsize
                + self._e_mig.shape[1] * self._e_mig.itemsize
                + 8  # initial float
            )
            total += n_full * per_full
        if self._row_e is not None:
            n_delta = int(np.count_nonzero(self.live & self.delta_ready))
            per_delta = (
                self._row_e.shape[1] * self._row_e.shape[2]
                * self._row_e.itemsize
                + self._dirty_rows.shape[1] * self._dirty_rows.itemsize
            )
            total += n_delta * per_delta
        return total

    def summary(self) -> Dict[str, float]:
        """Cache statistics snapshot."""
        return {
            "n_slots": self.n_slots,
            "live_entries": int(np.count_nonzero(self.live & self.fresh)),
            "rebuilds": self.stats.rebuilds,
            "reuses": self.stats.reuses,
            "invalidations": self.stats.invalidations,
            "hit_rate": self.stats.hit_rate,
            "memory_bytes": self.memory_bytes(),
        }
