"""Vacancy-cache mechanism — paper Sec. 3.2.

TensorKMC caches *only* the vacancy systems (VET + site ids + rates) rather
than per-atom properties for the whole domain ("cache all", OpenKMC).  After
a hop or a ghost synchronisation, the Euclidean distances between the active
(changed) sites and the centres of cached systems decide which entries are
stale: anything within the TET invalidation radius is recomputed at the next
propensity refresh, everything else is reused.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..lattice.occupancy import LatticeState
from .vacancy_system import StateEnergies

__all__ = ["CachedVacancySystem", "VacancyCache"]


@dataclass
class CachedVacancySystem:
    """Everything cached for one vacancy between invalidations."""

    #: Flat lattice index of the vacancy (the system centre).
    site: int
    #: Flat lattice indices of all ``n_all`` system sites (VET translation).
    vet_ids: np.ndarray
    #: The VET itself (species codes) at build time.
    vet: np.ndarray
    #: Hop energetics of the 9 states.
    energies: StateEnergies
    #: ``(8,)`` per-direction rates in 1/s.
    rates: np.ndarray

    @property
    def total_rate(self) -> float:
        return float(self.rates.sum())


@dataclass
class CacheStats:
    """Hit/rebuild counters for the ablation study."""

    rebuilds: int = 0
    reuses: int = 0
    invalidations: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.rebuilds + self.reuses
        return self.reuses / total if total else 0.0


class VacancyCache:
    """Slot-indexed cache of vacancy systems with distance invalidation.

    Slots correspond to vacancies in a stable registry order (a vacancy keeps
    its slot when it hops), so the propensity structure can address them
    directly.
    """

    def __init__(self, vacancy_sites: Iterable[int]) -> None:
        self.sites: List[int] = [int(s) for s in vacancy_sites]
        self.entries: List[Optional[CachedVacancySystem]] = [None] * len(self.sites)
        self.stats = CacheStats()

    @property
    def n_slots(self) -> int:
        return len(self.sites)

    def slot_site(self, slot: int) -> int:
        """Current lattice site of the vacancy in a slot."""
        return self.sites[slot]

    def move(self, slot: int, new_site: int) -> None:
        """Record that a vacancy hopped to a new site (entry invalidated)."""
        self.sites[slot] = int(new_site)
        self.entries[slot] = None

    def get(self, slot: int) -> Optional[CachedVacancySystem]:
        return self.entries[slot]

    def store(self, slot: int, entry: CachedVacancySystem) -> None:
        self.entries[slot] = entry
        self.stats.rebuilds += 1

    def mark_reused(self, slot: int) -> None:
        self.stats.reuses += 1

    def stale_slots(self) -> List[int]:
        """Slots whose cached system must be rebuilt."""
        return [i for i, e in enumerate(self.entries) if e is None]

    def invalidate_all(self) -> None:
        """Drop every entry (cache-off mode / global resync)."""
        for i in range(len(self.entries)):
            if self.entries[i] is not None:
                self.stats.invalidations += 1
            self.entries[i] = None

    def invalidate_near(
        self,
        changed_sites: Iterable[int],
        lattice: LatticeState,
        radius: float,
    ) -> None:
        """Invalidate systems whose centre is within ``radius`` of a change.

        This is the paper's post-hop / post-synchronisation distance test
        (Sec. 3.2).  Distances use the periodic minimum image.
        """
        changed = [int(s) for s in changed_sites]
        if not changed:
            return
        for slot, entry in enumerate(self.entries):
            if entry is None:
                continue
            center = self.sites[slot]
            for site in changed:
                d = np.linalg.norm(
                    lattice.minimum_image_displacement(center, site)
                )
                if d <= radius + 1e-9:
                    self.entries[slot] = None
                    self.stats.invalidations += 1
                    break

    def memory_bytes(self) -> int:
        """Bytes held by live cache entries (the Table 1 'VAC Cache' row)."""
        total = 0
        for entry in self.entries:
            if entry is None:
                continue
            total += entry.vet_ids.nbytes + entry.vet.nbytes + entry.rates.nbytes
            total += entry.energies.delta.nbytes + entry.energies.valid.nbytes
            total += entry.energies.migrating_species.nbytes + 8  # initial float
        return total

    def summary(self) -> Dict[str, float]:
        """Cache statistics snapshot."""
        return {
            "n_slots": self.n_slots,
            "live_entries": sum(e is not None for e in self.entries),
            "rebuilds": self.stats.rebuilds,
            "reuses": self.stats.reuses,
            "invalidations": self.stats.invalidations,
            "hit_rate": self.stats.hit_rate,
            "memory_bytes": self.memory_bytes(),
        }
