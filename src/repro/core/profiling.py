"""Lightweight phase profiler for the event hot path.

Every engine wants the same question answered: of the microseconds one KMC
event costs, how many go to propensity rebuilds, to selection, to executing
the hop, to distance invalidation, and (for the parallel driver) to the
ghost exchange?  :class:`PhaseProfiler` attributes wall time to named phases
through reusable context-manager timers:

.. code-block:: python

    prof = PhaseProfiler()
    with prof.phase("select"):
        slot, direction, entry = kernel.select(u)

The timers are cached per phase name, so entering a phase on the hot path
costs two ``perf_counter`` calls and two dict updates (~0.3 us) — cheap
enough to leave enabled in production runs, which is how the engines use it
(:meth:`repro.core.engine.SerialAKMCBase.summary`,
:class:`repro.parallel.engine.CycleStats`, and the ``phase_us_per_event``
breakdown in ``BENCH_kernel.json`` all read from one of these).

The canonical phase names used across the engines are in :data:`PHASES`;
the profiler itself accepts any name.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, Mapping

__all__ = ["PHASES", "PhaseProfiler", "merge_disjoint"]

#: Phase names the engines use, in reporting order: propensity/cache
#: rebuild, two-level selection, hop execution, distance invalidation, and
#: (parallel only) the ghost-exchange/rescan block.
PHASES = ("rebuild", "select", "hop", "invalidate", "exchange")


def merge_disjoint(*mappings: Mapping) -> Dict:
    """Merge mappings into one dict, refusing any key collision.

    Engine summaries fold kernel counters, step/clock state, and the
    profiler's ``{phase}_seconds`` timings into a single flat namespace; a
    plain ``dict.update`` chain would let a later source silently overwrite
    an earlier counter if the namespaces ever drift into each other.  This
    helper makes that drift loud: a duplicate key raises :class:`ValueError`
    naming the colliding key instead of shipping a corrupted summary.
    """
    out: Dict = {}
    for mapping in mappings:
        for key, value in mapping.items():
            if key in out:
                raise ValueError(
                    f"summary key collision on {key!r}: refusing to merge "
                    "overlapping summary namespaces (namespace the source "
                    "or rename the counter)"
                )
            out[key] = value
    return out


class _PhaseTimer:
    """Reusable (non-reentrant) context manager accumulating into one phase."""

    __slots__ = ("_seconds", "_calls", "_name", "_t0")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._seconds = profiler.seconds
        self._calls = profiler.calls
        self._name = name
        self._t0 = 0.0

    def __enter__(self) -> "_PhaseTimer":
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        self._seconds[self._name] += perf_counter() - self._t0
        self._calls[self._name] += 1
        return False


class _NullTimer:
    """No-op stand-in handed out by disabled profilers."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_TIMER = _NullTimer()


class PhaseProfiler:
    """Accumulates wall-clock seconds and call counts per named phase."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self.seconds: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self._timers: Dict[str, _PhaseTimer] = {}

    def phase(self, name: str):
        """Context manager timing one occurrence of ``name``."""
        if not self.enabled:
            return _NULL_TIMER
        timer = self._timers.get(name)
        if timer is None:
            self.seconds.setdefault(name, 0.0)
            self.calls.setdefault(name, 0)
            timer = _PhaseTimer(self, name)
            self._timers[name] = timer
        return timer

    # ------------------------------------------------------------------
    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Credit time measured externally (e.g. another profiler's delta)."""
        self.seconds[name] = self.seconds.get(name, 0.0) + float(seconds)
        self.calls[name] = self.calls.get(name, 0) + int(calls)

    def merge(self, other: "PhaseProfiler") -> None:
        """Fold another profiler's accumulators into this one."""
        for name, secs in other.seconds.items():
            self.add(name, secs, other.calls.get(name, 0))

    def snapshot(self) -> Dict[str, float]:
        """Copy of the per-phase seconds (for before/after deltas)."""
        return dict(self.seconds)

    def delta(self, before: Mapping[str, float]) -> Dict[str, float]:
        """Per-phase seconds accumulated since a :meth:`snapshot`."""
        return {
            name: secs - before.get(name, 0.0)
            for name, secs in self.seconds.items()
        }

    def reset(self) -> None:
        for name in self.seconds:
            self.seconds[name] = 0.0
        for name in self.calls:
            self.calls[name] = 0

    def summary(self) -> Dict[str, float]:
        """Flat ``{phase}_seconds`` mapping for engine summaries."""
        return {f"{name}_seconds": secs for name, secs in self.seconds.items()}
