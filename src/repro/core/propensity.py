"""Propensity bookkeeping — linear scan vs the paper's tree strategy.

Event selection in KMC draws ``u ~ U[0, total)`` and finds the first slot
whose cumulative propensity exceeds ``u``.  The baseline implementation
recomputes a cumulative sum every step (O(n)); the paper's "tree strategy for
propensity update" (Sec. 4.4) keeps a Fenwick tree so that updates and
selections are O(log n).  Both structures implement the same interface and
the same selection semantics so the engines can use either.

Both stores hold their slot arrays through an :class:`~.backend.ArrayBackend`
handle (``backend=`` at construction); under the default NumPy backend every
operation is the exact NumPy call the pre-refactor code made, so selection
and update stay bit-identical.  Batch validation (`_checked_batch`) is
host-side NumPy on purpose — slot indices and error reporting live at the
serialisation boundary.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

import numpy as np

from .backend import get_backend

__all__ = ["PropensityStore", "LinearPropensity", "FenwickPropensity"]


def _checked_batch(
    slots, values, n_slots: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Validate an ``update_many`` batch shared by every store.

    Returns ``(slots, values)`` as flat int64/float64 arrays.  Raises
    ``ValueError`` on length mismatch or negative propensities and
    ``IndexError`` on out-of-range slots (negative slots included — fancy
    indexing would silently wrap them).
    """
    s = np.asarray(slots, dtype=np.int64).ravel()
    v = np.asarray(values, dtype=np.float64).ravel()
    if s.shape != v.shape:
        raise ValueError(
            f"update_many length mismatch: {s.size} slots vs {v.size} values"
        )
    if s.size == 0:
        return s, v
    if np.any(v < 0):
        bad = float(v[v < 0][0])
        raise ValueError(f"propensity must be >= 0, got {bad!r}")
    if np.any((s < 0) | (s >= n_slots)):
        bad = int(s[(s < 0) | (s >= n_slots)][0])
        raise IndexError(f"slot {bad} out of range [0, {n_slots})")
    return s, v


class PropensityStore(ABC):
    """Slot-indexed non-negative propensities with weighted selection.

    Stores support *dynamic slot populations* (used by the shared event
    kernel when vacancies enter or leave a rank's active region): ``grow``
    extends the slot range while preserving existing values, and freed slots
    are simply parked at propensity zero so they can never be selected.
    ``select`` additionally records ``last_select_depth`` — the number of
    elementary comparisons of the most recent selection — which the kernel
    aggregates into its instrumentation counters.
    """

    #: Comparisons performed by the most recent ``select`` call.
    last_select_depth: int = 0

    @abstractmethod
    def resize(self, n_slots: int) -> None:
        """Reset to ``n_slots`` slots, all zero."""

    @abstractmethod
    def grow(self, n_slots: int) -> None:
        """Extend to ``n_slots`` slots, preserving values (new slots zero)."""

    @property
    @abstractmethod
    def n_slots(self) -> int:
        """Number of addressable slots."""

    @abstractmethod
    def update(self, slot: int, value: float) -> None:
        """Set the propensity of one slot."""

    def update_many(self, slots, values) -> None:
        """Set a batch of slot propensities in one call.

        Semantically equivalent to ``for s, v in zip(slots, values):
        update(s, v)`` — duplicate slots resolve last-write-wins — but
        concrete stores override this with a vectorized implementation so
        the event kernel can push a whole stale batch per refresh.
        """
        s, v = _checked_batch(slots, values, self.n_slots)
        for slot, value in zip(s, v):
            self.update(int(slot), float(value))

    @abstractmethod
    def get(self, slot: int) -> float:
        """Current propensity of a slot."""

    @property
    @abstractmethod
    def total(self) -> float:
        """Sum of all propensities."""

    @abstractmethod
    def select(self, u: float) -> Tuple[int, float]:
        """First slot with cumulative propensity > ``u``.

        Returns ``(slot, remainder)`` where ``remainder`` is ``u`` minus the
        cumulative propensity of all earlier slots (used to pick the
        direction inside the slot).
        """


class LinearPropensity(PropensityStore):
    """O(n) cumulative-sum selection — the non-tree baseline."""

    def __init__(self, n_slots: int = 0, backend=None) -> None:
        self.xp = get_backend(backend)
        self.values = self.xp.zeros(n_slots, dtype=self.xp.float64)

    def resize(self, n_slots: int) -> None:
        self.values = self.xp.zeros(n_slots, dtype=self.xp.float64)

    def grow(self, n_slots: int) -> None:
        n_slots = int(n_slots)
        if n_slots < self.n_slots:
            raise ValueError(
                f"grow cannot shrink: {n_slots} < {self.n_slots} slots"
            )
        if n_slots > self.n_slots:
            self.values = self.xp.concatenate(
                [
                    self.values,
                    self.xp.zeros(n_slots - self.n_slots, dtype=self.xp.float64),
                ]
            )

    @property
    def n_slots(self) -> int:
        return int(self.values.shape[0])

    def update(self, slot: int, value: float) -> None:
        if value < 0:
            raise ValueError(f"propensity must be >= 0, got {value!r}")
        self.values[slot] = value

    def update_many(self, slots, values) -> None:
        s, v = _checked_batch(slots, values, self.n_slots)
        self.values[self.xp.from_numpy(s)] = self.xp.from_numpy(v)

    def get(self, slot: int) -> float:
        return float(self.values[slot])

    @property
    def total(self) -> float:
        return float(self.xp.sum(self.values))

    def select(self, u: float) -> Tuple[int, float]:
        cum = self.xp.cumsum(self.values)
        if not 0.0 <= u < float(cum[-1]):
            raise ValueError(f"u={u!r} outside [0, total={float(cum[-1])!r})")
        slot = int(self.xp.searchsorted(cum, u, side="right"))
        self.last_select_depth = self.n_slots
        prev = float(cum[slot - 1]) if slot > 0 else 0.0
        return slot, u - prev


class FenwickPropensity(PropensityStore):
    """Fenwick (binary indexed) tree: O(log n) update and selection.

    This is the "tree strategy for propensity update" used in all the
    paper's scalability runs.
    """

    def __init__(self, n_slots: int = 0, backend=None) -> None:
        self.xp = get_backend(backend)
        self.resize(n_slots)

    def resize(self, n_slots: int) -> None:
        self.n = int(n_slots)
        # size rounded up to a power of two for the descend-select.
        self._cap = 1
        while self._cap < max(self.n, 1):
            self._cap *= 2
        self.tree = self.xp.zeros(self._cap + 1, dtype=self.xp.float64)
        self.values = self.xp.zeros(self.n, dtype=self.xp.float64)

    def grow(self, n_slots: int) -> None:
        n_slots = int(n_slots)
        if n_slots < self.n:
            raise ValueError(f"grow cannot shrink: {n_slots} < {self.n} slots")
        if n_slots == self.n:
            return
        if n_slots <= self._cap:
            # The tree already spans the new slots (they aggregate as zero);
            # only the dense value array needs extending.
            self.values = self.xp.concatenate(
                [self.values, self.xp.zeros(n_slots - self.n, dtype=self.xp.float64)]
            )
            self.n = n_slots
            return
        old = self.values
        self.resize(n_slots)
        self.values[: old.shape[0]] = old
        self._rebuild()

    @property
    def n_slots(self) -> int:
        return self.n

    def update(self, slot: int, value: float) -> None:
        if value < 0:
            raise ValueError(f"propensity must be >= 0, got {value!r}")
        if not 0 <= slot < self.n:
            raise IndexError(f"slot {slot} out of range [0, {self.n})")
        self.values[slot] = value
        self._refresh_ancestors(slot)

    def _refresh_ancestors(self, slot: int) -> None:
        # Recompute every ancestor node exactly from its children instead of
        # propagating a float delta: the tree is then a pure function of the
        # ``values`` array, independent of update history — which is what
        # makes checkpoint/restart bit-exact (a rebuilt tree matches an
        # incrementally-updated one).  O(log^2 n) instead of O(log n).
        i = slot + 1
        while i <= self._cap:
            total = self.values[i - 1] if i - 1 < self.n else 0.0
            k = 1
            low = i & (-i)
            while k < low:
                total += self.tree[i - k]
                k <<= 1
            self.tree[i] = total
            i += i & (-i)

    #: Batch-refresh policy thresholds for :meth:`update_many`.  A batch
    #: touching at least 1/``REBUILD_FRACTION`` of the tree's capacity is
    #: cheaper to rebuild wholesale (one vectorized sweep); below that, the
    #: host-side batch refresh pays one O(cap) tree/values copy up front,
    #: which amortises once the batch touches at least
    #: 1/``BATCH_REFRESH_FRACTION`` of the capacity (or the tree is small
    #: enough — <= ``BATCH_REFRESH_MIN_CAP`` — for the copy to be noise).
    #: All three strategies are bitwise identical, so the thresholds are
    #: pure cost tuning.
    REBUILD_FRACTION = 8
    BATCH_REFRESH_FRACTION = 64
    BATCH_REFRESH_MIN_CAP = 4096

    def update_many(self, slots, values) -> None:
        s, v = _checked_batch(slots, values, self.n)
        if s.size == 0:
            return
        # duplicates: last write wins, as sequentially
        self.values[self.xp.from_numpy(s)] = self.xp.from_numpy(v)
        # Each node's sum is formed child-by-child in the same order the
        # scalar path uses, so either refresh strategy leaves the tree
        # bitwise identical to a sequence of scalar updates.
        if s.size * self.REBUILD_FRACTION >= self._cap:
            self._rebuild()
            return
        u = np.unique(s)
        if (
            self._cap <= self.BATCH_REFRESH_MIN_CAP
            or u.size * self.BATCH_REFRESH_FRACTION >= self._cap
        ):
            self._refresh_ancestors_batch(u)
        else:
            for slot in u:  # ascending: children refresh first
                self._refresh_ancestors(int(slot))

    def _refresh_ancestors_batch(self, slots: np.ndarray) -> None:
        """Host-side ancestor refresh for a small ascending slot batch.

        Node-for-node the same arithmetic as :meth:`_refresh_ancestors` —
        each ancestor recomputed child-by-child in ascending-lowbit order
        with IEEE-double additions — but run on Python floats, so the
        O(log^2 n) inner loops cost interpreter time instead of a per
        element array dispatch.  Shared ancestors of later slots read the
        refreshed host copy, exactly as the scalar path re-reads
        ``self.tree``, and the touched nodes go back in one scatter.
        Same additions, same order, same bits.
        """
        tl = self.xp.to_numpy(self.tree).tolist()
        vl = self.xp.to_numpy(self.values).tolist()
        n = self.n
        touched: dict = {}
        for slot in slots.tolist():
            i = slot + 1
            while i <= self._cap:
                total = vl[i - 1] if i - 1 < n else 0.0
                k = 1
                low = i & (-i)
                while k < low:
                    total += tl[i - k]
                    k <<= 1
                tl[i] = total
                touched[i] = total
                i += low
        idx = np.fromiter(touched.keys(), dtype=np.int64, count=len(touched))
        vals = np.fromiter(touched.values(), dtype=np.float64, count=len(touched))
        self.tree[self.xp.from_numpy(idx)] = self.xp.from_numpy(vals)

    def _rebuild(self) -> None:
        """Recompute the whole tree from ``values`` in one vectorized sweep.

        Level by level: seed every node with its own value, then for
        ``k = 1, 2, 4, ...`` add ``tree[i - k]`` into each node ``i`` whose
        lowbit exceeds ``k``.  At step ``k`` the nodes being read have
        lowbit exactly ``k`` and were finalized in earlier steps, and each
        node accumulates its children in the same ascending-``k`` order as
        ``_refresh_ancestors`` — same additions, same order, same bits.
        """
        self.tree[:] = 0.0
        self.tree[1 : self.n + 1] = self.values
        # Node index bookkeeping stays host-side NumPy; only the float
        # accumulations run through the backend arrays.
        idx = np.arange(1, self._cap + 1, dtype=np.int64)
        low = idx & (-idx)
        k = 1
        while k < self._cap:
            nodes = self.xp.from_numpy(idx[low > k])
            self.tree[nodes] += self.tree[nodes - k]
            k <<= 1

    def get(self, slot: int) -> float:
        return float(self.values[slot])

    @property
    def total(self) -> float:
        return self._prefix(self._cap)

    def _prefix(self, i: int) -> float:
        s = 0.0
        while i > 0:
            s = s + float(self.tree[i])
            i -= i & (-i)
        return s

    def select(self, u: float) -> Tuple[int, float]:
        total = self.total
        if not 0.0 <= u < total:
            raise ValueError(f"u={u!r} outside [0, total={total!r})")
        pos = 0
        rem = u
        step = self._cap
        depth = 0
        while step > 0:
            nxt = pos + step
            if nxt <= self._cap and float(self.tree[nxt]) <= rem:
                rem -= float(self.tree[nxt])
                pos = nxt
            step //= 2
            depth += 1
        self.last_select_depth = depth
        slot = pos  # pos = count of slots with cumulative <= u
        if slot >= self.n:  # numerical edge: clamp onto the last live slot
            slot = self.n - 1
            rem = min(rem, float(self.values[slot]))
        return slot, rem
