"""Propensity bookkeeping — linear scan vs the paper's tree strategy.

Event selection in KMC draws ``u ~ U[0, total)`` and finds the first slot
whose cumulative propensity exceeds ``u``.  The baseline implementation
recomputes a cumulative sum every step (O(n)); the paper's "tree strategy for
propensity update" (Sec. 4.4) keeps a Fenwick tree so that updates and
selections are O(log n).  Both structures implement the same interface and
the same selection semantics so the engines can use either.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Tuple

import numpy as np

__all__ = ["PropensityStore", "LinearPropensity", "FenwickPropensity"]


class PropensityStore(ABC):
    """Slot-indexed non-negative propensities with weighted selection.

    Stores support *dynamic slot populations* (used by the shared event
    kernel when vacancies enter or leave a rank's active region): ``grow``
    extends the slot range while preserving existing values, and freed slots
    are simply parked at propensity zero so they can never be selected.
    ``select`` additionally records ``last_select_depth`` — the number of
    elementary comparisons of the most recent selection — which the kernel
    aggregates into its instrumentation counters.
    """

    #: Comparisons performed by the most recent ``select`` call.
    last_select_depth: int = 0

    @abstractmethod
    def resize(self, n_slots: int) -> None:
        """Reset to ``n_slots`` slots, all zero."""

    @abstractmethod
    def grow(self, n_slots: int) -> None:
        """Extend to ``n_slots`` slots, preserving values (new slots zero)."""

    @property
    @abstractmethod
    def n_slots(self) -> int:
        """Number of addressable slots."""

    @abstractmethod
    def update(self, slot: int, value: float) -> None:
        """Set the propensity of one slot."""

    @abstractmethod
    def get(self, slot: int) -> float:
        """Current propensity of a slot."""

    @property
    @abstractmethod
    def total(self) -> float:
        """Sum of all propensities."""

    @abstractmethod
    def select(self, u: float) -> Tuple[int, float]:
        """First slot with cumulative propensity > ``u``.

        Returns ``(slot, remainder)`` where ``remainder`` is ``u`` minus the
        cumulative propensity of all earlier slots (used to pick the
        direction inside the slot).
        """


class LinearPropensity(PropensityStore):
    """O(n) cumulative-sum selection — the non-tree baseline."""

    def __init__(self, n_slots: int = 0) -> None:
        self.values = np.zeros(n_slots, dtype=np.float64)

    def resize(self, n_slots: int) -> None:
        self.values = np.zeros(n_slots, dtype=np.float64)

    def grow(self, n_slots: int) -> None:
        n_slots = int(n_slots)
        if n_slots < self.n_slots:
            raise ValueError(
                f"grow cannot shrink: {n_slots} < {self.n_slots} slots"
            )
        if n_slots > self.n_slots:
            self.values = np.concatenate(
                [self.values, np.zeros(n_slots - self.n_slots, dtype=np.float64)]
            )

    @property
    def n_slots(self) -> int:
        return int(self.values.shape[0])

    def update(self, slot: int, value: float) -> None:
        if value < 0:
            raise ValueError(f"propensity must be >= 0, got {value!r}")
        self.values[slot] = value

    def get(self, slot: int) -> float:
        return float(self.values[slot])

    @property
    def total(self) -> float:
        return float(self.values.sum())

    def select(self, u: float) -> Tuple[int, float]:
        cum = np.cumsum(self.values)
        if not 0.0 <= u < cum[-1]:
            raise ValueError(f"u={u!r} outside [0, total={cum[-1]!r})")
        slot = int(np.searchsorted(cum, u, side="right"))
        self.last_select_depth = self.n_slots
        prev = float(cum[slot - 1]) if slot > 0 else 0.0
        return slot, u - prev


class FenwickPropensity(PropensityStore):
    """Fenwick (binary indexed) tree: O(log n) update and selection.

    This is the "tree strategy for propensity update" used in all the
    paper's scalability runs.
    """

    def __init__(self, n_slots: int = 0) -> None:
        self.resize(n_slots)

    def resize(self, n_slots: int) -> None:
        self.n = int(n_slots)
        # size rounded up to a power of two for the descend-select.
        self._cap = 1
        while self._cap < max(self.n, 1):
            self._cap *= 2
        self.tree = np.zeros(self._cap + 1, dtype=np.float64)
        self.values = np.zeros(self.n, dtype=np.float64)

    def grow(self, n_slots: int) -> None:
        n_slots = int(n_slots)
        if n_slots < self.n:
            raise ValueError(f"grow cannot shrink: {n_slots} < {self.n} slots")
        if n_slots == self.n:
            return
        if n_slots <= self._cap:
            # The tree already spans the new slots (they aggregate as zero);
            # only the dense value array needs extending.
            self.values = np.concatenate(
                [self.values, np.zeros(n_slots - self.n, dtype=np.float64)]
            )
            self.n = n_slots
            return
        old = self.values
        self.resize(n_slots)
        for slot in np.flatnonzero(old):
            self.update(int(slot), float(old[slot]))

    @property
    def n_slots(self) -> int:
        return self.n

    def update(self, slot: int, value: float) -> None:
        if value < 0:
            raise ValueError(f"propensity must be >= 0, got {value!r}")
        if not 0 <= slot < self.n:
            raise IndexError(f"slot {slot} out of range [0, {self.n})")
        self.values[slot] = value
        # Recompute every ancestor node exactly from its children instead of
        # propagating a float delta: the tree is then a pure function of the
        # ``values`` array, independent of update history — which is what
        # makes checkpoint/restart bit-exact (a rebuilt tree matches an
        # incrementally-updated one).  O(log^2 n) instead of O(log n).
        i = slot + 1
        while i <= self._cap:
            total = self.values[i - 1] if i - 1 < self.n else 0.0
            k = 1
            low = i & (-i)
            while k < low:
                total += self.tree[i - k]
                k <<= 1
            self.tree[i] = total
            i += i & (-i)

    def get(self, slot: int) -> float:
        return float(self.values[slot])

    @property
    def total(self) -> float:
        return self._prefix(self._cap)

    def _prefix(self, i: int) -> float:
        s = 0.0
        while i > 0:
            s += self.tree[i]
            i -= i & (-i)
        return s

    def select(self, u: float) -> Tuple[int, float]:
        total = self.total
        if not 0.0 <= u < total:
            raise ValueError(f"u={u!r} outside [0, total={total!r})")
        pos = 0
        rem = u
        step = self._cap
        depth = 0
        while step > 0:
            nxt = pos + step
            if nxt <= self._cap and self.tree[nxt] <= rem:
                rem -= self.tree[nxt]
                pos = nxt
            step //= 2
            depth += 1
        self.last_select_depth = depth
        slot = pos  # pos = count of slots with cumulative <= u
        if slot >= self.n:  # numerical edge: clamp onto the last live slot
            slot = self.n - 1
            rem = min(rem, self.values[slot])
        return slot, rem
