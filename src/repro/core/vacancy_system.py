"""Vacancy-system state evaluation — the per-hop energy kernel.

Given a VET (species of all ``n_all`` sites of a vacancy system) the
evaluator computes the initial-state region energy and the energy change of
each of the eight possible final states.  This mirrors the paper's fast
feature operator semantics: features for the initial state and all final
states are produced in one batch (Sec. 3.4), then pushed through the
potential (the big-fusion operator on Sunway; a :class:`CountsPotential`
here).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..potentials.base import CountsPotential, counts_from_types
from .tet import TripleEncoding

__all__ = ["StateEnergies", "VacancySystemEvaluator"]


@dataclass(frozen=True)
class StateEnergies:
    """Energies of one vacancy system: initial state + 8 trial final states."""

    #: Region energy of the current state (eV).
    initial: float
    #: ``(8,)`` energy differences E_f - E_i per hop direction (eV);
    #: undefined entries (invalid hops) are 0 and masked by ``valid``.
    delta: np.ndarray
    #: ``(8,)`` False where the 1NN target is itself a vacancy (no hop).
    valid: np.ndarray
    #: ``(8,)`` species of the atom that would migrate in each direction.
    migrating_species: np.ndarray


class VacancySystemEvaluator:
    """Evaluates hop energetics of vacancy systems for a fixed TET/potential.

    Parameters
    ----------
    tet:
        The triple-encoding tables (geometry).
    potential:
        Any counts-based potential; its shells must match the TET's.
    """

    def __init__(self, tet: TripleEncoding, potential: CountsPotential) -> None:
        if potential.n_shells != tet.n_shells or not np.allclose(
            potential.shell_distances, tet.shell_distances
        ):
            raise ValueError("potential shells do not match the TET shells")
        self.tet = tet
        self.potential = potential
        self.n_elements = getattr(potential, "n_elements", 2)
        self.vacancy_code = self.n_elements
        self._n_states = 1 + tet.N_DIRECTIONS
        # For the delta path: shell of VET site t (centre / each 1NN) in each
        # region site's neighbour list, or -1 when t is out of its range.
        shell_of = np.full((self._n_states, tet.n_region), -1, dtype=np.int16)
        for t in range(self._n_states):
            rows, cols = np.nonzero(tet.net_ids == t)
            shell_of[t, rows] = tet.cet_shell[cols]
        self._shell_of_target = shell_of
        self._affected = [
            np.flatnonzero((shell_of[0] >= 0) | (shell_of[1 + k] >= 0))
            for k in range(tet.N_DIRECTIONS)
        ]

    def trial_vets(self, vet: np.ndarray) -> np.ndarray:
        """All trial states as a ``(9, n_all)`` array.

        Row 0 is the current state; row ``1 + k`` has the vacancy swapped
        with 1NN site ``k`` (VET[0] <-> VET[1 + k], paper Sec. 3.4).
        """
        vet = np.asarray(vet)
        if vet.shape != (self.tet.n_all,):
            raise ValueError(
                f"VET must have shape ({self.tet.n_all},), got {vet.shape}"
            )
        states = np.broadcast_to(vet, (self._n_states, vet.shape[0])).copy()
        for k in range(self.tet.N_DIRECTIONS):
            idx = self.tet.direction_vet_index(k)
            states[1 + k, 0] = vet[idx]
            states[1 + k, idx] = vet[0]
        return states

    def region_features_counts(self, states: np.ndarray) -> np.ndarray:
        """Shell-type counts of every region site of every state.

        Returns ``(n_states, n_region, n_shells, n_elements)``; this is the
        exact workload of the fast feature operator (Sec. 3.4).
        """
        neighbor_types = states[:, self.tet.net_ids]  # (n_states, n_region, n_local)
        return counts_from_types(
            neighbor_types, self.tet.cet_shell, self.tet.n_shells,
            n_elements=self.n_elements,
        )

    def evaluate(self, vet: np.ndarray) -> StateEnergies:
        """Initial energy and per-direction energy changes for one VET."""
        vet = np.asarray(vet)
        if vet[self.tet.CENTER] != self.vacancy_code:
            raise ValueError("VET centre must be a vacancy")
        states = self.trial_vets(vet)
        counts = self.region_features_counts(states)
        n_states, n_region = states.shape[0], self.tet.n_region
        center_types = states[:, :n_region].reshape(-1)
        energies = self.potential.energies_from_counts(
            center_types, counts.reshape(-1, self.tet.n_shells, counts.shape[-1])
        ).reshape(n_states, n_region)
        totals = energies.sum(axis=1, dtype=np.float64)
        nn_species = vet[1 : 1 + self.tet.N_DIRECTIONS]
        valid = nn_species != self.vacancy_code
        delta = np.where(valid, totals[1:] - totals[0], 0.0)
        return StateEnergies(
            initial=float(totals[0]),
            delta=delta,
            valid=valid,
            migrating_species=nn_species.copy(),
        )

    # ------------------------------------------------------------------
    # Delta path: update only the sites a hop actually affects
    # ------------------------------------------------------------------
    def evaluate_delta(self, vet: np.ndarray) -> StateEnergies:
        """Like :meth:`evaluate`, but via incremental count updates.

        For final state ``k`` only the sites within the cutoff of the centre
        or the 1NN target change their environment (plus those two sites
        themselves), so instead of rebuilding all ``9 x n_region`` feature
        counts, the initial counts are patched per direction:

        * the centre turns from vacancy into the migrating atom — every
          affected site gains one neighbour of that species in the shell the
          centre occupies in its list;
        * the target turns into a vacancy — one neighbour of that species is
          removed from the target's shell.

        Counts stay exact integers in float32, so per-site energies are
        bit-identical to the full path; only the final float64 summation
        order differs (agreement to ~1e-9 eV, verified by the tests).
        """
        tet = self.tet
        vet = np.asarray(vet)
        if vet.shape != (tet.n_all,):
            raise ValueError(f"VET must have shape ({tet.n_all},), got {vet.shape}")
        if vet[tet.CENTER] != self.vacancy_code:
            raise ValueError("VET centre must be a vacancy")

        # State-0 counts and per-site energies, computed once.
        neighbor_types = vet[tet.net_ids]
        counts0 = counts_from_types(
            neighbor_types, tet.cet_shell, tet.n_shells,
            n_elements=self.n_elements,
        )
        center0 = vet[: tet.n_region]
        e0 = self.potential.energies_from_counts(center0, counts0)
        initial = float(np.sum(e0, dtype=np.float64))

        nn_species = vet[1 : 1 + tet.N_DIRECTIONS]
        valid = nn_species != self.vacancy_code
        delta = np.zeros(tet.N_DIRECTIONS, dtype=np.float64)

        for k in range(tet.N_DIRECTIONS):
            if not valid[k]:
                continue
            m = tet.direction_vet_index(k)
            mig = int(nn_species[k])
            affected = self._affected[k]
            counts_f = counts0[affected].copy()
            center_f = center0[affected].copy()

            s0 = self._shell_of_target[0, affected]
            has0 = s0 >= 0
            counts_f[np.nonzero(has0)[0], s0[has0], mig] += 1.0
            sm = self._shell_of_target[m, affected]
            hasm = sm >= 0
            counts_f[np.nonzero(hasm)[0], sm[hasm], mig] -= 1.0

            # The two swap sites change their own species.
            pos0 = np.searchsorted(affected, 0)
            center_f[pos0] = mig
            posm = np.searchsorted(affected, m)
            center_f[posm] = self.vacancy_code

            e_f = self.potential.energies_from_counts(center_f, counts_f)
            delta[k] = float(
                np.sum(e_f, dtype=np.float64)
                - np.sum(e0[affected], dtype=np.float64)
            )
        return StateEnergies(
            initial=initial,
            delta=delta,
            valid=valid,
            migrating_species=nn_species.copy(),
        )
