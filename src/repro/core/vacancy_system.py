"""Vacancy-system state evaluation — the per-hop energy kernel.

Given a VET (species of all ``n_all`` sites of a vacancy system) the
evaluator computes the initial-state region energy and the energy change of
each of the eight possible final states.  This mirrors the paper's fast
feature operator semantics: features for the initial state and all final
states are produced in one batch (Sec. 3.4), then pushed through the
potential (the big-fusion operator on Sunway; a :class:`CountsPotential`
here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from ..potentials.base import CountsPotential, counts_from_types
from ..sunway.costmodel import CostLedger, charge_batched_rate_eval
from .backend import get_backend
from .tet import TripleEncoding

__all__ = ["StateEnergies", "StateEnergiesBatch", "VacancySystemEvaluator"]


@dataclass(frozen=True)
class StateEnergies:
    """Energies of one vacancy system: initial state + 8 trial final states."""

    #: Region energy of the current state (eV).
    initial: float
    #: ``(8,)`` energy differences E_f - E_i per hop direction (eV);
    #: undefined entries (invalid hops) are 0 and masked by ``valid``.
    delta: np.ndarray
    #: ``(8,)`` False where the 1NN target is itself a vacancy (no hop).
    valid: np.ndarray
    #: ``(8,)`` species of the atom that would migrate in each direction.
    migrating_species: np.ndarray


@dataclass(frozen=True)
class StateEnergiesBatch:
    """Energies of ``B`` vacancy systems evaluated through one fused pipeline.

    The arrays carry one row per vacancy; ``row(b)`` views row ``b`` as a
    scalar :class:`StateEnergies` (no copies), which is what the cache stores.
    """

    #: ``(B,)`` region energies of the current states (eV).
    initial: np.ndarray
    #: ``(B, 8)`` energy differences E_f - E_i per hop direction (eV).
    delta: np.ndarray
    #: ``(B, 8)`` False where the 1NN target is itself a vacancy.
    valid: np.ndarray
    #: ``(B, 8)`` species of the atom that would migrate per direction.
    migrating_species: np.ndarray

    def __len__(self) -> int:
        return int(self.initial.shape[0])

    def row(self, b: int) -> StateEnergies:
        """Scalar view of vacancy ``b`` (arrays are views into the batch)."""
        return StateEnergies(
            initial=float(self.initial[b]),
            delta=self.delta[b],
            valid=self.valid[b],
            migrating_species=self.migrating_species[b],
        )

    def rows(self) -> List[StateEnergies]:
        """All scalar views, in batch order."""
        return [self.row(b) for b in range(len(self))]

    def segment(self, lo: int, hi: int) -> "StateEnergiesBatch":
        """Contiguous sub-batch ``[lo, hi)`` as views (no copies).

        The splitting half of the cross-caller batching contract (see
        :meth:`VacancySystemEvaluator.evaluate_batch_segments`): stacking
        segments, evaluating once, and slicing the result back apart.
        """
        return StateEnergiesBatch(
            initial=self.initial[lo:hi],
            delta=self.delta[lo:hi],
            valid=self.valid[lo:hi],
            migrating_species=self.migrating_species[lo:hi],
        )


class VacancySystemEvaluator:
    """Evaluates hop energetics of vacancy systems for a fixed TET/potential.

    Parameters
    ----------
    tet:
        The triple-encoding tables (geometry).
    potential:
        Any counts-based potential; its shells must match the TET's.
    backend:
        Array backend name/instance (see :mod:`repro.core.backend`) the
        batched pipeline computes through.  Inputs and the returned
        :class:`StateEnergies`/:class:`StateEnergiesBatch` are always NumPy
        (the cache boundary); only the intermediate trial states / counts /
        energies live on the backend.  The scalar delta path
        (:meth:`evaluate_delta`) is NumPy-resident by design.
    """

    #: Allowed values of the :attr:`dedup` policy.
    DEDUP_MODES = ("auto", "always", "never")

    def __init__(
        self,
        tet: TripleEncoding,
        potential: CountsPotential,
        backend=None,
    ) -> None:
        if potential.n_shells != tet.n_shells or not np.allclose(
            potential.shell_distances, tet.shell_distances
        ):
            raise ValueError("potential shells do not match the TET shells")
        self.tet = tet
        self.potential = potential
        self.xp = get_backend(backend)
        self.n_elements = getattr(potential, "n_elements", 2)
        self.vacancy_code = self.n_elements
        #: Batched-row dedup policy: ``"auto"`` (default) dedups only for
        #: network potentials, where skipping duplicate rows saves whole GEMM
        #: stacks; cheap tabulated/EAM reductions evaluate duplicates faster
        #: than the unique-key sort that would remove them.  ``"always"`` /
        #: ``"never"`` force either path.  For row-invariant potentials the
        #: choice is bitwise-neutral: duplicate rows produce identical bits
        #: either way, so trajectories do not depend on this knob.
        self.dedup = "auto"
        # Optional Fig. 9 cost accounting (see attach_cost_ledger).
        self._ledger: "CostLedger | None" = None
        # Optional persistent row-energy memoization (see attach_row_cache).
        self._row_cache = None
        self._n_states = 1 + tet.N_DIRECTIONS
        # For the delta path: shell of VET site t (centre / each 1NN) in each
        # region site's neighbour list, or -1 when t is out of its range.
        shell_of = np.full((self._n_states, tet.n_region), -1, dtype=np.int16)
        for t in range(self._n_states):
            rows, cols = np.nonzero(tet.net_ids == t)
            shell_of[t, rows] = tet.cet_shell[cols]
        self._shell_of_target = shell_of
        # Count-patch lookup table for the row-level re-rate kernel.  The
        # swap patch of row r in state j — centre (species ``vac``) and 1NN
        # target (species ``mig``) trading places — depends only on the tiny
        # tuple (shell of the centre in r's list, shell of the target,
        # vac, mig), so every combination is tabulated once:
        # ``patch[s, e] = ((sh0 == s) - (shj == s)) * ((mig == e) - (vac == e))``
        # with shell -1 (outside the row's range) and the vacancy code
        # contributing nothing.  Entries are exact small integers in
        # float32, so adding a patch row to the state-0 counts reproduces
        # the full encode's counts bit for bit.  One extra all-zero block
        # (index ``n_sh * n_sh``) backs the state-0 column of the fused
        # per-row gather.
        n_sh = tet.n_shells + 1          # shell index + 1, -1 -> 0
        n_sp = self.n_elements + 1       # species codes incl. the vacancy
        table = np.zeros(
            ((n_sh * n_sh + 1) * n_sp * n_sp,
             tet.n_shells * self.n_elements),
            dtype=np.float32,
        )
        for a in range(n_sh):            # sh0 + 1
            for b in range(n_sh):        # shj + 1
                for v in range(n_sp):    # vac species code
                    for m in range(n_sp):  # mig species code
                        row = ((a * n_sh + b) * n_sp + v) * n_sp + m
                        for s in range(tet.n_shells):
                            for el in range(self.n_elements):
                                table[row, s * self.n_elements + el] = (
                                    (a - 1 == s) - (b - 1 == s)
                                ) * ((m == el) - (v == el))
        self._patch_table = table
        code = np.empty((tet.n_region, self._n_states), dtype=np.int64)
        code[:, 0] = n_sh * n_sh * n_sp * n_sp
        code[:, 1:] = (
            (shell_of[0][:, None].astype(np.int64) + 1) * n_sh
            + (shell_of[1:].T.astype(np.int64) + 1)
        ) * (n_sp * n_sp)
        self._patch_code = np.ascontiguousarray(code)
        self._patch_species = n_sp
        # Cached pieces of the counts_from_types kernel, so the per-row path
        # skips the per-call one-hot rebuild (the values are identical, so
        # the matmul inputs — and therefore the counts — are bit-identical).
        shell_onehot = np.zeros(
            (tet.net_ids.shape[1], tet.n_shells), dtype=np.float32
        )
        shell_onehot[
            np.arange(tet.net_ids.shape[1]),
            np.asarray(tet.cet_shell, dtype=np.int64),
        ] = 1.0
        self._shell_onehot = self.xp.from_numpy(shell_onehot)
        self._state_cols = np.arange(self._n_states, dtype=np.intp)
        # Reverse NET over *all* VET positions: base[p, r] is True when a
        # species change at VET position p touches region row r in the
        # current state — p sits in r's neighbour list, or p *is* r.
        base = np.zeros((tet.n_all, tet.n_region), dtype=bool)
        base[
            np.asarray(tet.net_ids).ravel(),
            np.repeat(np.arange(tet.n_region), tet.net_ids.shape[1]),
        ] = True
        base[np.arange(tet.n_region), np.arange(tet.n_region)] = True
        # Folded over the 9 trial states: position p <= 8 also appears at
        # position 0 (swap positions trade places), and a change at the
        # centre itself shows up at every swap position.
        dirty = base.copy()
        dirty[1:self._n_states] |= base[0]
        dirty[0] = base[: self._n_states].any(axis=0)
        #: ``(n_all, n_region)`` — region rows whose stored trial-state
        #: energies go stale when the site at VET position p changes.
        self.dirty_rows_of_position = dirty
        self._affected = [
            np.flatnonzero((shell_of[0] >= 0) | (shell_of[1 + k] >= 0))
            for k in range(tet.N_DIRECTIONS)
        ]
        # Precomputed swap scaffolding shared by the scalar and batched trial
        # builders: the VET index of each direction's 1NN target, and the
        # trial-state row each direction writes (row 1 + k swaps 0 <-> 1 + k).
        self._dir_targets = np.array(
            [tet.direction_vet_index(k) for k in range(tet.N_DIRECTIONS)],
            dtype=np.intp,
        )
        self._dir_rows = np.arange(1, self._n_states, dtype=np.intp)
        # Backend-resident copies of the gather/scatter index tables (an
        # identity pass under NumPy, a one-off device upload otherwise).
        self._dir_targets_x = self.xp.from_numpy(
            self._dir_targets.astype(np.int64)
        )
        self._dir_rows_x = self.xp.from_numpy(self._dir_rows.astype(np.int64))
        self._net_ids_x = self.xp.from_numpy(
            np.asarray(tet.net_ids, dtype=np.int64)
        )
        # Per-direction patch tables for the vectorised delta path: local row
        # indices (within the direction's affected block) and shells touched
        # when the centre (gains an atom) / the target (loses one) flips.
        self._delta_center_rows: List[np.ndarray] = []
        self._delta_center_shells: List[np.ndarray] = []
        self._delta_target_rows: List[np.ndarray] = []
        self._delta_target_shells: List[np.ndarray] = []
        self._delta_pos0 = np.empty(tet.N_DIRECTIONS, dtype=np.intp)
        self._delta_posm = np.empty(tet.N_DIRECTIONS, dtype=np.intp)
        for k in range(tet.N_DIRECTIONS):
            affected = self._affected[k]
            s0 = shell_of[0, affected]
            sm = shell_of[self._dir_targets[k], affected]
            self._delta_center_rows.append(np.flatnonzero(s0 >= 0))
            self._delta_center_shells.append(s0[s0 >= 0].astype(np.intp))
            self._delta_target_rows.append(np.flatnonzero(sm >= 0))
            self._delta_target_shells.append(sm[sm >= 0].astype(np.intp))
            self._delta_pos0[k] = np.searchsorted(affected, 0)
            self._delta_posm[k] = np.searchsorted(affected, self._dir_targets[k])

    # ------------------------------------------------------------------
    # Dedup policy knob
    # ------------------------------------------------------------------
    @property
    def dedup(self) -> str:
        """Batched-row dedup policy; assignment validates the mode string."""
        return self._dedup

    @dedup.setter
    def dedup(self, mode: str) -> None:
        # An unrecognised string used to silently behave like "always";
        # validate so typos fail loudly instead of changing the eval path.
        if mode not in self.DEDUP_MODES:
            raise ValueError(
                f"unknown dedup mode {mode!r}; allowed modes: {self.DEDUP_MODES}"
            )
        self._dedup = mode

    # ------------------------------------------------------------------
    # Potential boundary
    # ------------------------------------------------------------------
    def _potential_energies(self, center_types, counts):
        """Invoke the potential across the array-world boundary.

        A potential advertises its residency via ``array_backend`` (absent
        or ``None`` means NumPy-resident, e.g. the EAM tables).  Inputs are
        converted into the potential's world and the result back into the
        evaluator's backend; when both sides share a world — the common
        case — every conversion is an identity pass, so the NumPy golden
        path is untouched bit for bit.
        """
        pot_xp = getattr(self.potential, "array_backend", None)
        if pot_xp is None:
            pot_xp = get_backend("numpy")
        energies = self.potential.energies_from_counts(
            pot_xp.asarray(center_types), pot_xp.asarray(counts)
        )
        return self.xp.asarray(energies)

    # ------------------------------------------------------------------
    # Fig. 9 operator cost accounting
    # ------------------------------------------------------------------
    def attach_cost_ledger(self, ledger: CostLedger) -> CostLedger:
        """Charge every rate evaluation to ``ledger`` from now on.

        For network potentials (anything exposing ``network_channels``, i.e.
        the NNP) each :meth:`evaluate` / :meth:`evaluate_batch` call is
        charged through :func:`~repro.sunway.costmodel.charge_batched_rate_eval`
        with the engine geometry — the big-fusion batched operator flow of
        Sec. 3.5 / Fig. 9 that the deterministic tiled kernel executes.
        Pass ``None`` to detach.  Returns the ledger for chaining.
        """
        self._ledger = ledger
        return ledger

    # ------------------------------------------------------------------
    # Persistent row-energy memoization
    # ------------------------------------------------------------------
    def attach_row_cache(self, cache):
        """Memoize unique-row energies in ``cache`` from now on.

        The cache (a :class:`~repro.core.rowcache.RowEnergyCache`) is
        consulted wherever in-batch dedup runs: before each potential call
        the unique rows' packed signatures are probed, only never-seen
        rows go through the potential, and the fresh energies are inserted
        for the next batch.  Soundness is the dedup contract itself —
        ``batch_row_invariant`` guarantees a cached row's bits equal a
        fresh evaluation's — so the cache changes *when* rows are
        evaluated, never their values.  Pass ``None`` to detach.  Returns
        the cache for chaining.
        """
        self._row_cache = cache
        return cache

    @property
    def row_cache(self):
        """The attached :class:`RowEnergyCache`, or ``None``."""
        return self._row_cache

    def _cached_unique_energies(self, packed, first, center_types, flat_counts):
        """Energies of the unique rows, served from the row cache.

        ``packed``/``first`` come from :meth:`_dedup_rows`; cached rows are
        looked up by their packed signature, only the misses are evaluated
        through the potential (one smaller GEMM stack), and the fresh
        energies are inserted.  Assembly is pure scatter — no arithmetic
        touches any value on the way through the cache — so the result is
        bit-identical to evaluating every unique row fresh.
        """
        cache = self._row_cache
        cache.sync(self.potential)
        xp = self.xp
        ukeys = xp.to_numpy(packed[first])
        found, cached = cache.lookup(ukeys)
        if found.all():
            return xp.from_numpy(cached)
        miss_idx = np.flatnonzero(~found)
        miss_x = xp.from_numpy(miss_idx)
        fresh = xp.to_numpy(
            self._potential_energies(
                center_types[first][miss_x], flat_counts[first][miss_x]
            )
        )
        cache.insert(ukeys[miss_idx], fresh)
        out = np.zeros(len(ukeys), dtype=fresh.dtype)
        out[found] = cached[found].astype(fresh.dtype, copy=False)
        out[miss_idx] = fresh
        return xp.from_numpy(out)

    def _unique_row_energies(self, dedup, center_types, flat_counts):
        """Energies of the dedup'd unique rows, through the cache if attached.

        ``dedup`` is a non-``None`` result of :meth:`_dedup_rows`.  The
        cache is only consulted in the packed-int64 key domain (the wide
        raw-bytes fallback reports ``packed=None``) — outside it the
        unique rows are evaluated directly, exactly as before.
        """
        first, inverse, packed = dedup
        if self._row_cache is not None and packed is not None:
            energies = self._cached_unique_energies(
                packed, first, center_types, flat_counts
            )
        else:
            energies = self._potential_energies(
                center_types[first], flat_counts[first]
            )
        return energies[inverse]

    def _charge_rate_eval(self, n_vets: int) -> None:
        if self._ledger is None or n_vets == 0:
            return
        channels = getattr(self.potential, "network_channels", None)
        if channels is None:
            return
        charge_batched_rate_eval(
            self._ledger,
            n_vets=n_vets,
            n_states=self._n_states,
            n_region=self.tet.n_region,
            n_local=self.tet.net_ids.shape[1],
            channels=channels,
            fused=True,
        )

    def trial_vets(self, vet: np.ndarray) -> np.ndarray:
        """All trial states as a ``(9, n_all)`` array.

        Row 0 is the current state; row ``1 + k`` has the vacancy swapped
        with 1NN site ``k`` (VET[0] <-> VET[1 + k], paper Sec. 3.4).
        """
        vet = np.asarray(vet)
        if vet.shape != (self.tet.n_all,):
            raise ValueError(
                f"VET must have shape ({self.tet.n_all},), got {vet.shape}"
            )
        states = np.broadcast_to(vet, (self._n_states, vet.shape[0])).copy()
        targets = self._dir_targets
        states[self._dir_rows, 0] = vet[targets]
        states[self._dir_rows, targets] = vet[0]
        return states

    def trial_vets_batch(self, vets: np.ndarray) -> np.ndarray:
        """Trial states of ``B`` vacancy systems as a ``(B, 9, n_all)`` array.

        ``out[b]`` equals ``trial_vets(vets[b])``; the swap scatter runs once
        over the whole batch (one fancy-indexed write per swap side).  The
        result lives on the evaluator's array backend (a plain ndarray under
        the default NumPy backend).
        """
        xp = self.xp
        # Validate on the backend array itself: forcing the batch through
        # to_numpy here used to bounce every torch batch through the host.
        vx = xp.asarray(vets)
        shape = tuple(vx.shape)
        if len(shape) != 2 or shape[1] != self.tet.n_all:
            raise ValueError(
                f"VET batch must have shape (B, {self.tet.n_all}), "
                f"got {shape}"
            )
        states = xp.broadcast_copy(
            vx[:, None, :], (shape[0], self._n_states, shape[1])
        )
        targets = self._dir_targets_x
        states[:, self._dir_rows_x, 0] = vx[:, targets]
        states[:, self._dir_rows_x, targets] = vx[:, 0, None]
        return states

    def region_features_counts(self, states: np.ndarray) -> np.ndarray:
        """Shell-type counts of every region site of every state.

        Returns ``(n_states, n_region, n_shells, n_elements)``; this is the
        exact workload of the fast feature operator (Sec. 3.4), computed on
        the evaluator's array backend.
        """
        states = self.xp.asarray(states)
        neighbor_types = states[:, self._net_ids_x]  # (n_states, n_region, n_local)
        return counts_from_types(
            neighbor_types, self.tet.cet_shell, self.tet.n_shells,
            n_elements=self.n_elements, xp=self.xp,
        )

    def evaluate(self, vet: np.ndarray) -> StateEnergies:
        """Initial energy and per-direction energy changes for one VET."""
        vet = np.asarray(vet)
        if vet[self.tet.CENTER] != self.vacancy_code:
            raise ValueError("VET centre must be a vacancy")
        states = self.trial_vets(vet)
        counts = self.region_features_counts(states)
        n_states, n_region = states.shape[0], self.tet.n_region
        center_types = states[:, :n_region].reshape(-1)
        energies = self.xp.to_numpy(
            self._potential_energies(
                self.xp.asarray(center_types),
                counts.reshape(-1, self.tet.n_shells, counts.shape[-1]),
            )
        ).reshape(n_states, n_region)
        self._charge_rate_eval(1)
        totals = energies.sum(axis=1, dtype=np.float64)
        # The caller's VET is never mutated after a build (cache entries are
        # invalidated, not patched), so the 1NN slice can be shared directly.
        nn_species = vet[1 : 1 + self.tet.N_DIRECTIONS]
        valid = nn_species != self.vacancy_code
        delta = np.where(valid, totals[1:] - totals[0], 0.0)
        return StateEnergies(
            initial=float(totals[0]),
            delta=delta,
            valid=valid,
            migrating_species=nn_species,
        )

    def _dedup_rows(self, center_types, counts):
        """First-occurrence / inverse maps of identical site rows, or None.

        Two rows are identical when they share the centre species and the
        whole shell-counts signature — then a row-invariant potential is
        guaranteed to produce bit-identical energies for both, so only the
        first occurrence needs evaluating.  Returns ``None`` (no dedup) for
        potentials without that guarantee, else ``(first, inverse, packed)``
        where ``packed`` holds the per-row int64 signatures (the row
        cache's content address) or ``None`` when the wide fallback keyed
        the rows byte-wise instead.

        Rows whose values fit 8 bits pack into one int64 key per row (a
        typed sort is far cheaper than byte-wise comparisons); wider rows
        fall back to a raw-bytes key over the exact integer values.

        The ``dedup`` policy gates the whole machinery: under ``"auto"``
        only network potentials (``network_channels``) pay for the unique
        sort — for cheap per-row reductions the sort costs more than the
        duplicate evaluations it removes.
        """
        if not getattr(self.potential, "batch_row_invariant", False):
            return None
        if self.dedup == "never":
            return None
        if self.dedup == "auto" and (
            getattr(self.potential, "network_channels", None) is None
        ):
            return None
        vals = counts.reshape(counts.shape[0], -1)
        n_vals = int(vals.shape[1])
        n_rows = int(vals.shape[0])
        if (n_vals + 1) * 8 <= 64 and (
            n_rows * n_vals == 0 or bool(vals.max() < 256)
        ):
            packed = self.xp.astype(center_types, self.xp.int64)
            ivals = self.xp.astype(vals, self.xp.int64)
            for j in range(n_vals):
                packed = (packed << 8) | ivals[:, j]
            first, inverse = self.xp.unique_first_inverse(packed)
            return first, inverse, packed
        else:
            # The raw-bytes key relies on NumPy's void-dtype views; rows wide
            # enough to land here are keyed host-side on any backend.  Counts
            # are exact small integers, so an int64 staging matrix keys them
            # losslessly — a float32 one would collide beyond the 24-bit
            # mantissa.  These keys never enter the row cache (``None``
            # marks them out of the packed-int64 content-address domain).
            ct = self.xp.to_numpy(center_types)
            v = self.xp.to_numpy(vals)
            wide = np.empty((n_rows, n_vals + 1), dtype=np.int64)
            wide[:, 0] = ct
            wide[:, 1:] = v
            key = np.ascontiguousarray(wide).view(
                np.dtype((np.void, wide.shape[1] * wide.itemsize))
            ).ravel()
            _, first, inverse = np.unique(
                key, return_index=True, return_inverse=True
            )
        return first, inverse, None

    def evaluate_batch(self, vets: np.ndarray) -> StateEnergiesBatch:
        """Hop energetics of ``B`` vacancy systems in one fused pipeline.

        This is the paper's big-fusion batching applied to rate evaluation
        (Sec. 3.4 / Fig. 9): the ``(B, 9, n_all)`` trial states are built in
        one vectorised pass, *all* ``B * 9 * n_region`` feature counts come
        from a single :func:`counts_from_types` call, and the potential is
        invoked exactly once on the stacked site batch — for the NNP that is
        one batched GEMM stack instead of ``B`` small ones.

        On top of the stacking, the batch dedupes identical site rows
        (same centre species, same shell counts) before touching the
        potential and scatters the energies back — the row-level analogue of
        the paper's VET hash cache (Sec. 3.4).  Trial states of one vacancy
        differ only near the swapped pair and neighbouring systems overlap,
        so in a dilute alloy the unique-row fraction is tiny and the
        batched path evaluates orders of magnitude fewer network rows than
        the scalar one.  Dedup is sound *only* for row-invariant potentials
        (``batch_row_invariant``): an identical row must produce identical
        bits no matter which batch it lands in.

        Per-row results are bit-identical to :meth:`evaluate` for every
        shipped potential: the tabulated/EAM per-site energies are row
        independent by construction, and the NNP's tiled-GEMM kernel
        (:mod:`repro.operators.tilegemm`) fixes its call shapes and
        accumulation order so batching cannot change any row's bits.
        """
        vets = np.asarray(vets)
        if vets.ndim != 2 or vets.shape[1] != self.tet.n_all:
            raise ValueError(
                f"VET batch must have shape (B, {self.tet.n_all}), "
                f"got {vets.shape}"
            )
        n_batch = vets.shape[0]
        n_dir = self.tet.N_DIRECTIONS
        if n_batch == 0:
            empty = np.zeros((0, n_dir))
            return StateEnergiesBatch(
                initial=np.zeros(0),
                delta=empty,
                valid=np.zeros((0, n_dir), dtype=bool),
                migrating_species=np.zeros((0, n_dir), dtype=vets.dtype),
            )
        if np.any(vets[:, self.tet.CENTER] != self.vacancy_code):
            raise ValueError("every VET centre must be a vacancy")
        n_region = self.tet.n_region
        states = self.trial_vets_batch(vets).reshape(-1, self.tet.n_all)
        counts = self.region_features_counts(states)
        center_types = states[:, :n_region].reshape(-1)
        flat_counts = counts.reshape(-1, self.tet.n_shells, counts.shape[-1])
        dedup = self._dedup_rows(center_types, flat_counts)
        if dedup is not None:
            energies = self._unique_row_energies(
                dedup, center_types, flat_counts
            ).reshape(n_batch, self._n_states, n_region)
        else:
            energies = self._potential_energies(
                center_types, flat_counts
            ).reshape(n_batch, self._n_states, n_region)
        self._charge_rate_eval(n_batch)
        totals = self.xp.to_numpy(
            self.xp.sum(energies, axis=2, dtype=self.xp.float64)
        )
        nn_species = vets[:, 1 : 1 + n_dir]
        valid = nn_species != self.vacancy_code
        delta = np.where(valid, totals[:, 1:] - totals[:, :1], 0.0)
        return StateEnergiesBatch(
            initial=totals[:, 0],
            delta=delta,
            valid=valid,
            migrating_species=nn_species,
        )

    # ------------------------------------------------------------------
    # Cross-caller batching: one fused call over many engines' miss rows
    # ------------------------------------------------------------------
    def batch_compatible(self, other: "VacancySystemEvaluator") -> bool:
        """Whether rows from ``other`` may share a batch with this one.

        Compatible means the stacked evaluation is *defined* and, for
        row-invariant potentials, per-row bit-identical to evaluating each
        caller's rows separately: both evaluators must run the very same
        potential object (not merely an equal one — weights, standardisation
        buffers, and backend staging all live on the instance) over the
        same TET geometry and species alphabet.
        """
        return (
            other.potential is self.potential
            and other.n_elements == self.n_elements
            and other.tet.n_all == self.tet.n_all
            and other.tet.n_region == self.tet.n_region
            and np.allclose(
                other.tet.shell_distances, self.tet.shell_distances
            )
        )

    def evaluate_batch_segments(
        self, segments: List[np.ndarray]
    ) -> List[StateEnergiesBatch]:
        """One fused :meth:`evaluate_batch` over VET segments of many callers.

        ``segments`` holds one ``(B_i, n_all)`` VET batch per caller (the
        campaign passes one per replica; ``B_i = 0`` segments are fine).
        All rows are stacked and evaluated through a *single* potential
        call — row dedup then runs across the whole stack, so identical
        environments in different replicas are evaluated once — and the
        result is sliced back into per-segment batches.  For row-invariant
        potentials every returned row is bit-identical to the segment
        evaluating alone, which is what lets the campaign change *when*
        rows are evaluated without ever changing their values.
        """
        if not segments:
            return []
        n_all = self.tet.n_all
        stacked = np.concatenate(
            [np.asarray(seg).reshape(-1, n_all) for seg in segments], axis=0
        )
        batch = self.evaluate_batch(stacked)
        bounds = np.concatenate(
            [[0], np.cumsum([np.asarray(s).reshape(-1, n_all).shape[0]
                             for s in segments])]
        )
        return [
            batch.segment(int(lo), int(hi))
            for lo, hi in zip(bounds[:-1], bounds[1:])
        ]

    # ------------------------------------------------------------------
    # Row-level re-rate: the incremental rebuild path's energy kernel
    # ------------------------------------------------------------------
    def evaluate_rows(
        self, vets: np.ndarray, pair_b: np.ndarray, pair_r: np.ndarray
    ) -> np.ndarray:
        """Trial-state energies of selected ``(vacancy, region row)`` pairs.

        For each pair ``(b, r)`` the 9 trial-state energies of region site
        ``r`` of vacancy ``b`` are computed exactly as :meth:`evaluate_batch`
        would: the state-0 shell counts of the row come from
        :func:`counts_from_types` on the row's neighbour gather, the eight
        swap states patch those counts with exact-integer scatter adds (the
        centre and the direction's 1NN trade species), and the potential is
        invoked once over the stacked ``P * 9`` rows.  For row-invariant
        potentials (``batch_row_invariant``) every returned energy is
        bit-identical to the corresponding element of the full batch — which
        is what lets the delta rebuild path recompute *only* rows whose
        inputs changed and splice them into a cached ``(B, 9, n_region)``
        energy matrix.

        Returns the ``(P, 9)`` energies as a NumPy array in the potential's
        native energy dtype.  This path is not cost-ledger instrumented
        (the Fig. 9 accounting models the full batched operator flow).
        """
        tet = self.tet
        xp = self.xp
        vets = np.asarray(vets)
        pair_b = np.asarray(pair_b, dtype=np.intp)
        pair_r = np.asarray(pair_r, dtype=np.intp)
        n_pairs = int(pair_b.size)
        n_states = self._n_states
        n_el = self.n_elements
        if n_pairs == 0:
            return np.zeros((0, n_states))
        # State-0 shell counts of every selected row — the same one-sgemm-
        # per-element kernel as :func:`counts_from_types`, inlined against
        # the cached shell one-hot (identical inputs, identical bits).
        vp = vets[pair_b]
        neighbors = vp[np.arange(n_pairs)[:, None], tet.net_ids[pair_r]]
        nb = xp.asarray(neighbors)
        counts0 = xp.empty(
            (n_pairs, tet.n_shells, n_el), dtype=xp.float32
        )
        for el in range(n_el):
            counts0[:, :, el] = xp.matmul(
                xp.astype(nb == el, xp.float32), self._shell_onehot
            )
        counts0_np = xp.to_numpy(counts0)                         # (P, S, E)
        # Swap patches: in state j the centre (VET position 0, species
        # ``vac``) and the 1NN target (position j, species ``mig``) trade
        # places.  The per-state count change is fetched from the
        # precomputed ``_patch_table`` (see ``__init__``) in one fused
        # ``(P, 9)`` row gather — the state-0 column indexes the table's
        # all-zero block, so a single contiguous add over the whole
        # ``(P, 9, S * E)`` tensor finishes the patched counts.
        states = vp[:, :n_states].astype(np.int64)                # (P, 9)
        vac = states[:, 0]                                        # (P,)
        idx = self._patch_code[pair_r]
        idx = idx + vac[:, None] * self._patch_species
        idx += states
        counts_np = self._patch_table[idx]                        # (P, 9, S*E)
        counts_np += counts0_np.reshape(n_pairs, 1, -1)
        # Centre species of each row per state: the row's own site, except
        # that in state j the two swap positions trade species — a row *at*
        # position j holds the vacancy, and the centre's own row (position
        # 0) holds each direction's migrating species.
        own = vets[pair_b, pair_r]
        centers = np.where(
            pair_r[:, None] == self._state_cols, vac[:, None], own[:, None]
        )
        centers = np.where((pair_r == 0)[:, None], states, centers)
        center_types = xp.asarray(centers.reshape(-1))
        flat_counts = xp.from_numpy(
            counts_np.reshape(-1, tet.n_shells, n_el)
        )
        dedup = self._dedup_rows(center_types, flat_counts)
        if dedup is not None:
            energies = self._unique_row_energies(
                dedup, center_types, flat_counts
            )
        else:
            energies = self._potential_energies(center_types, flat_counts)
        return xp.to_numpy(energies).reshape(n_pairs, n_states)

    def batch_from_row_energies(
        self, vets: np.ndarray, row_energies: np.ndarray
    ) -> StateEnergiesBatch:
        """Fold a ``(B, 9, n_region)`` energy matrix into hop energetics.

        The exact tail of :meth:`evaluate_batch` — same backend reduction,
        same validity masking — applied to an externally assembled energy
        matrix (cached rows spliced with freshly re-rated ones).
        """
        vets = np.asarray(vets)
        n_dir = self.tet.N_DIRECTIONS
        totals = self.xp.to_numpy(
            self.xp.sum(
                self.xp.from_numpy(row_energies), axis=2,
                dtype=self.xp.float64,
            )
        )
        nn_species = vets[:, 1 : 1 + n_dir]
        valid = nn_species != self.vacancy_code
        delta = np.where(valid, totals[:, 1:] - totals[:, :1], 0.0)
        return StateEnergiesBatch(
            initial=totals[:, 0],
            delta=delta,
            valid=valid,
            migrating_species=nn_species,
        )

    # ------------------------------------------------------------------
    # Delta path: update only the sites a hop actually affects
    # ------------------------------------------------------------------
    def evaluate_delta(self, vet: np.ndarray) -> StateEnergies:
        """Like :meth:`evaluate`, but via incremental count updates.

        For final state ``k`` only the sites within the cutoff of the centre
        or the 1NN target change their environment (plus those two sites
        themselves), so instead of rebuilding all ``9 x n_region`` feature
        counts, the initial counts are patched per direction:

        * the centre turns from vacancy into the migrating atom — every
          affected site gains one neighbour of that species in the shell the
          centre occupies in its list;
        * the target turns into a vacancy — one neighbour of that species is
          removed from the target's shell.

        Counts stay exact integers in float32, so per-site energies are
        bit-identical to the full path; only the final float64 summation
        order differs (agreement to ~1e-9 eV, verified by the tests).
        """
        tet = self.tet
        vet = np.asarray(vet)
        if vet.shape != (tet.n_all,):
            raise ValueError(f"VET must have shape ({tet.n_all},), got {vet.shape}")
        if vet[tet.CENTER] != self.vacancy_code:
            raise ValueError("VET centre must be a vacancy")

        # State-0 counts and per-site energies, computed once.
        neighbor_types = vet[tet.net_ids]
        counts0 = counts_from_types(
            neighbor_types, tet.cet_shell, tet.n_shells,
            n_elements=self.n_elements,
        )
        center0 = vet[: tet.n_region]
        e0 = self.xp.to_numpy(self._potential_energies(center0, counts0))
        initial = float(np.sum(e0, dtype=np.float64))

        nn_species = vet[1 : 1 + tet.N_DIRECTIONS]
        valid = nn_species != self.vacancy_code
        delta = np.zeros(tet.N_DIRECTIONS, dtype=np.float64)

        valid_dirs = np.flatnonzero(valid)
        if valid_dirs.size:
            # Concatenate every valid direction's affected block and patch the
            # counts with two fancy-indexed scatters, so the potential runs
            # once over the whole stack instead of once per direction.  The
            # patched elements and the per-direction summation slices are the
            # same as the former per-direction loop, so per-site energies and
            # deltas are bit-identical to it.
            blocks = [self._affected[k] for k in valid_dirs]
            lengths = np.array([b.size for b in blocks], dtype=np.intp)
            offsets = np.concatenate([[0], np.cumsum(lengths)])
            cat = np.concatenate(blocks)
            counts_f = counts0[cat]
            center_f = center0[cat].copy()
            mig = nn_species[valid_dirs]

            center_rows = np.concatenate(
                [off + self._delta_center_rows[k]
                 for off, k in zip(offsets, valid_dirs)]
            )
            center_shells = np.concatenate(
                [self._delta_center_shells[k] for k in valid_dirs]
            )
            center_species = np.repeat(
                mig, [self._delta_center_rows[k].size for k in valid_dirs]
            )
            counts_f[center_rows, center_shells, center_species] += 1.0

            target_rows = np.concatenate(
                [off + self._delta_target_rows[k]
                 for off, k in zip(offsets, valid_dirs)]
            )
            target_shells = np.concatenate(
                [self._delta_target_shells[k] for k in valid_dirs]
            )
            target_species = np.repeat(
                mig, [self._delta_target_rows[k].size for k in valid_dirs]
            )
            counts_f[target_rows, target_shells, target_species] -= 1.0

            # The two swap sites change their own species.
            center_f[offsets[:-1] + self._delta_pos0[valid_dirs]] = mig
            center_f[offsets[:-1] + self._delta_posm[valid_dirs]] = (
                self.vacancy_code
            )

            e_f = self.xp.to_numpy(self._potential_energies(center_f, counts_f))
            for i, k in enumerate(valid_dirs):
                lo, hi = offsets[i], offsets[i + 1]
                delta[k] = float(
                    np.sum(e_f[lo:hi], dtype=np.float64)
                    - np.sum(e0[blocks[i]], dtype=np.float64)
                )
        return StateEnergies(
            initial=initial,
            delta=delta,
            valid=valid,
            migrating_species=nn_species,
        )
