"""Shared incremental event kernel — one engine core for every AKMC driver.

The paper's serial innovations (vacancy-system caching, tree-based propensity
selection, distance invalidation) and the parallel sublattice driver used to
live in separate implementations; this module owns them once:

* a keyed :class:`~repro.core.vacancy_cache.VacancyCache` holding per-vacancy
  rate rows in structure-of-arrays form (slot-stable, with a free list for
  dynamic populations),
* a :class:`~repro.core.propensity.PropensityStore` over the per-slot total
  rates for the two-level selection — vacancy slot via the Fenwick tree,
  hop direction via the slot's cumulative rate row,
* vectorised distance invalidation: one broadcast minimum-image query of the
  changed positions against every fresh centre, instead of a Python loop
  over candidate slots.

Drivers parameterise the kernel with two callbacks — ``build_entry(key)``
computing a rate row (or a full :class:`CachedVacancySystem`) for a vacancy
key, and ``position_of(key)`` mapping a key to integer half-unit coordinates
— plus the distance semantics (periodic for the global serial lattice,
open for a rank's padded window).

Two hot-path implementations coexist behind :meth:`EventKernel.set_hot_path`:
``"vectorized"`` (default) runs invalidation/refresh/activation as array
sweeps over the cache's slot arrays; ``"legacy"`` keeps the pre-SoA per-slot
loops and the 27-bucket :class:`SpatialHashIndex` narrowing.  Both produce
bit-identical trajectories — the vectorised query evaluates the same
distance test in the same arithmetic — which the equivalence tests and the
``hot_path`` section of ``BENCH_kernel.json`` (old-vs-new per-event time)
both rely on.

Every kernel operation feeds the shared instrumentation counters
(:class:`KernelStats` + the cache's hit/rebuild stats), which the engines
surface through ``summary()`` and the parallel driver threads into
:class:`~repro.parallel.engine.CycleStats`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import numpy as np

from .backend import get_backend
from .propensity import FenwickPropensity, LinearPropensity, PropensityStore
from .vacancy_cache import BatchEntries, SimpleRateEntry, VacancyCache

__all__ = [
    "NoMovesError",
    "KernelStats",
    "SimpleRateEntry",
    "SpatialHashIndex",
    "EventKernel",
    "select_direction",
    "make_store",
]


class NoMovesError(RuntimeError):
    """Raised when no event can be executed (zero propensity / dead rate row)."""


def make_store(kind: str, n_slots: int, backend=None) -> PropensityStore:
    """Construct a propensity store by name (``"tree"`` or ``"linear"``)."""
    if kind == "tree":
        return FenwickPropensity(n_slots, backend=backend)
    if kind == "linear":
        return LinearPropensity(n_slots, backend=backend)
    raise ValueError(f"unknown propensity store {kind!r}")


def select_direction(rates: np.ndarray, remainder: float) -> int:
    """Hop direction from a per-direction rate row and a selection remainder.

    The remainder is ``u`` minus the cumulative propensity of all earlier
    slots (see :meth:`PropensityStore.select`); the direction is the first
    whose cumulative rate exceeds it.  Floating-point edge cases that land on
    the cumulative boundary are walked back onto the nearest direction with a
    positive rate; a row with *no* positive rate raises :class:`NoMovesError`
    instead of silently executing an impossible hop (a zero-rate direction
    encodes an invalid move, e.g. a vacancy-vacancy swap).
    """
    cum = np.cumsum(rates)
    direction = int(np.searchsorted(cum, remainder, side="right"))
    direction = min(direction, len(rates) - 1)
    while rates[direction] == 0.0 and direction > 0:
        direction -= 1
    if rates[direction] == 0.0:
        nonzero = np.flatnonzero(rates)
        if nonzero.size == 0:
            raise NoMovesError("selected rate row has no executable direction")
        direction = int(nonzero[0])
    return direction


@dataclass
class KernelStats:
    """Selection-side instrumentation (cache counters live on the cache)."""

    selections: int = 0
    selection_depth: int = 0
    rates_evaluated: int = 0
    #: Batched miss-path accounting: number of ``build_entries`` invocations,
    #: total rate rows they produced, and the largest single batch.
    rate_batches: int = 0
    batched_rows: int = 0
    max_batch_size: int = 0


class SpatialHashIndex:
    """Cell-bucketed index of slot positions in integer half-unit coordinates.

    Buckets have an edge length of one invalidation reach, so any position
    within the reach of a query point lies in one of the 27 neighbouring
    buckets — ``candidates_near`` returns that superset and the kernel
    applies the exact (optionally periodic minimum-image) distance test.

    The default (vectorised) hot path replaced the bucket narrowing with a
    broadcast distance query over the cache's centre matrix; this index
    remains as the ``"legacy"`` hot path (the old-vs-new benchmark) and as a
    standalone structure.
    """

    def __init__(
        self, bucket_half: int, periodic_half: Optional[Sequence[int]] = None
    ) -> None:
        self.bucket = max(1, int(bucket_half))
        self.periodic = (
            None
            if periodic_half is None
            else np.asarray(periodic_half, dtype=np.int64)
        )
        self._buckets: Dict[Tuple[int, int, int], Set[int]] = {}
        self._pos: Dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self._pos)

    def _canonical(self, half: np.ndarray) -> np.ndarray:
        half = np.asarray(half, dtype=np.int64)
        if self.periodic is None:
            return half
        return np.mod(half, self.periodic)

    def _bucket_key(self, canonical: np.ndarray) -> Tuple[int, int, int]:
        b = canonical // self.bucket
        return (int(b[0]), int(b[1]), int(b[2]))

    def insert(self, slot: int, half: np.ndarray) -> None:
        canonical = self._canonical(half)
        key = self._bucket_key(canonical)
        self._buckets.setdefault(key, set()).add(slot)
        self._pos[slot] = canonical

    def remove(self, slot: int) -> None:
        canonical = self._pos.pop(slot)
        key = self._bucket_key(canonical)
        members = self._buckets[key]
        members.discard(slot)
        if not members:
            del self._buckets[key]

    def move(self, slot: int, half: np.ndarray) -> None:
        self.remove(slot)
        self.insert(slot, half)

    def position(self, slot: int) -> np.ndarray:
        """Canonical stored position of a slot."""
        return self._pos[slot]

    def clear(self) -> None:
        self._buckets.clear()
        self._pos.clear()

    # ------------------------------------------------------------------
    def _axis_bucket_indices(self, lo: int, hi: int, axis: int) -> List[int]:
        """Bucket indices covering the (possibly wrapped) interval [lo, hi]."""
        b = self.bucket
        if self.periodic is None:
            return list(range(lo // b, hi // b + 1))
        dims = int(self.periodic[axis])
        if hi - lo + 1 >= dims:
            return list(range(0, (dims - 1) // b + 1))
        a, z = lo % dims, hi % dims
        if a <= z:
            return list(range(a // b, z // b + 1))
        # The interval wraps: cover [0, z] and [a, dims-1].
        return list(range(0, z // b + 1)) + list(
            range(a // b, (dims - 1) // b + 1)
        )

    def candidates_near(self, half: np.ndarray, reach: int) -> Set[int]:
        """Slots possibly within ``reach`` half-units of a point (superset)."""
        half = np.asarray(half, dtype=np.int64)
        axes = [
            self._axis_bucket_indices(int(half[ax]) - reach, int(half[ax]) + reach, ax)
            for ax in range(3)
        ]
        out: Set[int] = set()
        for bx in axes[0]:
            for by in axes[1]:
                for bz in axes[2]:
                    members = self._buckets.get((bx, by, bz))
                    if members:
                        out |= members
        return out

    def displacement(self, slot: int, half: np.ndarray) -> np.ndarray:
        """Float (minimum-image) half-unit displacement slot -> point."""
        delta = (self._canonical(half) - self._pos[slot]).astype(np.float64)
        if self.periodic is not None:
            span = self.periodic.astype(np.float64)
            delta -= span * np.round(delta / span)
        return delta


class EventKernel:
    """The shared event core: rate cache + two-level selection + invalidation.

    Parameters
    ----------
    build_entry:
        ``key -> entry`` callback computing a vacancy's rate data from the
        driver's live state.  The entry must expose ``rates`` (a ``(8,)``
        per-direction row) and ``total_rate``; a bare ndarray is wrapped in
        :class:`SimpleRateEntry`.
    build_entries:
        Optional ``keys -> entries`` callback evaluating a whole batch of
        stale vacancies through one fused pipeline (the paper's big-fusion
        batching applied to rate evaluation).  When provided, ``refresh()``
        queues every stale slot and rebuilds them in a single call instead of
        looping ``build_entry`` per slot; it may return a
        :class:`~repro.core.vacancy_cache.BatchEntries`, a bare ``(B, 8)``
        rate matrix, or one entry (or bare rate row) per key, in key order.
    position_of:
        ``key -> (3,)`` integer half-unit coordinates for the centre matrix.
    threshold:
        Invalidation distance threshold, in the driver's distance units.
    scale:
        Half-unit-to-distance-unit factor: ``a / 2`` for the serial engines
        (threshold in Angstrom), ``1.0`` for the parallel windows (threshold
        already in half-units).  A slot is stale when
        ``|scale * delta_half| <= threshold + 1e-9``.
    propensity:
        ``"tree"`` (paper default, O(log n) selection) or ``"linear"``.
    periodic_half:
        Half-unit box dimensions for periodic minimum-image distances, or
        ``None`` for open (padded-window) coordinates.
    keys:
        Initial vacancy keys, one slot each, in registry order.
    use_cache:
        When ``False`` every refresh first drops all entries ("cache all"
        semantics: no reuse at all, the OpenKMC baseline).
    hot_path:
        ``"vectorized"`` (default) for the SoA array sweeps, ``"legacy"``
        for the historical per-slot loops + spatial-hash narrowing.  The two
        are trajectory-equivalent; legacy exists for the old-vs-new
        benchmark and the equivalence tests.
    build_entries_delta:
        Optional ``(keys, slots) -> BatchEntries`` callback for the
        incremental rebuild path: it may consult the cache's delta-ready
        snapshots (patched VETs + per-row energies) and re-rate only the
        rows that changed, falling back to a from-scratch build per slot
        where no snapshot exists.  Required (together with
        ``patch_entries``) for ``rebuild_path="delta"``.
    patch_entries:
        Optional ``(slots, points_half) -> None`` callback invoked by the
        distance invalidation when ``rebuild_path`` resolves to delta: it
        scatter-updates the stored VET snapshots of the hit slots from the
        driver's current occupancy at the changed positions.  This is how
        invalidation carries *what* changed instead of just *that*
        something changed.
    rebuild_path:
        ``"auto"`` (default) uses the incremental path whenever the delta
        callbacks are configured and the vectorized hot path + cache are
        active; ``"full"`` forces the bit-exact from-scratch rebuild;
        ``"delta"`` demands the incremental path and raises when its
        prerequisites are missing.  Both paths produce bit-identical
        trajectories (the delta path re-rates from exactly re-derivable
        inputs); ``"full"`` remains as the reference and fallback.
    backend:
        Array backend name/instance (see :mod:`repro.core.backend`) used for
        the broadcast invalidation query and the propensity store's slot
        arrays.  The cache's SoA arrays and all keys/positions stay
        NumPy-resident (they are the checkpoint serialisation boundary).
    """

    def __init__(
        self,
        build_entry: Callable[[Hashable], object],
        position_of: Callable[[Hashable], np.ndarray],
        *,
        threshold: float,
        scale: float = 1.0,
        propensity: str = "tree",
        periodic_half: Optional[Sequence[int]] = None,
        keys: Iterable[Hashable] = (),
        use_cache: bool = True,
        build_entries: Optional[
            Callable[[Sequence[Hashable]], Sequence[object]]
        ] = None,
        hot_path: str = "vectorized",
        backend=None,
        build_entries_delta: Optional[
            Callable[[Sequence[Hashable], np.ndarray], object]
        ] = None,
        patch_entries: Optional[
            Callable[[np.ndarray, np.ndarray], None]
        ] = None,
        rebuild_path: str = "auto",
    ) -> None:
        self.build_entry = build_entry
        self.build_entries = build_entries
        self.build_entries_delta = build_entries_delta
        self.patch_entries = patch_entries
        self.position_of = position_of
        self.threshold = float(threshold)
        self.scale = float(scale)
        self.use_cache = bool(use_cache)
        self.xp = get_backend(backend)
        self.cache = VacancyCache(keys)
        self.store = make_store(propensity, self.cache.n_slots, backend=self.xp)
        self._reach = max(1, int(np.ceil((self.threshold + 1e-9) / self.scale)))
        self.periodic = (
            None
            if periodic_half is None
            else np.asarray(periodic_half, dtype=np.int64)
        )
        self.index: Optional[SpatialHashIndex] = None
        self.stats = KernelStats()
        #: Physical active mask, or ``None`` meaning "all live slots" (the
        #: serial engines); the parallel driver narrows it per sector.
        self._active_mask: Optional[np.ndarray] = None
        #: Optional row-energy cache whose counters this kernel reports
        #: (:class:`~repro.core.rowcache.RowEnergyCache`).  The kernel does
        #: not consult it — the evaluator does — it only folds the cache's
        #: hits/misses/evictions into :meth:`counters`/:meth:`summary` so
        #: engines and cycle stats see one counter namespace.  Left ``None``
        #: on parallel rank kernels: their evaluator (and cache) is shared,
        #: so the simulation merges the cache's counters exactly once.
        self.row_cache = None
        for slot in self.cache.live_slots():
            self._set_centre(slot, self.position_of(self.cache.key_of(slot)))
        self._hot_path = "vectorized"
        if hot_path != "vectorized":
            self.set_hot_path(hot_path)
        self._rebuild_path = "auto"
        if rebuild_path != "auto":
            self.set_rebuild_path(rebuild_path)

    # ------------------------------------------------------------------
    # Hot-path selection + coordinate plumbing
    # ------------------------------------------------------------------
    #: Allowed hot-path implementations.
    HOT_PATHS = ("vectorized", "legacy")

    @property
    def hot_path(self) -> str:
        """Active hot-path mode; assignment validates and switches paths."""
        return self._hot_path

    @hot_path.setter
    def hot_path(self, mode: str) -> None:
        # Route direct assignment through set_hot_path so an unknown mode
        # string can never silently disable the spatial index bookkeeping.
        self.set_hot_path(mode)

    def set_hot_path(self, mode: str) -> None:
        """Switch between the ``"vectorized"`` and ``"legacy"`` hot paths.

        Both compute identical stale sets and propensities; legacy re-runs
        the pre-SoA per-slot loops (spatial-hash candidates + scalar Fenwick
        updates) for benchmarking and equivalence testing.  Raises
        :class:`ValueError` for anything outside :data:`HOT_PATHS`.
        """
        if mode not in self.HOT_PATHS:
            raise ValueError(
                f"unknown hot path {mode!r}; allowed modes: {self.HOT_PATHS}"
            )
        if mode == "legacy" and getattr(self, "_rebuild_path", "auto") == "delta":
            raise ValueError(
                "rebuild_path='delta' requires the vectorized hot path; "
                "switch rebuild_path to 'auto'/'full' first"
            )
        self._hot_path = mode
        # Any hot-path switch drops the delta snapshots: the legacy path
        # neither patches nor consults them, so re-entering the vectorized
        # path must start from a clean full rebuild.
        self.cache.drop_delta_snapshots()
        if mode == "legacy":
            periodic = None if self.periodic is None else self.periodic
            self.index = SpatialHashIndex(self._reach, periodic)
            for slot in self.cache.live_slots():
                self.index.insert(slot, self.cache.centres[slot])
        else:
            self.index = None

    # ------------------------------------------------------------------
    # Rebuild-path selection (full re-encode vs incremental re-rate)
    # ------------------------------------------------------------------
    #: Allowed rebuild-path modes.
    REBUILD_PATHS = ("auto", "full", "delta")

    @property
    def rebuild_path(self) -> str:
        """Requested rebuild mode; assignment validates and switches."""
        return self._rebuild_path

    @rebuild_path.setter
    def rebuild_path(self, mode: str) -> None:
        self.set_rebuild_path(mode)

    def set_rebuild_path(self, mode: str) -> None:
        """Switch between the full and incremental (delta) rebuild paths.

        ``"auto"`` resolves to delta whenever the prerequisites hold (see
        :meth:`delta_active`); ``"delta"`` raises if they do not.  Any
        switch drops the cache's delta snapshots so the next refresh
        rebuilds from scratch — the two paths then stay bit-identical from
        any switch point.
        """
        if mode not in self.REBUILD_PATHS:
            raise ValueError(
                f"unknown rebuild path {mode!r}; allowed modes: "
                f"{self.REBUILD_PATHS}"
            )
        if mode == "delta":
            if self.build_entries_delta is None or self.patch_entries is None:
                raise ValueError(
                    "rebuild_path='delta' needs build_entries_delta and "
                    "patch_entries callbacks"
                )
            if self._hot_path != "vectorized":
                raise ValueError(
                    "rebuild_path='delta' requires the vectorized hot path"
                )
            if not self.use_cache:
                raise ValueError(
                    "rebuild_path='delta' requires use_cache=True"
                )
        self._rebuild_path = mode
        self.cache.drop_delta_snapshots()

    def delta_active(self) -> bool:
        """Whether the next refresh/invalidation uses the delta path."""
        if self._rebuild_path == "full":
            return False
        if self._rebuild_path == "delta":
            return True
        return (
            self.build_entries_delta is not None
            and self.patch_entries is not None
            and self._hot_path == "vectorized"
            and self.use_cache
        )

    def _canonical(self, half: np.ndarray) -> np.ndarray:
        half = np.asarray(half, dtype=np.int64)
        if self.periodic is None:
            return half
        return np.mod(half, self.periodic)

    def _set_centre(self, slot: int, half: np.ndarray) -> None:
        self.cache.centres[slot] = self._canonical(half)

    def _pad_active_mask(self) -> None:
        """Keep the active mask aligned with the cache's physical arrays."""
        mask = self._active_mask
        if mask is not None and mask.shape[0] < self.cache.live.shape[0]:
            grown = np.zeros(self.cache.live.shape[0], dtype=bool)
            grown[: mask.shape[0]] = mask
            self._active_mask = grown

    # ------------------------------------------------------------------
    # Registry: dynamic vacancy populations
    # ------------------------------------------------------------------
    def key_of(self, slot: int) -> Hashable:
        return self.cache.key_of(slot)

    def slot_of(self, key: Hashable) -> Optional[int]:
        return self.cache.slot_of(key)

    def live_slots(self) -> List[int]:
        return self.cache.live_slots()

    def add(self, key: Hashable) -> int:
        """Register a vacancy; it starts stale (and inactive under a sector)."""
        slot = self.cache.add_slot(key)
        if slot >= self.store.n_slots:
            self.store.grow(max(slot + 1, 2 * self.store.n_slots))
        else:
            self.store.update(slot, 0.0)
        self._pad_active_mask()
        self._set_centre(slot, self.position_of(key))
        if self.index is not None:
            self.index.insert(slot, self.cache.centres[slot])
        return slot

    def remove(self, slot: int) -> None:
        """Unregister a vacancy; its slot parks at zero propensity."""
        self.cache.remove_slot(slot)
        self.store.update(slot, 0.0)
        if self.index is not None:
            self.index.remove(slot)
        if self._active_mask is not None:
            self._active_mask[slot] = False

    def move(self, slot: int, new_key: Hashable) -> None:
        """A vacancy hopped: rekey the slot, invalidate it, park at zero."""
        self.cache.move(slot, new_key)
        self.store.update(slot, 0.0)
        self._set_centre(slot, self.position_of(new_key))
        if self.index is not None:
            self.index.move(slot, self.cache.centres[slot])

    def set_keys(
        self,
        keys: Iterable[Hashable],
        free_order: Optional[Iterable[int]] = None,
    ) -> None:
        """Reset the registry order (checkpoint restore); all slots go stale.

        ``None`` keys mark parked slots; ``free_order`` restores the free
        list's stack order (see :meth:`VacancyCache.set_keys`).
        """
        self.cache.set_keys(keys, free_order=free_order)
        self.store.resize(self.cache.n_slots)
        self._active_mask = None
        for slot in self.cache.live_slots():
            self._set_centre(slot, self.position_of(self.cache.key_of(slot)))
        if self.index is not None:
            self.index.clear()
            for slot in self.cache.live_slots():
                self.index.insert(slot, self.cache.centres[slot])

    # ------------------------------------------------------------------
    # Sector activation (parallel sublattice protocol)
    # ------------------------------------------------------------------
    def set_active(self, slots: Optional[Iterable[int]]) -> None:
        """Restrict selection to ``slots`` (``None`` -> all live slots)."""
        if self.hot_path == "legacy":
            self._set_active_legacy(slots)
            return
        cache = self.cache
        if slots is None:
            self._active_mask = None
            held = cache.live & cache.fresh
        else:
            mask = np.zeros(cache.live.shape[0], dtype=bool)
            idx = np.asarray(list(slots), dtype=np.int64)
            if idx.size:
                mask[idx] = True
            self._active_mask = mask
            held = cache.live & cache.fresh & mask
        # Parked/stale slots already sit at zero in the store, so writing
        # zeros there is a no-op on the tree bits (it is a pure function of
        # the values array) — one vectorised sweep covers every slot.
        n = cache.n_slots
        values = np.where(held, cache.total_rates, 0.0)
        self.store.update_many(np.arange(n, dtype=np.int64), values[:n])

    def _set_active_legacy(self, slots: Optional[Iterable[int]]) -> None:
        if slots is None:
            self._active_mask = None
            for slot in self.cache.live_slots():
                entry = self.cache.get(slot)
                self.store.update(
                    slot, entry.total_rate if entry is not None else 0.0
                )
            return
        mask = np.zeros(self.cache.live.shape[0], dtype=bool)
        for s in slots:
            mask[int(s)] = True
        self._active_mask = mask
        for slot in self.cache.live_slots():
            entry = self.cache.get(slot)
            if mask[slot] and entry is not None:
                self.store.update(slot, entry.total_rate)
            else:
                self.store.update(slot, 0.0)

    def deactivate(self, slot: int) -> None:
        """Drop a slot from the active set (it keeps its cache entry)."""
        if self._active_mask is None:
            self._active_mask = self.cache.live.copy()
        self._active_mask[slot] = False
        self.store.update(slot, 0.0)

    def _active_live(self) -> List[int]:
        if self._active_mask is None:
            return self.cache.live_slots()
        held = self.cache.live & self._active_mask
        return [int(s) for s in np.flatnonzero(held)]

    # ------------------------------------------------------------------
    # Refresh + selection
    # ------------------------------------------------------------------
    def stale_batch(self) -> np.ndarray:
        """Active stale slots, ascending, *without* rebuilding them.

        This is the read-only prologue of :meth:`refresh`: cache-off
        semantics are applied (``use_cache=False`` drops every entry first)
        and the sector mask narrows the candidates, but no build callback
        runs.  A caller that evaluates the batch externally — the
        cross-replica campaign funnels many kernels' stale sets into one
        fused potential call — hands the results back through
        :meth:`apply_refresh`.
        """
        if not self.use_cache:
            self.invalidate_all()
        stale_mask = self.cache.stale_mask()
        if self._active_mask is not None:
            stale_mask = stale_mask & self._active_mask
        return np.flatnonzero(stale_mask)  # ascending, like the sorted set

    def apply_refresh(self, stale: np.ndarray, entries) -> None:
        """Scatter externally built entries for a :meth:`stale_batch` result.

        ``entries`` follows the ``build_entries`` return contract (a
        :class:`~repro.core.vacancy_cache.BatchEntries`, a bare ``(B, 8)``
        rate matrix, or one entry per slot) and must line up with ``stale``
        in slot order.  Stores, propensity updates, and the batched-miss
        counters are identical to the in-kernel rebuild, so a trajectory
        driven through ``stale_batch`` + external evaluation +
        ``apply_refresh`` is bit-identical to one driven by :meth:`refresh`
        — only *where* the rows were evaluated differs.  Cache-hit (reuse)
        accounting stays with :meth:`refresh`, which the driver still calls
        afterwards (finding nothing stale).
        """
        stale = np.asarray(stale, dtype=np.int64)
        n = len(entries)
        if n != stale.size:
            raise RuntimeError(
                f"apply_refresh got {n} entries for {stale.size} slots"
            )
        if stale.size == 0:
            return
        self.stats.rate_batches += 1
        self.stats.batched_rows += int(stale.size)
        self.stats.max_batch_size = max(
            self.stats.max_batch_size, int(stale.size)
        )
        self._store_entries(stale, entries)

    def refresh(self) -> None:
        """Bring every active slot up to date before selection.

        Only stale slots are rebuilt (O(|stale| log n)); fresh active slots
        count as cache hits, exactly as the per-slot bookkeeping of the
        original serial engine.  Invalidation is deferred by design — slots
        only mark stale until the next selection — so when a
        ``build_entries`` callback is configured, the whole stale set is
        re-evaluated through one fused batch call here (post-hop, post-ghost
        exchange, and cold starts alike).
        """
        stale = self.stale_batch()
        cache = self.cache
        if self._active_mask is not None:
            n_active = int(np.count_nonzero(cache.live & self._active_mask))
        else:
            n_active = cache.n_live
        if stale.size:
            if self.hot_path == "legacy":
                self._refresh_slots_legacy(stale)
            else:
                self._refresh_slots(stale)
        cache.stats.reuses += max(0, n_active - int(stale.size))

    def _built_entries(self, stale: np.ndarray):
        """Run the batched build callback over the stale keys, with counters."""
        keys = self.cache.keys_of(stale)
        if self.delta_active():
            entries = self.build_entries_delta(keys, stale)
        else:
            entries = self.build_entries(keys)
        n = len(entries)
        if n != stale.size:
            raise RuntimeError(
                f"build_entries returned {n} entries for {stale.size} keys"
            )
        self.stats.rate_batches += 1
        self.stats.batched_rows += int(stale.size)
        self.stats.max_batch_size = max(self.stats.max_batch_size, int(stale.size))
        return entries

    def _store_entries(self, stale: np.ndarray, entries) -> None:
        """Scatter built entries into the cache + one propensity sweep."""
        cache = self.cache
        if isinstance(entries, BatchEntries):
            cache.store_batch(stale, entries)
            self.stats.rates_evaluated += int(entries.rates.size)
        elif isinstance(entries, np.ndarray) and entries.ndim == 2:
            cache.store_rates(stale, entries)
            self.stats.rates_evaluated += int(entries.size)
        else:
            for slot, entry in zip(stale, entries):
                if isinstance(entry, np.ndarray):
                    entry = SimpleRateEntry(entry)
                cache.store(int(slot), entry)
                self.stats.rates_evaluated += int(
                    np.asarray(entry.rates).size
                )
        self.store.update_many(stale, cache.total_rates[stale])

    def _refresh_slots(self, stale: np.ndarray) -> None:
        """SoA rebuild: batch store + one vectorised propensity sweep."""
        cache = self.cache
        if self.build_entries is not None or (
            self.delta_active() and self.build_entries_delta is not None
        ):
            entries = self._built_entries(stale)
        else:
            entries = []
            for slot in stale:
                entry = self.build_entry(cache.key_of(int(slot)))
                entries.append(entry)
        self._store_entries(stale, entries)

    def _refresh_slots_legacy(self, stale: np.ndarray) -> None:
        """Pre-SoA rebuild: per-slot stores and scalar propensity updates."""
        if self.build_entries is not None:
            entries = list(self._built_entries(stale))
        else:
            entries = [
                self.build_entry(self.cache.key_of(int(slot))) for slot in stale
            ]
        for slot, entry in zip(stale, entries):
            if isinstance(entry, np.ndarray):
                entry = SimpleRateEntry(entry)
            self.cache.store(int(slot), entry)
            self.store.update(int(slot), entry.total_rate)
            self.stats.rates_evaluated += int(np.asarray(entry.rates).size)

    @property
    def total(self) -> float:
        """Current total propensity over the active slots."""
        return self.store.total

    def select(self, u: float) -> Tuple[int, int, object]:
        """Two-level selection: slot via the store, direction via its row.

        Returns ``(slot, direction, entry)``.  Raises :class:`NoMovesError`
        when a numerical boundary lands on a slot with no executable
        direction (e.g. a parked slot reached through the tree's clamp).
        """
        slot, remainder = self.store.select(u)
        entry = self.cache.get(slot)
        if entry is None:
            raise NoMovesError(f"selection landed on empty slot {slot}")
        direction = select_direction(entry.rates, remainder)
        self.stats.selections += 1
        self.stats.selection_depth += int(
            getattr(self.store, "last_select_depth", 0)
        )
        return slot, direction, entry

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def invalidate_near(self, points_half: np.ndarray) -> int:
        """Invalidate cached entries near changed positions (Sec. 3.2).

        ``points_half`` is an ``(n, 3)`` array of half-unit coordinates.
        The default path broadcasts them against every fresh centre in one
        (periodic minimum-image, where configured) distance evaluation; the
        legacy path narrows through the spatial hash and loops.  Both apply
        the identical exact test ``|scale * delta| <= threshold + 1e-9`` in
        the same floating-point operation order, so the stale sets agree
        bitwise.  Returns the number of entries invalidated.

        When the delta rebuild path is active the same broadcast query also
        covers stale-but-delta-ready slots, and every hit slot with a
        snapshot is handed to ``patch_entries`` together with the changed
        positions — invalidation then carries *what* changed, which is what
        keeps the snapshots in sync with the lattice between refreshes.
        The fresh->stale transitions and invalidation counters are computed
        exactly as in full mode (the extra snapshot slots never enter the
        stats), so trajectories and counters agree across modes.
        """
        points = np.asarray(points_half, dtype=np.int64).reshape(-1, 3)
        if points.shape[0] == 0:
            return 0
        if self.hot_path == "legacy":
            return self._invalidate_near_legacy(points)
        cache = self.cache
        delta_on = self.delta_active()
        if delta_on:
            held = np.flatnonzero(
                cache.live & (cache.fresh | cache.delta_ready)
            )
        else:
            held = np.flatnonzero(cache.live & cache.fresh)
        if held.size == 0:
            return 0
        # The broadcast distance query runs through the array backend; the
        # NumPy backend executes the identical expression (same op order,
        # same bits) the pre-refactor code inlined here.
        xp = self.xp
        pts = xp.from_numpy(self._canonical(points).astype(np.float64))
        centres = xp.from_numpy(cache.centres[held].astype(np.float64))
        delta = pts[:, None, :] - centres[None, :, :]
        if self.periodic is not None:
            span = xp.from_numpy(self.periodic.astype(np.float64))
            delta = delta - span * xp.round(delta / span)
        delta = delta * self.scale
        dist = xp.sqrt(xp.sum(delta * delta, axis=-1))
        hit = xp.to_numpy(xp.any(dist <= self.threshold + 1e-9, axis=0))
        hits = held[hit]
        if delta_on:
            fresh_hits = hits[cache.fresh[hits]]
            patch_slots = hits[cache.delta_ready[hits]]
            if patch_slots.size:
                # Patch before anything reads the snapshots again; the
                # window sites of every affected slot lie inside the
                # invalidation ball (the threshold is the max VET offset
                # reach), so the distance hits are a superset of the slots
                # whose VETs can contain the changed sites.
                self.patch_entries(patch_slots, points)
        else:
            fresh_hits = hits
        cache.fresh[fresh_hits] = False
        cache.stats.invalidations += int(fresh_hits.size)
        return int(fresh_hits.size)

    def _invalidate_near_legacy(self, points: np.ndarray) -> int:
        count = 0
        for point in points:
            for slot in self.index.candidates_near(point, self._reach):
                if self.cache.get(slot) is None:
                    continue
                delta = self.index.displacement(slot, point) * self.scale
                if np.sqrt(np.sum(delta * delta)) <= self.threshold + 1e-9:
                    self.cache.invalidate_slot(slot)
                    count += 1
        return count

    def invalidate_all(self) -> None:
        """Drop every live entry (cache-off mode / global resync)."""
        self.cache.invalidate_all()

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """Snapshot of every monotonic counter (for per-cycle deltas)."""
        return {
            "cache_hits": self.cache.stats.reuses,
            "cache_misses": self.cache.stats.rebuilds,
            "invalidations": self.cache.stats.invalidations,
            "rates_evaluated": self.stats.rates_evaluated,
            "selections": self.stats.selections,
            "selection_depth": self.stats.selection_depth,
            "rate_batches": self.stats.rate_batches,
            "batched_rows": self.stats.batched_rows,
            # Always present (0 without a cache) so per-cycle counter
            # deltas stay well-defined across configurations.
            **(
                self.row_cache.counters()
                if self.row_cache is not None
                else {
                    "row_cache_hits": 0,
                    "row_cache_misses": 0,
                    "row_cache_evictions": 0,
                }
            ),
        }

    def summary(self) -> Dict[str, float]:
        """One merged set of counters for benchmarks and reports."""
        out = dict(self.cache.summary())
        out["cache_hits"] = out.pop("reuses")
        out["cache_misses"] = out.pop("rebuilds")
        out["rates_evaluated"] = self.stats.rates_evaluated
        out["selections"] = self.stats.selections
        out["selection_depth"] = self.stats.selection_depth
        out["mean_selection_depth"] = (
            self.stats.selection_depth / self.stats.selections
            if self.stats.selections
            else 0.0
        )
        out["rate_batches"] = self.stats.rate_batches
        out["batched_rows"] = self.stats.batched_rows
        out["max_batch_size"] = self.stats.max_batch_size
        out["mean_batch_size"] = (
            self.stats.batched_rows / self.stats.rate_batches
            if self.stats.rate_batches
            else 0.0
        )
        out["rebuild_path"] = "delta" if self.delta_active() else "full"
        if self.row_cache is not None:
            out.update(self.row_cache.summary())
        return out
