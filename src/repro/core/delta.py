"""Incremental rebuild support — the miss pipeline as a re-rate.

The full miss path re-derives everything for every stale slot: gather
``occupancy[vet_ids]``, re-encode all ``(9, n_all)`` trial states, run the
potential over every row.  But a hop flips exactly two sites, so almost all
of that work reproduces bits the cache already holds.  This module owns the
driver-side half of the ``rebuild_path="delta"`` mode (paper Sec. 3.2's
keep-it-resident argument applied to the encoded state itself):

* :meth:`DeltaRebuilder.patch_entries` — called by the kernel's distance
  invalidation with the changed half-positions: it maps them to site ids,
  reads the *current* species, scatter-updates the stored VET snapshots of
  every hit slot and accumulates which region rows went dirty (via the
  evaluator's per-position dirty-row table).
* :meth:`DeltaRebuilder.build_entries` — the delta-aware refresh: slots
  with a snapshot re-rate only their dirty rows through
  :meth:`~repro.core.vacancy_system.VacancySystemEvaluator.evaluate_rows`;
  slots without one (fresh hops, recycled slots, post-restore) are gathered
  from scratch.  Both sets share a single concatenated potential call, so
  the per-call fixed cost is paid once per refresh, exactly as in the full
  path.

Bit-exactness: patched VETs are exact integer species codes (identical to a
re-gather), shell counts are exact integers in float32, and the shipped
potentials are row-invariant (``batch_row_invariant``), so splicing freshly
re-rated rows into the cached ``(B, 9, n_region)`` energy matrix reproduces
the full build's matrix bit for bit — and the shared
``batch_from_row_energies`` tail then yields bitwise-identical rates.

The two engines differ only in coordinate plumbing, injected as callbacks:

* ``sites_of(keys)`` — centre ids of a key batch (flat lattice ids for the
  serial engine, window-flat ids for a parallel rank);
* ``gather(keys)`` — from-scratch ``(vet_ids, vets)`` for a key subset;
* ``locate(points_half)`` — current ``(ids, species)`` at changed
  half-positions, in the same id space as the stored ``vet_ids``.
"""

from __future__ import annotations

from typing import Callable, Hashable, Sequence, Tuple

import numpy as np

from .vacancy_cache import BatchEntries, VacancyCache
from .vacancy_system import VacancySystemEvaluator

__all__ = ["DeltaRebuilder"]


class DeltaRebuilder:
    """Driver-side callbacks for the kernel's incremental rebuild path."""

    def __init__(
        self,
        cache: VacancyCache,
        evaluator: VacancySystemEvaluator,
        rate_model,
        *,
        sites_of: Callable[[Sequence[Hashable]], np.ndarray],
        gather: Callable[[Sequence[Hashable]], Tuple[np.ndarray, np.ndarray]],
        locate: Callable[[np.ndarray], Tuple[np.ndarray, np.ndarray]],
    ) -> None:
        self.cache = cache
        self.evaluator = evaluator
        self.rate_model = rate_model
        self.sites_of = sites_of
        self.gather = gather
        self.locate = locate
        self._r_all = np.arange(evaluator.tet.n_region, dtype=np.intp)

    # ------------------------------------------------------------------
    # Invalidation payload: scatter lattice changes into the snapshots
    # ------------------------------------------------------------------
    def patch_entries(self, slots: np.ndarray, points_half: np.ndarray) -> None:
        """Sync the hit slots' VET snapshots with the changed positions.

        ``slots`` are the delta-ready slots the kernel's distance query hit;
        ``points_half`` the changed half-positions.  The current species are
        read from the driver's live state (the swap has already executed),
        so a position written twice in one exchange still lands on its final
        value.  Positions outside a slot's window simply match nothing.
        """
        slots = np.asarray(slots, dtype=np.int64)
        points = np.asarray(points_half, dtype=np.int64).reshape(-1, 3)
        if slots.size == 0 or points.shape[0] == 0:
            return
        ids, species = self.locate(points)
        ids = np.asarray(ids).reshape(-1)
        vet_ids = self.cache.vet_ids_of(slots)
        # Every (slot, VET position) holding a changed site.  A site id can
        # legitimately appear at several positions of one slot (periodic
        # wrap in tiny boxes) — each occurrence is patched, exactly as a
        # re-gather of occupancy[vet_ids] would refresh each of them.
        s_idx, pos, m_idx = np.nonzero(
            vet_ids[:, :, None] == ids[None, None, :]
        )
        if s_idx.size == 0:
            return
        if ids.size > 2 or (ids.size == 2 and ids[0] == ids[1]):
            # Duplicate ids in one call (ghost double-writes) match the same
            # (slot, position) twice with equal final species; keep one.
            # The hop case (two distinct sites) skips this outright.
            key = s_idx * vet_ids.shape[1] + pos
            _, keep = np.unique(key, return_index=True)
            s_idx, pos, m_idx = s_idx[keep], pos[keep], m_idx[keep]
        patch_slots = slots[s_idx]
        new = np.asarray(species).reshape(-1)[m_idx]
        old = self.cache.patch_vets(patch_slots, pos, new)
        changed = np.flatnonzero(old != new)
        if changed.size:
            self.cache.or_dirty_rows(
                patch_slots[changed],
                self.evaluator.dirty_rows_of_position[pos[changed]],
            )

    # ------------------------------------------------------------------
    # Refresh: re-rate dirty rows, full-build the rest, one potential call
    # ------------------------------------------------------------------
    def build_entries(
        self, keys: Sequence[Hashable], slots: np.ndarray
    ) -> BatchEntries:
        """Delta-aware batch build for the kernel's refresh.

        Returns a :class:`BatchEntries` carrying ``row_energies``, so the
        store marks every rebuilt slot delta-ready for the next round.
        """
        cache = self.cache
        evaluator = self.evaluator
        tet = evaluator.tet
        slots = np.asarray(slots, dtype=np.int64)
        n_batch = int(slots.size)
        n_region = tet.n_region
        n_states = 1 + tet.N_DIRECTIONS
        ready = cache.delta_ready[slots]
        ready_local = np.flatnonzero(ready)
        full_local = np.flatnonzero(~ready)

        if ready_local.size == 0:
            # Cold start / post-drop: every slot is a from-scratch build and
            # the slot arrays may not exist yet, so the gather IS the batch.
            vet_ids, vets = self.gather(keys)
            vet_ids = np.asarray(vet_ids)
            vets = np.asarray(vets)
            vets_current = False
        else:
            # Mixed batch: adopt the from-scratch gathers into the slot
            # arrays, then read the whole batch back as one fancy gather —
            # the snapshot slots' rows are already current (patched in
            # place at invalidation time), so nothing is copied out only to
            # be written back by the store.
            if full_local.size:
                f_vet_ids, f_vets = self.gather([keys[i] for i in full_local])
                cache.adopt_vets(slots[full_local], f_vet_ids, f_vets)
            vet_ids = cache.vet_ids_of(slots)
            vets = cache.vets_of(slots)
            vets_current = True
        if np.any(vets[:, tet.CENTER] != evaluator.vacancy_code):
            raise ValueError("every VET centre must be a vacancy")

        # Row worklist: every row of a from-scratch slot, only the dirty
        # rows of a snapshot slot.
        pair_b = np.repeat(full_local, n_region)
        pair_r = np.tile(self._r_all, full_local.size)
        if ready_local.size:
            rslots = slots[ready_local]
            r_row_e = cache.row_e_of(rslots)
            rb, rr = np.nonzero(cache.dirty_rows_of(rslots))
            pair_b = np.concatenate([pair_b, ready_local[rb]])
            pair_r = np.concatenate([pair_r, rr])
        rows = evaluator.evaluate_rows(vets, pair_b, pair_r)

        if ready_local.size:
            e_dtype = r_row_e.dtype
        else:
            e_dtype = rows.dtype if rows.size else np.float64
        row_e = np.empty((n_batch, n_states, n_region), dtype=e_dtype)
        if ready_local.size:
            row_e[ready_local] = r_row_e
        if pair_b.size:
            row_e[pair_b, :, pair_r] = rows

        energies = evaluator.batch_from_row_energies(vets, row_e)
        rates = self.rate_model.rates_batch(energies)
        return BatchEntries(
            sites=np.asarray(self.sites_of(keys)),
            vet_ids=vet_ids,
            vets=vets,
            energies=energies,
            rates=rates,
            row_energies=row_e,
            vets_current=vets_current,
        )
