"""Serial AKMC engines.

:class:`TensorKMCEngine` is the paper's serial algorithm: triple-encoding
vacancy systems, the vacancy cache, and tree-based propensity selection.  The
OpenKMC-style baseline in :mod:`repro.baseline.openkmc` shares the event loop
through :class:`SerialAKMCBase` but rebuilds every vacancy system on every
step ("cache all" semantics, which for rates means no reuse at all) — with the
same seed the two produce bit-identical trajectories, which is exactly the
validation of Fig. 8.

Both engines are thin drivers over the shared
:class:`~repro.core.kernel.EventKernel`, which owns the rate cache, the
two-level propensity selection and the spatial-hash invalidation index; the
parallel :class:`~repro.parallel.engine.RankState` sits on the very same
kernel.  The engine keeps only the physics callbacks (vacancy-system
construction from the live lattice) and the event loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional

import numpy as np

from ..constants import TEMPERATURE_RPV
from ..lattice.occupancy import LatticeState
from ..potentials.base import CountsPotential
from .backend import get_backend
from .delta import DeltaRebuilder
from .kernel import EventKernel, NoMovesError
from .profiling import PhaseProfiler, merge_disjoint
from .propensity import PropensityStore
from .rates import RateModel, residence_time
from .rowcache import RowEnergyCache, resolve_row_cache
from .tet import TripleEncoding
from .vacancy_cache import BatchEntries, CachedVacancySystem, VacancyCache
from .vacancy_system import VacancySystemEvaluator

__all__ = ["KMCEvent", "NoMovesError", "SerialAKMCBase", "TensorKMCEngine"]


@dataclass(frozen=True)
class KMCEvent:
    """One executed vacancy hop."""

    step: int
    time: float
    dt: float
    slot: int
    from_site: int
    to_site: int
    direction: int
    migrating_species: int
    total_rate: float


class SerialAKMCBase:
    """Shared event loop of the serial engines.

    Parameters
    ----------
    lattice:
        The periodic occupancy state (mutated in place).
    potential:
        Counts-based potential whose shells match ``tet``.
    tet:
        Triple-encoding tables for the interaction cutoff.
    temperature:
        Simulation temperature in Kelvin.
    rng:
        Random generator; the draw order is fixed (selection then time, see
        :func:`repro.core.rates.residence_time`), so identical seeds give
        identical trajectories across engine variants.
    propensity:
        ``"tree"`` (paper default) or ``"linear"``.
    evaluation:
        ``"full"`` rebuilds features for all 1+8 states (the paper's fast
        feature operator semantics); ``"delta"`` patches only the affected
        sites per direction (equal to ~1e-9 eV, faster in Python).
    batching:
        ``"batched"`` evaluates all cache-miss vacancies queued since the
        last selection through one fused
        :meth:`~repro.core.vacancy_system.VacancySystemEvaluator.evaluate_batch`
        pipeline (the paper's big-fusion batching, Sec. 3.4/Fig. 9);
        ``"scalar"`` keeps the one-VET-per-call miss path.  ``"auto"``
        (default) batches exactly when the potential declares
        ``batch_row_invariant`` — per-row rates are then bit-identical to the
        scalar path, so fixed-seed trajectories do not depend on the mode.
        Every shipped potential now qualifies: the tabulated/EAM reductions
        are row independent by construction, and the NNP runs its inference
        through the deterministic tiled-GEMM kernel
        (:mod:`repro.operators.tilegemm`) whose fixed call shapes and
        accumulation order make each row's bits batch-independent.
        ``"full"`` evaluation only; the ``"delta"`` ablation always runs
        scalar.
    rebuild_path:
        ``"auto"`` (default) turns the cache-miss rebuild into an
        incremental re-rate whenever the batched miss path is active (full
        evaluation, row-invariant potential, cache on): each slot's VET and
        per-row trial-state energies stay resident in the cache, hops
        scatter-patch them, and the refresh re-evaluates only the rows
        whose inputs changed.  ``"full"`` forces the from-scratch rebuild;
        ``"delta"`` demands the incremental path and raises when the
        prerequisites are missing.  Trajectories are bit-identical across
        the modes (see :mod:`repro.core.delta`).
    row_cache:
        ``"auto"`` (default) attaches a persistent
        :class:`~repro.core.rowcache.RowEnergyCache` exactly where in-batch
        row dedup turns on (row-invariant network potentials): unique-row
        energies are memoized across batches and steps, so the rebuild
        phase hash-looks-up recurring environments instead of re-running
        the GEMM stack.  ``"on"`` forces attachment, ``"off"`` disables it.
        Bitwise-neutral under ``batch_row_invariant`` — trajectories are
        identical with the cache on or off.
    row_cache_mb:
        Optional resident-size budget in MiB for the row cache; the LRU
        clock evicts past it.  ``None`` (default) means unbounded.
    backend:
        Array backend name/instance for the hot path (default: the
        ``REPRO_BACKEND`` environment variable, falling back to the NumPy
        golden reference).  The potential is asked to move its buffers via
        :meth:`~repro.potentials.base.CountsPotential.set_backend`; the
        evaluator and the event kernel thread the same handle.  Lattice
        occupancy, the cache's slot arrays, and all serialised state stay
        NumPy-resident whichever backend runs the math.
    """

    #: Whether cached vacancy systems may be reused between steps.
    use_cache: bool = True

    def __init__(
        self,
        lattice: LatticeState,
        potential: CountsPotential,
        tet: TripleEncoding,
        temperature: float = TEMPERATURE_RPV,
        rng: Optional[np.random.Generator] = None,
        propensity: str = "tree",
        evaluation: str = "full",
        batching: str = "auto",
        ea0=None,
        backend=None,
        rebuild_path: str = "auto",
        row_cache: str = "auto",
        row_cache_mb: Optional[float] = None,
    ) -> None:
        if abs(lattice.a - tet.geometry.a) > 1e-12:
            raise ValueError("lattice constant mismatch between lattice and TET")
        if evaluation not in ("full", "delta"):
            raise ValueError(f"unknown evaluation mode {evaluation!r}")
        if batching not in ("auto", "batched", "scalar"):
            raise ValueError(f"unknown batching mode {batching!r}")
        if rebuild_path not in EventKernel.REBUILD_PATHS:
            raise ValueError(
                f"unknown rebuild path {rebuild_path!r}; allowed modes: "
                f"{EventKernel.REBUILD_PATHS}"
            )
        if batching == "auto":
            batching = (
                "batched" if getattr(potential, "batch_row_invariant", False)
                else "scalar"
            )
        # Validates the mode string (raising on typos) and decides whether
        # this potential gets a cache under "auto".
        row_cache_on = resolve_row_cache(row_cache, potential)
        self.row_cache_mode = row_cache
        self.evaluation = evaluation
        self.batching = batching
        self.rebuild_path = rebuild_path
        self.lattice = lattice
        self.potential = potential
        self.tet = tet
        self.xp = get_backend(backend)
        potential.set_backend(self.xp)
        self.evaluator = VacancySystemEvaluator(tet, potential, backend=self.xp)
        if lattice.vacancy_code != self.evaluator.vacancy_code:
            raise ValueError(
                f"lattice vacancy code {lattice.vacancy_code} != potential's "
                f"{self.evaluator.vacancy_code} (n_elements mismatch)"
            )
        self.rate_model = RateModel(temperature, ea0=ea0)
        self.rng = rng if rng is not None else np.random.default_rng()
        vac_sites = sorted(int(s) for s in lattice.vacancy_ids)
        if not vac_sites:
            raise ValueError("lattice contains no vacancies; nothing can evolve")
        batched_miss = batching == "batched" and evaluation == "full"
        # The incremental rebuild rides on the batched miss path: it needs
        # the full BatchEntries payload in the cache, a row-invariant
        # potential (cached rows must be batch-composition independent),
        # and the cache itself.
        delta_capable = (
            batched_miss
            and self.use_cache
            and getattr(potential, "batch_row_invariant", False)
        )
        if rebuild_path == "delta" and not delta_capable:
            raise ValueError(
                "rebuild_path='delta' requires batched full evaluation, a "
                "batch_row_invariant potential, and use_cache=True"
            )
        self.kernel = EventKernel(
            self._build_for_site,
            self._half_of_site,
            threshold=tet.invalidation_radius,
            scale=lattice.a / 2.0,
            propensity=propensity,
            periodic_half=2 * np.asarray(lattice.shape, dtype=np.int64),
            keys=vac_sites,
            use_cache=self.use_cache,
            build_entries=self._build_for_sites if batched_miss else None,
            backend=self.xp,
        )
        if delta_capable:
            rebuilder = DeltaRebuilder(
                self.kernel.cache,
                self.evaluator,
                self.rate_model,
                sites_of=self._delta_sites_of,
                gather=self._delta_gather,
                locate=self._delta_locate,
            )
            self.kernel.build_entries_delta = rebuilder.build_entries
            self.kernel.patch_entries = rebuilder.patch_entries
        if rebuild_path != "auto":
            self.kernel.set_rebuild_path(rebuild_path)
        self.row_cache: Optional[RowEnergyCache] = None
        if row_cache_on:
            budget = (
                None if row_cache_mb is None
                else int(float(row_cache_mb) * 1024 * 1024)
            )
            self.attach_row_cache(RowEnergyCache(max_bytes=budget))
        self.time = 0.0
        self.step_count = 0
        self.events: List[KMCEvent] = []
        self.record_events = False
        #: Per-phase wall-time attribution of the event loop (rebuild /
        #: select / hop / invalidate), surfaced through :meth:`summary`.
        self.profiler = PhaseProfiler()

    # ------------------------------------------------------------------
    # Kernel plumbing (kept under their historical names)
    # ------------------------------------------------------------------
    @property
    def cache(self) -> VacancyCache:
        """The kernel's vacancy-system cache."""
        return self.kernel.cache

    @property
    def store(self) -> PropensityStore:
        """The kernel's propensity store."""
        return self.kernel.store

    def _half_of_site(self, site: Hashable) -> np.ndarray:
        return self.lattice.half_coords(np.asarray([int(site)], dtype=np.int64))[0]

    # ------------------------------------------------------------------
    # Vacancy-system (re)construction
    # ------------------------------------------------------------------
    def _build_for_site(self, site: Hashable) -> CachedVacancySystem:
        """Build the vacancy system at a flat site from the current lattice."""
        site = int(site)
        vet_ids = self.lattice.neighbor_ids(site, self.tet.all_offsets)
        vet = self.lattice.occupancy[vet_ids]
        if self.evaluation == "delta":
            energies = self.evaluator.evaluate_delta(vet)
        else:
            energies = self.evaluator.evaluate(vet)
        rates = self.rate_model.rates(energies)
        return CachedVacancySystem(
            site=site, vet_ids=vet_ids, vet=vet, energies=energies, rates=rates
        )

    def _gather_for_sites(self, sites):
        """``(ids, vet_ids, vets)`` gather of a site batch, no evaluation.

        The read-only half of the batched miss path, split out so an
        external driver (the cross-replica campaign) can collect many
        engines' miss rows and evaluate them through one shared potential
        call; :meth:`_build_for_sites` and the campaign produce identical
        gathers by construction.
        """
        ids = np.asarray([int(s) for s in sites], dtype=np.int64)
        half = self.lattice.half_coords(ids)
        vet_ids = self.lattice.ids_from_half(
            half[:, None, :] + self.tet.all_offsets[None, :, :]
        )
        vets = self.lattice.occupancy[vet_ids]
        return ids, vet_ids, vets

    def _build_for_sites(self, sites) -> BatchEntries:
        """Batched miss path: all queued vacancy systems in one fused pass.

        VET gathers, feature counts, and the potential evaluation all run
        once over the stacked ``(B, 9, n_all)`` trial states (see
        :meth:`VacancySystemEvaluator.evaluate_batch`).  The result stays in
        array form: the kernel scatters the whole :class:`BatchEntries` into
        the cache's slot arrays without per-slot Python objects.
        """
        ids, vet_ids, vets = self._gather_for_sites(sites)
        energies = self.evaluator.evaluate_batch(vets)
        rates = self.rate_model.rates_batch(energies)
        return BatchEntries(
            sites=ids, vet_ids=vet_ids, vets=vets, energies=energies,
            rates=rates,
        )

    # ------------------------------------------------------------------
    # Delta-rebuild plumbing (see repro.core.delta): flat lattice ids are
    # both the slot keys and the VET id space.
    # ------------------------------------------------------------------
    def _delta_sites_of(self, keys) -> np.ndarray:
        return np.asarray([int(s) for s in keys], dtype=np.int64)

    def _delta_gather(self, keys):
        """From-scratch ``(vet_ids, vets)`` gather for a subset of keys.

        Keys are lattice sites and the VET offsets are BCC translations, so
        every generated coordinate is a valid site by construction and the
        parity check is skipped.  The usual batch is a single key (the
        event's mover), so the centre decomposition runs in Python scalars
        and only the per-window work is vectorised — the same modular
        arithmetic as
        :meth:`~repro.lattice.occupancy.LatticeState.ids_from_half`,
        producing identical ids.
        """
        lat = self.lattice
        nx, ny, nz = lat.shape
        offsets = self.tet.all_offsets
        vet_ids = np.empty((len(keys), offsets.shape[0]), dtype=np.int64)
        for n, key in enumerate(keys):
            sid = int(key)
            k = sid % nz
            j = (sid // nz) % ny
            i = (sid // (nz * ny)) % nx
            s = sid // (nz * ny * nx)
            vet_half = offsets + np.array(
                (2 * i + s, 2 * j + s, 2 * k + s), dtype=np.int64
            )
            ss = vet_half[:, 0] & 1
            cells = (vet_half - ss[:, None]) >> 1
            cells %= lat._dims
            vet_ids[n] = (
                (ss * nx + cells[:, 0]) * ny + cells[:, 1]
            ) * nz + cells[:, 2]
        return vet_ids, self.lattice.occupancy[vet_ids]

    def _delta_locate(self, points_half: np.ndarray):
        """Current ``(ids, species)`` at changed half-positions."""
        ids = self.lattice.ids_from_half(points_half, checked=False)
        return ids, self.lattice.occupancy[ids]

    def build_system(self, slot: int) -> CachedVacancySystem:
        """Build the vacancy system of a slot from the current lattice."""
        return self._build_for_site(self.kernel.key_of(slot))

    def _refresh(self) -> None:
        """Bring all slots up to date before selection."""
        self.kernel.refresh()

    # ------------------------------------------------------------------
    # The KMC step
    # ------------------------------------------------------------------
    def step(self) -> KMCEvent:
        """Execute one residence-time KMC event and advance the clock."""
        kernel = self.kernel
        profiler = self.profiler
        with profiler.phase("rebuild"):
            kernel.refresh()
        with profiler.phase("select"):
            total = kernel.total
            if total <= 0.0:
                raise NoMovesError(
                    "total propensity is zero — system is frozen"
                )
            u_select = self.rng.random() * total
            slot, direction, entry = kernel.select(u_select)
            dt = residence_time(total, 1.0 - self.rng.random())

        with profiler.phase("hop"):
            from_site = entry.site
            nn_offset = self.tet.nn_offsets[direction]
            to_site = int(
                self.lattice.neighbor_ids(from_site, nn_offset[None, :])[0]
            )
            migrating = int(self.lattice.occupancy[to_site])
            self.lattice.swap(from_site, to_site)
            kernel.move(slot, to_site)
        with profiler.phase("invalidate"):
            kernel.invalidate_near(
                self.lattice.half_coords(
                    np.asarray([from_site, to_site], dtype=np.int64)
                )
            )

        self.time += dt
        self.step_count += 1
        event = KMCEvent(
            step=self.step_count,
            time=self.time,
            dt=dt,
            slot=slot,
            from_site=from_site,
            to_site=to_site,
            direction=direction,
            migrating_species=migrating,
            total_rate=total,
        )
        if self.record_events:
            self.events.append(event)
        return event

    #: Allowed ``on_no_moves`` policies of :meth:`run`.
    NO_MOVES_POLICIES = ("raise", "stop")

    def run(
        self,
        n_steps: Optional[int] = None,
        t_end: Optional[float] = None,
        callback: Optional[Callable[[KMCEvent], None]] = None,
        on_no_moves: str = "raise",
    ) -> int:
        """Run until a step budget or a simulated-time horizon is exhausted.

        Returns the number of events executed.  At least one of ``n_steps``
        and ``t_end`` must be provided.

        ``on_no_moves`` decides what happens when the rate tree empties
        mid-horizon (every direction of every vacancy invalid — e.g. all
        remaining movers annihilated or frozen): ``"raise"`` (default, the
        historical behaviour) propagates :class:`NoMovesError` to the
        caller, ``"stop"`` ends the run cleanly and returns the events
        executed so far — a frozen replica is a *result*, not a crash,
        which is what campaign drivers need.
        """
        if n_steps is None and t_end is None:
            raise ValueError("provide n_steps and/or t_end")
        if on_no_moves not in self.NO_MOVES_POLICIES:
            raise ValueError(
                f"unknown on_no_moves policy {on_no_moves!r}; allowed: "
                f"{self.NO_MOVES_POLICIES}"
            )
        executed = 0
        while True:
            if n_steps is not None and executed >= n_steps:
                break
            if t_end is not None and self.time >= t_end:
                break
            try:
                event = self.step()
            except NoMovesError:
                if on_no_moves == "raise":
                    raise
                break
            executed += 1
            if callback is not None:
                callback(event)
        return executed

    def attach_cost_ledger(self, ledger):
        """Charge all rate evaluations (scalar and batched miss paths) to
        ``ledger`` via the Fig. 9 operator cost model; see
        :meth:`~repro.core.vacancy_system.VacancySystemEvaluator.attach_cost_ledger`.
        """
        return self.evaluator.attach_cost_ledger(ledger)

    def attach_row_cache(self, cache):
        """Install ``cache`` as the persistent row-energy memo.

        Threads the cache into the evaluator (which consults it on every
        dedup'd miss batch) and the kernel (which reports its counters);
        the campaign uses this to swap every admitted replica onto one
        shared cache.  Pass ``None`` to detach.  Returns the cache.
        """
        self.row_cache = cache
        self.kernel.row_cache = cache
        return self.evaluator.attach_row_cache(cache)

    # ------------------------------------------------------------------
    def total_propensity(self) -> float:
        """Current total event rate (refreshing stale systems first)."""
        self.kernel.refresh()
        return self.kernel.total

    def restore_slot_order(self, sites, free_order=None) -> None:
        """Restore a checkpointed slot -> site registry.

        The slot order encodes event identity in a resumed trajectory; this
        also resyncs the kernel's spatial index and marks everything stale.
        ``None`` entries in ``sites`` are parked (freed) slots and
        ``free_order`` restores their recycling stack order, so a run that
        annihilated/created vacancies resumes bit-exactly.
        """
        self.kernel.set_keys(
            (None if s is None else int(s) for s in sites),
            free_order=free_order,
        )

    def summary(self) -> Dict[str, float]:
        """Merged engine + kernel instrumentation counters and phase times.

        The three sources — kernel counters, the engine's step/clock state,
        and the profiler's ``{phase}_seconds`` timings — share one flat
        namespace; :func:`~repro.core.profiling.merge_disjoint` guarantees a
        key collision raises instead of silently overwriting a counter.
        """
        return merge_disjoint(
            self.kernel.summary(),
            {"steps": self.step_count, "time": self.time},
            self.profiler.summary(),
        )


class TensorKMCEngine(SerialAKMCBase):
    """The paper's serial engine: triple-encoding + vacancy cache + tree."""

    use_cache = True
