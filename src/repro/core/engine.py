"""Serial AKMC engines.

:class:`TensorKMCEngine` is the paper's serial algorithm: triple-encoding
vacancy systems, the vacancy cache, and tree-based propensity selection.  The
OpenKMC-style baseline in :mod:`repro.baseline.openkmc` shares the event loop
through :class:`SerialAKMCBase` but rebuilds every vacancy system on every
step ("cache all" semantics, which for rates means no reuse at all) — with the
same seed the two produce bit-identical trajectories, which is exactly the
validation of Fig. 8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

import numpy as np

from ..constants import TEMPERATURE_RPV
from ..lattice.occupancy import LatticeState
from ..potentials.base import CountsPotential
from .propensity import FenwickPropensity, LinearPropensity, PropensityStore
from .rates import RateModel, residence_time
from .tet import TripleEncoding
from .vacancy_cache import CachedVacancySystem, VacancyCache
from .vacancy_system import VacancySystemEvaluator

__all__ = ["KMCEvent", "NoMovesError", "SerialAKMCBase", "TensorKMCEngine"]


class NoMovesError(RuntimeError):
    """Raised when the total propensity is zero (no possible events)."""


@dataclass(frozen=True)
class KMCEvent:
    """One executed vacancy hop."""

    step: int
    time: float
    dt: float
    slot: int
    from_site: int
    to_site: int
    direction: int
    migrating_species: int
    total_rate: float


def _make_store(kind: str, n_slots: int) -> PropensityStore:
    if kind == "tree":
        return FenwickPropensity(n_slots)
    if kind == "linear":
        return LinearPropensity(n_slots)
    raise ValueError(f"unknown propensity store {kind!r}")


class SerialAKMCBase:
    """Shared event loop of the serial engines.

    Parameters
    ----------
    lattice:
        The periodic occupancy state (mutated in place).
    potential:
        Counts-based potential whose shells match ``tet``.
    tet:
        Triple-encoding tables for the interaction cutoff.
    temperature:
        Simulation temperature in Kelvin.
    rng:
        Random generator; the draw order is fixed (selection then time), so
        identical seeds give identical trajectories across engine variants.
    propensity:
        ``"tree"`` (paper default) or ``"linear"``.
    evaluation:
        ``"full"`` rebuilds features for all 1+8 states (the paper's fast
        feature operator semantics); ``"delta"`` patches only the affected
        sites per direction (equal to ~1e-9 eV, faster in Python).
    """

    #: Whether cached vacancy systems may be reused between steps.
    use_cache: bool = True

    def __init__(
        self,
        lattice: LatticeState,
        potential: CountsPotential,
        tet: TripleEncoding,
        temperature: float = TEMPERATURE_RPV,
        rng: Optional[np.random.Generator] = None,
        propensity: str = "tree",
        evaluation: str = "full",
        ea0=None,
    ) -> None:
        if abs(lattice.a - tet.geometry.a) > 1e-12:
            raise ValueError("lattice constant mismatch between lattice and TET")
        if evaluation not in ("full", "delta"):
            raise ValueError(f"unknown evaluation mode {evaluation!r}")
        self.evaluation = evaluation
        self.lattice = lattice
        self.potential = potential
        self.tet = tet
        self.evaluator = VacancySystemEvaluator(tet, potential)
        if lattice.vacancy_code != self.evaluator.vacancy_code:
            raise ValueError(
                f"lattice vacancy code {lattice.vacancy_code} != potential's "
                f"{self.evaluator.vacancy_code} (n_elements mismatch)"
            )
        self.rate_model = RateModel(temperature, ea0=ea0)
        self.rng = rng if rng is not None else np.random.default_rng()
        vac_sites = sorted(int(s) for s in lattice.vacancy_ids)
        if not vac_sites:
            raise ValueError("lattice contains no vacancies; nothing can evolve")
        self.cache = VacancyCache(vac_sites)
        self.store = _make_store(propensity, self.cache.n_slots)
        self.time = 0.0
        self.step_count = 0
        self.events: List[KMCEvent] = []
        self.record_events = False

    # ------------------------------------------------------------------
    # Vacancy-system (re)construction
    # ------------------------------------------------------------------
    def build_system(self, slot: int) -> CachedVacancySystem:
        """Build the vacancy system of a slot from the current lattice."""
        site = self.cache.slot_site(slot)
        vet_ids = self.lattice.neighbor_ids(site, self.tet.all_offsets)
        vet = self.lattice.occupancy[vet_ids]
        if self.evaluation == "delta":
            energies = self.evaluator.evaluate_delta(vet)
        else:
            energies = self.evaluator.evaluate(vet)
        rates = self.rate_model.rates(energies)
        return CachedVacancySystem(
            site=site, vet_ids=vet_ids, vet=vet, energies=energies, rates=rates
        )

    def _refresh(self) -> None:
        """Bring all slots up to date before selection."""
        if not self.use_cache:
            self.cache.invalidate_all()
        for slot in range(self.cache.n_slots):
            entry = self.cache.get(slot)
            if entry is None:
                entry = self.build_system(slot)
                self.cache.store(slot, entry)
                self.store.update(slot, entry.total_rate)
            else:
                self.cache.mark_reused(slot)

    # ------------------------------------------------------------------
    # The KMC step
    # ------------------------------------------------------------------
    def step(self) -> KMCEvent:
        """Execute one residence-time KMC event and advance the clock."""
        self._refresh()
        total = self.store.total
        if total <= 0.0:
            raise NoMovesError("total propensity is zero — system is frozen")
        u_select = self.rng.random() * total
        slot, remainder = self.store.select(u_select)
        entry = self.cache.get(slot)
        assert entry is not None
        cum = np.cumsum(entry.rates)
        direction = int(np.searchsorted(cum, remainder, side="right"))
        direction = min(direction, 7)
        while entry.rates[direction] == 0.0 and direction > 0:
            direction -= 1

        dt = residence_time(total, 1.0 - self.rng.random())

        from_site = entry.site
        nn_offset = self.tet.nn_offsets[direction]
        to_site = int(self.lattice.neighbor_ids(from_site, nn_offset[None, :])[0])
        migrating = int(self.lattice.occupancy[to_site])
        self.lattice.swap(from_site, to_site)
        self.cache.move(slot, to_site)
        self.store.update(slot, 0.0)
        self.cache.invalidate_near(
            [from_site, to_site], self.lattice, self.tet.invalidation_radius
        )

        self.time += dt
        self.step_count += 1
        event = KMCEvent(
            step=self.step_count,
            time=self.time,
            dt=dt,
            slot=slot,
            from_site=from_site,
            to_site=to_site,
            direction=direction,
            migrating_species=migrating,
            total_rate=total,
        )
        if self.record_events:
            self.events.append(event)
        return event

    def run(
        self,
        n_steps: Optional[int] = None,
        t_end: Optional[float] = None,
        callback: Optional[Callable[[KMCEvent], None]] = None,
    ) -> int:
        """Run until a step budget or a simulated-time horizon is exhausted.

        Returns the number of events executed.  At least one of ``n_steps``
        and ``t_end`` must be provided.
        """
        if n_steps is None and t_end is None:
            raise ValueError("provide n_steps and/or t_end")
        executed = 0
        while True:
            if n_steps is not None and executed >= n_steps:
                break
            if t_end is not None and self.time >= t_end:
                break
            event = self.step()
            executed += 1
            if callback is not None:
                callback(event)
        return executed

    # ------------------------------------------------------------------
    def total_propensity(self) -> float:
        """Current total event rate (refreshing stale systems first)."""
        self._refresh()
        return self.store.total


class TensorKMCEngine(SerialAKMCBase):
    """The paper's serial engine: triple-encoding + vacancy cache + tree."""

    use_cache = True
