"""Pluggable array backend — one Array-API-style namespace for the hot path.

Every hot-path layer of the reproduction (trial-state construction, the
fast feature operator, the deterministic tiled-GEMM inference, propensity
bookkeeping, distance invalidation) is a pure array program: the same
sequence of element-wise ops, gathers/scatters and GEMMs regardless of which
library executes them.  TorchSim reports ~200x MLIP-path speedups from
dispatching exactly such programs to GPU tensors, and the SMC-AI port makes
the same argument for trillion-atom Monte Carlo — so instead of welding ~45
modules to ``import numpy``, the hot path threads an :class:`ArrayBackend`
handle whose methods *are* the library's functions.

Contract
--------
* :class:`NumpyBackend` is the **bit-exact golden reference**: its methods
  delegate directly to the very NumPy calls the pre-refactor code made, so a
  refactored module running under it executes byte-for-byte the same
  arithmetic.  All golden-checksum tests run against it unchanged.
* :class:`TorchBackend` is optional and import-guarded: it registers lazily
  and raises :class:`BackendUnavailableError` with a clear message when
  torch is not importable.  CPU float64 agrees with NumPy to the last bit
  for element-wise ops; float32 GEMMs may differ in final bits (different
  BLAS blocking), so cross-backend agreement is enforced within documented
  tolerances by ``tests/test_backend.py`` rather than bitwise.
* **Serialisation boundaries stay NumPy.**  Everything that is written out
  (checkpoints, BENCH JSON, xyz/event writers) or that encodes trajectory
  identity (the vacancy cache's SoA slot arrays, lattice occupancy, RNG
  streams) is NumPy-resident; backend arrays cross back through
  :meth:`ArrayBackend.to_numpy` before they reach those structures.  A run
  saved under one backend therefore restores under any other.

Selection
---------
:func:`get_backend` resolves, in order: an explicit
name/instance argument, the ``REPRO_BACKEND`` environment variable, and the
``"numpy"`` default.  Engines and the CLI expose a ``backend=`` knob that
feeds straight into it.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "NumpyBackend",
    "TorchBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "to_numpy",
]

#: Environment variable consulted by :func:`get_backend` when no explicit
#: backend is requested.
ENV_VAR = "REPRO_BACKEND"


class BackendUnavailableError(RuntimeError):
    """A registered backend cannot be constructed (missing dependency)."""


class ArrayBackend:
    """Array-API-style namespace shim the hot path is written against.

    Concrete backends provide a small, documented op set; the NumPy
    implementations are direct aliases of the :mod:`numpy` functions the
    pre-refactor code called, which is what makes the default backend
    bit-exact by construction.  Methods mirror NumPy call conventions
    (``axis=``, ``dtype=`` keywords); dtype tokens (``xp.float32`` etc.) are
    backend-native objects accepted by every method taking ``dtype``.

    To add a backend: subclass, implement the ops below over your array
    type, expose native dtype tokens, and :func:`register_backend` a factory
    under a new name.  ``to_numpy``/``from_numpy`` must round-trip exactly;
    ``from_numpy`` should be zero-copy where the library allows it.
    """

    #: Registry name of the backend.
    name: str = "abstract"
    #: True only for the golden-reference NumPy backend.
    is_numpy: bool = False
    #: True when :meth:`from_numpy` aliases host memory (zero-copy), so
    #: backend views of live NumPy buffers track in-place updates.  False on
    #: device backends (e.g. torch+CUDA), where consumers must re-stage.
    aliases_host: bool = False

    # -- conversion boundary -------------------------------------------
    def asarray(self, x, dtype=None):
        raise NotImplementedError

    def from_numpy(self, x):
        """Backend array sharing memory with ``x`` where possible."""
        raise NotImplementedError

    def to_numpy(self, x) -> np.ndarray:
        """``x`` as a NumPy array (the serialisation boundary)."""
        raise NotImplementedError

    def astype(self, x, dtype):
        raise NotImplementedError

    # -- construction ---------------------------------------------------
    def zeros(self, shape, dtype=None):
        raise NotImplementedError

    def empty(self, shape, dtype=None):
        raise NotImplementedError

    def arange(self, n, dtype=None):
        raise NotImplementedError

    def broadcast_copy(self, x, shape):
        """A writable array of ``shape`` holding ``x`` broadcast into it."""
        raise NotImplementedError

    def concatenate(self, arrays, axis=0):
        raise NotImplementedError

    # -- elementwise / reductions --------------------------------------
    def where(self, cond, a, b):
        raise NotImplementedError

    def sum(self, x, axis=None, dtype=None):
        raise NotImplementedError

    def any(self, x, axis=None):
        raise NotImplementedError

    def sqrt(self, x):
        raise NotImplementedError

    def round(self, x):
        raise NotImplementedError

    def relu_(self, x):
        """In-place ``max(x, 0)`` — the fused bias+ReLU activation step."""
        raise NotImplementedError

    def scatter_add(self, x, indices, values):
        """In-place ``x[indices] += values`` with duplicate accumulation.

        ``indices`` is a tuple of integer index arrays (one per axis of
        ``x``, NumPy fancy-indexing style); repeated index tuples accumulate
        instead of racing, matching ``np.add.at``.  Returns ``x``.
        """
        raise NotImplementedError

    # -- linear algebra -------------------------------------------------
    def matmul(self, a, b):
        raise NotImplementedError

    def einsum(self, spec, *operands):
        raise NotImplementedError

    def result_type(self, a, b):
        raise NotImplementedError

    # -- selection / ordering ------------------------------------------
    def cumsum(self, x, axis=None):
        raise NotImplementedError

    def searchsorted(self, a, v, side="left"):
        raise NotImplementedError

    def unique_first_inverse(self, keys) -> Tuple[np.ndarray, object]:
        """First-occurrence indices and inverse map of ``keys``.

        ``first`` is returned as a NumPy index array (it indexes both
        backend and NumPy arrays); ``inverse`` is a backend array aligned
        with ``keys``.  Matches ``np.unique(keys, return_index=True,
        return_inverse=True)[1:]`` semantics (sorted unique values).
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class NumpyBackend(ArrayBackend):
    """The golden reference: every op *is* the NumPy function.

    ``from_numpy``/``to_numpy`` are identity passes for ndarrays, so code
    threading this backend executes byte-for-byte what the pre-refactor
    direct-``numpy`` code did — all existing checksum tests hold unchanged.
    """

    name = "numpy"
    is_numpy = True
    aliases_host = True

    float32 = np.float32
    float64 = np.float64
    int64 = np.int64
    int32 = np.int32
    int8 = np.int8
    bool_ = np.bool_

    def asarray(self, x, dtype=None):
        return np.asarray(x, dtype=dtype)

    def from_numpy(self, x):
        return np.asarray(x)

    def to_numpy(self, x) -> np.ndarray:
        return np.asarray(x)

    def astype(self, x, dtype):
        return np.asarray(x).astype(dtype)

    def zeros(self, shape, dtype=None):
        return np.zeros(shape, dtype=dtype)

    def empty(self, shape, dtype=None):
        return np.empty(shape, dtype=dtype)

    def arange(self, n, dtype=None):
        return np.arange(n, dtype=dtype)

    def broadcast_copy(self, x, shape):
        return np.broadcast_to(x, shape).copy()

    def concatenate(self, arrays, axis=0):
        return np.concatenate(arrays, axis=axis)

    def where(self, cond, a, b):
        return np.where(cond, a, b)

    def sum(self, x, axis=None, dtype=None):
        return np.sum(x, axis=axis, dtype=dtype)

    def any(self, x, axis=None):
        return np.any(x, axis=axis)

    def sqrt(self, x):
        return np.sqrt(x)

    def round(self, x):
        return np.round(x)

    def relu_(self, x):
        np.maximum(x, 0.0, out=x)
        return x

    def scatter_add(self, x, indices, values):
        np.add.at(x, tuple(np.asarray(i) for i in indices), values)
        return x

    def matmul(self, a, b):
        return np.matmul(a, b)

    def einsum(self, spec, *operands):
        return np.einsum(spec, *operands)

    def result_type(self, a, b):
        return np.result_type(a, b)

    def cumsum(self, x, axis=None):
        return np.cumsum(x, axis=axis)

    def searchsorted(self, a, v, side="left"):
        return np.searchsorted(a, v, side=side)

    def unique_first_inverse(self, keys):
        _, first, inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        return first, inverse


class TorchBackend(ArrayBackend):
    """PyTorch tensors behind the same namespace (CPU by default).

    Import-guarded: constructing it without torch raises
    :class:`BackendUnavailableError`.  ``from_numpy`` is zero-copy on CPU
    (the tensor aliases the ndarray's buffer), which preserves the tiled
    kernel's live-weight-aliasing contract; on CUDA devices weights are
    re-staged per call instead.  Cross-backend agreement with the NumPy
    reference is tolerance-based, not bitwise — see ``tests/test_backend.py``
    for the enforced bounds.
    """

    name = "torch"
    is_numpy = False

    def __init__(self, device: Optional[str] = None) -> None:
        try:
            import torch
        except ImportError as exc:  # pragma: no cover - env dependent
            raise BackendUnavailableError(
                "backend 'torch' requires PyTorch, which is not importable "
                "in this environment (pip install torch); the 'numpy' "
                "backend is always available"
            ) from exc
        self.torch = torch
        self.device = torch.device(device or "cpu")
        self.aliases_host = self.device.type == "cpu"
        self.float32 = torch.float32
        self.float64 = torch.float64
        self.int64 = torch.int64
        self.int32 = torch.int32
        self.int8 = torch.int8
        self.bool_ = torch.bool

    # -- dtype plumbing -------------------------------------------------
    def _dtype(self, dtype):
        """Map a NumPy dtype / dtype token to the torch equivalent."""
        if dtype is None or isinstance(dtype, self.torch.dtype):
            return dtype
        key = np.dtype(dtype).name
        mapped = {
            "float32": self.torch.float32,
            "float64": self.torch.float64,
            "int64": self.torch.int64,
            "int32": self.torch.int32,
            "int16": self.torch.int16,
            "int8": self.torch.int8,
            "uint8": self.torch.uint8,
            "bool": self.torch.bool,
        }.get(key)
        if mapped is None:
            raise TypeError(f"no torch equivalent for dtype {dtype!r}")
        return mapped

    def asarray(self, x, dtype=None):
        return self.torch.as_tensor(
            x, dtype=self._dtype(dtype), device=self.device
        )

    def from_numpy(self, x):
        x = np.ascontiguousarray(x)
        t = self.torch.from_numpy(x)
        return t if self.device.type == "cpu" else t.to(self.device)

    def to_numpy(self, x) -> np.ndarray:
        if isinstance(x, self.torch.Tensor):
            return x.detach().cpu().numpy()
        return np.asarray(x)

    def astype(self, x, dtype):
        return self.asarray(x).to(self._dtype(dtype))

    def zeros(self, shape, dtype=None):
        return self.torch.zeros(
            shape, dtype=self._dtype(dtype), device=self.device
        )

    def empty(self, shape, dtype=None):
        return self.torch.empty(
            shape, dtype=self._dtype(dtype), device=self.device
        )

    def arange(self, n, dtype=None):
        return self.torch.arange(
            n, dtype=self._dtype(dtype), device=self.device
        )

    def broadcast_copy(self, x, shape):
        return self.asarray(x).expand(shape).clone()

    def concatenate(self, arrays, axis=0):
        return self.torch.cat([self.asarray(a) for a in arrays], dim=axis)

    def where(self, cond, a, b):
        cond = self.asarray(cond)
        if not isinstance(a, self.torch.Tensor):
            a = self.torch.as_tensor(a, device=self.device)
        if not isinstance(b, self.torch.Tensor):
            b = self.torch.as_tensor(
                b, device=self.device, dtype=a.dtype
                if a.dtype.is_floating_point
                else None,
            )
        return self.torch.where(cond, a, b)

    def sum(self, x, axis=None, dtype=None):
        x = self.asarray(x)
        if axis is None:
            return x.sum(dtype=self._dtype(dtype))
        return x.sum(dim=axis, dtype=self._dtype(dtype))

    def any(self, x, axis=None):
        x = self.asarray(x)
        return x.any() if axis is None else x.any(dim=axis)

    def sqrt(self, x):
        return self.torch.sqrt(self.asarray(x))

    def round(self, x):
        return self.torch.round(self.asarray(x))

    def relu_(self, x):
        return x.clamp_(min=0.0)

    def scatter_add(self, x, indices, values):
        idx = [self.asarray(i, dtype=self.torch.int64) for i in indices]
        vals = self.asarray(values, dtype=x.dtype)
        if vals.dim() == 0:
            vals = vals.expand(idx[0].shape)
        x.index_put_(idx, vals, accumulate=True)
        return x

    def matmul(self, a, b):
        return self.torch.matmul(a, b)

    def einsum(self, spec, *operands):
        return self.torch.einsum(spec, *operands)

    def result_type(self, a, b):
        return self.torch.result_type(self.asarray(a), self.asarray(b))

    def cumsum(self, x, axis=None):
        return self.torch.cumsum(self.asarray(x), dim=0 if axis is None else axis)

    def searchsorted(self, a, v, side="left"):
        v_t = self.torch.as_tensor(v, device=self.device)
        return int(self.torch.searchsorted(a, v_t, side=side))

    def unique_first_inverse(self, keys):
        # torch.unique has no return_index; recover the first occurrence of
        # each (sorted) unique value with a scatter-min over the inverse map.
        uniq, inverse = self.torch.unique(keys, return_inverse=True)
        first = self.torch.full(
            (uniq.shape[0],),
            keys.shape[0],
            dtype=self.torch.int64,
            device=self.device,
        )
        first.scatter_reduce_(
            0,
            inverse,
            self.torch.arange(keys.shape[0], device=self.device),
            reduce="amin",
        )
        return first.cpu().numpy(), inverse


# ----------------------------------------------------------------------
# Registry + resolution
# ----------------------------------------------------------------------
_FACTORIES: Dict[str, Callable[[], ArrayBackend]] = {
    "numpy": NumpyBackend,
    # Registered lazily: the factory runs (and may fail with a clear
    # BackendUnavailableError) only when the backend is actually requested.
    "torch": TorchBackend,
}
_INSTANCES: Dict[str, ArrayBackend] = {}


def register_backend(name: str, factory: Callable[[], ArrayBackend]) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _FACTORIES[str(name)] = factory
    _INSTANCES.pop(str(name), None)


def available_backends(probe: bool = False) -> Sequence[str]:
    """Registered backend names; with ``probe=True`` only constructible ones."""
    names = list(_FACTORIES)
    if not probe:
        return names
    usable = []
    for name in names:
        try:
            get_backend(name)
        except BackendUnavailableError:
            continue
        usable.append(name)
    return usable


def get_backend(
    name: Union[None, str, ArrayBackend] = None
) -> ArrayBackend:
    """Resolve a backend: explicit argument > ``REPRO_BACKEND`` > numpy.

    Accepts an :class:`ArrayBackend` instance (returned as-is), a registered
    name, or ``None``.  Unknown names raise :class:`ValueError` listing the
    registry; names whose dependency is missing raise
    :class:`BackendUnavailableError`.  Instances are cached per name.
    """
    if isinstance(name, ArrayBackend):
        return name
    if name is None:
        name = os.environ.get(ENV_VAR) or "numpy"
    name = str(name)
    cached = _INSTANCES.get(name)
    if cached is not None:
        return cached
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown array backend {name!r}; registered backends: "
            f"{sorted(_FACTORIES)}"
        )
    backend = factory()
    _INSTANCES[name] = backend
    return backend


def to_numpy(x) -> np.ndarray:
    """Any backend's array (or a scalar/sequence) as a NumPy array.

    The one-stop serialisation boundary: checkpoint writers, BENCH JSON
    emitters and the xyz/event writers funnel arrays through here so no
    foreign array type ever reaches persistent state.
    """
    if isinstance(x, np.ndarray):
        return x
    for attr in ("detach",):  # torch tensors (avoid importing torch)
        if hasattr(x, attr) and hasattr(x, "cpu"):
            return x.detach().cpu().numpy()
    return np.asarray(x)
