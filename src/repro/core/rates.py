"""Transition rates and the residence-time algorithm (paper Eqs. 1-3)."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..constants import ATTEMPT_FREQUENCY, CU, EA0_CU, EA0_FE, FE, KB_EV
from .vacancy_system import StateEnergies, StateEnergiesBatch

__all__ = ["RateModel", "residence_time", "DEFAULT_EA0"]

#: Paper reference activation energies per species code (eV): Fe, Cu.
DEFAULT_EA0 = (EA0_FE, EA0_CU)


class RateModel:
    """Arrhenius hop rates with the paper's migration-energy model.

    .. math::
        E_a = E_a^0(\\text{species}) + \\tfrac12 (E_f - E_i), \\qquad
        \\Gamma = \\Gamma_0 \\exp(-E_a / k_B T)

    Parameters
    ----------
    temperature:
        Absolute temperature in Kelvin.
    attempt_frequency:
        :math:`\\Gamma_0` in 1/s.
    ea0:
        Reference activation energy per migrating species code (eV); the
        paper's Fe/Cu values by default.  Provide a longer sequence for
        multicomponent systems (e.g. ``(0.65, 0.56, 0.68)`` for Fe-Cu-Ni).
    """

    def __init__(
        self,
        temperature: float,
        attempt_frequency: float = ATTEMPT_FREQUENCY,
        ea0: Optional[Sequence[float]] = None,
    ) -> None:
        if temperature <= 0:
            raise ValueError(f"temperature must be positive, got {temperature!r}")
        self.temperature = float(temperature)
        self.attempt_frequency = float(attempt_frequency)
        self._beta = 1.0 / (KB_EV * self.temperature)
        values = DEFAULT_EA0 if ea0 is None else tuple(float(v) for v in ea0)
        # One slot per species code plus the vacancy code (never indexed for
        # valid hops, but keeps fancy indexing safe).
        self._ea0 = np.concatenate([np.asarray(values), [np.inf]])

    def migration_energies(self, energies: StateEnergies) -> np.ndarray:
        """Per-direction activation energies E_a (eV); invalid hops -> inf."""
        ea0 = self._ea0[
            np.minimum(energies.migrating_species, len(self._ea0) - 1)
        ]
        ea = ea0 + 0.5 * energies.delta
        return np.where(energies.valid, ea, np.inf)

    def rates(self, energies: StateEnergies) -> np.ndarray:
        """Per-direction hop rates Gamma^X in 1/s (Eq. 1); invalid hops -> 0."""
        ea = self.migration_energies(energies)
        with np.errstate(over="ignore"):
            gamma = self.attempt_frequency * np.exp(-ea * self._beta)
        return np.where(energies.valid, gamma, 0.0)

    def migration_energies_batch(self, batch: StateEnergiesBatch) -> np.ndarray:
        """``(B, 8)`` activation energies for a whole vacancy batch."""
        ea0 = self._ea0[
            np.minimum(batch.migrating_species, len(self._ea0) - 1)
        ]
        return np.where(batch.valid, ea0 + 0.5 * batch.delta, np.inf)

    def rates_batch(self, batch: StateEnergiesBatch) -> np.ndarray:
        """``(B, 8)`` hop rates for a whole vacancy batch in one pass.

        Every operation is elementwise, so ``rates_batch(b)[i]`` is
        bit-identical to ``rates(b.row(i))`` — the batched miss path changes
        throughput, never trajectories.
        """
        ea = self.migration_energies_batch(batch)
        with np.errstate(over="ignore"):
            gamma = self.attempt_frequency * np.exp(-ea * self._beta)
        return np.where(batch.valid, gamma, 0.0)


def residence_time(total_rate: float, u: float) -> float:
    """Residence-time increment (Eq. 3): ``-ln(u) / total_rate``.

    This is the single place that states the draw-order contract shared by
    every driver (serial engines and parallel ranks alike): each event first
    draws the *selection* variate (``rng.random() * total``, consumed by the
    two-level kernel selection) and only then the *time* variate, passed here
    as ``u = 1.0 - rng.random()`` so that ``u`` lies in (0, 1].  Fixing the
    order — selection then time — is what makes fixed-seed trajectories
    bit-identical across engine variants.

    Parameters
    ----------
    total_rate:
        Sum of all event rates in 1/s (must be positive).
    u:
        Uniform random number in (0, 1].
    """
    if total_rate <= 0.0:
        raise ValueError("total rate must be positive to advance time")
    if not 0.0 < u <= 1.0:
        raise ValueError(f"u must be in (0, 1], got {u!r}")
    return -np.log(u) / total_rate
