"""Triple-encoding tabulation (TET) — paper Sec. 3.1.

A vacancy system is the dense cluster of sites whose energies can change when
the central vacancy performs one 1NN hop.  TET describes it with three
tabulations:

* **CET** (coordinates encoding tabulation): relative half-unit offsets of the
  ``N_local`` in-cutoff neighbours of a site.  Purely geometric, shared by all
  sites (every BCC site is geometrically equivalent).
* **NET** (neighbour-list encoding tabulation): for every site in the *jumping
  region*, the indices (into the vacancy-system site list) and shell of each
  of its neighbours.
* **VET** (vacancy encoding tabulation): the only per-instance data — a vector
  of species codes for all ``N_all`` sites of one concrete vacancy system.

Site ordering convention (used throughout the engines):
``0`` = the vacancy centre, ``1..8`` = the eight 1NN sites in the fixed hop
direction order, then the remaining region sites, then the outer shell.  For
the paper's r_cut = 6.5 A this gives ``N_local = 112`` and ``N_region = 253``
(Sec. 4.1.1), which the test-suite asserts.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..constants import LATTICE_CONSTANT
from ..lattice.bcc import BCCGeometry

__all__ = ["TripleEncoding"]


class TripleEncoding:
    """The CET/NET tables of a vacancy system for one (a, r_cut) pair.

    Parameters
    ----------
    rcut:
        Interaction cutoff radius in Angstrom.
    a:
        Lattice constant in Angstrom.

    Attributes
    ----------
    cet_offsets:
        ``(n_local, 3)`` half-unit offsets of a site's neighbours (the CET).
    cet_shell:
        ``(n_local,)`` shell index of each CET entry (distance is a function
        of the offset only, so NET's distance column collapses to this).
    all_offsets:
        ``(n_all, 3)`` half-unit offsets of every site of the vacancy system
        relative to the centre, in the canonical order described above.
    net_ids:
        ``(n_region, n_local)`` NET: ``net_ids[i, j]`` is the index into
        ``all_offsets`` of the j-th neighbour of region site i.
    shell_distances:
        ``(n_shells,)`` shell distances in Angstrom.
    """

    #: VET index of the centre site.
    CENTER = 0
    #: VET indices of the eight hop targets (1NN sites).
    N_DIRECTIONS = 8

    def __init__(self, rcut: float, a: float = LATTICE_CONSTANT) -> None:
        self.rcut = float(rcut)
        self.geometry = BCCGeometry(a)
        shells = self.geometry.shells_within(rcut)
        self.shells = shells
        self.cet_offsets = shells.offsets
        self.cet_shell = shells.shell_index
        self.shell_distances = shells.shell_distances
        self.n_local = shells.n_sites
        self.n_shells = shells.n_shells

        first_shell = self.cet_offsets[self.cet_shell == 0]
        if first_shell.shape[0] != self.N_DIRECTIONS:
            raise ValueError(
                f"rcut={rcut} does not include the 1NN shell "
                f"({first_shell.shape[0]} sites found)"
            )
        self.nn_offsets = first_shell  # lexicographic order, deterministic

        self._build_site_lists()
        self._build_net()
        # Any lattice change within this radius of a system's centre can
        # alter its VET -> used by the vacancy cache for invalidation.
        self.invalidation_radius = float(
            np.max(self.geometry.offset_distance(self.all_offsets))
        )
        # Ghost margin (in cubic cells) a domain window needs so that every
        # VET of a locally-owned vacancy resolves inside the window.
        self.ghost_cells = int(np.ceil(np.max(np.abs(self.all_offsets)) / 2.0))
        # Minimum sublattice sector width (cells) for conflict-free parallel
        # cycles: the gap between same-numbered sectors of adjacent ranks
        # must exceed the VET reach even after each side's changes extend
        # one 1NN hop beyond its sector (see parallel.sublattice).
        hop = self.geometry.a  # conservative: one full cell of hop extension
        self.min_sector_cells = int(
            np.ceil((self.invalidation_radius + hop) / self.geometry.a)
        )

    # ------------------------------------------------------------------
    def _build_site_lists(self) -> None:
        """Construct the canonical region / outer site lists."""
        center = np.zeros((1, 3), dtype=np.int64)
        # Region: centre, its neighbours, and the neighbours of its 1NN sites.
        region_parts = [center, self.cet_offsets]
        for nn in self.nn_offsets:
            region_parts.append(nn[None, :] + self.cet_offsets)
        region = _unique_rows(np.concatenate(region_parts, axis=0))
        # Outer: neighbours of region sites that are not themselves in region.
        all_parts = [region]
        reach = (region[:, None, :] + self.cet_offsets[None, :, :]).reshape(-1, 3)
        all_parts.append(reach)
        everything = _unique_rows(np.concatenate(all_parts, axis=0))

        region_keys = {tuple(r) for r in region}
        nn_keys = [tuple(v) for v in self.nn_offsets]
        special = {(0, 0, 0)} | set(nn_keys)

        def sort_block(rows: np.ndarray) -> np.ndarray:
            d = self.geometry.offset_distance(rows)
            order = np.lexsort((rows[:, 2], rows[:, 1], rows[:, 0], d))
            return rows[order]

        region_rest = sort_block(
            np.array(
                [r for r in region if tuple(r) not in special], dtype=np.int64
            ).reshape(-1, 3)
        )
        outer = sort_block(
            np.array(
                [r for r in everything if tuple(r) not in region_keys],
                dtype=np.int64,
            ).reshape(-1, 3)
        )
        ordered = [center, self.nn_offsets, region_rest, outer]
        self.all_offsets = np.concatenate(ordered, axis=0)
        self.n_region = 1 + self.N_DIRECTIONS + region_rest.shape[0]
        self.n_all = self.all_offsets.shape[0]
        self.n_out = self.n_all - self.n_region

    def _build_net(self) -> None:
        """NET: neighbour indices of every region site, into ``all_offsets``."""
        index: Dict[Tuple[int, int, int], int] = {
            tuple(v): i for i, v in enumerate(self.all_offsets)
        }
        net = np.empty((self.n_region, self.n_local), dtype=np.int32)
        for i in range(self.n_region):
            base = self.all_offsets[i]
            for j, off in enumerate(self.cet_offsets):
                key = tuple(base + off)
                try:
                    net[i, j] = index[key]
                except KeyError as exc:  # pragma: no cover - construction bug
                    raise AssertionError(
                        f"neighbour {key} of region site {i} missing from "
                        "the vacancy-system site list"
                    ) from exc
        self.net_ids = net

    # ------------------------------------------------------------------
    def direction_vet_index(self, direction: int) -> int:
        """VET index of the 1NN target of a hop direction (0..7)."""
        if not 0 <= direction < self.N_DIRECTIONS:
            raise ValueError(f"direction must be in [0, 8), got {direction}")
        return 1 + direction

    def describe(self) -> Dict[str, float]:
        """Size summary (the Sec. 4.1.1 numbers)."""
        return {
            "rcut": self.rcut,
            "n_local": self.n_local,
            "n_region": self.n_region,
            "n_out": self.n_out,
            "n_all": self.n_all,
            "n_shells": self.n_shells,
            "invalidation_radius": self.invalidation_radius,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        d = self.describe()
        return (
            f"TripleEncoding(rcut={self.rcut}, n_local={d['n_local']}, "
            f"n_region={d['n_region']}, n_all={d['n_all']})"
        )


def _unique_rows(rows: np.ndarray) -> np.ndarray:
    """Unique integer rows (order not preserved)."""
    return np.unique(rows, axis=0)
