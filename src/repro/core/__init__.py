"""TensorKMC core: triple-encoding, vacancy cache, rates, and the engine."""

from .backend import (
    ArrayBackend,
    BackendUnavailableError,
    NumpyBackend,
    TorchBackend,
    available_backends,
    get_backend,
    register_backend,
    to_numpy,
)
from .engine import KMCEvent, NoMovesError, SerialAKMCBase, TensorKMCEngine
from .kernel import EventKernel, KernelStats, SimpleRateEntry, SpatialHashIndex
from .profiling import PhaseProfiler
from .propensity import FenwickPropensity, LinearPropensity, PropensityStore
from .rates import RateModel, residence_time
from .tet import TripleEncoding
from .vacancy_cache import BatchEntries, CachedVacancySystem, VacancyCache
from .vacancy_system import StateEnergies, VacancySystemEvaluator

__all__ = [
    "ArrayBackend",
    "BackendUnavailableError",
    "NumpyBackend",
    "TorchBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "to_numpy",
    "KMCEvent",
    "NoMovesError",
    "SerialAKMCBase",
    "TensorKMCEngine",
    "EventKernel",
    "KernelStats",
    "SimpleRateEntry",
    "SpatialHashIndex",
    "PhaseProfiler",
    "FenwickPropensity",
    "LinearPropensity",
    "PropensityStore",
    "RateModel",
    "residence_time",
    "TripleEncoding",
    "BatchEntries",
    "CachedVacancySystem",
    "VacancyCache",
    "StateEnergies",
    "VacancySystemEvaluator",
]
