"""Command-line interface: ``python -m repro <command>``.

Five subcommands cover the daily workflow:

* ``run``      — serial TensorKMC simulation of an Fe-Cu alloy;
* ``parallel`` — the same workload on the synchronous sublattice driver,
  optionally checkpointing at cycle boundaries and recovering from an
  injected rank failure (``--kill-rank``);
* ``campaign`` — many independent replicas (seed sweep or temperature
  ladder) with every replica's stale rows fused into one shared potential
  call per round;
* ``resume``   — continue a serial or parallel checkpoint (auto-detected);
* ``train``    — fit an NNP to oracle-labelled structures and save it.

Every command prints a short machine-parseable summary ("key = value" lines)
so scripts can scrape results.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from .analysis import analyse_precipitation
from .constants import CU_CONCENTRATION, TEMPERATURE_RPV, VACANCY_CONCENTRATION
from .core import TensorKMCEngine, TripleEncoding
from .core.profiling import PHASES
from .core.rowcache import ROW_CACHE_MODES
from .io.snapshots import save_lattice
from .io.xyz import write_xyz
from .lattice import LatticeState
from .parallel.executor import EXECUTORS, resolve_workers
from .potentials import EAMPotential

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="TensorKMC reproduction: NNP-driven atomistic KMC",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="serial TensorKMC simulation")
    _common_alloy_args(run)
    run.add_argument("--steps", type=int, default=1000)
    run.add_argument("--snapshot", type=str, default=None,
                     help="write the final lattice to this .npz file")
    run.add_argument("--xyz", type=str, default=None,
                     help="write the final configuration to this .xyz file")
    run.add_argument("--potential", type=str, default=None,
                     help="path to a trained NNPotential .npz (default: EAM)")
    run.add_argument("--evaluation", choices=("full", "delta"), default="full")
    run.add_argument("--restart", type=str, default=None,
                     help="resume bit-exactly from a checkpoint .npz")
    run.add_argument("--checkpoint", type=str, default=None,
                     help="write a resumable checkpoint at the end")

    par = sub.add_parser("parallel", help="synchronous sublattice simulation")
    _common_alloy_args(par)
    par.set_defaults(box=16)
    par.add_argument("--ranks", type=int, default=2)
    par.add_argument("--cycles", type=int, default=16)
    par.add_argument("--t-stop", type=float, default=2e-10)
    par.add_argument("--potential", type=str, default=None,
                     help="path to a trained NNPotential .npz (default: EAM)")
    par.add_argument("--restart", type=str, default=None,
                     help="resume bit-exactly from a parallel checkpoint .npz")
    par.add_argument("--checkpoint", type=str, default=None,
                     help="checkpoint path (written at cycle boundaries)")
    par.add_argument("--checkpoint-every", type=int, default=4,
                     help="cycles between checkpoints (with --checkpoint)")
    par.add_argument("--kill-rank", type=int, default=None,
                     help="inject a rank failure (requires --checkpoint)")
    par.add_argument("--kill-cycle", type=int, default=None,
                     help="cycle at which --kill-rank dies (default 0)")
    _executor_args(par)

    camp = sub.add_parser(
        "campaign",
        help="cross-replica campaign with shared batched evaluation",
    )
    _common_alloy_args(camp)
    camp.add_argument("--replicas", type=int, default=4,
                      help="seed-sweep size: seeds --seed .. --seed+R-1 "
                           "(ignored when --seeds/--temperatures is given)")
    camp.add_argument("--seeds", type=int, nargs="+", default=None,
                      help="explicit seed list, one replica per seed")
    camp.add_argument("--temperatures", type=float, nargs="+", default=None,
                      help="temperature ladder, one replica per value "
                           "(all replicas use --seed)")
    camp.add_argument("--steps", type=int, default=200,
                      help="KMC event budget per replica")
    camp.add_argument("--max-in-flight", type=int, default=None,
                      help="concurrent replicas; completed ones are "
                           "hot-swapped for queued specs (default: all)")
    camp.add_argument("--mode", choices=("shared", "sequential"),
                      default="shared",
                      help="shared = one fused potential call per round "
                           "across replicas; sequential = solo baseline")
    camp.add_argument("--potential", type=str, default=None,
                      help="path to a trained NNPotential .npz (default: EAM)")

    res = sub.add_parser(
        "resume", help="continue a serial or parallel checkpoint"
    )
    res.add_argument("path", help="checkpoint .npz (kind is auto-detected)")
    res.add_argument("--steps", type=int, default=1000,
                     help="serial checkpoints: KMC events to run")
    res.add_argument("--cycles", type=int, default=16,
                     help="parallel checkpoints: sublattice cycles to run")
    res.add_argument("--potential", type=str, default=None,
                     help="path to a trained NNPotential .npz (default: EAM)")
    res.add_argument("--checkpoint", type=str, default=None,
                     help="write a fresh checkpoint when done")
    res.add_argument("--backend", type=str, default=None,
                     help="array backend for the resumed run (checkpoints "
                          "are backend-free)")
    _executor_args(res)

    train = sub.add_parser("train", help="train an NNP on oracle data")
    train.add_argument("--rcut", type=float, default=6.5)
    train.add_argument("--structures", type=int, default=120)
    train.add_argument("--train-fraction", type=float, default=0.8)
    train.add_argument("--epochs", type=int, default=80)
    train.add_argument("--force-epochs", type=int, default=0,
                       help="extra epochs with the double-backprop force loss")
    train.add_argument("--channels", type=int, nargs="+",
                       default=[64, 64, 64, 1])
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--output", type=str, required=True,
                       help="where to save the trained model (.npz)")
    return parser


def _common_alloy_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--box", type=int, default=12, help="cubic cells per axis")
    p.add_argument("--rcut", type=float, default=2.87)
    p.add_argument("--temperature", type=float, default=TEMPERATURE_RPV)
    p.add_argument("--cu", type=float, default=CU_CONCENTRATION)
    p.add_argument("--vacancies", type=float, default=None,
                   help="vacancy site fraction (default: paper value, min 1)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--backend", type=str, default=None,
                   help="array backend for the hot path (numpy, torch; "
                        "default: $REPRO_BACKEND, then numpy)")
    p.add_argument("--row-cache", choices=ROW_CACHE_MODES, default="auto",
                   help="persistent row-energy memoization: auto enables "
                        "it for row-invariant network potentials, on/off "
                        "force it (bitwise-neutral either way)")
    p.add_argument("--row-cache-mb", type=float, default=None,
                   help="row-cache byte budget in MiB (LRU eviction past "
                        "it; default: unbounded)")


def _executor_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--executor", choices=EXECUTORS, default="inline",
                   help="where the rank event loops run: inline = the "
                        "sequential golden reference in this process, "
                        "process = a persistent fork-based worker pool "
                        "(bit-identical trajectories either way)")
    p.add_argument("--workers", type=int, default=None,
                   help="worker-pool size for --executor process (default: "
                        "one per rank; invalid with the inline executor)")


def _resolve_executor_args(args) -> None:
    """Fail fast on an invalid --executor/--workers pair (clear message)."""
    try:
        resolve_workers(args.executor, args.workers, n_ranks=1 << 30)
    except ValueError as exc:
        raise SystemExit(f"error: {exc}") from exc


def _print_executor_summary(sim) -> None:
    """Executor, worker count, and mean per-cycle exchange wait."""
    print(f"executor = {sim.executor_kind}")
    print(f"workers = {sim.n_workers}")
    wait = sum(c.exchange_wait_seconds for c in sim.cycles)
    per_cycle = wait / len(sim.cycles) if sim.cycles else 0.0
    print(f"exchange_wait_ms_per_cycle = {1e3 * per_cycle:.3f}")


def _print_hot_path_summary(summary, events: int) -> None:
    """Per-phase timings and kernel counters shared by run/parallel output."""
    for name in PHASES:
        seconds = summary.get(f"{name}_seconds")
        if seconds is None:
            continue
        us = 1e6 * seconds / events if events else 0.0
        print(f"phase_{name}_us_per_event = {us:.3f}")
    for key in ("cache_misses", "invalidations", "rates_evaluated"):
        if key in summary:
            print(f"{key} = {int(summary[key])}")
    for key in ("mean_selection_depth", "mean_batch_size"):
        if key in summary:
            print(f"{key} = {summary[key]:.3f}")
    _print_row_cache_summary(summary)


def _print_row_cache_summary(summary) -> None:
    """Row-energy cache hit rate + resident size (when a cache is active)."""
    if "row_cache_hit_rate" in summary:
        print(f"row_cache_hit_rate = {summary['row_cache_hit_rate']:.4f}")
        print(
            f"row_cache_resident_mb = "
            f"{summary.get('row_cache_bytes', 0) / (1024.0 * 1024.0):.3f}"
        )


def _make_lattice(args) -> LatticeState:
    lattice = LatticeState((args.box,) * 3)
    vac = args.vacancies if args.vacancies is not None else VACANCY_CONCENTRATION
    lattice.randomize_alloy(
        np.random.default_rng(args.seed), cu_fraction=args.cu,
        vacancy_fraction=vac,
    )
    return lattice


def _load_potential(args, tet: TripleEncoding):
    if getattr(args, "potential", None):
        from .nnp.model import NNPotential

        model = NNPotential.load(args.potential)
        if model.shell_distances.shape != tet.shell_distances.shape or not (
            np.allclose(model.shell_distances, tet.shell_distances)
        ):
            raise SystemExit(
                "error: the trained model's shells do not match --rcut"
            )
        return model
    return EAMPotential(tet.shell_distances)


def _cmd_run(args) -> int:
    tet = TripleEncoding(rcut=args.rcut)
    if args.restart:
        from .io.checkpoint import load_checkpoint

        potential = _load_potential(args, tet)
        engine = load_checkpoint(args.restart, potential, backend=args.backend)
        lattice = engine.lattice
    else:
        lattice = _make_lattice(args)
        potential = _load_potential(args, tet)
        engine = TensorKMCEngine(
            lattice, potential, tet, temperature=args.temperature,
            rng=np.random.default_rng(args.seed + 1),
            evaluation=args.evaluation,
            backend=args.backend,
            row_cache=args.row_cache,
            row_cache_mb=args.row_cache_mb,
        )
    engine.run(n_steps=args.steps)
    stats = analyse_precipitation(lattice, engine.time)
    print(f"backend = {engine.xp.name}")
    print(f"events = {engine.step_count}")
    print(f"time_s = {engine.time:.6e}")
    print(f"cache_hit_rate = {engine.cache.stats.hit_rate:.4f}")
    _print_hot_path_summary(engine.summary(), engine.step_count)
    print(f"isolated_cu = {stats.isolated}")
    print(f"max_cluster = {stats.max_size}")
    print(f"number_density_m3 = {stats.number_density:.4e}")
    if args.snapshot:
        save_lattice(args.snapshot, lattice, time=engine.time)
        print(f"snapshot = {args.snapshot}")
    if args.xyz:
        with open(args.xyz, "w") as fh:
            write_xyz(fh, lattice, time=engine.time)
        print(f"xyz = {args.xyz}")
    if args.checkpoint:
        from .io.checkpoint import save_checkpoint

        save_checkpoint(args.checkpoint, engine)
        print(f"checkpoint = {args.checkpoint}")
    return 0


def _tet_from_archive(path: str) -> TripleEncoding:
    """Rebuild the TET from the cutoff stored in a checkpoint archive."""
    with np.load(path, allow_pickle=False) as data:
        return TripleEncoding(rcut=float(data["rcut"][0]), a=float(data["a"][0]))


def _cmd_parallel(args) -> int:
    from .parallel import FaultEvent, FaultPlan, SublatticeKMC, run_resilient

    _resolve_executor_args(args)
    kill = args.kill_rank is not None
    if kill and not args.checkpoint:
        raise SystemExit("error: --kill-rank recovery requires --checkpoint")
    plan = None
    if kill:
        plan = FaultPlan(events=[
            FaultEvent("kill", cycle=args.kill_cycle or 0, rank=args.kill_rank)
        ])
    if args.restart:
        from .io.checkpoint import load_parallel_checkpoint

        tet = _tet_from_archive(args.restart)
        potential = _load_potential(args, tet)
        sim = load_parallel_checkpoint(
            args.restart, potential, tet=tet, fault_plan=plan,
            backend=args.backend, executor=args.executor,
            workers=args.workers,
        )
        tet = sim.tet
    else:
        tet = TripleEncoding(rcut=args.rcut)
        lattice = _make_lattice(args)
        potential = _load_potential(args, tet)
        sim = SublatticeKMC(
            lattice, potential, tet, n_ranks=args.ranks,
            temperature=args.temperature, t_stop=args.t_stop, seed=args.seed,
            fault_plan=plan, backend=args.backend,
            row_cache=args.row_cache, row_cache_mb=args.row_cache_mb,
            executor=args.executor, workers=args.workers,
        )
    try:
        before = sim.gather_global().species_counts().copy()
        recoveries = 0
        if args.checkpoint:
            sim, recoveries = run_resilient(
                sim, args.cycles, args.checkpoint, potential, tet=tet,
                checkpoint_every=args.checkpoint_every,
            )
        else:
            sim.run(args.cycles)
        conserved = bool(
            np.array_equal(sim.gather_global().species_counts(), before)
        )
        print(f"backend = {sim.xp.name}")
        print(f"ranks = {sim.decomposition.n_ranks}")
        print(f"grid = {sim.decomposition.grid}")
        _print_executor_summary(sim)
        print(f"cycles = {len(sim.cycles)}")
        print(f"events = {sim.total_events}")
        print(f"time_s = {sim.time:.6e}")
        print(f"messages = {sim.world.stats.messages_sent}")
        print(f"bytes = {sim.world.stats.bytes_sent}")
        _print_hot_path_summary(sim.summary(), sim.total_events)
        if args.checkpoint:
            print(f"checkpoint = {args.checkpoint}")
            print(f"recoveries = {recoveries}")
        print(f"species_conserved = {conserved}")
        print(f"ghosts_consistent = {sim.check_ghost_consistency()}")
        return 0 if conserved else 1
    finally:
        sim.close()


def _cmd_campaign(args) -> int:
    from .campaign import (
        ReplicaCampaign,
        alloy_engine_factory,
        seed_sweep,
        temperature_ladder,
    )

    if args.seeds and args.temperatures:
        raise SystemExit("error: --seeds and --temperatures are exclusive")
    tet = TripleEncoding(rcut=args.rcut)
    potential = _load_potential(args, tet)
    if args.temperatures:
        specs = temperature_ladder(
            args.temperatures, n_steps=args.steps, seed=args.seed
        )
    else:
        seeds = (
            args.seeds if args.seeds
            else range(args.seed, args.seed + args.replicas)
        )
        specs = seed_sweep(
            seeds, n_steps=args.steps, temperature=args.temperature
        )
    vac = args.vacancies if args.vacancies is not None else VACANCY_CONCENTRATION
    factory = alloy_engine_factory(
        args.box, potential, tet, cu_fraction=args.cu, vacancy_fraction=vac,
        backend=args.backend, row_cache=args.row_cache,
        row_cache_mb=args.row_cache_mb,
    )
    campaign = ReplicaCampaign(
        specs, factory, max_in_flight=args.max_in_flight, mode=args.mode,
        row_cache=args.row_cache, row_cache_mb=args.row_cache_mb,
    )
    results = campaign.run()
    agg = campaign.summary()
    print(f"mode = {campaign.mode}")
    print(f"replicas = {len(results)}")
    print(f"rounds = {agg['rounds']}")
    print(f"shared_batches = {agg['shared_batches']}")
    print(f"shared_rows = {agg['shared_rows']}")
    print(f"max_shared_batch = {agg['max_shared_batch']}")
    _print_row_cache_summary(agg)
    print(f"events = {sum(r.executed for r in results)}")
    for r in results:
        print(
            f"replica[{r.spec.name}] events={r.executed} "
            f"time_s={r.time:.6e} frozen={r.frozen} "
            f"digest={r.digest[:12]}"
        )
    return 0


def _cmd_resume(args) -> int:
    from .io.checkpoint import (
        checkpoint_kind,
        load_checkpoint,
        load_parallel_checkpoint,
        save_checkpoint,
        save_parallel_checkpoint,
    )

    _resolve_executor_args(args)
    tet = _tet_from_archive(args.path)
    potential = _load_potential(args, tet)
    kind = checkpoint_kind(args.path)
    print(f"kind = {kind}")
    if kind == "serial":
        if args.executor != "inline":
            raise SystemExit(
                "error: --executor process applies to parallel checkpoints "
                f"only ({args.path} holds a serial one)"
            )
        engine = load_checkpoint(
            args.path, potential, tet=tet, backend=args.backend
        )
        engine.run(n_steps=args.steps)
        print(f"events = {engine.step_count}")
        print(f"time_s = {engine.time:.6e}")
        if args.checkpoint:
            save_checkpoint(args.checkpoint, engine)
            print(f"checkpoint = {args.checkpoint}")
    else:
        sim = load_parallel_checkpoint(
            args.path, potential, tet=tet, backend=args.backend,
            executor=args.executor, workers=args.workers,
        )
        try:
            sim.run(args.cycles)
            _print_executor_summary(sim)
            print(f"cycles = {len(sim.cycles)}")
            print(f"events = {sim.total_events}")
            print(f"time_s = {sim.time:.6e}")
            print(f"ghosts_consistent = {sim.check_ghost_consistency()}")
            if args.checkpoint:
                save_parallel_checkpoint(args.checkpoint, sim)
                print(f"checkpoint = {args.checkpoint}")
        finally:
            sim.close()
    return 0


def _cmd_train(args) -> int:
    from .nnp import (
        ElementNetworks,
        NNPotential,
        NNPTrainer,
        generate_structures,
        parity_report,
        train_test_split,
    )
    from .potentials import FeatureTable

    tet = TripleEncoding(rcut=args.rcut)
    oracle = EAMPotential(tet.shell_distances)
    rng = np.random.default_rng(args.seed)
    structures = generate_structures(oracle, rng, n_structures=args.structures)
    n_train = max(int(args.train_fraction * len(structures)), 1)
    if n_train >= len(structures):
        n_train = len(structures) - 1
    train, test = train_test_split(structures, rng, n_train=n_train)

    table = FeatureTable(tet.shell_distances)
    networks = ElementNetworks(tuple(args.channels), rng)
    model = NNPotential(table, networks, rcut=args.rcut)
    trainer = NNPTrainer(model, train)
    trainer.train(rng, n_epochs=args.epochs, lr=2e-3, lr_decay=0.99)
    if args.force_epochs > 0:
        trainer.train(
            rng, n_epochs=args.force_epochs, lr=5e-4, force_weight=2.0
        )
    ev = trainer.evaluate_energies(test)
    energy = parity_report(ev["predicted"], ev["reference"])
    model.save(args.output)
    print(f"n_train = {len(train)}")
    print(f"n_test = {len(test)}")
    print(f"energy_mae_ev_per_atom = {energy['mae']:.6f}")
    print(f"energy_r2 = {energy['r2']:.6f}")
    print(f"model = {args.output}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "parallel":
        return _cmd_parallel(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "resume":
        return _cmd_resume(args)
    if args.command == "train":
        return _cmd_train(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
