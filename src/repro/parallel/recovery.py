"""Rollback-and-replay recovery for the parallel sublattice driver.

The paper's flagship campaign (422,400 processes for days) survives only if a
failed cycle can be thrown away and replayed from a known-good state.  This
driver implements the standard checkpoint-restart loop over
:class:`~repro.parallel.engine.SublatticeKMC`:

* a cycle-boundary checkpoint is written every ``checkpoint_every`` cycles
  (parallel checkpoints are bit-exact — see ``repro.io.checkpoint``);
* when a cycle raises :class:`~repro.parallel.comm.ProtocolError` (missing /
  duplicated / delayed message, dead rank — or, under ``executor="process"``,
  an unexpectedly dead worker process), the *whole world* is discarded
  (worker pool included) and rebuilt from the last checkpoint under the
  same executor;
* the attached :class:`~repro.parallel.faults.FaultPlan` is carried over to
  the rebuilt world — its fired events never re-trigger (one-shot
  semantics), which models replacing the failed node.

Because checkpoint restore is bit-exact and a faulted cycle never commits
(``sim.cycles``, ``sim.time`` and the rank windows of a failed cycle are all
discarded with the old object), the recovered trajectory is bit-identical to
a fault-free run — asserted in ``tests/test_fault_injection.py``.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

import numpy as np

from ..core.tet import TripleEncoding
from ..io.checkpoint import (
    checkpoint_kind,
    load_parallel_checkpoint,
    save_parallel_checkpoint,
)
from ..potentials.base import CountsPotential
from .comm import ProtocolError
from .engine import SublatticeKMC

__all__ = ["run_resilient"]


def _validate_archive(path: str, sim: SublatticeKMC) -> None:
    """Refuse to clobber an archive that does not belong to ``sim``.

    ``run_resilient`` writes an entry checkpoint before its first cycle; if
    the caller points it at an unrelated archive (a serial checkpoint, a
    different world's, or a *later* state of this campaign), that overwrite
    silently destroys it.  An existing file must therefore look like an
    earlier-or-equal checkpoint of this very simulation: parallel kind,
    matching global shape and rank grid, and a stored cycle count no greater
    than the running world's.
    """
    try:
        kind = checkpoint_kind(path)
    except Exception as exc:
        raise ValueError(
            f"refusing to overwrite {path!r}: existing file is not a "
            f"readable checkpoint archive ({exc}); delete it or point "
            "checkpoint_path elsewhere"
        ) from exc
    if kind != "parallel":
        raise ValueError(
            f"refusing to overwrite {path!r}: it holds a {kind!r} "
            "checkpoint, not a parallel one; delete it or point "
            "checkpoint_path elsewhere"
        )
    with np.load(path, allow_pickle=False) as data:
        shape = tuple(int(v) for v in data["shape"])
        grid = tuple(int(v) for v in data["grid"])
        stored_cycles = int(data["cycles"].shape[0])
    if shape != tuple(sim.global_shape):
        raise ValueError(
            f"refusing to overwrite {path!r}: archive shape {shape} does "
            f"not match the running world {tuple(sim.global_shape)}"
        )
    if grid != tuple(sim.decomposition.grid):
        raise ValueError(
            f"refusing to overwrite {path!r}: archive rank grid {grid} "
            f"does not match the running world {tuple(sim.decomposition.grid)}"
        )
    if stored_cycles > len(sim.cycles):
        raise ValueError(
            f"refusing to overwrite {path!r}: archive is at cycle "
            f"{stored_cycles}, ahead of the running world's "
            f"{len(sim.cycles)}; resume from the archive instead"
        )


def run_resilient(
    sim: SublatticeKMC,
    n_cycles: int,
    checkpoint_path: str,
    potential: CountsPotential,
    *,
    tet: Optional[TripleEncoding] = None,
    checkpoint_every: int = 4,
    max_recoveries: int = 16,
) -> Tuple[SublatticeKMC, int]:
    """Run ``n_cycles`` more cycles, recovering from injected comm faults.

    Returns ``(sim, recoveries)``; note the returned ``sim`` is a *new*
    object whenever at least one recovery happened.  ``potential`` (and
    optionally ``tet``) must match the running simulation — checkpoints store
    only dynamic state, deterministic inputs are reconstructed by the caller.

    Raises the last :class:`~repro.parallel.comm.ProtocolError` unchanged if
    ``max_recoveries`` rollbacks are exhausted (a fault plan hostile enough
    to fail every replay window is a configuration error, not bad luck).

    A file already present at ``checkpoint_path`` must be a compatible
    earlier-or-equal checkpoint of this world (parallel kind, same shape and
    rank grid, cycle count not ahead of ``sim``); anything else raises
    :class:`ValueError` instead of being silently overwritten.
    """
    if n_cycles < 1:
        raise ValueError(f"n_cycles must be >= 1, got {n_cycles}")
    if checkpoint_every < 1:
        raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    if os.path.exists(checkpoint_path):
        _validate_archive(checkpoint_path, sim)
    save_parallel_checkpoint(checkpoint_path, sim)
    target = len(sim.cycles) + n_cycles
    recoveries = 0
    while len(sim.cycles) < target:
        try:
            sim.cycle()
        except ProtocolError:
            recoveries += 1
            if recoveries > max_recoveries:
                raise
            # Roll the world back: same plan object, so the fired fault does
            # not replay; the failed cycle never committed any state we keep.
            # The rebuilt world keeps the failed one's execution backend —
            # a dead worker process is "replaced" exactly like a dead rank
            # (the old pool, healthy members included, is torn down first).
            plan = sim.world.fault_plan
            executor = sim.executor_kind
            workers = sim.n_workers if executor == "process" else None
            sim.close()
            sim = load_parallel_checkpoint(
                checkpoint_path, potential, tet=tet, fault_plan=plan,
                backend=sim.xp, executor=executor, workers=workers,
            )
            continue
        if len(sim.cycles) % checkpoint_every == 0:
            save_parallel_checkpoint(checkpoint_path, sim)
    # Always leave the archive at the final cycle boundary so a later
    # ``resume`` continues from where this campaign stopped.
    save_parallel_checkpoint(checkpoint_path, sim)
    return sim, recoveries
