"""Parallel AKMC: the synchronous sublattice driver over simulated ranks.

:class:`SublatticeKMC` decomposes a periodic box across ranks (Fig. 2a), runs
the Shim-Amar synchronous sublattice protocol (Fig. 2b) with the paper's
synchronisation interval ``t_stop``, and exchanges boundary changes through
:class:`~repro.parallel.comm.SimComm` after every sector cycle.

Per cycle all ranks evolve the *same* octant sector of their own subdomain
for a duration ``t_stop`` (events that would overshoot the interval are
rejected, the standard semirigorous rule), then ghost regions synchronise and
the sector index rotates.  Conflict freedom holds by construction because
concurrently-active sectors of neighbouring ranks are at least one sector
width apart (validated by :class:`~repro.parallel.sublattice.SectorGeometry`).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..constants import T_STOP, TEMPERATURE_RPV
from ..core.rates import RateModel
from ..core.tet import TripleEncoding
from ..core.vacancy_system import VacancySystemEvaluator
from ..lattice.domain import LocalWindow
from ..lattice.occupancy import LatticeState
from ..potentials.base import CountsPotential
from .comm import SimCommWorld
from .decomposition import GridDecomposition, choose_grid
from .ghost import GhostExchanger, SiteUpdates
from .sublattice import N_SECTORS, SectorGeometry

__all__ = ["RankState", "SublatticeKMC", "CycleStats"]


@dataclass
class CycleStats:
    """Per-cycle accounting for the scaling model."""

    sector: int
    events: int
    rejected: int
    compute_seconds: float
    comm_messages: int
    comm_bytes: int


class RankState:
    """Everything one rank owns: window, vacancies, cache, RNG."""

    def __init__(
        self,
        rank: int,
        window: LocalWindow,
        exchanger: GhostExchanger,
        sectors: SectorGeometry,
        evaluator: VacancySystemEvaluator,
        rate_model: RateModel,
        rng: np.random.Generator,
    ) -> None:
        self.rank = rank
        self.window = window
        self.exchanger = exchanger
        self.sectors = sectors
        self.evaluator = evaluator
        self.rate_model = rate_model
        self.rng = rng
        self.tet = evaluator.tet
        self.vacancy_code = evaluator.vacancy_code
        #: Vacancies in the local box, as window half-coordinates.
        self.vacancies = window.local_vacancy_half_coords(self.vacancy_code)
        #: Rate cache keyed by vacancy half-coordinate tuple.
        self.cache: Dict[Tuple[int, int, int], np.ndarray] = {}
        self.events = 0
        self.rejected = 0
        #: Hops blocked by inconsistent (stale) data — naive mode only.
        self.anomalies = 0

    # ------------------------------------------------------------------
    def rescan_vacancies(self) -> None:
        """Rebuild the local vacancy list from the owned occupancy block."""
        self.vacancies = self.window.local_vacancy_half_coords(self.vacancy_code)

    def _rates_of(self, half: np.ndarray) -> np.ndarray:
        """Per-direction rates of the vacancy at window half-coords."""
        key = tuple(int(v) for v in half)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        vet_half = half[None, :] + self.tet.all_offsets
        vet = self.window.species_at_half(vet_half)
        energies = self.evaluator.evaluate(vet)
        rates = self.rate_model.rates(energies)
        self.cache[key] = rates
        return rates

    def invalidate_near(self, changed_half: np.ndarray) -> None:
        """Drop cached rates of vacancies near changed sites (Sec. 3.2)."""
        if changed_half.size == 0 or not self.cache:
            return
        radius_half = 2.0 * self.tet.invalidation_radius / self.tet.geometry.a
        changed = changed_half.reshape(-1, 3).astype(np.float64)
        stale = []
        for key in self.cache:
            center = np.array(key, dtype=np.float64)
            d = np.sqrt(np.sum((changed - center) ** 2, axis=1))
            if np.any(d <= radius_half + 1e-9):
                stale.append(key)
        for key in stale:
            del self.cache[key]

    # ------------------------------------------------------------------
    def run_sector(self, sector, t_stop: float) -> SiteUpdates:
        """Evolve one sector (or all vacancies when ``sector is None``).

        ``sector=None`` is the *naive* whole-domain mode kept for the
        conflict-demonstration ablation; the sublattice protocol always
        passes a sector index.
        """
        window = self.window
        ghost = window.ghost
        if len(self.vacancies) == 0:
            active_mask = np.zeros(0, dtype=bool)
        elif sector is None:
            active_mask = np.ones(len(self.vacancies), dtype=bool)
        else:
            active_mask = (
                self.sectors.sector_of_half(self.vacancies, ghost) == sector
            )
        active = [tuple(int(v) for v in h) for h in self.vacancies[active_mask]]
        changed_subs: List[int] = []
        changed_cells: List[np.ndarray] = []
        changed_species: List[int] = []

        clock = 0.0
        while active:
            rate_rows = [self._rates_of(np.array(h)) for h in active]
            totals = np.array([r.sum() for r in rate_rows])
            total = float(totals.sum())
            if total <= 0.0:
                break
            dt = -np.log(1.0 - self.rng.random()) / total
            if clock + dt > t_stop:
                self.rejected += 1
                break
            clock += dt
            u = self.rng.random() * total
            cum = np.cumsum(totals)
            vac_idx = int(np.searchsorted(cum, u, side="right"))
            vac_idx = min(vac_idx, len(active) - 1)
            rem = u - (cum[vac_idx - 1] if vac_idx > 0 else 0.0)
            rates = rate_rows[vac_idx]
            dcum = np.cumsum(rates)
            direction = min(int(np.searchsorted(dcum, rem, side="right")), 7)
            while rates[direction] == 0.0 and direction > 0:
                direction -= 1

            vac_half = np.array(active[vac_idx], dtype=np.int64)
            target_half = vac_half + self.tet.nn_offsets[direction]
            # Swap occupants in the window.
            vac_species = window.species_at_half(vac_half[None, :])[0]
            tgt_species = window.species_at_half(target_half[None, :])[0]
            if vac_species != self.vacancy_code or tgt_species == self.vacancy_code:
                # Only reachable through stale data in naive mode (a would-be
                # boundary conflict); the sublattice protocol forbids it.
                self.anomalies += 1
                active.pop(vac_idx)
                continue
            window.set_species_at_half(vac_half[None, :], tgt_species)
            window.set_species_at_half(target_half[None, :], self.vacancy_code)
            self.events += 1

            # Record both sites (global coordinates) for the ghost exchange.
            for half, species in (
                (vac_half, tgt_species), (target_half, self.vacancy_code)
            ):
                s, padded = window.site_from_half(half[None, :])
                gcell = window.global_cell_of_padded(padded[0])
                changed_subs.append(int(s[0]))
                changed_cells.append(gcell)
                changed_species.append(int(species))

            both = np.stack([vac_half, target_half])
            self.invalidate_near(both)
            # Track the moved vacancy; it may have left the sector (or even
            # the local box — ownership resolves at the post-cycle rescan).
            new_key = tuple(int(v) for v in target_half)
            active[vac_idx] = new_key
            left_box = not bool(window.is_local_half(target_half[None, :])[0])
            left_sector = sector is not None and (
                int(self.sectors.sector_of_half(target_half[None, :], ghost)[0])
                != sector
            )
            if left_box or left_sector:
                active.pop(vac_idx)

        if changed_cells:
            return SiteUpdates(
                np.array(changed_subs),
                np.stack(changed_cells),
                np.array(changed_species),
            )
        return SiteUpdates.empty()


class SublatticeKMC:
    """The parallel AKMC driver (paper Sec. 2.2 + TensorKMC innovations).

    Parameters
    ----------
    lattice:
        The initial *global* periodic state; it is scattered to the rank
        windows (and can be gathered back with :meth:`gather_global`).
    potential, tet, temperature:
        As for the serial engines.
    n_ranks / grid:
        Number of simulated MPI ranks, or an explicit rank grid.
    t_stop:
        Synchronisation interval (paper default 2e-8 s).
    seed:
        Base RNG seed; rank ``r`` uses ``seed + r``.
    sector_mode:
        ``"sublattice"`` (default) runs the paper's conflict-free protocol:
        all ranks evolve the *same* octant per cycle.  ``"naive"`` lets every
        rank evolve its whole subdomain each cycle — the MD-style domain
        decomposition the paper warns against (Sec. 2.2), kept for the
        conflict-demonstration ablation.  Because SimComm serialises rank
        execution, naive mode cannot corrupt memory here; instead the driver
        *counts* proximity violations — pairs of same-cycle changes from
        different ranks closer than the interaction reach, i.e. the hops
        that would have raced on a real machine.
    """

    def __init__(
        self,
        lattice: LatticeState,
        potential: CountsPotential,
        tet: TripleEncoding,
        n_ranks: int = 2,
        grid: Optional[Tuple[int, int, int]] = None,
        temperature: float = TEMPERATURE_RPV,
        t_stop: float = T_STOP,
        seed: int = 0,
        sector_mode: str = "sublattice",
        ea0=None,
    ) -> None:
        if sector_mode not in ("sublattice", "naive"):
            raise ValueError(f"unknown sector_mode {sector_mode!r}")
        self.sector_mode = sector_mode
        self.proximity_violations = 0
        self.global_shape = lattice.shape
        self.a = lattice.a
        self.tet = tet
        self.t_stop = float(t_stop)
        grid = grid or choose_grid(n_ranks, lattice.shape)
        self.decomposition = GridDecomposition(lattice.shape, grid)
        self.world = SimCommWorld(self.decomposition.n_ranks)
        evaluator = VacancySystemEvaluator(tet, potential)
        if lattice.vacancy_code != evaluator.vacancy_code:
            raise ValueError(
                f"lattice vacancy code {lattice.vacancy_code} != potential's "
                f"{evaluator.vacancy_code} (n_elements mismatch)"
            )
        rate_model = RateModel(temperature, ea0=ea0)

        occupancy4d = lattice.occupancy.reshape(2, *lattice.shape)
        self.ranks: List[RankState] = []
        for r in range(self.decomposition.n_ranks):
            box = self.decomposition.box_of_rank(r)
            window = LocalWindow(box, lattice.shape, tet.ghost_cells, a=lattice.a)
            window.fill_from_global(occupancy4d)
            exchanger = GhostExchanger(self.world.comm(r), self.decomposition, window)
            sectors = SectorGeometry(box, tet.min_sector_cells)
            self.ranks.append(
                RankState(
                    rank=r,
                    window=window,
                    exchanger=exchanger,
                    sectors=sectors,
                    evaluator=evaluator,
                    rate_model=rate_model,
                    rng=np.random.default_rng(seed + r),
                )
            )
        self.time = 0.0
        self.sector_index = 0
        self.cycles: List[CycleStats] = []

    # ------------------------------------------------------------------
    def cycle(self) -> CycleStats:
        """One synchronous sublattice cycle: evolve sector, exchange, rotate."""
        sector = self.sector_index % N_SECTORS
        msg_before = self.world.stats.messages_sent
        bytes_before = self.world.stats.bytes_sent
        events_before = sum(r.events for r in self.ranks)
        rejected_before = sum(r.rejected for r in self.ranks)

        t0 = _time.perf_counter()
        if self.sector_mode == "sublattice":
            updates = [rank.run_sector(sector, self.t_stop) for rank in self.ranks]
        else:
            updates = [rank.run_sector(None, self.t_stop) for rank in self.ranks]
        compute_seconds = _time.perf_counter() - t0
        self.proximity_violations += self._count_proximity_violations(updates)

        # Exchange phase: everyone sends, then everyone applies (lockstep).
        for rank, ups in zip(self.ranks, updates):
            rank.exchanger.send_updates(ups)
        for rank in self.ranks:
            written_half = rank.exchanger.apply_updates()
            if written_half.size:
                rank.invalidate_near(written_half)
            rank.exchanger.comm.barrier()
            rank.rescan_vacancies()
        self.world.assert_drained()

        self.time += self.t_stop
        self.sector_index += 1
        stats = CycleStats(
            sector=sector,
            events=sum(r.events for r in self.ranks) - events_before,
            rejected=sum(r.rejected for r in self.ranks) - rejected_before,
            compute_seconds=compute_seconds,
            comm_messages=self.world.stats.messages_sent - msg_before,
            comm_bytes=self.world.stats.bytes_sent - bytes_before,
        )
        self.cycles.append(stats)
        return stats

    def run(self, n_cycles: int) -> List[CycleStats]:
        """Run whole cycles; a sweep of 8 covers every sector once."""
        return [self.cycle() for _ in range(n_cycles)]

    def _count_proximity_violations(self, updates) -> int:
        """Same-cycle changes from different ranks within interaction reach.

        On a real machine two such hops race on each other's stale ghost
        data; the sublattice sector separation makes the count provably
        zero, while naive whole-domain cycles accumulate violations.
        """
        reach = self.tet.invalidation_radius
        dims = np.array(self.global_shape, dtype=np.float64)
        span = dims * self.a
        points = []
        for rank, ups in zip(self.ranks, updates):
            if len(ups):
                sub = ups.sublattice.astype(np.float64)
                pos = (ups.cell.astype(np.float64) + 0.5 * sub[:, None]) * self.a
                points.append((rank.rank, pos))
        count = 0
        for i in range(len(points)):
            for j in range(i + 1, len(points)):
                ri, pi = points[i]
                rj, pj = points[j]
                delta = pi[:, None, :] - pj[None, :, :]
                delta -= span * np.round(delta / span)
                dist = np.sqrt(np.sum(delta**2, axis=-1))
                count += int(np.sum(dist <= reach))
        return count

    # ------------------------------------------------------------------
    def gather_global(self) -> LatticeState:
        """Reassemble the global lattice from the owned blocks."""
        out = LatticeState(self.global_shape, a=self.a)
        occupancy4d = out.occupancy.reshape(2, *self.global_shape)
        for rank in self.ranks:
            box = rank.window.box
            occupancy4d[
                :,
                box.lo[0] : box.hi[0],
                box.lo[1] : box.hi[1],
                box.lo[2] : box.hi[2],
            ] = rank.window.local_block()
        return out

    def check_ghost_consistency(self) -> bool:
        """Verify every rank's ghost cells agree with the owners' data."""
        reference = self.gather_global().occupancy.reshape(2, *self.global_shape)
        for rank in self.ranks:
            fresh = LocalWindow(
                rank.window.box, self.global_shape, rank.window.ghost, a=self.a
            )
            fresh.fill_from_global(reference)
            if not np.array_equal(fresh.occupancy, rank.window.occupancy):
                return False
        return True

    @property
    def total_events(self) -> int:
        return sum(r.events for r in self.ranks)

    @property
    def total_anomalies(self) -> int:
        """Hops blocked by stale data (must be 0 in sublattice mode)."""
        return sum(r.anomalies for r in self.ranks)
