"""Parallel AKMC: the synchronous sublattice driver over simulated ranks.

:class:`SublatticeKMC` decomposes a periodic box across ranks (Fig. 2a), runs
the Shim-Amar synchronous sublattice protocol (Fig. 2b) with the paper's
synchronisation interval ``t_stop``, and exchanges boundary changes through
:class:`~repro.parallel.comm.SimComm` after every sector cycle.

Per cycle all ranks evolve the *same* octant sector of their own subdomain
for a duration ``t_stop`` (events that would overshoot the interval are
rejected, the standard semirigorous rule), then ghost regions synchronise and
the sector index rotates.  Conflict freedom holds by construction because
concurrently-active sectors of neighbouring ranks are at least one sector
width apart (validated by :class:`~repro.parallel.sublattice.SectorGeometry`).

Each rank drives the same :class:`~repro.core.kernel.EventKernel` as the
serial engines: per-vacancy rate rows live in the keyed cache, events are
selected through the Fenwick tree in O(log n), and post-hop / post-exchange
invalidation goes through the spatial-hash index in O(|changed|).  Vacancies
entering or leaving a rank's box are added to / removed from the kernel
registry at the post-cycle rescan (free-list slot recycling), and the sector
restriction maps onto the kernel's active-slot set.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..constants import T_STOP, TEMPERATURE_RPV
from ..core.backend import get_backend
from ..core.delta import DeltaRebuilder
from ..core.kernel import EventKernel, NoMovesError
from ..core.profiling import PHASES, PhaseProfiler, merge_disjoint
from ..core.rates import RateModel, residence_time
from ..core.rowcache import RowEnergyCache, resolve_row_cache
from ..core.tet import TripleEncoding
from ..core.vacancy_system import VacancySystemEvaluator
from ..lattice.domain import LocalWindow
from ..lattice.occupancy import LatticeState
from ..potentials.base import CountsPotential
from .comm import ProtocolError, SimCommWorld, allreduce_sum
from .decomposition import GridDecomposition, choose_grid
from .executor import InlineExecutor, ProcessExecutor, resolve_workers
from .faults import FaultPlan
from .ghost import GhostExchanger, SiteUpdates
from .sublattice import N_SECTORS, SectorGeometry

__all__ = ["RankState", "SublatticeKMC", "CycleStats"]


@dataclass
class CycleStats:
    """Per-cycle accounting for the scaling model and kernel instrumentation."""

    sector: int
    events: int
    rejected: int
    compute_seconds: float
    comm_messages: int
    comm_bytes: int
    #: Kernel counter deltas for this cycle (summed over ranks).
    cache_hits: int = 0
    cache_misses: int = 0
    invalidations: int = 0
    rates_evaluated: int = 0
    selections: int = 0
    selection_depth: int = 0
    #: Batched miss-path deltas: fused build calls and rows they produced.
    rate_batches: int = 0
    batched_rows: int = 0
    #: Row-energy cache deltas (the shared persistent memo, when enabled).
    row_cache_hits: int = 0
    row_cache_misses: int = 0
    row_cache_evictions: int = 0
    #: Per-phase wall time this cycle (summed over ranks + the exchange
    #: block), from the rank/world :class:`~repro.core.profiling.PhaseProfiler`s.
    rebuild_seconds: float = 0.0
    select_seconds: float = 0.0
    hop_seconds: float = 0.0
    invalidate_seconds: float = 0.0
    exchange_seconds: float = 0.0
    #: Driver time blocked on worker apply replies during the exchange
    #: block (process executor; always 0.0 inline).
    exchange_wait_seconds: float = 0.0


class RankState:
    """Everything one rank owns: window, vacancies, event kernel, RNG."""

    def __init__(
        self,
        rank: int,
        window: LocalWindow,
        exchanger: GhostExchanger,
        sectors: SectorGeometry,
        evaluator: VacancySystemEvaluator,
        rate_model: RateModel,
        rng: np.random.Generator,
        rebuild_path: str = "auto",
    ) -> None:
        self.rank = rank
        self.window = window
        self.exchanger = exchanger
        self.sectors = sectors
        self.evaluator = evaluator
        self.rate_model = rate_model
        self.rng = rng
        self.tet = evaluator.tet
        self.vacancy_code = evaluator.vacancy_code
        #: Vacancies in the local box, as window half-coordinates.
        self.vacancies = window.local_vacancy_half_coords(self.vacancy_code)
        # Distances are taken directly in window half-units (non-periodic:
        # the padded window never wraps), so the threshold converts the TET
        # radius from Angstrom through scale=1.
        self.kernel = EventKernel(
            self._build_rates,
            lambda key: np.asarray(key, dtype=np.int64),
            threshold=2.0 * self.tet.invalidation_radius / self.tet.geometry.a,
            scale=1.0,
            propensity="tree",
            periodic_half=None,
            keys=[tuple(int(v) for v in h) for h in self.vacancies],
            # Batched miss path only when per-row results are guaranteed
            # independent of the batch shape (see CountsPotential).  All
            # shipped potentials qualify, the NNP via the deterministic
            # tiled-GEMM kernel (repro.operators.tilegemm).
            build_entries=(
                self._build_rates_batch
                if getattr(evaluator.potential, "batch_row_invariant", False)
                else None
            ),
            backend=evaluator.xp,
        )
        # Incremental rebuild callbacks: the rank's coordinate space is the
        # padded window, so VET snapshots are keyed by window-flat site ids
        # (unique per padded position — periodic aliases of one global site
        # are distinct window sites, exactly as the full path treats them:
        # a hop patches the primary position, the post-cycle ghost exchange
        # patches the aliases it writes).
        if getattr(evaluator.potential, "batch_row_invariant", False):
            rebuilder = DeltaRebuilder(
                self.kernel.cache,
                evaluator,
                rate_model,
                sites_of=self._delta_sites_of,
                gather=self._delta_gather,
                locate=self._delta_locate,
            )
            self.kernel.build_entries_delta = rebuilder.build_entries
            self.kernel.patch_entries = rebuilder.patch_entries
        if rebuild_path != "auto":
            self.kernel.set_rebuild_path(rebuild_path)
        self.events = 0
        self.rejected = 0
        #: Hops blocked by inconsistent (stale) data — naive mode only.
        self.anomalies = 0
        #: Per-phase wall-time attribution of this rank's event loop.
        self.profiler = PhaseProfiler()

    # ------------------------------------------------------------------
    def rescan_vacancies(self) -> None:
        """Rebuild the local vacancy list and sync the kernel registry.

        Vacancies that hopped out of the owned block (or were moved away by
        a neighbour's update) leave the registry; newly arrived ones get a
        slot from the free list.
        """
        self.vacancies = self.window.local_vacancy_half_coords(self.vacancy_code)
        current = {tuple(int(v) for v in h) for h in self.vacancies}
        kernel = self.kernel
        known = set()
        for slot in kernel.live_slots():
            key = kernel.key_of(slot)
            if key in current:
                known.add(key)
            else:
                kernel.remove(slot)
        for key in sorted(current - known):
            kernel.add(key)

    def _build_rates(self, key: Tuple[int, int, int]) -> np.ndarray:
        """Per-direction rates of the vacancy at window half-coords."""
        half = np.asarray(key, dtype=np.int64)
        vet_half = half[None, :] + self.tet.all_offsets
        vet = self.window.species_at_half(vet_half)
        energies = self.evaluator.evaluate(vet)
        return self.rate_model.rates(energies)

    def _build_rates_batch(self, keys) -> np.ndarray:
        """Rate rows of a whole stale batch through one fused pipeline.

        Used by the kernel whenever more than zero slots queued up — after a
        hop, after a ghost synchronisation, and for the whole sector
        population at the post-rescan cold start — so every VET gather,
        feature build, and potential call runs once per batch instead of once
        per vacancy.
        """
        half = np.asarray(keys, dtype=np.int64)
        vet_half = half[:, None, :] + self.tet.all_offsets[None, :, :]
        vets = self.window.species_at_half(vet_half)
        energies = self.evaluator.evaluate_batch(vets)
        return self.rate_model.rates_batch(energies)

    # ------------------------------------------------------------------
    # Delta-rebuild coordinate callbacks (window half-coords <-> flat ids)
    # ------------------------------------------------------------------
    def _window_flat_ids(self, half: np.ndarray) -> np.ndarray:
        """Flat site ids over the padded window ``(2, px, py, pz)``."""
        s, cell = self.window.site_from_half(np.asarray(half, dtype=np.int64))
        px, py, pz = self.window.padded_shape
        return ((s * px + cell[..., 0]) * py + cell[..., 1]) * pz + cell[..., 2]

    def _delta_sites_of(self, keys) -> np.ndarray:
        return self._window_flat_ids(np.asarray(keys, dtype=np.int64))

    def _delta_gather(self, keys):
        half = np.asarray(keys, dtype=np.int64)
        vet_half = half[:, None, :] + self.tet.all_offsets[None, :, :]
        return self._window_flat_ids(vet_half), self.window.species_at_half(
            vet_half
        )

    def _delta_locate(self, points_half: np.ndarray):
        points = np.asarray(points_half, dtype=np.int64).reshape(-1, 3)
        return self._window_flat_ids(points), self.window.species_at_half(points)

    def invalidate_near(self, changed_half: np.ndarray) -> None:
        """Drop cached rates of vacancies near changed sites (Sec. 3.2)."""
        if changed_half.size == 0:
            return
        self.kernel.invalidate_near(changed_half)

    # ------------------------------------------------------------------
    def run_sector(self, sector, t_stop: float) -> SiteUpdates:
        """Evolve one sector (or all vacancies when ``sector is None``).

        ``sector=None`` is the *naive* whole-domain mode kept for the
        conflict-demonstration ablation; the sublattice protocol always
        passes a sector index.
        """
        window = self.window
        ghost = window.ghost
        kernel = self.kernel
        profiler = self.profiler
        with profiler.phase("rebuild"):
            if len(self.vacancies) == 0:
                active_mask = np.zeros(0, dtype=bool)
            elif sector is None:
                active_mask = np.ones(len(self.vacancies), dtype=bool)
            else:
                active_mask = (
                    self.sectors.sector_of_half(self.vacancies, ghost) == sector
                )
            active_slots = [
                slot
                for h in self.vacancies[active_mask]
                if (slot := kernel.slot_of(tuple(int(v) for v in h))) is not None
            ]
            kernel.set_active(active_slots)
        # Changed sites accumulate as raw half-coordinates; the conversion to
        # (sublattice, global cell) runs once over the whole sector's batch
        # after the loop — order-preserving, so the resulting SiteUpdates are
        # identical to the historical per-event conversion.
        changed_half: List[np.ndarray] = []
        changed_species: List[int] = []

        clock = 0.0
        try:
            while True:
                with profiler.phase("rebuild"):
                    kernel.refresh()
                with profiler.phase("select"):
                    total = kernel.total
                    if total <= 0.0:
                        break
                    u = self.rng.random() * total
                    slot, direction, entry = kernel.select(u)
                    dt = residence_time(total, 1.0 - self.rng.random())
                    if clock + dt > t_stop:
                        self.rejected += 1
                        break
                clock += dt

                with profiler.phase("hop"):
                    vac_half = np.asarray(kernel.key_of(slot), dtype=np.int64)
                    target_half = vac_half + self.tet.nn_offsets[direction]
                    # Swap occupants in the window (both species in one read).
                    species = window.species_at_half(
                        np.stack((vac_half, target_half))
                    )
                    vac_species, tgt_species = species[0], species[1]
                    if (
                        vac_species != self.vacancy_code
                        or tgt_species == self.vacancy_code
                    ):
                        # Only reachable through stale data in naive mode (a
                        # would-be boundary conflict); the sublattice protocol
                        # forbids it.
                        self.anomalies += 1
                        kernel.deactivate(slot)
                        continue
                    window.set_species_at_half(vac_half[None, :], tgt_species)
                    window.set_species_at_half(
                        target_half[None, :], self.vacancy_code
                    )
                    self.events += 1

                    # Record both sites for the ghost exchange (converted in
                    # one batch after the loop).
                    changed_half.append(vac_half)
                    changed_half.append(target_half)
                    changed_species.append(int(tgt_species))
                    changed_species.append(int(self.vacancy_code))

                    # Track the moved vacancy; it may have left the sector
                    # (or even the local box — ownership resolves at the
                    # post-cycle rescan).
                    kernel.move(slot, tuple(int(v) for v in target_half))
                with profiler.phase("invalidate"):
                    kernel.invalidate_near(np.stack([vac_half, target_half]))
                with profiler.phase("hop"):
                    left_box = not bool(
                        window.is_local_half(target_half[None, :])[0]
                    )
                    left_sector = sector is not None and (
                        int(
                            self.sectors.sector_of_half(
                                target_half[None, :], ghost
                            )[0]
                        )
                        != sector
                    )
                    if left_box or left_sector:
                        kernel.deactivate(slot)
        except NoMovesError:
            # Numerical edge: the tree clamp landed on a dead row — nothing
            # selectable remains in this sector.
            pass
        finally:
            with profiler.phase("rebuild"):
                kernel.set_active(None)

        with profiler.phase("hop"):
            if changed_half:
                half = np.stack(changed_half)
                subs, padded = window.site_from_half(half)
                cells = window.global_cell_of_padded(padded)
                return SiteUpdates(subs, cells, np.array(changed_species))
        return SiteUpdates.empty()


class SublatticeKMC:
    """The parallel AKMC driver (paper Sec. 2.2 + TensorKMC innovations).

    Parameters
    ----------
    lattice:
        The initial *global* periodic state; it is scattered to the rank
        windows (and can be gathered back with :meth:`gather_global`).
    potential, tet, temperature:
        As for the serial engines.
    n_ranks / grid:
        Number of simulated MPI ranks, or an explicit rank grid.
    t_stop:
        Synchronisation interval (paper default 2e-8 s).
    seed:
        Base RNG seed; rank ``r`` uses ``seed + r``.
    sector_mode:
        ``"sublattice"`` (default) runs the paper's conflict-free protocol:
        all ranks evolve the *same* octant per cycle.  ``"naive"`` lets every
        rank evolve its whole subdomain each cycle — the MD-style domain
        decomposition the paper warns against (Sec. 2.2), kept for the
        conflict-demonstration ablation.  Because SimComm serialises rank
        execution, naive mode cannot corrupt memory here; instead the driver
        *counts* proximity violations — pairs of same-cycle changes from
        different ranks closer than the interaction reach, i.e. the hops
        that would have raced on a real machine.
    fault_plan:
        Optional :class:`~repro.parallel.faults.FaultPlan` attached to the
        communicator: scripted/seeded message drop, duplication, delay and
        rank kills, surfaced as structured
        :class:`~repro.parallel.comm.ProtocolError`\\ s (see
        ``repro.parallel.recovery`` for the rollback-and-replay driver).
    backend:
        Array backend name/instance for every rank's hot path (default:
        ``REPRO_BACKEND`` env, then the NumPy golden reference).  All ranks
        share one evaluator and hence one backend; window occupancy, ghost
        exchange buffers and checkpoints stay NumPy-resident.
    rebuild_path:
        Miss-pipeline rebuild mode for every rank's kernel (``"auto"`` /
        ``"full"`` / ``"delta"``, see
        :meth:`~repro.core.kernel.EventKernel.set_rebuild_path`).  Under
        ``"auto"`` the incremental path switches on whenever the potential
        is ``batch_row_invariant``; all three modes produce bit-identical
        trajectories.
    row_cache / row_cache_mb:
        Persistent row-energy memoization knobs (``"auto"``/``"on"``/
        ``"off"`` and an optional MiB budget), as for the serial engines.
        The ranks share one evaluator, so a single
        :class:`~repro.core.rowcache.RowEnergyCache` spans every rank's
        miss path; its counters are merged once at the simulation level
        (rank kernels report zeros) and surfaced through
        :class:`CycleStats` / :meth:`summary`.  Under the process
        executor every worker owns a forked replica of the cache (each
        with the full byte budget); the workers' counter deltas are
        folded back into this one driver-side object every cycle, so the
        summary stays a single monotonic total.
    executor:
        ``"inline"`` (default) runs every rank sequentially in the driver
        process — the bit-exact golden reference.  ``"process"`` runs the
        rank event loops on a persistent ``fork``-based worker pool (see
        :class:`~repro.parallel.executor.ProcessExecutor`); fixed-seed
        trajectories are bit-identical between the two.
    workers:
        Process-pool size (``executor="process"`` only; default: one
        worker per rank, capped at the rank count).  Passing it with the
        inline executor raises :class:`ValueError`.
    """

    def __init__(
        self,
        lattice: LatticeState,
        potential: CountsPotential,
        tet: TripleEncoding,
        n_ranks: int = 2,
        grid: Optional[Tuple[int, int, int]] = None,
        temperature: float = TEMPERATURE_RPV,
        t_stop: float = T_STOP,
        seed: int = 0,
        sector_mode: str = "sublattice",
        ea0=None,
        fault_plan: Optional[FaultPlan] = None,
        backend=None,
        rebuild_path: str = "auto",
        row_cache: str = "auto",
        row_cache_mb: Optional[float] = None,
        executor: str = "inline",
        workers: Optional[int] = None,
    ) -> None:
        if sector_mode not in ("sublattice", "naive"):
            raise ValueError(f"unknown sector_mode {sector_mode!r}")
        if rebuild_path not in EventKernel.REBUILD_PATHS:
            raise ValueError(
                f"unknown rebuild path {rebuild_path!r}; allowed modes: "
                f"{EventKernel.REBUILD_PATHS}"
            )
        self.rebuild_path = rebuild_path
        self.sector_mode = sector_mode
        self.proximity_violations = 0
        self.global_shape = lattice.shape
        self.a = lattice.a
        self.tet = tet
        self.t_stop = float(t_stop)
        self.seed = int(seed)
        grid = grid or choose_grid(n_ranks, lattice.shape)
        self.decomposition = GridDecomposition(lattice.shape, grid)
        self.world = SimCommWorld(self.decomposition.n_ranks, fault_plan=fault_plan)
        self.xp = get_backend(backend)
        potential.set_backend(self.xp)
        evaluator = VacancySystemEvaluator(tet, potential, backend=self.xp)
        if lattice.vacancy_code != evaluator.vacancy_code:
            raise ValueError(
                f"lattice vacancy code {lattice.vacancy_code} != potential's "
                f"{evaluator.vacancy_code} (n_elements mismatch)"
            )
        rate_model = RateModel(temperature, ea0=ea0)
        # One shared cache across all ranks (they share the evaluator); the
        # rank kernels are left without a row_cache reference on purpose —
        # `_kernel_counters` sums per-rank counters, so the shared cache's
        # counters are merged exactly once at the simulation level instead.
        self.row_cache_mode = row_cache
        self.row_cache: Optional[RowEnergyCache] = None
        if resolve_row_cache(row_cache, potential):
            budget = (
                None if row_cache_mb is None
                else int(float(row_cache_mb) * 1024 * 1024)
            )
            self.row_cache = evaluator.attach_row_cache(
                RowEnergyCache(max_bytes=budget)
            )

        occupancy4d = lattice.occupancy.reshape(2, *lattice.shape)
        self.ranks: List[RankState] = []
        for r in range(self.decomposition.n_ranks):
            box = self.decomposition.box_of_rank(r)
            window = LocalWindow(box, lattice.shape, tet.ghost_cells, a=lattice.a)
            window.fill_from_global(occupancy4d)
            exchanger = GhostExchanger(self.world.comm(r), self.decomposition, window)
            sectors = SectorGeometry(box, tet.min_sector_cells)
            self.ranks.append(
                RankState(
                    rank=r,
                    window=window,
                    exchanger=exchanger,
                    sectors=sectors,
                    evaluator=evaluator,
                    rate_model=rate_model,
                    rng=np.random.default_rng(seed + r),
                    rebuild_path=rebuild_path,
                )
            )
        self.evaluator = evaluator
        self.time = 0.0
        self.sector_index = 0
        self.cycles: List[CycleStats] = []
        #: World-level profiler: the ghost-exchange/rescan block ("exchange").
        #: Per-event phases accumulate on each rank's own profiler.
        self.profiler = PhaseProfiler()
        # Execution backend.  The process pool spins up lazily at the first
        # cycle, so post-construction state surgery (checkpoint restore)
        # is inherited by the fork — "shipped once at spin-up" for free.
        n_workers = resolve_workers(executor, workers, len(self.ranks))
        self.executor_kind = executor
        self._executor = (
            ProcessExecutor(self, n_workers)
            if executor == "process"
            else InlineExecutor(self)
        )

    @property
    def n_workers(self) -> int:
        """Worker-process count (0 under the inline executor)."""
        return self._executor.n_workers

    def sync_ranks(self) -> None:
        """Make the driver-side (shadow) rank states coherent.

        Under the process executor the authoritative windows, RNG streams
        and kernel registries live in the workers; this pulls their
        snapshots into the driver's ``RankState`` objects (lazily — a
        no-op when nothing ran since the last sync, and always a no-op
        inline).  Checkpointing, global gathers, and ghost-consistency
        checks call it so both executors look identical from outside.
        """
        self._executor.sync_shadow()

    def close(self) -> None:
        """Release executor resources (terminates the worker pool)."""
        self._executor.close()

    def __enter__(self) -> "SublatticeKMC":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def attach_cost_ledger(self, ledger):
        """Charge all ranks' rate evaluations to ``ledger`` (Fig. 9 model).

        The ranks share one
        :class:`~repro.core.vacancy_system.VacancySystemEvaluator`, so a
        single attach covers every scalar and batched miss evaluation in the
        parallel campaign.
        """
        return self.evaluator.attach_cost_ledger(ledger)

    # ------------------------------------------------------------------
    def _kernel_counters(self) -> Dict[str, int]:
        """Kernel instrumentation summed over all ranks (monotonic)."""
        totals: Dict[str, int] = {}
        for rank in self.ranks:
            for key, value in rank.kernel.counters().items():
                totals[key] = totals.get(key, 0) + int(value)
        if self.row_cache is not None:
            # The cache is shared, not per-rank: merge its counters once
            # (the rank kernels all reported zeros for these keys).  Under
            # the process executor the per-worker replicas' deltas have
            # already been absorbed into this object, so the merge covers
            # every probe wherever it ran.
            for key, value in self.row_cache.counters().items():
                totals[key] = totals.get(key, 0) + int(value)
        # Process executor: worker-side kernel work never touches the
        # shadow kernels; the accumulated per-cycle deltas live here.
        for key, value in self._executor.extra_counters.items():
            totals[key] = totals.get(key, 0) + int(value)
        return totals

    def _phase_totals(self) -> Dict[str, float]:
        """Per-phase seconds summed over rank profilers + the world profiler."""
        totals: Dict[str, float] = {}
        for rank in self.ranks:
            for name, secs in rank.profiler.seconds.items():
                totals[name] = totals.get(name, 0.0) + secs
        for name, secs in self.profiler.seconds.items():
            totals[name] = totals.get(name, 0.0) + secs
        return totals

    def cycle(self) -> CycleStats:
        """One synchronous sublattice cycle: evolve sector, exchange, rotate.

        The cycle index (``sector_index``) drives the communicator's fault
        clock; injected rank kills make the victim skip every phase, and the
        survivors' exchange detects the missing neighbour messages as a
        :class:`~repro.parallel.comm.ProtocolError`.
        """
        sector = self.sector_index % N_SECTORS
        self.world.begin_cycle(self.sector_index)
        killed = self.world.killed
        if len(killed) >= len(self.ranks):
            raise ProtocolError(
                "every rank has been killed — nothing left to run",
                cycle=self.world.cycle,
                transcript=self.world.transcript_tail(),
            )
        msg_before = self.world.stats.messages_sent
        bytes_before = self.world.stats.bytes_sent
        events_before = [r.events for r in self.ranks]
        rejected_before = sum(r.rejected for r in self.ranks)
        kernel_before = self._kernel_counters()
        phases_before = self._phase_totals()

        t0 = _time.perf_counter()
        run_sector = sector if self.sector_mode == "sublattice" else None
        updates = self._executor.run_sectors(run_sector, self.t_stop, killed)
        compute_seconds = _time.perf_counter() - t0
        self.proximity_violations += self._count_proximity_violations(updates)

        # Exchange phase: everyone sends, then everyone applies (lockstep).
        # Sends always run through the driver-resident SimComm endpoints —
        # under the process executor the worker-computed updates are
        # replayed here in the same rank/destination order as inline, so
        # fault draws, CommStats and transcripts stay bit-identical.
        with self.profiler.phase("exchange"):
            for rank, ups in zip(self.ranks, updates):
                if rank.rank in killed:
                    continue
                rank.exchanger.send_updates(ups)
            self._executor.apply_exchange(killed)
            self.world.assert_drained()
            # Time synchronisation: the per-cycle event count flows through a
            # counted collective, so CommStats calibration sees the allreduce
            # traffic every real campaign pays.
            events_cycle = int(
                allreduce_sum(
                    self.world,
                    [
                        float(r.events - before)
                        for r, before in zip(self.ranks, events_before)
                    ],
                )
            )

        self.time += self.t_stop
        self.sector_index += 1
        kernel_after = self._kernel_counters()
        phases_after = self._phase_totals()
        stats = CycleStats(
            sector=sector,
            events=events_cycle,
            rejected=sum(r.rejected for r in self.ranks) - rejected_before,
            compute_seconds=compute_seconds,
            comm_messages=self.world.stats.messages_sent - msg_before,
            comm_bytes=self.world.stats.bytes_sent - bytes_before,
            **{
                key: kernel_after.get(key, 0) - kernel_before.get(key, 0)
                for key in (
                    "cache_hits",
                    "cache_misses",
                    "invalidations",
                    "rates_evaluated",
                    "selections",
                    "selection_depth",
                    "rate_batches",
                    "batched_rows",
                    "row_cache_hits",
                    "row_cache_misses",
                    "row_cache_evictions",
                )
            },
            **{
                f"{name}_seconds": (
                    phases_after.get(name, 0.0) - phases_before.get(name, 0.0)
                )
                for name in PHASES
            },
            exchange_wait_seconds=self._executor.last_exchange_wait,
        )
        self.cycles.append(stats)
        return stats

    def run(self, n_cycles: int) -> List[CycleStats]:
        """Run whole cycles; a sweep of 8 covers every sector once."""
        return [self.cycle() for _ in range(n_cycles)]

    def summary(self) -> Dict[str, float]:
        """Aggregate kernel + protocol counters over all ranks and cycles."""
        out: Dict[str, float] = dict(self._kernel_counters())
        seen = out.get("cache_hits", 0) + out.get("cache_misses", 0)
        out["hit_rate"] = out.get("cache_hits", 0) / seen if seen else 0.0
        out["mean_batch_size"] = (
            out.get("batched_rows", 0) / out["rate_batches"]
            if out.get("rate_batches", 0)
            else 0.0
        )
        out["max_batch_size"] = max(
            max(
                (r.kernel.stats.max_batch_size for r in self.ranks), default=0
            ),
            self._executor.max_batch_size,
        )
        out["events"] = self.total_events
        out["anomalies"] = self.total_anomalies
        out["rejected"] = sum(r.rejected for r in self.ranks)
        out["cycles"] = len(self.cycles)
        out["time"] = self.time
        out["executor"] = self.executor_kind
        out["workers"] = self.n_workers
        out["exchange_wait_seconds"] = sum(
            c.exchange_wait_seconds for c in self.cycles
        )
        out["rebuild_path"] = (
            "delta"
            if all(r.kernel.delta_active() for r in self.ranks)
            else "full"
        )
        if self.row_cache is not None:
            out["row_cache_hit_rate"] = self.row_cache.hit_rate
            # Resident contents live in the worker replicas under the
            # process executor; the driver-side object is authoritative
            # (and the footprint) only inline.
            footprint = self._executor.row_cache_footprint()
            if footprint is None:
                out["row_cache_entries"] = len(self.row_cache)
                out["row_cache_bytes"] = self.row_cache.memory_bytes()
            else:
                out["row_cache_entries"], out["row_cache_bytes"] = footprint
        phases = self._phase_totals()
        # Same no-silent-overwrite contract as the serial summary: the
        # counter namespace and the phase-timing namespace must stay
        # disjoint, and drifting into each other raises.
        return merge_disjoint(
            out, {f"{name}_seconds": phases.get(name, 0.0) for name in PHASES}
        )

    def _count_proximity_violations(self, updates) -> int:
        """Same-cycle changes from different ranks within interaction reach.

        On a real machine two such hops race on each other's stale ghost
        data; the sublattice sector separation makes the count provably
        zero, while naive whole-domain cycles accumulate violations.
        """
        reach = self.tet.invalidation_radius
        dims = np.array(self.global_shape, dtype=np.float64)
        span = dims * self.a
        points = []
        for rank, ups in zip(self.ranks, updates):
            if len(ups):
                sub = ups.sublattice.astype(np.float64)
                pos = (ups.cell.astype(np.float64) + 0.5 * sub[:, None]) * self.a
                points.append((rank.rank, pos))
        count = 0
        for i in range(len(points)):
            for j in range(i + 1, len(points)):
                ri, pi = points[i]
                rj, pj = points[j]
                delta = pi[:, None, :] - pj[None, :, :]
                delta -= span * np.round(delta / span)
                dist = np.sqrt(np.sum(delta**2, axis=-1))
                count += int(np.sum(dist <= reach))
        return count

    # ------------------------------------------------------------------
    def gather_global(self) -> LatticeState:
        """Reassemble the global lattice from the owned blocks."""
        self.sync_ranks()
        out = LatticeState(self.global_shape, a=self.a)
        occupancy4d = out.occupancy.reshape(2, *self.global_shape)
        for rank in self.ranks:
            box = rank.window.box
            occupancy4d[
                :,
                box.lo[0] : box.hi[0],
                box.lo[1] : box.hi[1],
                box.lo[2] : box.hi[2],
            ] = rank.window.local_block()
        return out

    def check_ghost_consistency(self) -> bool:
        """Verify every rank's ghost cells agree with the owners' data."""
        reference = self.gather_global().occupancy.reshape(2, *self.global_shape)
        for rank in self.ranks:
            fresh = LocalWindow(
                rank.window.box, self.global_shape, rank.window.ghost, a=self.a
            )
            fresh.fill_from_global(reference)
            if not np.array_equal(fresh.occupancy, rank.window.occupancy):
                return False
        return True

    @property
    def total_events(self) -> int:
        return sum(r.events for r in self.ranks)

    @property
    def total_anomalies(self) -> int:
        """Hops blocked by stale data (must be 0 in sublattice mode)."""
        return sum(r.anomalies for r in self.ranks)
