"""Strong / weak scaling model (paper Figs. 12-13).

We cannot run 27 million cores, so the scalability curves are produced by a
calibrated analytic model of the synchronous sublattice protocol.  Its two
inputs are *measured* on real multi-rank runs of this repository:

* ``compute_seconds_per_event`` — wall time of one vacancy-system evaluation
  plus event bookkeeping on one CG (the `SublatticeKMC` compute phase);
* ``bytes_per_boundary_site`` — ghost traffic per changed boundary site
  (counted by SimComm).

Per cycle a CG then costs::

    T_cycle = events_per_cg * t_event                       (compute)
            + n_msgs * latency + bytes / bandwidth           (ghost exchange)
            + log2(P) * allreduce_latency                    (synchronisation)

Strong scaling divides a fixed system over more CGs (events per CG shrink,
communication per CG stays ~constant -> efficiency falls slowly); weak
scaling fixes the per-CG system (both terms constant; only the log-depth
synchronisation grows).  This is the same cost structure the paper's 85%
strong-scaling efficiency at 32x follows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

__all__ = [
    "ScalingParameters",
    "ScalingPoint",
    "strong_scaling",
    "weak_scaling",
    "parallel_efficiency",
    "CORES_PER_CG",
]

#: Cores per core group on the SW26010-pro (1 MPE + 64 CPEs).
CORES_PER_CG = 65


@dataclass(frozen=True)
class ScalingParameters:
    """Calibrated per-CG cost inputs of the scaling model."""

    #: Seconds of CG compute per executed KMC event.
    compute_seconds_per_event: float
    #: KMC events per atom per second of simulated time (workload density).
    events_per_atom_second: float
    #: Ghost bytes exchanged per boundary cell per cycle.
    bytes_per_boundary_cell: float
    #: Point-to-point network bandwidth per CG (B/s).
    network_bandwidth: float = 8.0e9
    #: Point-to-point message latency (s).
    message_latency: float = 2.0e-6
    #: Per-hop latency of the synchronisation allreduce (s).
    allreduce_latency: float = 4.0e-6
    #: Neighbour messages per cycle (26-neighbour halo).
    messages_per_cycle: int = 26
    #: Synchronisation interval (s of simulated time).
    t_stop: float = 2.0e-8
    #: Poisson load-imbalance coefficient: the slowest CG of a cycle runs
    #: ``1 + c / sqrt(events_per_cg)`` times the mean compute (fewer events
    #: per cycle -> larger relative fluctuation -> the strong-scaling tail).
    imbalance_coeff: float = 0.5


@dataclass(frozen=True)
class ScalingPoint:
    """One bar of Fig. 12/13."""

    n_cgs: int
    n_cores: int
    atoms_total: float
    atoms_per_cg: float
    cycle_compute: float
    cycle_comm: float
    cycle_sync: float

    @property
    def cycle_time(self) -> float:
        return self.cycle_compute + self.cycle_comm + self.cycle_sync

    def total_time(self, duration: float, t_stop: float) -> float:
        """Wall time to simulate ``duration`` seconds of physical time."""
        return self.cycle_time * duration / t_stop


def _cycle_terms(
    params: ScalingParameters, atoms_per_cg: float, n_cgs: int
) -> ScalingPoint:
    # Events executed by one CG during one t_stop cycle (one active sector).
    events = (
        atoms_per_cg * params.events_per_atom_second * params.t_stop / 8.0
    )
    imbalance = 1.0 + params.imbalance_coeff / np.sqrt(max(events, 1e-9))
    compute = events * params.compute_seconds_per_event * imbalance
    # Boundary area of a cubic subdomain: 6 * L^2 cells with L = cbrt(cells).
    cells = atoms_per_cg / 2.0
    boundary_cells = 6.0 * cells ** (2.0 / 3.0)
    comm_bytes = boundary_cells * params.bytes_per_boundary_cell
    comm = (
        params.messages_per_cycle * params.message_latency
        + comm_bytes / params.network_bandwidth
    )
    sync = params.allreduce_latency * np.log2(max(n_cgs, 2))
    return ScalingPoint(
        n_cgs=n_cgs,
        n_cores=n_cgs * CORES_PER_CG,
        atoms_total=atoms_per_cg * n_cgs,
        atoms_per_cg=atoms_per_cg,
        cycle_compute=compute,
        cycle_comm=comm,
        cycle_sync=sync,
    )


def strong_scaling(
    params: ScalingParameters,
    atoms_total: float,
    cg_counts: List[int],
) -> List[ScalingPoint]:
    """Fixed total system over increasing CG counts (Fig. 12)."""
    return [_cycle_terms(params, atoms_total / n, n) for n in cg_counts]


def weak_scaling(
    params: ScalingParameters,
    atoms_per_cg: float,
    cg_counts: List[int],
) -> List[ScalingPoint]:
    """Fixed per-CG system over increasing CG counts (Fig. 13)."""
    return [_cycle_terms(params, atoms_per_cg, n) for n in cg_counts]


def parallel_efficiency(points: List[ScalingPoint], weak: bool = False) -> List[float]:
    """Efficiency relative to the first point.

    Weak scaling: ideal cycle time is flat, so efficiency is ``t0 / t_P``.
    Strong scaling: the work per cycle already shrinks with P (each CG holds
    1/P of the atoms), so the ideal cycle time is ``t0 * P0 / P`` and the
    efficiency is ``(t0 * P0 / P) / t_P``.
    """
    t0 = points[0].cycle_time
    p0 = points[0].n_cgs
    if weak:
        return [t0 / p.cycle_time for p in points]
    return [(t0 * p0 / p.n_cgs) / p.cycle_time for p in points]
