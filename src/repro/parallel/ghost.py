"""Ghost-region synchronisation between rank windows (paper Fig. 2).

After each sublattice sector cycle, every rank sends the sites it changed to
each rank whose padded window overlaps them; receivers write the updates into
their ghost (or local, for ownership hand-overs) cells.  Two periodic
subtleties are handled explicitly:

* a rank sends to *itself* as well — with one rank along an axis the ghost
  margin wraps onto the rank's own cells;
* a global cell can have several images inside a padded window (whenever the
  window is wider than the global box along an axis), and every image must
  be written.

All traffic flows through :class:`~repro.parallel.comm.SimComm`, so it is
counted for the scaling model.
"""

from __future__ import annotations

from itertools import product
from typing import List, Tuple

import numpy as np

from ..lattice.domain import DomainBox, LocalWindow
from .comm import SimComm
from .decomposition import GridDecomposition

__all__ = ["SiteUpdates", "GhostExchanger", "in_padded_box", "window_images"]

#: Message tag for ghost updates.
GHOST_TAG = "ghost"


class SiteUpdates:
    """A batch of site changes in global coordinates."""

    def __init__(self, sublattice: np.ndarray, cell: np.ndarray, species: np.ndarray):
        self.sublattice = np.asarray(sublattice, dtype=np.int8)
        self.cell = np.asarray(cell, dtype=np.int64).reshape(-1, 3)
        self.species = np.asarray(species, dtype=np.uint8)
        if not (len(self.sublattice) == len(self.cell) == len(self.species)):
            raise ValueError("update component lengths differ")

    def __len__(self) -> int:
        return int(self.sublattice.shape[0])

    @classmethod
    def empty(cls) -> "SiteUpdates":
        return cls(np.empty(0), np.empty((0, 3)), np.empty(0))

    def select(self, mask: np.ndarray) -> "SiteUpdates":
        return SiteUpdates(self.sublattice[mask], self.cell[mask], self.species[mask])


def in_padded_box(
    cell: np.ndarray,
    box: DomainBox,
    ghost: int,
    global_shape: Tuple[int, int, int],
) -> np.ndarray:
    """Whether (wrapped) global cells have at least one image in a padded box."""
    cell = np.asarray(cell, dtype=np.int64).reshape(-1, 3)
    lo = np.array(box.lo, dtype=np.int64) - ghost
    shape = np.array(box.shape, dtype=np.int64) + 2 * ghost
    dims = np.array(global_shape, dtype=np.int64)
    rel = np.mod(cell - lo, dims)
    # The first image is at rel; an image exists iff rel < shape (when the
    # window spans the whole axis, shape >= dims and every cell qualifies).
    return np.all(rel < shape, axis=-1)


def window_images(window: LocalWindow, cell: np.ndarray) -> np.ndarray:
    """All padded-window cell images of one global cell (possibly several)."""
    dims = np.array(window.global_shape, dtype=np.int64)
    shape = np.array(window.padded_shape, dtype=np.int64)
    base = np.mod(np.asarray(cell, dtype=np.int64) - window._origin, dims)
    per_axis: List[List[int]] = []
    for axis in range(3):
        coords = []
        c = int(base[axis])
        while c < shape[axis]:
            coords.append(c)
            c += int(dims[axis])
        per_axis.append(coords)
    if not all(per_axis):
        return np.empty((0, 3), dtype=np.int64)
    return np.array(list(product(*per_axis)), dtype=np.int64)


class GhostExchanger:
    """Per-rank endpoint of the ghost synchronisation protocol."""

    def __init__(
        self,
        comm: SimComm,
        decomposition: GridDecomposition,
        window: LocalWindow,
    ) -> None:
        self.comm = comm
        self.decomposition = decomposition
        self.window = window
        # Destinations include self: with one rank along an axis the ghost
        # margin wraps onto the rank's own cells.
        self.destinations = sorted(
            set(decomposition.neighbors_of(comm.rank)) | {comm.rank}
        )
        self._dest_boxes = {
            r: decomposition.box_of_rank(r) for r in self.destinations
        }

    # ------------------------------------------------------------------
    def send_updates(self, updates: SiteUpdates) -> None:
        """Route changed sites to every rank whose window may see them.

        An (empty-allowed) message goes to *every* destination each phase so
        the receive side drains deterministically.
        """
        for r in self.destinations:
            box = self._dest_boxes[r]
            if len(updates):
                mask = in_padded_box(
                    updates.cell, box, self.window.ghost,
                    self.decomposition.global_shape,
                )
                part = updates.select(mask)
            else:
                part = SiteUpdates.empty()
            self.comm.send(
                r, GHOST_TAG, (part.sublattice, part.cell, part.species)
            )

    def apply_updates(self) -> np.ndarray:
        """Receive and apply all pending updates to every window image.

        The exchange contract is exactly one message per neighbour per phase
        (the send side routes an empty-allowed message to every destination,
        and the neighbour relation is symmetric), so the receive asserts it:
        a missing or duplicated neighbour message — a dropped/delayed packet
        or a dead rank — raises a structured
        :class:`~repro.parallel.comm.ProtocolError`.

        Returns the window half-coordinates of all written sites (used for
        cache invalidation), shape ``(n, 3)``.
        """
        written: List[np.ndarray] = []
        for _src, payload in self.comm.recv_all(
            GHOST_TAG, expected_sources=self.destinations
        ):
            subs, cells, species = payload
            for s, cell, sp in zip(subs, cells, species):
                images = window_images(self.window, cell)
                if images.size == 0:
                    continue
                s_arr = np.full(images.shape[0], int(s), dtype=np.int64)
                half = self.window.half_coords(s_arr, images)
                self.window.set_species_at_half(half, int(sp))
                written.append(half)
        if not written:
            return np.empty((0, 3), dtype=np.int64)
        return np.concatenate(written, axis=0)
