"""Spatial domain decomposition across ranks (paper Fig. 2a)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from ..lattice.domain import DomainBox

__all__ = ["GridDecomposition", "choose_grid"]


def choose_grid(n_ranks: int, shape: Tuple[int, int, int]) -> Tuple[int, int, int]:
    """Near-cubic rank grid whose product is ``n_ranks``.

    Prefers balanced factors, weighted toward the longer box axes.
    """
    best = None
    for px in range(1, n_ranks + 1):
        if n_ranks % px:
            continue
        rest = n_ranks // px
        for py in range(1, rest + 1):
            if rest % py:
                continue
            pz = rest // py
            dims = np.array([shape[0] / px, shape[1] / py, shape[2] / pz])
            if np.any(dims < 1):
                continue
            score = dims.max() / dims.min()  # closest to cubic wins
            if best is None or score < best[0]:
                best = (score, (px, py, pz))
    if best is None:
        raise ValueError(
            f"cannot decompose box {shape} over {n_ranks} ranks"
        )
    return best[1]


@dataclass(frozen=True)
class GridDecomposition:
    """A ``px x py x pz`` rank grid over a periodic cell box.

    Each rank owns a near-equal contiguous slab of cells along each axis.
    """

    global_shape: Tuple[int, int, int]
    grid: Tuple[int, int, int]

    def __post_init__(self) -> None:
        for n, p in zip(self.global_shape, self.grid):
            if p < 1 or n < p:
                raise ValueError(
                    f"grid {self.grid} does not fit box {self.global_shape}"
                )

    @property
    def n_ranks(self) -> int:
        px, py, pz = self.grid
        return px * py * pz

    def rank_coords(self, rank: int) -> Tuple[int, int, int]:
        px, py, pz = self.grid
        return (rank // (py * pz), (rank // pz) % py, rank % pz)

    def rank_of_coords(self, coords: Tuple[int, int, int]) -> int:
        px, py, pz = self.grid
        cx, cy, cz = (c % p for c, p in zip(coords, self.grid))
        return (cx * py + cy) * pz + cz

    def _axis_bounds(self, axis: int, idx: int) -> Tuple[int, int]:
        n = self.global_shape[axis]
        p = self.grid[axis]
        # Even split with the remainder spread over the leading ranks.
        base, extra = divmod(n, p)
        lo = idx * base + min(idx, extra)
        hi = lo + base + (1 if idx < extra else 0)
        return lo, hi

    def box_of_rank(self, rank: int) -> DomainBox:
        """The cell box owned by a rank."""
        coords = self.rank_coords(rank)
        lows, highs = [], []
        for axis in range(3):
            lo, hi = self._axis_bounds(axis, coords[axis])
            lows.append(lo)
            highs.append(hi)
        return DomainBox(lo=tuple(lows), hi=tuple(highs))

    def owner_of_cell(self, cell: np.ndarray) -> np.ndarray:
        """Rank owning each (wrapped) global cell coordinate."""
        cell = np.mod(np.asarray(cell, dtype=np.int64), np.array(self.global_shape))
        ranks = np.empty(cell.shape[:-1], dtype=np.int64)
        axis_idx = []
        for axis in range(3):
            n = self.global_shape[axis]
            p = self.grid[axis]
            base, extra = divmod(n, p)
            c = cell[..., axis]
            # Invert _axis_bounds: leading `extra` ranks hold base+1 cells.
            threshold = extra * (base + 1)
            idx = np.where(
                c < threshold,
                c // (base + 1),
                extra + (c - threshold) // max(base, 1),
            )
            axis_idx.append(idx)
        px, py, pz = self.grid
        ranks = (axis_idx[0] * py + axis_idx[1]) * pz + axis_idx[2]
        return ranks

    def neighbors_of(self, rank: int) -> List[int]:
        """The (up to 26) distinct neighbouring ranks on the periodic grid."""
        coords = self.rank_coords(rank)
        out = set()
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    if dx == dy == dz == 0:
                        continue
                    out.add(
                        self.rank_of_coords(
                            (coords[0] + dx, coords[1] + dy, coords[2] + dz)
                        )
                    )
        out.discard(rank)
        return sorted(out)

    def describe(self) -> Dict[str, object]:
        return {
            "global_shape": self.global_shape,
            "grid": self.grid,
            "n_ranks": self.n_ranks,
            "cells_per_rank": [self.box_of_rank(r).n_cells for r in range(self.n_ranks)],
        }
