"""Deterministic communication fault injection for :class:`SimComm`.

The paper's flagship campaign holds 422,400 processes for days, where message
loss and node failure are statistical certainties; the simulated communicator
lets us *schedule* them instead of waiting.  A :class:`FaultPlan` is attached
to a :class:`~repro.parallel.comm.SimCommWorld` and consulted on every send
and at every cycle boundary:

* scripted :class:`FaultEvent` entries fire a fault at an exact
  ``(cycle, rank, tag)`` coordinate — drop / duplicate / delay a message, or
  kill a rank outright;
* an optional seeded background process (``p_drop`` / ``p_duplicate`` /
  ``p_delay`` per message, drawn from one ``numpy`` generator) models a lossy
  interconnect reproducibly.

Every fault is **one-shot and remembered**: once an event has fired it is
recorded in :attr:`FaultPlan.fired` and never fires again.  The recovery
driver exploits this — after a rollback to the last checkpoint the same plan
object is re-attached to the fresh world, so the replayed cycles run clean
(the failed node has been "replaced").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

import numpy as np

__all__ = ["FaultEvent", "FaultPlan", "FAULT_KINDS"]

#: Supported fault classes.
FAULT_KINDS = ("drop", "duplicate", "delay", "kill")


@dataclass(frozen=True)
class FaultEvent:
    """One scripted fault at an exact protocol coordinate.

    Parameters
    ----------
    kind:
        ``"drop"`` (message never arrives), ``"duplicate"`` (delivered
        twice), ``"delay"`` (delivered one cycle late), or ``"kill"``
        (the rank stops participating from ``cycle`` on).
    cycle:
        Driver cycle index at which the fault becomes armed (the sublattice
        driver's ``sector_index``).
    rank:
        The victim for ``"kill"``; the *source* rank whose sends are affected
        for the message faults.
    tag:
        Restrict message faults to one tag (``None`` matches any tag).
    dest:
        Restrict message faults to one destination (``None`` matches any).
    count:
        Number of messages affected before the event is exhausted.
    """

    kind: str
    cycle: int
    rank: int
    tag: Any = None
    dest: Optional[int] = None
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.count < 1:
            raise ValueError(f"fault count must be >= 1, got {self.count}")

    def matches_send(self, cycle: int, src: int, dest: int, tag: Any) -> bool:
        """Whether this (message) event applies to a send."""
        if self.kind == "kill":
            return False
        if cycle != self.cycle or src != self.rank:
            return False
        if self.tag is not None and tag != self.tag:
            return False
        if self.dest is not None and dest != self.dest:
            return False
        return True


@dataclass
class FaultPlan:
    """A reproducible schedule of communication faults.

    Combines scripted :class:`FaultEvent` entries with an optional seeded
    per-message background fault process.  The plan is stateful: fired events
    are remembered (one-shot semantics) so a rollback-and-replay recovery
    does not re-trigger the same failure.
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: int = 0
    p_drop: float = 0.0
    p_duplicate: float = 0.0
    p_delay: float = 0.0
    #: Fired-fault log: ``(kind, cycle, "src->dest tag=...")`` tuples.
    fired: List[Tuple[str, int, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events = tuple(self.events)
        for p in (self.p_drop, self.p_duplicate, self.p_delay):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"fault probability {p} outside [0, 1]")
        self._remaining = {i: e.count for i, e in enumerate(self.events)}
        self._rng = np.random.default_rng(self.seed)

    # ------------------------------------------------------------------
    def kills_due(self, cycle: int) -> List[int]:
        """Ranks whose scripted kill becomes active at ``cycle`` (one-shot)."""
        victims: List[int] = []
        for i, event in enumerate(self.events):
            if (
                event.kind == "kill"
                and event.cycle <= cycle
                and self._remaining[i] > 0
            ):
                self._remaining[i] = 0
                self.fired.append(("kill", cycle, f"rank {event.rank}"))
                victims.append(event.rank)
        return victims

    def action_for_send(
        self, cycle: int, src: int, dest: int, tag: Any
    ) -> Optional[str]:
        """The fault (if any) to apply to one send; consumes the event."""
        for i, event in enumerate(self.events):
            if self._remaining[i] > 0 and event.matches_send(cycle, src, dest, tag):
                self._remaining[i] -= 1
                self.fired.append(
                    (event.kind, cycle, f"{src}->{dest} tag={tag!r}")
                )
                return event.kind
        if self.p_drop or self.p_duplicate or self.p_delay:
            u = float(self._rng.random())
            for kind, p in (
                ("drop", self.p_drop),
                ("duplicate", self.p_duplicate),
                ("delay", self.p_delay),
            ):
                if u < p:
                    self.fired.append((kind, cycle, f"{src}->{dest} tag={tag!r}"))
                    return kind
                u -= p
        return None

    @property
    def pending_events(self) -> int:
        """Scripted events (or repeats) that have not fired yet."""
        return sum(self._remaining.values())
