"""Synchronous sublattice sector geometry (Shim & Amar, paper Fig. 2b).

Each rank's local box is split into eight octant sectors.  In every cycle all
ranks work on the *same* sector number, so the concurrently-active subregions
of neighbouring ranks are separated by at least one sector width; as long as
that width covers the interaction reach, no two ranks can touch the same
site in one cycle — boundary conflicts are impossible by construction.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..lattice.domain import DomainBox

__all__ = ["SectorGeometry", "N_SECTORS"]

#: Eight octants per domain, as in the paper.
N_SECTORS = 8


class SectorGeometry:
    """Octant sector arithmetic for one rank's local box.

    Parameters
    ----------
    box:
        The rank's cell box.
    min_width_cells:
        Required minimum sector width in cells (``TripleEncoding``'s
        ``min_sector_cells``: the VET reach plus one hop of slack, so that
        even changes extending one 1NN step past their sector stay outside
        every concurrently-active vacancy's environment).
    """

    def __init__(self, box: DomainBox, min_width_cells: int) -> None:
        self.box = box
        self.min_width_cells = int(min_width_cells)
        shape = np.array(box.shape, dtype=np.int64)
        self.mid = shape // 2
        min_sector = int(np.min(np.minimum(self.mid, shape - self.mid)))
        if min_sector < self.min_width_cells:
            raise ValueError(
                f"sector width {min_sector} cells < required "
                f"{self.min_width_cells} cells: the synchronous sublattice "
                f"algorithm cannot guarantee conflict-free hops; use a "
                f"larger per-rank box (box shape {box.shape})"
            )

    def sector_of_local_cell(self, local_cell: np.ndarray) -> np.ndarray:
        """Sector index (0..7) of local cell coordinates (box-relative)."""
        local_cell = np.asarray(local_cell, dtype=np.int64)
        bits = (local_cell >= self.mid).astype(np.int64)
        return (bits[..., 0] << 2) | (bits[..., 1] << 1) | bits[..., 2]

    def sector_of_half(self, half: np.ndarray, ghost: int) -> np.ndarray:
        """Sector of *window* half-unit coordinates of local sites."""
        half = np.asarray(half, dtype=np.int64)
        s = half[..., 0] & 1  # sublattice parity (shared by all components)
        cell = ((half - s[..., None]) >> 1) - ghost  # box-relative local cell
        return self.sector_of_local_cell(cell)

    def sector_cell_bounds(self, sector: int) -> Tuple[np.ndarray, np.ndarray]:
        """Local-cell ``(lo, hi)`` bounds of one sector (box-relative)."""
        if not 0 <= sector < N_SECTORS:
            raise ValueError(f"sector must be in [0, 8), got {sector}")
        shape = np.array(self.box.shape, dtype=np.int64)
        bits = np.array([(sector >> 2) & 1, (sector >> 1) & 1, sector & 1])
        lo = np.where(bits == 0, 0, self.mid)
        hi = np.where(bits == 0, self.mid, shape)
        return lo, hi
