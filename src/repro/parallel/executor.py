"""Pluggable execution backends for the sublattice driver.

:class:`~repro.parallel.engine.SublatticeKMC` validates the synchronous
sublattice protocol; until now it also *executed* it — every rank's event
loop ran sequentially inside one Python process, so eight ranks of batched,
cached, delta-rebuilt work still cost eight ranks of wall-clock.  This
module splits "what the protocol does" from "where the rank loops run":

* :class:`InlineExecutor` — today's sequential loop over driver-resident
  :class:`~repro.parallel.engine.RankState` objects.  It is the bit-exact
  golden reference and the default.
* :class:`ProcessExecutor` — a persistent ``multiprocessing`` worker pool
  (``fork`` start method).  Each worker owns its ranks' full state for the
  whole run: the potential weights, SoA kernel arrays, windows, and RNG
  streams are shipped exactly once, at pool spin-up (for free, via
  fork/copy-on-write), never per cycle.  Per cycle only the small protocol
  payloads cross the pipe: the sector command down, the changed-site
  updates and counter deltas back up, and the routed ghost messages down
  again for the apply phase.

Bit-identity between the two executors is by construction, not by luck:

* every rank's RNG stream is serialised per rank and advances only inside
  that rank's own event loop, wherever it runs;
* the authoritative :class:`~repro.parallel.comm.SimCommWorld` — fault
  plan, transcripts, :class:`~repro.parallel.comm.CommStats`, kill set —
  stays on the driver.  Worker-computed updates are *replayed* through the
  very same ``GhostExchanger.send_updates`` / ``recv_all`` calls the
  inline loop makes, in the same rank order, so every fault draw, byte
  count, and phase-contract check is identical;
* workers only ever receive messages through :class:`ProcComm`, a
  pipe-fed endpoint implementing the ``SimComm`` receive surface
  (tags, ``recv_all`` phase contracts, structured
  :class:`~repro.parallel.comm.ProtocolError`).

Unexpected worker death (a real SIGKILL, not an injected fault) surfaces
as a structured ``ProtocolError`` with ``tag="worker"`` instead of a hang,
so ``run_resilient`` treats a lost process exactly like a lost rank:
discard the world, rebuild the pool from the last checkpoint.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time as _time
import weakref
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .comm import CommStats, ProtocolError
from .ghost import GHOST_TAG, SiteUpdates

__all__ = [
    "EXECUTORS",
    "ProcComm",
    "RankSnapshot",
    "InlineExecutor",
    "ProcessExecutor",
    "resolve_workers",
]

#: Allowed ``executor`` modes of :class:`~repro.parallel.engine.SublatticeKMC`.
EXECUTORS = ("inline", "process")


def resolve_workers(executor: str, workers: Optional[int], n_ranks: int) -> int:
    """Validate the ``(executor, workers)`` pair and return the pool size.

    ``workers`` is only meaningful for the process executor (the inline
    loop has no pool to size); passing it with ``executor="inline"`` is a
    hard :class:`ValueError`, not a silent ignore.  The pool never exceeds
    the rank count — extra workers would sit idle forever.
    """
    if executor not in EXECUTORS:
        raise ValueError(
            f"unknown executor {executor!r}; allowed executors: {EXECUTORS}"
        )
    if executor == "inline":
        if workers is not None:
            raise ValueError(
                "workers is only valid with executor='process' "
                "(the inline executor runs every rank in the driver process)"
            )
        return 0
    if workers is None:
        return n_ranks
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return min(int(workers), n_ranks)


@dataclass
class RankSnapshot:
    """One rank's trajectory-determining state, shipped worker -> driver.

    Exactly the per-rank fields the parallel checkpoint serialises: the
    padded window occupancy, the RNG stream, the kernel slot registry
    (slot order encodes event identity) with its free-list stack, and the
    event counters.  Restoring a snapshot into a driver-side shadow
    :class:`~repro.parallel.engine.RankState` makes checkpoints, global
    gathers, and ghost-consistency checks executor-transparent.
    """

    rank: int
    occupancy: np.ndarray
    rng_state: str
    slot_keys: List[Optional[Tuple[int, int, int]]]
    free_order: List[int]
    events: int
    rejected: int
    anomalies: int

    @classmethod
    def capture(cls, rank) -> "RankSnapshot":
        return cls(
            rank=rank.rank,
            occupancy=np.array(rank.window.occupancy, copy=True),
            rng_state=json.dumps(rank.rng.bit_generator.state),
            slot_keys=list(rank.kernel.cache.sites),
            free_order=list(rank.kernel.cache.free_slots),
            events=int(rank.events),
            rejected=int(rank.rejected),
            anomalies=int(rank.anomalies),
        )

    def restore(self, rank) -> None:
        """Write this snapshot into a (shadow) ``RankState`` in place."""
        rank.window.occupancy[:] = self.occupancy
        rank.vacancies = rank.window.local_vacancy_half_coords(
            rank.vacancy_code
        )
        rank.kernel.set_keys(self.slot_keys, free_order=self.free_order)
        rng = np.random.default_rng()
        rng.bit_generator.state = json.loads(self.rng_state)
        rank.rng = rng
        rank.events = self.events
        rank.rejected = self.rejected
        rank.anomalies = self.anomalies


@dataclass
class ProcComm:
    """Worker-side comm endpoint: the ``SimComm`` surface over a pipe feed.

    Workers never talk to each other directly — the driver owns the one
    true :class:`~repro.parallel.comm.SimCommWorld` and replays all sends
    through it (that is what keeps fault injection and ``CommStats``
    bit-identical to the inline loop).  What a worker *does* need is the
    receive side: ``GhostExchanger.apply_updates`` calls
    ``recv_all(tag, expected_sources=...)``, so the driver loads the
    phase's validated messages into this endpoint (:meth:`deliver`) before
    dispatching the apply command.  The phase contract is re-checked here
    as defence in depth; ``local_stats`` counts this endpoint's traffic
    (the authoritative per-rank stats live on the driver's shadow
    endpoints, which saw the same messages).
    """

    rank: int
    local_stats: CommStats = field(default_factory=CommStats)

    def __post_init__(self) -> None:
        self._inbox: Dict[Any, List[Tuple[int, Any]]] = {}

    def deliver(self, tag: Any, messages: Sequence[Tuple[int, Any]]) -> None:
        """Load one phase's messages (send order) for a later ``recv_all``."""
        self._inbox.setdefault(tag, []).extend(messages)

    def send(self, dest: int, tag: Any, payload: Any) -> None:
        """Workers must not originate traffic: sends are driver-side only."""
        raise ProtocolError(
            f"rank {self.rank}: worker-side send to {dest} attempted — all "
            "sends are replayed through the driver's SimCommWorld",
            rank=self.rank,
            tag=tag,
        )

    def recv_all(
        self, tag: Any, expected_sources: Optional[Sequence[int]] = None
    ) -> List[Tuple[int, Any]]:
        out = self._inbox.pop(tag, [])
        if expected_sources is not None:
            counts: Dict[int, int] = {}
            for s, _ in out:
                counts[s] = counts.get(s, 0) + 1
            missing = [s for s in expected_sources if counts.get(s, 0) == 0]
            repeated = [s for s in expected_sources if counts.get(s, 0) > 1]
            if missing or repeated:
                raise ProtocolError(
                    f"rank {self.rank}: worker inbox violates the phase "
                    f"contract (missing {missing}, repeated {repeated})",
                    rank=self.rank,
                    tag=tag,
                )
        return out

    def barrier(self) -> None:
        """Counted no-op; the driver's lockstep already synchronised."""
        self.local_stats.barriers += 1


class InlineExecutor:
    """The sequential golden reference: every rank runs in the driver."""

    kind = "inline"

    def __init__(self, sim) -> None:
        self._sim = sim
        self.n_workers = 0
        #: Kernel-counter contributions beyond the shadow ranks (none here).
        self.extra_counters: Dict[str, int] = {}
        self.max_batch_size = 0
        self.last_exchange_wait = 0.0

    def ensure_started(self) -> None:
        pass

    def run_sectors(self, sector, t_stop: float, killed) -> List[SiteUpdates]:
        return [
            rank.run_sector(sector, t_stop)
            if rank.rank not in killed
            else SiteUpdates.empty()
            for rank in self._sim.ranks
        ]

    def apply_exchange(self, killed) -> None:
        self.last_exchange_wait = 0.0
        for rank in self._sim.ranks:
            if rank.rank in killed:
                continue
            written_half = rank.exchanger.apply_updates()
            if written_half.size:
                rank.invalidate_near(written_half)
            rank.exchanger.comm.barrier()
            rank.rescan_vacancies()

    def sync_shadow(self) -> None:
        pass  # the shadow ranks ARE the live ranks

    def row_cache_footprint(self) -> Optional[Tuple[int, int]]:
        return None  # the driver-side cache object is authoritative

    def close(self) -> None:
        pass


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _counter_marks(rank) -> Tuple[Dict[str, int], Dict[str, float]]:
    """Current kernel counters + profiler seconds (delta baselines)."""
    return dict(rank.kernel.counters()), dict(rank.profiler.seconds)


def _counter_deltas(rank, marks) -> Tuple[Dict[str, int], Dict[str, float]]:
    kernel_mark, phase_mark = marks
    kernel = {
        key: int(value) - kernel_mark.get(key, 0)
        for key, value in rank.kernel.counters().items()
    }
    phases = {
        name: secs - phase_mark.get(name, 0.0)
        for name, secs in rank.profiler.seconds.items()
    }
    return kernel, phases


class _WorkerHarness:
    """The command loop of one worker process (runs post-fork).

    The harness owns the forked copies of its assigned ranks; the fork
    itself is the one-time state shipment (weights, SoA arrays, windows,
    RNG streams all arrive by copy-on-write).  Afterwards only protocol
    payloads cross the pipe.  Every command replies exactly once —
    ``("ok", payload)`` or ``("error", exception)`` — so the driver can
    match replies to commands without sequence numbers.
    """

    def __init__(self, conn, sim, owned: Sequence[int]) -> None:
        self._conn = conn
        self._sim = sim
        self._ranks = {r: sim.ranks[r] for r in owned}
        for r, rank in self._ranks.items():
            rank.exchanger.comm = ProcComm(rank=r)
        self._row_cache = sim.row_cache
        self._rc_mark = self._rc_counters()

    def _rc_counters(self) -> Tuple[int, int, int]:
        cache = self._row_cache
        if cache is None:
            return (0, 0, 0)
        return (int(cache.hits), int(cache.misses), int(cache.evictions))

    def _rc_payload(self) -> Dict[str, Any]:
        """Row-cache counter delta since the last reply + live footprint."""
        now = self._rc_counters()
        delta = tuple(n - m for n, m in zip(now, self._rc_mark))
        self._rc_mark = now
        cache = self._row_cache
        footprint = (
            (len(cache), cache.memory_bytes()) if cache is not None else (0, 0)
        )
        return {"row_cache_delta": delta, "row_cache_footprint": footprint}

    # -- commands ------------------------------------------------------
    def _cmd_sector(self, sector, t_stop: float, live: Sequence[int]) -> dict:
        per_rank: Dict[int, dict] = {}
        for r in live:
            rank = self._ranks[r]
            marks = _counter_marks(rank)
            before = (rank.events, rank.rejected, rank.anomalies)
            updates = rank.run_sector(sector, t_stop)
            kernel, phases = _counter_deltas(rank, marks)
            per_rank[r] = {
                "updates": (updates.sublattice, updates.cell, updates.species),
                "events_delta": rank.events - before[0],
                "rejected_delta": rank.rejected - before[1],
                "anomalies_delta": rank.anomalies - before[2],
                "kernel_delta": kernel,
                "phase_delta": phases,
                "max_batch_size": int(rank.kernel.stats.max_batch_size),
            }
        out = {"ranks": per_rank}
        out.update(self._rc_payload())
        return out

    def _cmd_apply(self, r: int, messages) -> dict:
        rank = self._ranks[r]
        marks = _counter_marks(rank)
        rank.exchanger.comm.deliver(GHOST_TAG, messages)
        written_half = rank.exchanger.apply_updates()
        if written_half.size:
            rank.invalidate_near(written_half)
        rank.rescan_vacancies()
        kernel, phases = _counter_deltas(rank, marks)
        out = {
            "rank": r,
            "kernel_delta": kernel,
            "phase_delta": phases,
            "max_batch_size": int(rank.kernel.stats.max_batch_size),
        }
        out.update(self._rc_payload())
        return out

    def _cmd_snapshot(self, ranks: Sequence[int]) -> dict:
        return {r: RankSnapshot.capture(self._ranks[r]) for r in ranks}

    def serve(self) -> None:
        while True:
            try:
                command = self._conn.recv()
            except EOFError:
                return  # driver vanished; nothing left to serve
            op = command[0]
            if op == "shutdown":
                self._conn.send(("ok", None))
                return
            try:
                if op == "sector":
                    reply = self._cmd_sector(*command[1:])
                elif op == "apply":
                    reply = self._cmd_apply(*command[1:])
                elif op == "snapshot":
                    reply = self._cmd_snapshot(*command[1:])
                else:
                    raise ProtocolError(f"unknown worker command {op!r}")
                self._conn.send(("ok", reply))
            except BaseException as exc:  # noqa: BLE001 — ship it to the driver
                self._conn.send(("error", exc))


def _worker_main(conn, sim, owned: Sequence[int]) -> None:
    """Entry point of a forked worker: serve until shutdown, then exit."""
    try:
        _WorkerHarness(conn, sim, owned).serve()
    finally:
        conn.close()


def _terminate_pool(procs, conns) -> None:
    """Best-effort teardown used by both close() and the weakref finalizer."""
    for conn in conns:
        try:
            conn.close()
        except OSError:
            pass
    for proc in procs:
        if proc.is_alive():
            proc.terminate()
    for proc in procs:
        proc.join(timeout=5.0)


class ProcessExecutor:
    """Persistent fork-based worker pool: ranks run on real cores.

    Worker ``w`` of ``W`` owns ranks ``{r : r % W == w}`` for the whole
    run.  The pool spins up lazily at the first cycle — deliberately
    *after* any post-construction state surgery (checkpoint restore), so
    the fork inherits exactly the state the driver prepared.  State then
    flows one way: workers advance their ranks, the driver accumulates
    counter/phase deltas per cycle and pulls full
    :class:`RankSnapshot`\\ s only when someone needs the shadow ranks
    coherent (checkpoint save, global gather, ghost check).
    """

    kind = "process"

    def __init__(self, sim, n_workers: int) -> None:
        self._sim = sim
        self.n_workers = int(n_workers)
        self.extra_counters: Dict[str, int] = {}
        self.max_batch_size = 0
        self.last_exchange_wait = 0.0
        self._procs: List[multiprocessing.Process] = []
        self._conns: List[Any] = []
        self._owned: List[List[int]] = []
        self._worker_of: Dict[int, int] = {}
        self._shadow_dirty = False
        self._broken: Optional[str] = None
        self._rc_footprint: List[Tuple[int, int]] = []
        self._finalizer = None

    # -- lifecycle -----------------------------------------------------
    @property
    def started(self) -> bool:
        return bool(self._procs)

    def ensure_started(self) -> None:
        if self._procs:
            return
        if self._broken:
            raise ProtocolError(
                f"worker pool is broken ({self._broken}); rebuild the world "
                "from a checkpoint",
                tag="worker",
                cycle=self._sim.world.cycle,
            )
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover — non-POSIX platforms
            raise RuntimeError(
                "executor='process' needs the fork start method (POSIX); "
                "use executor='inline' on this platform"
            ) from exc
        n_ranks = len(self._sim.ranks)
        self._owned = [
            [r for r in range(n_ranks) if r % self.n_workers == w]
            for w in range(self.n_workers)
        ]
        self._worker_of = {
            r: w for w, owned in enumerate(self._owned) for r in owned
        }
        self._rc_footprint = [(0, 0)] * self.n_workers
        for w in range(self.n_workers):
            driver_end, worker_end = ctx.Pipe(duplex=True)
            proc = ctx.Process(
                target=_worker_main,
                args=(worker_end, self._sim, self._owned[w]),
                daemon=True,
                name=f"sublattice-worker-{w}",
            )
            proc.start()
            worker_end.close()
            self._procs.append(proc)
            self._conns.append(driver_end)
        # The finalizer must not capture self (it would never collect).
        self._finalizer = weakref.finalize(
            self, _terminate_pool, list(self._procs), list(self._conns)
        )

    def close(self) -> None:
        """Shut the pool down (idempotent); the sim stays usable inline-wise."""
        if not self._procs:
            return
        for conn in self._conns:
            try:
                conn.send(("shutdown",))
                conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                pass
        _terminate_pool(self._procs, self._conns)
        if self._finalizer is not None:
            self._finalizer.detach()
        self._procs = []
        self._conns = []

    # -- transport -----------------------------------------------------
    def _die(self, w: int, reason: str) -> ProtocolError:
        self._broken = reason
        ranks = self._owned[w] if w < len(self._owned) else []
        return ProtocolError(
            f"worker {w} (ranks {ranks}) died unexpectedly: {reason}",
            rank=ranks[0] if ranks else None,
            tag="worker",
            cycle=self._sim.world.cycle,
            transcript=self._sim.world.transcript_tail(),
        )

    def _post(self, w: int, command: tuple) -> None:
        if self._broken:
            raise ProtocolError(
                f"worker pool is broken ({self._broken})",
                tag="worker",
                cycle=self._sim.world.cycle,
            )
        try:
            self._conns[w].send(command)
        except (BrokenPipeError, OSError):
            raise self._die(w, f"pipe closed (exitcode {self._procs[w].exitcode})")

    def _collect(self, w: int):
        try:
            status, payload = self._conns[w].recv()
        except (EOFError, OSError):
            self._procs[w].join(timeout=1.0)
            raise self._die(
                w, f"no reply (exitcode {self._procs[w].exitcode})"
            ) from None
        if status == "error":
            raise payload
        return payload

    # -- delta accumulation --------------------------------------------
    def _absorb_counters(self, info: dict) -> None:
        for key, value in info["kernel_delta"].items():
            self.extra_counters[key] = (
                self.extra_counters.get(key, 0) + int(value)
            )
        self.max_batch_size = max(self.max_batch_size, info["max_batch_size"])

    def _absorb_phases(self, rank, info: dict) -> None:
        for name, secs in info["phase_delta"].items():
            if secs:
                rank.profiler.add(name, secs, calls=0)

    def _absorb_row_cache(self, w: int, reply: dict) -> None:
        delta = reply.get("row_cache_delta", (0, 0, 0))
        cache = self._sim.row_cache
        if cache is not None and any(delta):
            cache.absorb_delta(*delta)
        self._rc_footprint[w] = reply.get("row_cache_footprint", (0, 0))

    # -- the cycle, executor-side --------------------------------------
    def run_sectors(self, sector, t_stop: float, killed) -> List[SiteUpdates]:
        self.ensure_started()
        self._shadow_dirty = True
        sim = self._sim
        live_of: Dict[int, List[int]] = {}
        for w, owned in enumerate(self._owned):
            live = [r for r in owned if r not in killed]
            if live:
                live_of[w] = live
        for w, live in live_of.items():
            self._post(w, ("sector", sector, t_stop, live))
        updates: List[SiteUpdates] = [
            SiteUpdates.empty() for _ in sim.ranks
        ]
        for w, live in live_of.items():
            reply = self._collect(w)
            self._absorb_row_cache(w, reply)
            for r in live:
                info = reply["ranks"][r]
                rank = sim.ranks[r]
                rank.events += info["events_delta"]
                rank.rejected += info["rejected_delta"]
                rank.anomalies += info["anomalies_delta"]
                self._absorb_counters(info)
                self._absorb_phases(rank, info)
                updates[r] = SiteUpdates(*info["updates"])
        return updates

    def apply_exchange(self, killed) -> None:
        """Drain the driver-side mailboxes, then apply on the workers.

        The receives run through the shadow ranks' *real* ``SimComm``
        endpoints first, in rank order — identical contract checks,
        transcript lines, and stats to the inline loop, and any
        :class:`ProtocolError` (dropped message, dead rank) raises before
        a single worker command is posted, leaving the pool idle and
        consistent for the recovery driver.
        """
        sim = self._sim
        self._shadow_dirty = True
        plan: List[Tuple[int, list]] = []
        for rank in sim.ranks:
            if rank.rank in killed:
                continue
            messages = rank.exchanger.comm.recv_all(
                GHOST_TAG, expected_sources=rank.exchanger.destinations
            )
            rank.exchanger.comm.barrier()
            plan.append((rank.rank, messages))
        t0 = _time.perf_counter()
        posted: List[int] = []
        for r, messages in plan:
            w = self._worker_of[r]
            self._post(w, ("apply", r, messages))
            posted.append(w)
        for w in posted:
            reply = self._collect(w)
            self._absorb_row_cache(w, reply)
            self._absorb_counters(reply)
            self._absorb_phases(sim.ranks[reply["rank"]], reply)
        self.last_exchange_wait = _time.perf_counter() - t0

    # -- shadow coherence ----------------------------------------------
    def sync_shadow(self) -> None:
        """Pull worker snapshots into the driver's shadow ranks (lazy)."""
        if not self._procs or not self._shadow_dirty:
            return
        for w, owned in enumerate(self._owned):
            self._post(w, ("snapshot", owned))
        for w, owned in enumerate(self._owned):
            snapshots = self._collect(w)
            for r in owned:
                snapshots[r].restore(self._sim.ranks[r])
        self._shadow_dirty = False

    def row_cache_footprint(self) -> Optional[Tuple[int, int]]:
        """Summed (entries, resident_bytes) over the per-worker caches."""
        if not self._procs:
            return None
        entries = sum(e for e, _ in self._rc_footprint)
        resident = sum(b for _, b in self._rc_footprint)
        return entries, resident

    # Diagnostics for the CLI / tests.
    def worker_pids(self) -> List[int]:
        return [proc.pid for proc in self._procs]

    def worker_of(self, rank: int) -> int:
        return self._worker_of[rank]


def _effective_cores() -> int:
    """CPU cores actually available to this process (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover — non-Linux
        return os.cpu_count() or 1
