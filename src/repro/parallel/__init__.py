"""Parallel AKMC: simulated MPI, decomposition, ghosts, sublattice driver."""

from .comm import CommStats, SimComm, SimCommWorld, allreduce_sum
from .decomposition import GridDecomposition, choose_grid
from .engine import CycleStats, RankState, SublatticeKMC
from .ghost import GhostExchanger, SiteUpdates, in_padded_box, window_images
from .scaling_model import (
    CORES_PER_CG,
    ScalingParameters,
    ScalingPoint,
    parallel_efficiency,
    strong_scaling,
    weak_scaling,
)
from .sublattice import N_SECTORS, SectorGeometry

__all__ = [
    "CommStats",
    "SimComm",
    "SimCommWorld",
    "allreduce_sum",
    "GridDecomposition",
    "choose_grid",
    "CycleStats",
    "RankState",
    "SublatticeKMC",
    "GhostExchanger",
    "SiteUpdates",
    "in_padded_box",
    "window_images",
    "CORES_PER_CG",
    "ScalingParameters",
    "ScalingPoint",
    "parallel_efficiency",
    "strong_scaling",
    "weak_scaling",
    "N_SECTORS",
    "SectorGeometry",
]
