"""Parallel AKMC: simulated MPI, decomposition, ghosts, sublattice driver."""

from .comm import CommStats, ProtocolError, SimComm, SimCommWorld, allreduce_sum
from .decomposition import GridDecomposition, choose_grid
from .engine import CycleStats, RankState, SublatticeKMC
from .executor import (
    EXECUTORS,
    InlineExecutor,
    ProcComm,
    ProcessExecutor,
    RankSnapshot,
    resolve_workers,
)
from .faults import FAULT_KINDS, FaultEvent, FaultPlan
from .ghost import GhostExchanger, SiteUpdates, in_padded_box, window_images
from .recovery import run_resilient
from .scaling_model import (
    CORES_PER_CG,
    ScalingParameters,
    ScalingPoint,
    parallel_efficiency,
    strong_scaling,
    weak_scaling,
)
from .sublattice import N_SECTORS, SectorGeometry

__all__ = [
    "CommStats",
    "ProtocolError",
    "SimComm",
    "SimCommWorld",
    "allreduce_sum",
    "GridDecomposition",
    "choose_grid",
    "CycleStats",
    "RankState",
    "SublatticeKMC",
    "EXECUTORS",
    "InlineExecutor",
    "ProcComm",
    "ProcessExecutor",
    "RankSnapshot",
    "resolve_workers",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "GhostExchanger",
    "SiteUpdates",
    "in_padded_box",
    "window_images",
    "run_resilient",
    "CORES_PER_CG",
    "ScalingParameters",
    "ScalingPoint",
    "parallel_efficiency",
    "strong_scaling",
    "weak_scaling",
    "N_SECTORS",
    "SectorGeometry",
]
