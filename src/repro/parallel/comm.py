"""SimComm — a deterministic in-process MPI substitute.

The paper runs on swmpi across up to 422,400 processes; we do not have an MPI
runtime (or the machine), so the synchronous sublattice protocol runs against
this communicator: every rank is a Python object, messages are enqueued into
per-destination mailboxes, and the driver advances all ranks in lockstep
phases.  The protocol being validated (conflict-free boundary hops, ghost
consistency, time synchronisation) is transport-independent, and SimComm
additionally *counts* every message and byte so the scaling model can be
calibrated from real traffic.

The transport is no longer assumed perfect: a
:class:`~repro.parallel.faults.FaultPlan` attached to the world drops,
duplicates, delays, or kills on a deterministic schedule, and every protocol
violation (a missing expected message, a duplicated phase message, an
undrained mailbox) surfaces as a structured :class:`ProtocolError` carrying
the ``(rank, tag, cycle)`` coordinate plus a transcript of recent traffic —
never a bare ``RuntimeError``.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, Sequence, Tuple

from .faults import FaultPlan

__all__ = [
    "CommStats",
    "ProtocolError",
    "SimComm",
    "SimCommWorld",
    "allreduce_sum",
]

#: Transcript entries kept for ProtocolError context.
TRANSCRIPT_DEPTH = 64


class ProtocolError(RuntimeError):
    """A sublattice-protocol violation with full addressing context.

    Subclasses ``RuntimeError`` so legacy ``except RuntimeError`` handlers
    still fire, but carries structured fields — ``rank`` (the endpoint that
    observed the violation), ``tag``, ``cycle``, and a ``transcript`` of the
    most recent communicator traffic — so failures at scale are debuggable
    and the recovery driver can react without string matching.
    """

    def __init__(
        self,
        message: str,
        *,
        rank: Optional[int] = None,
        tag: Any = None,
        cycle: Optional[int] = None,
        transcript: Iterable[str] = (),
    ) -> None:
        #: The raw message, before the addressing prefix is attached.  Kept
        #: so pickling reconstructs through ``__init__`` without the detail
        #: string re-prefixing itself on every round-trip (the process
        #: executor ships these across worker pipes).
        self.message = message
        self.rank = rank
        self.tag = tag
        self.cycle = cycle
        self.transcript = tuple(transcript)
        detail = f"[rank={rank} tag={tag!r} cycle={cycle}] {message}"
        if self.transcript:
            detail += "\n  recent traffic:\n    " + "\n    ".join(self.transcript)
        super().__init__(detail)

    def __reduce__(self):
        return (
            _rebuild_protocol_error,
            (
                type(self),
                self.message,
                self.rank,
                self.tag,
                self.cycle,
                self.transcript,
            ),
        )


def _rebuild_protocol_error(cls, message, rank, tag, cycle, transcript):
    """Pickle helper: rebuild through the keyword-only constructor."""
    return cls(message, rank=rank, tag=tag, cycle=cycle, transcript=transcript)


@dataclass
class CommStats:
    """Traffic counters, the calibration input of the scaling model."""

    messages_sent: int = 0
    bytes_sent: int = 0
    barriers: int = 0
    collectives: int = 0

    def merge(self, other: "CommStats") -> None:
        self.messages_sent += other.messages_sent
        self.bytes_sent += other.bytes_sent
        self.barriers += other.barriers
        self.collectives += other.collectives


@dataclass
class FaultStats:
    """How many injected faults actually bit (per class)."""

    dropped: int = 0
    duplicated: int = 0
    delayed: int = 0
    lost_to_dead_rank: int = 0


def _payload_bytes(payload: Any) -> int:
    """Approximate wire size of a payload (NumPy arrays dominate)."""
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(payload, (tuple, list)):
        return sum(_payload_bytes(p) for p in payload)
    if isinstance(payload, dict):
        return sum(_payload_bytes(v) for v in payload.values())
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, (bytes, str)):
        return len(payload)
    return 64  # conservative default for small objects


class SimCommWorld:
    """The shared mail system of one communicator group.

    Parameters
    ----------
    size:
        Number of ranks.
    fault_plan:
        Optional :class:`~repro.parallel.faults.FaultPlan`; when attached,
        sends consult it and cycle boundaries (``begin_cycle``) arm scripted
        rank kills and deliver delayed messages.
    """

    def __init__(self, size: int, fault_plan: Optional[FaultPlan] = None) -> None:
        if size < 1:
            raise ValueError(f"communicator size must be >= 1, got {size}")
        self.size = size
        # mailbox[(dest, tag)] holds (src, payload) in send order.
        self.mailboxes: Dict[Tuple[int, Any], Deque[Tuple[int, Any]]] = defaultdict(deque)
        self.stats = CommStats()
        self.fault_plan = fault_plan
        self.fault_stats = FaultStats()
        self.cycle = 0
        #: Ranks removed by an injected kill; they neither send nor receive.
        self.killed: set = set()
        #: Messages held back by a delay fault: (due_cycle, dest, tag, src, payload).
        self._delayed: List[Tuple[int, int, Any, int, Any]] = []
        #: Rolling log of recent traffic, embedded in ProtocolErrors.
        self.transcript: Deque[str] = deque(maxlen=TRANSCRIPT_DEPTH)

    def comm(self, rank: int) -> "SimComm":
        """The endpoint of one rank."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")
        return SimComm(self, rank)

    # ------------------------------------------------------------------
    def begin_cycle(self, cycle: int) -> None:
        """Advance the protocol clock: arm due kills, release delayed mail."""
        self.cycle = int(cycle)
        matured = [m for m in self._delayed if m[0] <= self.cycle]
        self._delayed = [m for m in self._delayed if m[0] > self.cycle]
        for _due, dest, tag, src, payload in matured:
            self.mailboxes[(dest, tag)].append((src, payload))
            self.transcript.append(
                f"c{self.cycle}: delayed {src}->{dest} tag={tag!r} delivered late"
            )
        if self.fault_plan is not None:
            for victim in self.fault_plan.kills_due(self.cycle):
                self.killed.add(victim)
                self.transcript.append(f"c{self.cycle}: rank {victim} killed")

    def record(self, entry: str) -> None:
        """Append one line to the rolling protocol transcript."""
        self.transcript.append(f"c{self.cycle}: {entry}")

    def transcript_tail(self, n: int = 8) -> Tuple[str, ...]:
        """The last ``n`` transcript lines (for error context)."""
        return tuple(list(self.transcript)[-n:])

    def assert_drained(self) -> None:
        """Protocol check: no unconsumed messages may remain."""
        leftover = {k: len(v) for k, v in self.mailboxes.items() if v}
        if leftover:
            (dest, tag), _count = next(iter(sorted(leftover.items(), key=str)))
            raise ProtocolError(
                f"undelivered messages remain: {leftover}",
                rank=dest,
                tag=tag,
                cycle=self.cycle,
                transcript=self.transcript_tail(),
            )
        if self._delayed:
            due, dest, tag, src, _ = self._delayed[0]
            raise ProtocolError(
                f"{len(self._delayed)} delayed message(s) still in flight "
                f"(next: {src}->{dest} due cycle {due})",
                rank=dest,
                tag=tag,
                cycle=self.cycle,
                transcript=self.transcript_tail(),
            )


@dataclass
class SimComm:
    """One rank's endpoint (mirrors the small slice of MPI we need)."""

    world: SimCommWorld
    rank: int
    local_stats: CommStats = field(default_factory=CommStats)

    @property
    def size(self) -> int:
        return self.world.size

    # ------------------------------------------------------------------
    def send(self, dest: int, tag: Any, payload: Any) -> None:
        """Enqueue a message (non-blocking, buffered — like MPI_Isend+wait)."""
        if not 0 <= dest < self.size:
            raise ValueError(f"destination {dest} out of range")
        world = self.world
        if self.rank in world.killed:
            return  # a dead process sends nothing
        nbytes = _payload_bytes(payload)
        for stats in (world.stats, self.local_stats):
            stats.messages_sent += 1
            stats.bytes_sent += nbytes
        if dest in world.killed:
            world.fault_stats.lost_to_dead_rank += 1
            world.record(f"send {self.rank}->{dest} tag={tag!r} lost (dest dead)")
            return
        action = None
        if world.fault_plan is not None:
            action = world.fault_plan.action_for_send(
                world.cycle, self.rank, dest, tag
            )
        if action == "drop":
            world.fault_stats.dropped += 1
            world.record(f"send {self.rank}->{dest} tag={tag!r} DROPPED")
            return
        if action == "delay":
            world.fault_stats.delayed += 1
            world._delayed.append(
                (world.cycle + 1, dest, tag, self.rank, payload)
            )
            world.record(f"send {self.rank}->{dest} tag={tag!r} DELAYED")
            return
        world.mailboxes[(dest, tag)].append((self.rank, payload))
        world.record(f"send {self.rank}->{dest} tag={tag!r} ({nbytes} B)")
        if action == "duplicate":
            world.fault_stats.duplicated += 1
            world.mailboxes[(dest, tag)].append((self.rank, payload))
            world.record(f"send {self.rank}->{dest} tag={tag!r} DUPLICATED")

    def recv(self, src: int, tag: Any) -> Any:
        """Receive the next message with ``tag`` from ``src`` (must exist).

        The lockstep driver guarantees sends complete before the matching
        phase's receives, so a missing message is a protocol bug (or an
        injected fault), reported as a structured :class:`ProtocolError`.
        """
        world = self.world
        box = world.mailboxes[(self.rank, tag)]
        for i, (s, payload) in enumerate(box):
            if s == src:
                del box[i]
                world.record(f"recv {src}->{self.rank} tag={tag!r}")
                return payload
        raise ProtocolError(
            f"rank {self.rank}: no message with tag {tag!r} from {src} "
            f"(mailbox holds sources {[s for s, _ in box]})",
            rank=self.rank,
            tag=tag,
            cycle=world.cycle,
            transcript=world.transcript_tail(),
        )

    def recv_all(
        self, tag: Any, expected_sources: Optional[Sequence[int]] = None
    ) -> List[Tuple[int, Any]]:
        """Drain every pending message with ``tag`` (any source), send order.

        With ``expected_sources`` the phase contract is enforced: exactly one
        message per expected source.  A missing source (dropped / delayed
        message, dead rank) or a repeated source (duplicated message) raises
        :class:`ProtocolError` with the offending sources named.
        """
        world = self.world
        box = world.mailboxes[(self.rank, tag)]
        out = list(box)
        box.clear()
        if out:
            world.record(
                f"recv_all {self.rank} tag={tag!r} drained {len(out)} msg(s)"
            )
        if expected_sources is not None:
            counts: Dict[int, int] = {}
            for s, _ in out:
                counts[s] = counts.get(s, 0) + 1
            missing = [s for s in expected_sources if counts.get(s, 0) == 0]
            repeated = [s for s in expected_sources if counts.get(s, 0) > 1]
            if missing or repeated:
                parts = []
                if missing:
                    parts.append(f"missing message(s) from {missing}")
                if repeated:
                    parts.append(f"duplicate message(s) from {repeated}")
                raise ProtocolError(
                    f"rank {self.rank}: " + " and ".join(parts)
                    + f" in phase tag {tag!r}",
                    rank=self.rank,
                    tag=tag,
                    cycle=world.cycle,
                    transcript=world.transcript_tail(),
                )
        return out

    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Counted no-op: the lockstep driver provides the synchronisation."""
        self.world.stats.barriers += 1
        self.local_stats.barriers += 1

    def allreduce_sum(self, values: List[float]) -> None:  # pragma: no cover
        """Placeholder endpoint; use :func:`allreduce_sum` on the driver side."""
        raise NotImplementedError(
            "collectives are driver-side in SimComm: see drivers in "
            "repro.parallel.engine"
        )


def allreduce_sum(world: SimCommWorld, contributions: List[float]) -> float:
    """Driver-side sum-allreduce over per-rank contributions (counted).

    Each rank ships its contribution into the reduction, so the collective
    accounts one message and the contribution's wire size *per rank* — the
    scaling model calibrates communication volume from ``CommStats`` and must
    see collective traffic, not just point-to-point ghost exchange.
    """
    if len(contributions) != world.size:
        raise ValueError("one contribution per rank required")
    world.stats.collectives += 1
    world.stats.messages_sent += world.size
    world.stats.bytes_sent += sum(_payload_bytes(c) for c in contributions)
    return float(sum(contributions))
