"""SimComm — a deterministic in-process MPI substitute.

The paper runs on swmpi across up to 422,400 processes; we do not have an MPI
runtime (or the machine), so the synchronous sublattice protocol runs against
this communicator: every rank is a Python object, messages are enqueued into
per-destination mailboxes, and the driver advances all ranks in lockstep
phases.  The protocol being validated (conflict-free boundary hops, ghost
consistency, time synchronisation) is transport-independent, and SimComm
additionally *counts* every message and byte so the scaling model can be
calibrated from real traffic.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Tuple

__all__ = ["CommStats", "SimComm", "SimCommWorld"]


@dataclass
class CommStats:
    """Traffic counters, the calibration input of the scaling model."""

    messages_sent: int = 0
    bytes_sent: int = 0
    barriers: int = 0
    collectives: int = 0

    def merge(self, other: "CommStats") -> None:
        self.messages_sent += other.messages_sent
        self.bytes_sent += other.bytes_sent
        self.barriers += other.barriers
        self.collectives += other.collectives


def _payload_bytes(payload: Any) -> int:
    """Approximate wire size of a payload (NumPy arrays dominate)."""
    nbytes = getattr(payload, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(payload, (tuple, list)):
        return sum(_payload_bytes(p) for p in payload)
    if isinstance(payload, dict):
        return sum(_payload_bytes(v) for v in payload.values())
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, (bytes, str)):
        return len(payload)
    return 64  # conservative default for small objects


class SimCommWorld:
    """The shared mail system of one communicator group."""

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"communicator size must be >= 1, got {size}")
        self.size = size
        # mailbox[(dest, tag)] holds (src, payload) in send order.
        self.mailboxes: Dict[Tuple[int, Any], Deque[Tuple[int, Any]]] = defaultdict(deque)
        self.stats = CommStats()

    def comm(self, rank: int) -> "SimComm":
        """The endpoint of one rank."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range [0, {self.size})")
        return SimComm(self, rank)

    def assert_drained(self) -> None:
        """Protocol check: no unconsumed messages may remain."""
        leftover = {k: len(v) for k, v in self.mailboxes.items() if v}
        if leftover:
            raise RuntimeError(f"undelivered messages remain: {leftover}")


@dataclass
class SimComm:
    """One rank's endpoint (mirrors the small slice of MPI we need)."""

    world: SimCommWorld
    rank: int
    local_stats: CommStats = field(default_factory=CommStats)

    @property
    def size(self) -> int:
        return self.world.size

    # ------------------------------------------------------------------
    def send(self, dest: int, tag: Any, payload: Any) -> None:
        """Enqueue a message (non-blocking, buffered — like MPI_Isend+wait)."""
        if not 0 <= dest < self.size:
            raise ValueError(f"destination {dest} out of range")
        self.world.mailboxes[(dest, tag)].append((self.rank, payload))
        nbytes = _payload_bytes(payload)
        for stats in (self.world.stats, self.local_stats):
            stats.messages_sent += 1
            stats.bytes_sent += nbytes

    def recv(self, src: int, tag: Any) -> Any:
        """Receive the next message with ``tag`` from ``src`` (must exist).

        The lockstep driver guarantees sends complete before the matching
        phase's receives, so a missing message is a protocol bug, not a race.
        """
        box = self.world.mailboxes[(self.rank, tag)]
        for i, (s, payload) in enumerate(box):
            if s == src:
                del box[i]
                return payload
        raise RuntimeError(
            f"rank {self.rank}: no message with tag {tag!r} from {src}"
        )

    def recv_all(self, tag: Any) -> List[Tuple[int, Any]]:
        """Drain every pending message with ``tag`` (any source), send order."""
        box = self.world.mailboxes[(self.rank, tag)]
        out = list(box)
        box.clear()
        return out

    # ------------------------------------------------------------------
    def barrier(self) -> None:
        """Counted no-op: the lockstep driver provides the synchronisation."""
        self.world.stats.barriers += 1
        self.local_stats.barriers += 1

    def allreduce_sum(self, values: List[float]) -> None:  # pragma: no cover
        """Placeholder endpoint; use :func:`allreduce_sum` on the driver side."""
        raise NotImplementedError(
            "collectives are driver-side in SimComm: see drivers in "
            "repro.parallel.engine"
        )


def allreduce_sum(world: SimCommWorld, contributions: List[float]) -> float:
    """Driver-side sum-allreduce over per-rank contributions (counted)."""
    if len(contributions) != world.size:
        raise ValueError("one contribution per rank required")
    world.stats.collectives += 1
    return float(sum(contributions))
