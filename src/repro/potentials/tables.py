"""Pre-computed descriptor tables — paper Eq. 6.

On a rigid lattice the exponential descriptor of Oganov et al. (Eq. 5)

    f(r | p, q) = sum_j exp(-(r / p) ** q)

only ever sees the handful of discrete shell distances, so the per-neighbour
term can be tabulated as ``TABLE[shell, (p, q)]`` once and features become
pure count-weighted table sums.  This module builds the (p, q) grid of the
paper (32 sets, Sec. 4.1.1) and the TABLE.
"""

from __future__ import annotations

import numpy as np

from ..constants import (
    DESCRIPTOR_N_SETS,
    DESCRIPTOR_P_START,
    DESCRIPTOR_P_STEP,
    DESCRIPTOR_Q_START,
    DESCRIPTOR_Q_STEP,
)

__all__ = ["make_pq_grid", "FeatureTable"]


def make_pq_grid(n_sets: int = DESCRIPTOR_N_SETS) -> np.ndarray:
    """The paper's (p, q) hyper-parameter grid as an ``(n_sets, 2)`` array.

    p runs 4.2, 4.1, ... downward in steps of 0.1 and q runs 1.85, 1.90, ...
    upward in steps of 0.05 (Sec. 4.1.1; 32 pairs by default).
    """
    idx = np.arange(n_sets, dtype=np.float64)
    p = DESCRIPTOR_P_START + DESCRIPTOR_P_STEP * idx
    q = DESCRIPTOR_Q_START + DESCRIPTOR_Q_STEP * idx
    if np.any(p <= 0):
        raise ValueError(f"n_sets={n_sets} drives p non-positive")
    return np.stack([p, q], axis=-1)


class FeatureTable:
    """TABLE(r, p, q) evaluated at the lattice shell distances (Eq. 6).

    Parameters
    ----------
    shell_distances:
        ``(n_shells,)`` shell distances in Angstrom.
    pq:
        ``(n_dim, 2)`` descriptor hyper-parameters; defaults to the paper grid.
    dtype:
        Working precision of the table (float32 on Sunway).
    """

    def __init__(
        self,
        shell_distances: np.ndarray,
        pq: np.ndarray | None = None,
        dtype: np.dtype = np.float32,
    ) -> None:
        self.shell_distances = np.asarray(shell_distances, dtype=np.float64)
        self.pq = make_pq_grid() if pq is None else np.asarray(pq, dtype=np.float64)
        if self.pq.ndim != 2 or self.pq.shape[1] != 2:
            raise ValueError(f"pq must be (n_dim, 2), got {self.pq.shape}")
        r = self.shell_distances[:, None]
        p = self.pq[None, :, 0]
        q = self.pq[None, :, 1]
        self.table = np.exp(-((r / p) ** q)).astype(dtype)

    @property
    def n_shells(self) -> int:
        return int(self.table.shape[0])

    @property
    def n_dim(self) -> int:
        """Number of (p, q) descriptor dimensions."""
        return int(self.table.shape[1])

    def features_from_counts(self, counts: np.ndarray, xp=None) -> np.ndarray:
        """Per-site feature vectors from shell-type counts.

        Parameters
        ----------
        counts: ``(..., n_shells, n_elements)``.
        xp: optional array backend to contract on (default: NumPy; under it
            every call is the identical pre-backend NumPy call).

        Returns
        -------
        ``(..., n_elements * n_dim)`` features laid out element-major:
        ``f[..., e * n_dim + d] = sum_s counts[..., s, e] * TABLE[s, d]``.
        """
        if xp is None or xp.is_numpy:
            counts = np.asarray(counts, dtype=self.table.dtype)
            feats = np.einsum("...se,sd->...ed", counts, self.table)
            return feats.reshape(*counts.shape[:-2], -1)
        counts = xp.astype(xp.asarray(counts), self.table.dtype)
        feats = xp.einsum("...se,sd->...ed", counts, xp.from_numpy(self.table))
        return feats.reshape(*tuple(counts.shape[:-2]), -1)

    def continuous_term(self, r: np.ndarray) -> np.ndarray:
        """Eq. 5 per-neighbour term for arbitrary distances: ``(..., n_dim)``.

        Used off-lattice (training data) where distances are continuous.
        """
        r = np.asarray(r, dtype=np.float64)[..., None]
        p = self.pq[:, 0]
        q = self.pq[:, 1]
        return np.exp(-((r / p) ** q))

    def continuous_term_deriv(self, r: np.ndarray) -> np.ndarray:
        """d/dr of :meth:`continuous_term`: ``(..., n_dim)``."""
        r = np.asarray(r, dtype=np.float64)[..., None]
        p = self.pq[:, 0]
        q = self.pq[:, 1]
        x = r / p
        return np.exp(-(x**q)) * (-(q / p) * x ** (q - 1.0))
