"""Analytic Fe-Cu embedded-atom-method (EAM) potential.

This plays two roles in the reproduction:

1. the *empirical potential baseline* of the OpenKMC comparison (the code
   whose per-atom ``E_V`` / ``E_R`` arrays Table 1 accounts for), and
2. the *DFT oracle* replacing the paper's FHI-aims reference data: the NNP
   training set (Sec. 4.1.1) is labelled with this potential's energies and
   forces.  Any smooth many-body PES exercises the identical regression code
   path; see DESIGN.md for the substitution argument.

Functional form (standard FS/EAM shape)::

    E_i   = 1/2 * sum_j phi_{t_i t_j}(r_ij) + F_{t_i}(rho_i)
    rho_i = sum_j psi_{t_j}(r_ij)
    phi   = Morse-like pair term * smooth cosine cutoff
    psi   = A_e * (1 - r / r_cut)^2 * cutoff
    F     = -C_t * sqrt(rho)

The Cu-Cu pair well is slightly deeper than the Fe-Cu cross term, so Cu
demixes from the Fe host — the physical driving force behind the Cu
precipitation the paper simulates (Sec. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from ..constants import CU, FE, RCUT_STANDARD
from .base import CountsPotential

__all__ = ["EAMParameters", "EAMPotential"]


@dataclass(frozen=True)
class EAMParameters:
    """Parameters of the analytic Fe-Cu EAM potential (energies eV, lengths A)."""

    rcut: float = RCUT_STANDARD
    #: Morse pair-term parameters (depth D, width alpha, minimum r0) per pair.
    pair_D: Dict[Tuple[int, int], float] = field(
        default_factory=lambda: {(FE, FE): 0.40, (CU, CU): 0.45, (FE, CU): 0.34}
    )
    pair_alpha: Dict[Tuple[int, int], float] = field(
        default_factory=lambda: {(FE, FE): 1.60, (CU, CU): 1.50, (FE, CU): 1.58}
    )
    pair_r0: Dict[Tuple[int, int], float] = field(
        default_factory=lambda: {(FE, FE): 2.48, (CU, CU): 2.52, (FE, CU): 2.50}
    )
    #: Density prefactor per element.
    density_A: Tuple[float, ...] = (1.0, 0.9)
    #: Embedding strength per element.
    embed_C: Tuple[float, ...] = (0.55, 0.46)

    @property
    def n_elements(self) -> int:
        return len(self.density_A)

    def pair_key(self, ti: int, tj: int) -> Tuple[int, int]:
        return (ti, tj) if (ti, tj) in self.pair_D else (tj, ti)

    @classmethod
    def fe_cu_ni(cls) -> "EAMParameters":
        """A ternary Fe-Cu-Ni parameter set (Ni = species code 2).

        Ni-Ni and Ni-Cu wells are slightly deeper than the cross terms with
        Fe, so Ni co-segregates with Cu — the qualitative behaviour of the
        Ni-decorated Cu precipitates the RPV literature reports.
        """
        return cls(
            pair_D={
                (FE, FE): 0.40, (CU, CU): 0.45, (FE, CU): 0.34,
                (2, 2): 0.43, (FE, 2): 0.36, (CU, 2): 0.42,
            },
            pair_alpha={
                (FE, FE): 1.60, (CU, CU): 1.50, (FE, CU): 1.58,
                (2, 2): 1.55, (FE, 2): 1.58, (CU, 2): 1.52,
            },
            pair_r0={
                (FE, FE): 2.48, (CU, CU): 2.52, (FE, CU): 2.50,
                (2, 2): 2.49, (FE, 2): 2.49, (CU, 2): 2.50,
            },
            density_A=(1.0, 0.9, 0.95),
            embed_C=(0.55, 0.46, 0.50),
        )


class EAMPotential(CountsPotential):
    """Analytic Fe-Cu EAM potential with a rigid-lattice tabulated fast path.

    Parameters
    ----------
    shell_distances:
        Neighbour-shell distances of the lattice (Angstrom); the radial
        functions are pre-tabulated at these values for the counts-based
        evaluation used by the KMC engines.
    params:
        Potential parameters; defaults model a demixing Fe-Cu alloy.
    """

    def __init__(
        self,
        shell_distances: np.ndarray,
        params: EAMParameters | None = None,
    ) -> None:
        self.params = params or EAMParameters()
        self.n_elements = self.params.n_elements
        self.shell_distances = np.asarray(shell_distances, dtype=np.float64)
        if np.any(self.shell_distances > self.params.rcut + 1e-9):
            raise ValueError("shell distances extend beyond the potential cutoff")
        S = self.n_shells
        # phi_table[s, ti, tj], psi_table[s, tj] at the shell distances.
        n_el = self.n_elements
        self.phi_table = np.zeros((S, n_el, n_el), dtype=np.float64)
        self.psi_table = np.zeros((S, n_el), dtype=np.float64)
        for s, d in enumerate(self.shell_distances):
            for ti in range(n_el):
                self.psi_table[s, ti] = self.density_psi(d, ti)
                for tj in range(n_el):
                    self.phi_table[s, ti, tj] = self.pair_phi(d, ti, tj)

    # ------------------------------------------------------------------
    # Continuous radial functions (used by the oracle and the tabulation)
    # ------------------------------------------------------------------
    def cutoff_fn(self, r: np.ndarray) -> np.ndarray:
        """Smooth cosine cutoff: 0.5*(cos(pi r / rc) + 1) inside rc, else 0."""
        r = np.asarray(r, dtype=np.float64)
        rc = self.params.rcut
        inside = r < rc
        out = np.zeros_like(r)
        out[inside] = 0.5 * (np.cos(np.pi * r[inside] / rc) + 1.0)
        return out

    def cutoff_fn_deriv(self, r: np.ndarray) -> np.ndarray:
        """Derivative of :meth:`cutoff_fn` with respect to r."""
        r = np.asarray(r, dtype=np.float64)
        rc = self.params.rcut
        inside = r < rc
        out = np.zeros_like(r)
        out[inside] = -0.5 * np.pi / rc * np.sin(np.pi * r[inside] / rc)
        return out

    def pair_phi(self, r: np.ndarray, ti: int, tj: int) -> np.ndarray:
        """Pair interaction phi_{ti tj}(r) in eV."""
        p = self.params
        key = p.pair_key(ti, tj)
        D, alpha, r0 = p.pair_D[key], p.pair_alpha[key], p.pair_r0[key]
        r = np.asarray(r, dtype=np.float64)
        morse = D * ((1.0 - np.exp(-alpha * (r - r0))) ** 2 - 1.0)
        return morse * self.cutoff_fn(r)

    def pair_phi_deriv(self, r: np.ndarray, ti: int, tj: int) -> np.ndarray:
        """d(phi)/dr in eV/Angstrom."""
        p = self.params
        key = p.pair_key(ti, tj)
        D, alpha, r0 = p.pair_D[key], p.pair_alpha[key], p.pair_r0[key]
        r = np.asarray(r, dtype=np.float64)
        e = np.exp(-alpha * (r - r0))
        morse = D * ((1.0 - e) ** 2 - 1.0)
        dmorse = 2.0 * D * alpha * (1.0 - e) * e
        return dmorse * self.cutoff_fn(r) + morse * self.cutoff_fn_deriv(r)

    def density_psi(self, r: np.ndarray, tj: int) -> np.ndarray:
        """Electron density contribution psi_{tj}(r)."""
        A = self.params.density_A[tj]
        r = np.asarray(r, dtype=np.float64)
        rc = self.params.rcut
        base = A * np.clip(1.0 - r / rc, 0.0, None) ** 2
        return base * self.cutoff_fn(r)

    def density_psi_deriv(self, r: np.ndarray, tj: int) -> np.ndarray:
        """d(psi)/dr."""
        A = self.params.density_A[tj]
        r = np.asarray(r, dtype=np.float64)
        rc = self.params.rcut
        lin = np.clip(1.0 - r / rc, 0.0, None)
        dbase = -2.0 * A * lin / rc
        base = A * lin**2
        return dbase * self.cutoff_fn(r) + base * self.cutoff_fn_deriv(r)

    def embed_F(self, rho: np.ndarray, ti: np.ndarray) -> np.ndarray:
        """Embedding energy F_t(rho) = -C_t * sqrt(rho)."""
        C = np.asarray(self.params.embed_C, dtype=np.float64)[ti]
        return -C * np.sqrt(np.maximum(rho, 0.0))

    def embed_F_deriv(self, rho: np.ndarray, ti: np.ndarray) -> np.ndarray:
        """dF/drho (guarded at rho = 0)."""
        C = np.asarray(self.params.embed_C, dtype=np.float64)[ti]
        rho = np.maximum(np.asarray(rho, dtype=np.float64), 1e-12)
        return -0.5 * C / np.sqrt(rho)

    # ------------------------------------------------------------------
    # Rigid-lattice fast path (CountsPotential)
    # ------------------------------------------------------------------
    def energies_from_counts(
        self, center_types: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        center_types = np.asarray(center_types)
        counts = np.asarray(counts, dtype=np.float64)
        is_atom = center_types < self.n_elements
        t = np.where(is_atom, center_types, 0).astype(np.int64)
        # pair: 0.5 * sum_{s,e} counts[n,s,e] * phi[s, t_n, e]
        pair = 0.5 * np.einsum("nse,nse->n", counts, self.phi_table[:, t, :].transpose(1, 0, 2))
        rho = np.einsum("nse,se->n", counts, self.psi_table)
        energy = pair + self.embed_F(rho, t)
        return np.where(is_atom, energy, 0.0)

    # ------------------------------------------------------------------
    # Off-lattice oracle (continuous positions; replaces FHI-aims labels)
    # ------------------------------------------------------------------
    def energy_and_forces(
        self,
        positions: np.ndarray,
        species: np.ndarray,
        cell: np.ndarray,
    ) -> Tuple[float, np.ndarray]:
        """Total energy (eV) and forces (eV/A) of a periodic structure.

        Sums over *all* periodic images within the cutoff (not just the
        minimum image): the 60-64-atom training cells of the paper are
        smaller than ``2 * rcut``, so multiple images of the same atom
        contribute, exactly as in a plane-wave/NAO DFT reference.

        Parameters
        ----------
        positions: ``(n, 3)`` Cartesian coordinates in Angstrom.
        species:   ``(n,)`` species codes (FE / CU; vacancies simply absent).
        cell:      ``(3,)`` orthorhombic box lengths in Angstrom.
        """
        positions = np.asarray(positions, dtype=np.float64)
        species = np.asarray(species, dtype=np.int64)
        cell = np.asarray(cell, dtype=np.float64)
        n = positions.shape[0]
        reps = np.ceil(self.params.rcut / cell).astype(np.int64)
        shifts = np.stack(
            np.meshgrid(
                *(np.arange(-m, m + 1) for m in reps), indexing="ij"
            ),
            axis=-1,
        ).reshape(-1, 3).astype(np.float64) * cell
        n_shift = shifts.shape[0]

        # delta[i, j, s] = pos_j + shift_s - pos_i
        delta = (
            positions[None, :, None, :] + shifts[None, None, :, :]
            - positions[:, None, None, :]
        )
        dist = np.sqrt(np.sum(delta**2, axis=-1))
        self_pair = (
            (np.arange(n)[:, None, None] == np.arange(n)[None, :, None])
            & (np.sum(np.abs(shifts), axis=-1) < 1e-12)[None, None, :]
        )
        dist[self_pair] = np.inf
        within = dist < self.params.rcut

        spec_j = np.broadcast_to(species[None, :, None], dist.shape)
        spec_i = np.broadcast_to(species[:, None, None], dist.shape)
        energy = 0.0
        rho = np.zeros(n, dtype=np.float64)
        pair_force = np.zeros_like(dist)
        dpsi = np.zeros_like(dist)

        for ti in range(self.n_elements):
            for tj in range(self.n_elements):
                mask = within & (spec_i == ti) & (spec_j == tj)
                if not np.any(mask):
                    continue
                r = dist[mask]
                energy += 0.5 * float(np.sum(self.pair_phi(r, ti, tj)))
                pair_force[mask] = self.pair_phi_deriv(r, ti, tj)
            mask_j = within & (spec_j == ti)
            if np.any(mask_j):
                contrib = np.zeros_like(dist)
                contrib[mask_j] = self.density_psi(dist[mask_j], ti)
                rho += np.sum(contrib, axis=(1, 2))
                dpsi[mask_j] = self.density_psi_deriv(dist[mask_j], ti)

        energy += float(np.sum(self.embed_F(rho, species)))

        # Bond scalar for the ordered pair (i, j, s):
        # phi'_{ti tj} + F'_i psi'_{tj} + F'_j psi'_{ti} (image pairs appear
        # in both orders, so each ordered entry carries half the pair force).
        dF = self.embed_F_deriv(rho, species)
        embed_i = dF[:, None, None] * dpsi
        # The transpose partner of ordered image pair (i, j, s) is
        # (j, i, s') with shift negated; dpsi of the partner evaluates the
        # *i*-species density derivative at the same distance.
        dpsi_partner = np.zeros_like(dist)
        for ti in range(self.n_elements):
            mask_i = within & (spec_i == ti)
            if np.any(mask_i):
                dpsi_partner[mask_i] = self.density_psi_deriv(dist[mask_i], ti)
        embed_j = dF[None, :, None] * dpsi_partner
        bond = pair_force + embed_i + embed_j
        bond = np.where(within, bond, 0.0)
        # unit_ijs points from atom i to image (j, s); force on i is
        # +sum bond * unit (see minimum-image derivation; unchanged).
        with np.errstate(invalid="ignore"):
            unit = delta / np.where(np.isfinite(dist), dist, 1.0)[..., None]
        unit[~within] = 0.0
        forces = np.einsum("ijs,ijsc->ic", bond, unit)
        del n_shift
        return energy, forces
