"""Potential interfaces shared by the AKMC engines and the NNP stack.

On a rigid BCC lattice every interatomic distance is one of a handful of
neighbour-shell distances, so any local potential can be evaluated from the
*shell-type counts* tensor ``counts[site, shell, element]`` — the number of
neighbours of each element in each shell around a site.  Both the EAM baseline
and the neural-network potential implement :class:`CountsPotential`; this is
the abstraction the triple-encoding tabulation feeds (paper Eq. 6).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..constants import N_ELEMENTS

__all__ = ["CountsPotential", "counts_from_types"]


class CountsPotential(ABC):
    """A potential evaluable from shell-type counts on a rigid lattice.

    Implementations are constructed for a fixed set of neighbour shells
    (``shell_distances``) so that radial functions can be pre-tabulated.

    Species convention: element codes are ``0 .. n_elements - 1`` and the
    vacancy code is exactly ``n_elements`` (2 for the default Fe-Cu binary,
    3 for a ternary, ...).
    """

    #: Distances (Angstrom) of the neighbour shells this potential was
    #: tabulated for; ``counts`` tensors must use the same shell ordering.
    shell_distances: np.ndarray

    #: Number of chemical elements (override for multicomponent systems).
    n_elements: int = N_ELEMENTS

    @property
    def vacancy_code(self) -> int:
        """The species code marking vacant sites (``n_elements``)."""
        return self.n_elements

    @property
    def n_shells(self) -> int:
        return int(self.shell_distances.shape[0])

    @abstractmethod
    def energies_from_counts(
        self, center_types: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Per-atom energies (eV) for sites described by shell-type counts.

        Parameters
        ----------
        center_types:
            ``(n,)`` species codes of the centre sites.  Vacant sites must
            yield exactly 0.0 energy.
        counts:
            ``(n, n_shells, n_elements)`` neighbour counts (vacancy
            neighbours are *not* counted — they contribute nothing).
        """

    def region_energy(self, center_types: np.ndarray, counts: np.ndarray) -> float:
        """Total energy (eV) of a set of sites — sum of per-atom energies."""
        return float(np.sum(self.energies_from_counts(center_types, counts)))


def counts_from_types(
    neighbor_types: np.ndarray,
    neighbor_shell: np.ndarray,
    n_shells: int,
    n_elements: int = N_ELEMENTS,
) -> np.ndarray:
    """Build the shell-type counts tensor from per-site neighbour types.

    Parameters
    ----------
    neighbor_types:
        ``(..., n_local)`` species codes of each site's neighbours
        (vacancy entries — any code >= ``n_elements`` — are skipped).
    neighbor_shell:
        ``(n_local,)`` shell index of each neighbour slot (shared by all
        sites: shell only depends on the relative offset, see NET).
    n_shells, n_elements:
        Output tensor dimensions.

    Returns
    -------
    ``(..., n_shells, n_elements)`` float32 counts tensor.
    """
    neighbor_types = np.asarray(neighbor_types)
    lead_shape = neighbor_types.shape[:-1]
    n_local = neighbor_types.shape[-1]
    flat_types = neighbor_types.reshape(-1, n_local)
    n_rows = flat_types.shape[0]

    shell = np.broadcast_to(neighbor_shell, (n_rows, n_local))
    valid = flat_types < n_elements
    row = np.broadcast_to(np.arange(n_rows)[:, None], (n_rows, n_local))
    # Flattened bin index: ((row * n_shells) + shell) * n_elements + type.
    bins = (row[valid] * n_shells + shell[valid]) * n_elements + flat_types[valid]
    counts = np.bincount(bins, minlength=n_rows * n_shells * n_elements)
    return (
        counts.reshape(n_rows, n_shells, n_elements)
        .reshape(*lead_shape, n_shells, n_elements)
        .astype(np.float32)
    )
