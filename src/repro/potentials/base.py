"""Potential interfaces shared by the AKMC engines and the NNP stack.

On a rigid BCC lattice every interatomic distance is one of a handful of
neighbour-shell distances, so any local potential can be evaluated from the
*shell-type counts* tensor ``counts[site, shell, element]`` — the number of
neighbours of each element in each shell around a site.  Both the EAM baseline
and the neural-network potential implement :class:`CountsPotential`; this is
the abstraction the triple-encoding tabulation feeds (paper Eq. 6).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..constants import N_ELEMENTS

__all__ = ["CountsPotential", "counts_from_types"]


class CountsPotential(ABC):
    """A potential evaluable from shell-type counts on a rigid lattice.

    Implementations are constructed for a fixed set of neighbour shells
    (``shell_distances``) so that radial functions can be pre-tabulated.

    Species convention: element codes are ``0 .. n_elements - 1`` and the
    vacancy code is exactly ``n_elements`` (2 for the default Fe-Cu binary,
    3 for a ternary, ...).
    """

    #: Distances (Angstrom) of the neighbour shells this potential was
    #: tabulated for; ``counts`` tensors must use the same shell ordering.
    shell_distances: np.ndarray

    #: Number of chemical elements (override for multicomponent systems).
    n_elements: int = N_ELEMENTS

    #: Whether :meth:`energies_from_counts` is *row-invariant*: row ``i`` of
    #: the result is bit-identical no matter which other rows share the call.
    #: Exact counts-tabulated potentials qualify (each row is an independent
    #: einsum/table reduction), and since the NNP routed its inference
    #: through the deterministic tiled-GEMM kernel
    #: (:mod:`repro.operators.tilegemm` — fixed call shapes, fixed
    #: accumulation order) it qualifies too, so the engines may fuse cache
    #: misses into one batched evaluation without perturbing fixed-seed
    #: trajectories.  Implementations whose per-row result depends on the
    #: batch shape (e.g. raw float32 GEMM through BLAS, whose blocking
    #: changes with the row count) must set this to ``False``; the engines
    #: then keep the scalar miss path unless batching is forced.
    batch_row_invariant: bool = True

    #: Monotonic parameter-identity epoch.  Implementations whose energy
    #: function can change after construction (weight updates, a new
    #: standardisation) bump this on every change; persistent caches keyed
    #: on the potential (:class:`~repro.core.rowcache.RowEnergyCache`)
    #: compare it to detect that cached energies have gone stale.  Frozen
    #: potentials (the EAM tables) may leave the class default.
    params_epoch: int = 0

    #: Array backend the potential's buffers live on, or ``None`` meaning
    #: NumPy-resident (the default for tabulated/EAM potentials, whose
    #: reductions run host-side).  Evaluators consult this to convert
    #: arguments at the call boundary; see :meth:`set_backend`.
    array_backend = None

    def set_backend(self, backend) -> bool:
        """Ask the potential to move its buffers onto ``backend``.

        The base implementation only accepts the NumPy backend (recording
        it is a no-op) and reports ``False`` for anything else, leaving the
        potential NumPy-resident — evaluators then convert at the call
        boundary.  Potentials whose math is pure array code (the NNP)
        override this to install backend-resident buffers and return
        ``True``.
        """
        if backend is not None and getattr(backend, "is_numpy", False):
            self.array_backend = backend
            return True
        return False

    @property
    def vacancy_code(self) -> int:
        """The species code marking vacant sites (``n_elements``)."""
        return self.n_elements

    @property
    def n_shells(self) -> int:
        return int(self.shell_distances.shape[0])

    @abstractmethod
    def energies_from_counts(
        self, center_types: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Per-atom energies (eV) for sites described by shell-type counts.

        Parameters
        ----------
        center_types:
            ``(n,)`` species codes of the centre sites.  Vacant sites must
            yield exactly 0.0 energy.
        counts:
            ``(n, n_shells, n_elements)`` neighbour counts (vacancy
            neighbours are *not* counted — they contribute nothing).
        """

    def region_energy(self, center_types: np.ndarray, counts: np.ndarray) -> float:
        """Total energy (eV) of a set of sites — sum of per-atom energies."""
        return float(np.sum(self.energies_from_counts(center_types, counts)))


def counts_from_types(
    neighbor_types: np.ndarray,
    neighbor_shell: np.ndarray,
    n_shells: int,
    n_elements: int = N_ELEMENTS,
    xp=None,
) -> np.ndarray:
    """Build the shell-type counts tensor from per-site neighbour types.

    Parameters
    ----------
    neighbor_types:
        ``(..., n_local)`` species codes of each site's neighbours
        (vacancy entries — any code >= ``n_elements`` — are skipped).
    neighbor_shell:
        ``(n_local,)`` shell index of each neighbour slot (shared by all
        sites: shell only depends on the relative offset, see NET).
    n_shells, n_elements:
        Output tensor dimensions.
    xp:
        Array backend to compute on (default: the NumPy reference).  Under
        the NumPy backend every call below is the identical NumPy call, so
        the result is bit-exact with the pre-backend implementation.

    Returns
    -------
    ``(..., n_shells, n_elements)`` float32 counts tensor on ``xp``.
    """
    if xp is None:
        # Imported lazily: repro.core imports this module at package-init
        # time, so a top-level backend import would be circular.
        from ..core.backend import get_backend

        xp = get_backend("numpy")
    neighbor_types = xp.asarray(neighbor_types)
    lead_shape = tuple(neighbor_types.shape[:-1])
    n_local = int(neighbor_types.shape[-1])
    flat_types = neighbor_types.reshape(-1, n_local)
    n_rows = int(flat_types.shape[0])

    # One sgemm per element code: (types == e) @ shell_onehot sums the
    # matching neighbours per shell.  Every partial sum is an integer
    # <= n_local, exactly representable in float32, so the result is exact
    # (and independent of BLAS blocking / row count) — vacancies and any
    # out-of-range code simply never compare equal.
    shell_idx = xp.astype(xp.asarray(neighbor_shell), xp.int64)
    shell_onehot = xp.zeros((n_local, n_shells), dtype=xp.float32)
    shell_onehot[xp.arange(n_local), shell_idx] = 1.0
    counts = xp.empty((n_rows, n_shells, n_elements), dtype=xp.float32)
    for e in range(n_elements):
        counts[:, :, e] = xp.matmul(
            xp.astype(flat_types == e, xp.float32), shell_onehot
        )
    return counts.reshape(*lead_shape, n_shells, n_elements)
