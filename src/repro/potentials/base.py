"""Potential interfaces shared by the AKMC engines and the NNP stack.

On a rigid BCC lattice every interatomic distance is one of a handful of
neighbour-shell distances, so any local potential can be evaluated from the
*shell-type counts* tensor ``counts[site, shell, element]`` — the number of
neighbours of each element in each shell around a site.  Both the EAM baseline
and the neural-network potential implement :class:`CountsPotential`; this is
the abstraction the triple-encoding tabulation feeds (paper Eq. 6).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from ..constants import N_ELEMENTS

__all__ = ["CountsPotential", "counts_from_types"]


class CountsPotential(ABC):
    """A potential evaluable from shell-type counts on a rigid lattice.

    Implementations are constructed for a fixed set of neighbour shells
    (``shell_distances``) so that radial functions can be pre-tabulated.

    Species convention: element codes are ``0 .. n_elements - 1`` and the
    vacancy code is exactly ``n_elements`` (2 for the default Fe-Cu binary,
    3 for a ternary, ...).
    """

    #: Distances (Angstrom) of the neighbour shells this potential was
    #: tabulated for; ``counts`` tensors must use the same shell ordering.
    shell_distances: np.ndarray

    #: Number of chemical elements (override for multicomponent systems).
    n_elements: int = N_ELEMENTS

    #: Whether :meth:`energies_from_counts` is *row-invariant*: row ``i`` of
    #: the result is bit-identical no matter which other rows share the call.
    #: Exact counts-tabulated potentials qualify (each row is an independent
    #: einsum/table reduction), and since the NNP routed its inference
    #: through the deterministic tiled-GEMM kernel
    #: (:mod:`repro.operators.tilegemm` — fixed call shapes, fixed
    #: accumulation order) it qualifies too, so the engines may fuse cache
    #: misses into one batched evaluation without perturbing fixed-seed
    #: trajectories.  Implementations whose per-row result depends on the
    #: batch shape (e.g. raw float32 GEMM through BLAS, whose blocking
    #: changes with the row count) must set this to ``False``; the engines
    #: then keep the scalar miss path unless batching is forced.
    batch_row_invariant: bool = True

    @property
    def vacancy_code(self) -> int:
        """The species code marking vacant sites (``n_elements``)."""
        return self.n_elements

    @property
    def n_shells(self) -> int:
        return int(self.shell_distances.shape[0])

    @abstractmethod
    def energies_from_counts(
        self, center_types: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        """Per-atom energies (eV) for sites described by shell-type counts.

        Parameters
        ----------
        center_types:
            ``(n,)`` species codes of the centre sites.  Vacant sites must
            yield exactly 0.0 energy.
        counts:
            ``(n, n_shells, n_elements)`` neighbour counts (vacancy
            neighbours are *not* counted — they contribute nothing).
        """

    def region_energy(self, center_types: np.ndarray, counts: np.ndarray) -> float:
        """Total energy (eV) of a set of sites — sum of per-atom energies."""
        return float(np.sum(self.energies_from_counts(center_types, counts)))


def counts_from_types(
    neighbor_types: np.ndarray,
    neighbor_shell: np.ndarray,
    n_shells: int,
    n_elements: int = N_ELEMENTS,
) -> np.ndarray:
    """Build the shell-type counts tensor from per-site neighbour types.

    Parameters
    ----------
    neighbor_types:
        ``(..., n_local)`` species codes of each site's neighbours
        (vacancy entries — any code >= ``n_elements`` — are skipped).
    neighbor_shell:
        ``(n_local,)`` shell index of each neighbour slot (shared by all
        sites: shell only depends on the relative offset, see NET).
    n_shells, n_elements:
        Output tensor dimensions.

    Returns
    -------
    ``(..., n_shells, n_elements)`` float32 counts tensor.
    """
    neighbor_types = np.asarray(neighbor_types)
    lead_shape = neighbor_types.shape[:-1]
    n_local = neighbor_types.shape[-1]
    flat_types = neighbor_types.reshape(-1, n_local)
    n_rows = flat_types.shape[0]

    # One sgemm per element code: (types == e) @ shell_onehot sums the
    # matching neighbours per shell.  Every partial sum is an integer
    # <= n_local, exactly representable in float32, so the result is exact
    # (and independent of BLAS blocking / row count) — vacancies and any
    # out-of-range code simply never compare equal.
    shell_onehot = np.zeros((n_local, n_shells), dtype=np.float32)
    shell_onehot[np.arange(n_local), np.asarray(neighbor_shell)] = 1.0
    counts = np.empty((n_rows, n_shells, n_elements), dtype=np.float32)
    for e in range(n_elements):
        counts[:, :, e] = (flat_types == e).astype(np.float32) @ shell_onehot
    return counts.reshape(*lead_shape, n_shells, n_elements)
