"""Interatomic potentials: the counts-based interface, the Fe-Cu EAM
baseline/oracle, and the pre-computed descriptor tables (paper Eq. 6)."""

from .base import CountsPotential, counts_from_types
from .eam import EAMParameters, EAMPotential
from .tables import FeatureTable, make_pq_grid

__all__ = [
    "CountsPotential",
    "counts_from_types",
    "EAMParameters",
    "EAMPotential",
    "FeatureTable",
    "make_pq_grid",
]
