"""Physical constants and paper-default parameters for the TensorKMC reproduction.

All energies are in eV, lengths in Angstrom, times in seconds, temperatures in
Kelvin, matching the unit conventions of the paper (SC '21, Sec. 2.1 / 4.1).
"""

from __future__ import annotations

#: Boltzmann constant in eV / K.
KB_EV = 8.617333262e-5

#: Attempt frequency Gamma_0 in 1/s (paper Sec. 2.1).
ATTEMPT_FREQUENCY = 6.0e12

#: BCC Fe lattice constant in Angstrom (paper Sec. 4.1.2).
LATTICE_CONSTANT = 2.87

#: Reference activation energies E_a^0 in eV by migrating species (paper Sec. 2.1).
EA0_FE = 0.65
EA0_CU = 0.56

#: Species codes used in every occupancy array.
FE = 0
CU = 1
VACANCY = 2

#: Human-readable species names, indexed by species code.
SPECIES_NAMES = ("Fe", "Cu", "vacancy")

#: Number of chemical elements (the vacancy is not an element).
N_ELEMENTS = 2

#: Standard cutoff radius in Angstrom (paper Sec. 4.1.1).
RCUT_STANDARD = 6.5

#: The shorter comparison cutoff from Fig. 11.
RCUT_SHORT = 5.8

#: Paper defaults for the Fe-Cu RPV workload (Secs. 4.1.2, 4.4, 5).
CU_CONCENTRATION = 1.34e-2
VACANCY_CONCENTRATION = 8.0e-6
TEMPERATURE_RPV = 573.0

#: Synchronisation interval t_stop used in all scalability tests (Sec. 4.4).
T_STOP = 2.0e-8

#: Descriptor hyper-parameter grid: 32 (p, q) pairs (paper Sec. 4.1.1):
#: p from 4.2 down to 1.1 with step -0.1 and q from 1.85 up with step 0.05.
#: Note 4.2 -> 1.1 at step 0.1 spans 32 values.
DESCRIPTOR_P_START = 4.2
DESCRIPTOR_P_STEP = -0.1
DESCRIPTOR_Q_START = 1.85
DESCRIPTOR_Q_STEP = 0.05
DESCRIPTOR_N_SETS = 32

#: Convolutional channel widths of the paper's NNP (Sec. 4.1.1).
PAPER_CHANNELS = (64, 128, 128, 128, 64, 1)
