"""TensorKMC reproduction — NNP-driven atomistic kinetic Monte Carlo.

Public API re-exports the pieces a downstream user needs:

* lattice substrate:  :class:`~repro.lattice.LatticeState`
* the core engine:    :class:`~repro.core.TensorKMCEngine`
* the baseline:       :class:`~repro.baseline.OpenKMCEngine`
* potentials:         :class:`~repro.potentials.EAMPotential`,
                      :class:`~repro.nnp.NNPotential`
* analysis:           :func:`~repro.analysis.analyse_precipitation`

See README.md for a quickstart and DESIGN.md for the full system inventory.
"""

from . import analysis, baseline, constants, core, lattice, nnp, potentials
from .baseline import OpenKMCEngine
from .core import NoMovesError, TensorKMCEngine, TripleEncoding
from .lattice import BCCGeometry, LatticeState
from .nnp import NNPotential
from .potentials import EAMPotential, FeatureTable

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "baseline",
    "constants",
    "core",
    "lattice",
    "nnp",
    "potentials",
    "OpenKMCEngine",
    "NoMovesError",
    "TensorKMCEngine",
    "TripleEncoding",
    "BCCGeometry",
    "LatticeState",
    "NNPotential",
    "EAMPotential",
    "FeatureTable",
]
