"""Precipitation statistics for the Fig. 8 validation and Fig. 14 application."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..constants import CU
from ..lattice.occupancy import LatticeState
from .clusters import cluster_sizes, find_clusters

__all__ = ["PrecipitationStats", "analyse_precipitation"]


@dataclass(frozen=True)
class PrecipitationStats:
    """Snapshot of the Cu precipitate population."""

    #: Simulated time of the snapshot (s).
    time: float
    #: Number of Cu atoms with no Cu 1NN/2NN neighbour (C_1 clusters, Fig. 8).
    isolated: int
    #: Number of clusters with >= 2 atoms.
    n_clusters: int
    #: Size of the largest cluster (C_max, Fig. 14).
    max_size: int
    #: Mean size of clusters with >= 2 atoms (0 when none exist).
    mean_size: float
    #: Precipitate number density in 1/m^3 (clusters >= min_size / volume).
    number_density: float
    #: Full size histogram: ``histogram[s]`` clusters of size ``s``.
    histogram: Dict[int, int]


def analyse_precipitation(
    lattice: LatticeState,
    time: float = 0.0,
    species: int = CU,
    max_shell: int = 1,
    min_precipitate_size: int = 2,
) -> PrecipitationStats:
    """Cluster analysis of one lattice snapshot.

    ``number_density`` counts clusters of at least ``min_precipitate_size``
    atoms per cubic metre, the quantity the paper stabilises at
    ~1.71e26 / m^3 in Sec. 5.
    """
    clusters = find_clusters(lattice, species=species, max_shell=max_shell)
    sizes = cluster_sizes(clusters)
    isolated = int(np.sum(sizes == 1)) if sizes.size else 0
    big = sizes[sizes >= min_precipitate_size] if sizes.size else np.array([], dtype=np.int64)
    volume_m3 = lattice.volume * 1e-30  # A^3 -> m^3
    histogram: Dict[int, int] = {}
    for s in sizes:
        histogram[int(s)] = histogram.get(int(s), 0) + 1
    return PrecipitationStats(
        time=float(time),
        isolated=isolated,
        n_clusters=int(big.size),
        max_size=int(sizes[0]) if sizes.size else 0,
        mean_size=float(big.mean()) if big.size else 0.0,
        number_density=float(big.size) / volume_m3,
        histogram=histogram,
    )


def isolated_series(stats: List[PrecipitationStats]) -> np.ndarray:
    """(time, isolated-count) series from a list of snapshots (Fig. 8 axes)."""
    return np.array([[s.time, s.isolated] for s in stats], dtype=np.float64)
