"""Warren-Cowley short-range order — quantifying demixing beyond clusters.

The cluster counts of Figs. 8/14 are threshold statistics; the Warren-Cowley
parameter is the continuous order measure alloy studies report alongside
them.  For solute species ``B`` at concentration ``c_B`` and neighbour shell
``s``,

.. math::
    \\alpha_s = 1 - \\frac{p_s^{AB}}{c_B},

where ``p_s^{AB}`` is the probability that a shell-``s`` neighbour of a
``B`` atom is *not* ``B``... conventions vary; here we use the common
``B``-centred form with ``p_s`` the conditional probability that a shell-s
neighbour of a B atom is also B:

.. math::
    \\alpha_s = \\frac{p_s - c_B}{1 - c_B}.

``alpha = 0`` for an ideal random solution, ``alpha > 0`` for clustering
(Cu precipitation drives it positive), ``alpha < 0`` for ordering.
Vacant neighbour sites are excluded from the statistics.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..constants import CU
from ..lattice.occupancy import LatticeState

__all__ = ["warren_cowley", "sro_series"]


def warren_cowley(
    lattice: LatticeState,
    rcut: float,
    species: int = CU,
) -> Dict[int, float]:
    """Warren-Cowley parameters per neighbour shell for one species.

    Returns ``{shell_index: alpha}``; shells with no countable neighbours
    (possible only in degenerate configurations) are omitted.  The lattice's
    own ``vacancy_code`` is excluded, so multicomponent systems work too.
    """
    shells = lattice.geometry.shells_within(rcut)
    centers = lattice.sites_of_species(species)
    occupancy = lattice.occupancy
    n_atoms = int(np.sum(occupancy != lattice.vacancy_code))
    n_species = centers.size
    if n_species == 0 or n_atoms == 0:
        return {}
    concentration = n_species / n_atoms

    half = lattice.half_coords(centers)
    neighbor_ids = lattice.ids_from_half(
        half[:, None, :] + shells.offsets[None, :, :]
    )
    neighbor_types = occupancy[neighbor_ids]  # (n_centers, n_local)

    out: Dict[int, float] = {}
    for s in range(shells.n_shells):
        cols = shells.shell_index == s
        types = neighbor_types[:, cols]
        countable = types != lattice.vacancy_code
        total = int(np.sum(countable))
        if total == 0:
            continue
        same = int(np.sum(types == species))
        p_same = same / total
        if concentration >= 1.0:
            out[s] = 0.0
        else:
            out[s] = (p_same - concentration) / (1.0 - concentration)
    return out


def sro_series(
    lattice: LatticeState, rcut: float, species: int = CU
) -> np.ndarray:
    """Shell-ordered alpha values as an array (for time series / plots)."""
    values = warren_cowley(lattice, rcut, species=species)
    if not values:
        return np.empty(0)
    return np.array([values[s] for s in sorted(values)])
