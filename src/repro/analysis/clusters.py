"""Cu cluster identification — union-find over 1NN/2NN bonds.

The application study (paper Sec. 5 / Figs. 8 and 14) tracks solute
precipitation through cluster statistics: two Cu atoms belong to the same
cluster when they are first- or second-nearest neighbours (the standard
convention for bcc Fe-Cu precipitate analysis).  A NetworkX-based
implementation is provided as an independent cross-check for the tests.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..constants import CU
from ..lattice.occupancy import LatticeState

__all__ = ["DisjointSet", "find_clusters", "find_clusters_networkx", "cluster_sizes"]


class DisjointSet:
    """Array-based union-find with path halving and union by size."""

    def __init__(self, n: int) -> None:
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return int(x)

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]

    def components(self) -> Dict[int, List[int]]:
        """Mapping root -> member indices."""
        out: Dict[int, List[int]] = {}
        for x in range(self.parent.shape[0]):
            out.setdefault(self.find(x), []).append(x)
        return out


def _bond_offsets(lattice: LatticeState, max_shell: int = 1) -> np.ndarray:
    """Half-unit offsets of the bonding shells (0 = 1NN only, 1 = 1NN+2NN)."""
    shells = lattice.geometry.shells_within(lattice.a * 1.01)
    keep = shells.shell_index <= max_shell
    return shells.offsets[keep]


def find_clusters(
    lattice: LatticeState, species: int = CU, max_shell: int = 1
) -> List[np.ndarray]:
    """Clusters of a species as arrays of site ids, largest first.

    Parameters
    ----------
    lattice:
        Periodic occupancy state.
    species:
        Species code to cluster (Cu by default).
    max_shell:
        Bond criterion: 0 = 1NN bonds only, 1 = 1NN + 2NN (paper convention).
    """
    sites = lattice.sites_of_species(species)
    if sites.size == 0:
        return []
    offsets = _bond_offsets(lattice, max_shell)
    index_of = {int(s): i for i, s in enumerate(sites)}
    dsu = DisjointSet(sites.size)
    half = lattice.half_coords(sites)
    # For every solute site, union with solute neighbours.
    neighbor_ids = lattice.ids_from_half(
        half[:, None, :] + offsets[None, :, :]
    )
    for i in range(sites.size):
        for nb in neighbor_ids[i]:
            j = index_of.get(int(nb))
            if j is not None:
                dsu.union(i, j)
    comps = dsu.components()
    clusters = [sites[np.array(members)] for members in comps.values()]
    clusters.sort(key=len, reverse=True)
    return clusters


def find_clusters_networkx(
    lattice: LatticeState, species: int = CU, max_shell: int = 1
) -> List[np.ndarray]:
    """Same result via networkx connected components (test cross-check)."""
    import networkx as nx

    sites = lattice.sites_of_species(species)
    graph = nx.Graph()
    graph.add_nodes_from(int(s) for s in sites)
    if sites.size:
        offsets = _bond_offsets(lattice, max_shell)
        site_set = set(int(s) for s in sites)
        half = lattice.half_coords(sites)
        neighbor_ids = lattice.ids_from_half(
            half[:, None, :] + offsets[None, :, :]
        )
        for i, s in enumerate(sites):
            for nb in neighbor_ids[i]:
                if int(nb) in site_set:
                    graph.add_edge(int(s), int(nb))
    clusters = [np.array(sorted(c)) for c in nx.connected_components(graph)]
    clusters.sort(key=len, reverse=True)
    return clusters


def cluster_sizes(clusters: List[np.ndarray]) -> np.ndarray:
    """Cluster sizes, largest first."""
    return np.array([len(c) for c in clusters], dtype=np.int64)
