"""Vacancy/solute diffusion analysis — mean squared displacement and D.

A physical validation of the whole KMC stack: for a single vacancy in pure
bcc Fe every hop moves it one 1NN distance ``lambda = sqrt(3)/2 a`` at total
rate ``8 * Gamma``, so its tracer diffusion coefficient is analytic,

.. math::
    D = \\frac{\\langle \\lambda^2 \\rangle \\, \\Gamma_{tot}}{6}
      = \\frac{(\\sqrt{3} a / 2)^2 \\cdot 8 \\Gamma}{6},

and the measured MSD slope must reproduce it.  The tracker unwraps periodic
images by accumulating per-hop minimum-image displacements, so boxes far
smaller than the walk length still measure correctly.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..constants import ATTEMPT_FREQUENCY, KB_EV
from ..core.engine import KMCEvent, SerialAKMCBase

__all__ = ["DisplacementTracker", "analytic_vacancy_diffusivity", "measure_vacancy_diffusivity"]


class DisplacementTracker:
    """Accumulates unwrapped displacements of every tracked vacancy slot.

    Attach as the engine callback.  ``positions[slot]`` is the unwrapped
    Cartesian displacement (Angstrom) of the vacancy in that registry slot
    since tracking began; samples of (time, MSD) are recorded per event.
    """

    def __init__(self, engine: SerialAKMCBase) -> None:
        self.engine = engine
        n = engine.cache.n_slots
        self.displacements = np.zeros((n, 3), dtype=np.float64)
        self.times: List[float] = [engine.time]
        self.msd: List[float] = [0.0]
        self.hops = 0

    def __call__(self, event: KMCEvent) -> None:
        delta = self.engine.lattice.minimum_image_displacement(
            event.from_site, event.to_site
        )
        self.displacements[event.slot] += delta
        self.hops += 1
        self.times.append(event.time)
        self.msd.append(float(np.mean(np.sum(self.displacements**2, axis=1))))

    def diffusivity(self, method: str = "endpoint", skip_fraction: float = 0.2) -> float:
        """Tracer diffusivity D in Angstrom^2 / s.

        ``method="endpoint"`` (default) uses the unbiased estimator
        ``<|R(t_end)|^2> / (6 t_end)``; a single trajectory's squared
        displacement has O(1) relative variance, so average several walkers
        (multiple slots and/or seeds).  ``method="fit"`` least-squares the
        MSD-vs-time samples instead — lower variance on long multi-walker
        runs, but biased by the correlated samples of short ones.
        """
        times = np.asarray(self.times)
        if len(times) < 2 or times[-1] == times[0]:
            raise ValueError("not enough trajectory to estimate a diffusivity")
        if method == "endpoint":
            return float(self.msd[-1] / (6.0 * (times[-1] - times[0])))
        if method == "fit":
            msd = np.asarray(self.msd)
            start = int(skip_fraction * len(times))
            slope = np.polyfit(times[start:], msd[start:], 1)[0]
            return float(slope) / 6.0
        raise ValueError(f"unknown method {method!r}")


def analytic_vacancy_diffusivity(
    temperature: float,
    a: float,
    ea0: float,
    attempt_frequency: float = ATTEMPT_FREQUENCY,
) -> float:
    """Exact D (A^2/s) of a lone vacancy on a bcc lattice of one species."""
    gamma = attempt_frequency * np.exp(-ea0 / (KB_EV * temperature))
    hop_sq = 3.0 * a * a / 4.0  # (sqrt(3) a / 2)^2
    return hop_sq * 8.0 * gamma / 6.0


def measure_vacancy_diffusivity(
    engine: SerialAKMCBase,
    n_steps: int,
    method: str = "endpoint",
) -> Dict[str, float]:
    """Run an engine while tracking MSD; returns measured stats.

    The engine must already hold the vacancies to track.  Returns a dict with
    ``D`` (A^2/s), ``hops``, and ``time`` (s).
    """
    tracker = DisplacementTracker(engine)
    engine.run(n_steps=n_steps, callback=tracker)
    return {
        "D": tracker.diffusivity(method=method),
        "hops": float(tracker.hops),
        "time": engine.time,
    }


def arrhenius_series(
    make_engine,
    temperatures: List[float],
    n_steps: int,
) -> Dict[float, float]:
    """Measured D(T) over a temperature list (``make_engine(T) -> engine``)."""
    out: Dict[float, float] = {}
    for t in temperatures:
        engine = make_engine(t)
        out[t] = measure_vacancy_diffusivity(engine, n_steps)["D"]
    return out
