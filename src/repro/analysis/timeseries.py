"""Trajectory recording: periodic snapshots of observables during a run."""

from __future__ import annotations

from typing import Callable, Generic, List, Optional, TypeVar

import numpy as np

from ..core.engine import KMCEvent, SerialAKMCBase

__all__ = ["TimeSeriesRecorder", "run_with_snapshots"]

T = TypeVar("T")


class TimeSeriesRecorder(Generic[T]):
    """Collects ``(time, value)`` samples at a fixed simulated-time stride.

    Attach as the engine callback; ``probe`` is called at most once per
    stride interval, so expensive analyses (cluster finding) stay cheap.
    """

    def __init__(
        self,
        probe: Callable[[float], T],
        stride: float,
        record_initial: bool = True,
    ) -> None:
        if stride <= 0:
            raise ValueError(f"stride must be positive, got {stride!r}")
        self.probe = probe
        self.stride = float(stride)
        self.times: List[float] = []
        self.values: List[T] = []
        self._next = 0.0 if record_initial else stride

    def __call__(self, event: KMCEvent) -> None:
        if event.time >= self._next:
            self.sample(event.time)
            while self._next <= event.time:
                self._next += self.stride

    def sample(self, time: float) -> None:
        """Force a sample at the given simulated time."""
        self.times.append(float(time))
        self.values.append(self.probe(float(time)))

    def as_arrays(self) -> np.ndarray:
        """Times as a float64 array (values stay a Python list)."""
        return np.asarray(self.times, dtype=np.float64)


def run_with_snapshots(
    engine: SerialAKMCBase,
    probe: Callable[[float], T],
    stride: float,
    n_steps: Optional[int] = None,
    t_end: Optional[float] = None,
) -> TimeSeriesRecorder[T]:
    """Run an engine while sampling ``probe`` every ``stride`` seconds.

    An initial sample is taken before the first event and a final one after
    the run, so the series always brackets the trajectory.
    """
    recorder = TimeSeriesRecorder(probe, stride, record_initial=False)
    recorder.sample(engine.time)
    engine.run(n_steps=n_steps, t_end=t_end, callback=recorder)
    recorder.sample(engine.time)
    return recorder
