"""Trajectory analysis: cluster finding and precipitation statistics."""

from .diffusion import (
    DisplacementTracker,
    analytic_vacancy_diffusivity,
    arrhenius_series,
    measure_vacancy_diffusivity,
)
from .clusters import (
    DisjointSet,
    cluster_sizes,
    find_clusters,
    find_clusters_networkx,
)
from .order import sro_series, warren_cowley
from .precipitation import PrecipitationStats, analyse_precipitation, isolated_series
from .timeseries import TimeSeriesRecorder, run_with_snapshots

__all__ = [
    "DisplacementTracker",
    "analytic_vacancy_diffusivity",
    "arrhenius_series",
    "measure_vacancy_diffusivity",
    "DisjointSet",
    "cluster_sizes",
    "find_clusters",
    "find_clusters_networkx",
    "sro_series",
    "warren_cowley",
    "PrecipitationStats",
    "analyse_precipitation",
    "isolated_series",
    "TimeSeriesRecorder",
    "run_with_snapshots",
]
