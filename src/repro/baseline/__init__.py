"""OpenKMC-style baseline engine and the Table 1 memory models."""

from .memory_model import (
    MB,
    format_table,
    openkmc_memory_model,
    per_atom_bytes,
    tensorkmc_memory_model,
)
from .openkmc import OpenKMCEngine

__all__ = [
    "MB",
    "format_table",
    "openkmc_memory_model",
    "per_atom_bytes",
    "tensorkmc_memory_model",
    "OpenKMCEngine",
]
