"""Analytic memory accounting for OpenKMC vs TensorKMC (Table 1).

The byte counts below describe exactly the arrays our two engines allocate
(validated against the live allocations in the test-suite) and scale linearly
in the number of sites, so they can be extrapolated to the paper's
2/16/54/128-million-atom columns.  Absolute bytes per atom differ from the
paper's C++ structs; the *structure* of the comparison — which arrays exist,
which scale with the domain, and which vanish thanks to the vacancy cache —
is the reproduced result.
"""

from __future__ import annotations

from typing import Dict

from ..constants import N_ELEMENTS
from ..core.rowcache import ROW_ENTRY_BYTES
from ..core.tet import TripleEncoding
from ..potentials.tables import FeatureTable

__all__ = [
    "openkmc_memory_model",
    "tensorkmc_memory_model",
    "per_atom_bytes",
    "format_table",
    "MB",
]

#: One mebibyte, for table formatting.
MB = 1024.0 * 1024.0


def openkmc_memory_model(
    n_sites: int,
    mode: str = "eam",
    n_feature_dim: int = 32,
    ghost_fraction: float = 0.0,
) -> Dict[str, float]:
    """Bytes of each OpenKMC per-atom array for an ``n_sites`` domain.

    Parameters
    ----------
    n_sites:
        Number of local lattice sites.
    mode:
        ``"eam"`` charges the classic ``E_V``/``E_R`` doubles; ``"nnp"``
        charges per-atom feature vectors instead (the Sec. 4.3.4 analogy).
    n_feature_dim:
        Descriptor dimensions per element for ``"nnp"`` mode.
    ghost_fraction:
        Extra padded sites for POS_ID, as a fraction of ``n_sites``.
    """
    padded = n_sites * (1.0 + ghost_fraction)
    report: Dict[str, float] = {
        "lattice": float(n_sites) * 1,  # uint8 occupancy
        "T": float(n_sites) * 4,  # int32 per-site type/flag array
        "POS_ID": padded * 8,  # int64 dense lookup
    }
    if mode == "eam":
        report["E_V"] = float(n_sites) * 8
        report["E_R"] = float(n_sites) * 8
    elif mode == "nnp":
        report["features"] = float(n_sites) * N_ELEMENTS * n_feature_dim * 4
    else:
        raise ValueError(f"unknown mode {mode!r}")
    report["total"] = sum(v for k, v in report.items() if k != "total")
    return report


def tensorkmc_memory_model(
    n_sites: int,
    n_vacancies: int,
    tet: TripleEncoding,
    table: FeatureTable | None = None,
    delta_snapshots: bool = True,
    row_cache: int = 0,
) -> Dict[str, float]:
    """Bytes of the TensorKMC state for the same domain.

    Only the occupancy array scales with the domain; the vacancy cache scales
    with the (dilute) vacancy count, and the shared TET/feature tables are
    O(1).  ``delta_snapshots`` charges the incremental-rebuild payload each
    live entry carries under ``rebuild_path="delta"`` (the engine default via
    ``"auto"``): the per-trial-state row-energy matrix plus the dirty-row
    mask.  Pass ``False`` for the ``rebuild_path="full"`` footprint.
    ``row_cache`` charges the persistent row-energy memo by resident entry
    count at :data:`~repro.core.rowcache.ROW_ENTRY_BYTES` per entry — the
    same constant :meth:`RowEnergyCache.memory_bytes` reports, so the
    analytic term is validated against live bytes like the snapshots are.
    In a dilute alloy the distinct-environment count saturates at a tiny,
    domain-independent value, so this term is O(1) in practice (and the
    LRU byte budget makes it O(1) by construction).
    """
    entry_bytes = (
        tet.n_all * 8  # vet_ids (int64)
        + tet.n_all * 1  # vet (uint8)
        + 8 * 8  # rates (float64, 8 directions)
        + 8 * 8 + 8 + 8 * 1 + 8 * 1  # StateEnergies payload
    )
    if delta_snapshots:
        n_states = 1 + tet.N_DIRECTIONS  # resident + 8 trial swaps
        entry_bytes += (
            n_states * tet.n_region * 8  # row-energy snapshot (float64)
            + tet.n_region * 1  # dirty-row mask (bool)
        )
    tet_bytes = (
        tet.all_offsets.nbytes + tet.net_ids.nbytes + tet.cet_offsets.nbytes
        + tet.cet_shell.nbytes
    )
    report: Dict[str, float] = {
        "lattice": float(n_sites) * 1,
        "VAC_cache": float(n_vacancies) * entry_bytes,
        "TET_tables": float(tet_bytes),
        "feature_table": float(table.table.nbytes) if table is not None else 0.0,
        "row_cache": float(row_cache) * ROW_ENTRY_BYTES,
    }
    report["total"] = sum(v for k, v in report.items() if k != "total")
    return report


def per_atom_bytes(report: Dict[str, float], n_sites: int) -> float:
    """Total bytes per lattice site of a memory report."""
    return report["total"] / float(n_sites)


def format_table(rows: Dict[str, Dict[str, float]], unit: float = MB) -> str:
    """Render memory reports as an aligned text table (bench output)."""
    keys = sorted({k for row in rows.values() for k in row})
    keys = [k for k in keys if k != "total"] + ["total"]
    header = "array".ljust(14) + "".join(name.rjust(16) for name in rows)
    lines = [header]
    for key in keys:
        cells = "".join(
            f"{rows[name].get(key, 0.0) / unit:16.2f}" for name in rows
        )
        lines.append(key.ljust(14) + cells)
    return "\n".join(lines)
