"""OpenKMC-style baseline engine — the "cache all" comparator.

OpenKMC (Li et al., SC '19) follows MD conventions: it keeps per-atom
property arrays for the *whole* domain (``E_V``/``E_R`` for EAM, or per-atom
feature vectors for an NNP), a dense ``POS_ID`` lookup array, and a wide
per-site type array ``T``, and it recomputes vacancy energetics from scratch
every step.  This module reproduces that strategy faithfully enough to

* serve as the identical-trajectory comparator of Fig. 8 (same event loop,
  same RNG draws, no cache reuse), and
* account for the memory Table 1 charges to each array (``memory_report``),
  with the per-atom arrays genuinely allocated and incrementally maintained.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from ..constants import TEMPERATURE_RPV
from ..core.engine import KMCEvent, SerialAKMCBase
from ..core.tet import TripleEncoding
from ..lattice.occupancy import LatticeState
from ..potentials.base import CountsPotential, counts_from_types
from ..potentials.eam import EAMPotential
from ..potentials.tables import FeatureTable

__all__ = ["OpenKMCEngine"]


class OpenKMCEngine(SerialAKMCBase):
    """Cache-all baseline: identical dynamics, no vacancy-system reuse.

    Parameters are those of :class:`repro.core.engine.SerialAKMCBase`; the
    engine additionally allocates and maintains the OpenKMC per-atom arrays:

    * ``T``          — wide per-site type/flag array (int32),
    * ``POS_ID``     — dense coordinate-to-index lookup (int64),
    * ``E_V``/``E_R``— per-atom pair energy and electron density (float64),
      maintained incrementally for EAM potentials (paper Eq. 7), or
    * ``features``   — per-atom descriptor vectors (float32) when driving an
      NNP, the direct analogue the paper points out in Sec. 4.3.4.
    """

    use_cache = False

    def __init__(
        self,
        lattice: LatticeState,
        potential: CountsPotential,
        tet: TripleEncoding,
        temperature: float = TEMPERATURE_RPV,
        rng: Optional[np.random.Generator] = None,
        propensity: str = "tree",
        feature_table: Optional[FeatureTable] = None,
        maintain_atom_arrays: bool = True,
    ) -> None:
        super().__init__(
            lattice, potential, tet, temperature=temperature, rng=rng,
            propensity=propensity,
        )
        n = lattice.n_sites
        nx, ny, nz = lattice.shape
        self.T = lattice.occupancy.astype(np.int32)
        self.pos_id = np.arange(n, dtype=np.int64).reshape(2, nx, ny, nz)
        self.maintain_atom_arrays = bool(maintain_atom_arrays)
        self._is_eam = isinstance(potential, EAMPotential)
        if self._is_eam:
            self.E_V = np.zeros(n, dtype=np.float64)
            self.E_R = np.zeros(n, dtype=np.float64)
            self.features = None
        else:
            self.E_V = None
            self.E_R = None
            table = feature_table or FeatureTable(tet.shell_distances)
            self._table = table
            self.features = np.zeros(
                (n, self.evaluator.n_elements * table.n_dim), dtype=np.float32
            )
        if self.maintain_atom_arrays:
            self.refresh_atom_arrays(range(n))

    # ------------------------------------------------------------------
    # Per-atom array maintenance (the "cache all" storage)
    # ------------------------------------------------------------------
    def _site_counts(self, sites: np.ndarray) -> np.ndarray:
        """Shell-type counts of arbitrary sites from the live lattice."""
        half = self.lattice.half_coords(sites)
        nb = self.lattice.ids_from_half(
            half[:, None, :] + self.tet.cet_offsets[None, :, :]
        )
        ntypes = self.lattice.occupancy[nb]
        return counts_from_types(
            ntypes, self.tet.cet_shell, self.tet.n_shells,
            n_elements=self.evaluator.n_elements,
        )

    def refresh_atom_arrays(self, sites: Iterable[int]) -> None:
        """Recompute the per-atom arrays for the given sites."""
        sites = np.asarray(list(sites), dtype=np.int64)
        if sites.size == 0:
            return
        counts = self._site_counts(sites)
        if self._is_eam:
            pot: EAMPotential = self.potential  # type: ignore[assignment]
            types = self.lattice.occupancy[sites]
            is_atom = types < self.evaluator.n_elements
            t = np.where(is_atom, types, 0).astype(np.int64)
            pair = np.einsum(
                "nse,nse->n",
                counts.astype(np.float64),
                pot.phi_table[:, t, :].transpose(1, 0, 2),
            )
            rho = np.einsum("nse,se->n", counts.astype(np.float64), pot.psi_table)
            self.E_V[sites] = np.where(is_atom, pair, 0.0)
            self.E_R[sites] = np.where(is_atom, rho, 0.0)
        else:
            self.features[sites] = self._table.features_from_counts(counts)

    def atom_energy_from_arrays(self, sites: np.ndarray) -> np.ndarray:
        """Per-atom energies from the stored arrays (paper Eq. 7 for EAM)."""
        sites = np.asarray(sites, dtype=np.int64)
        types = self.lattice.occupancy[sites]
        is_atom = types < self.evaluator.n_elements
        t = np.where(is_atom, types, 0).astype(np.int64)
        if self._is_eam:
            pot: EAMPotential = self.potential  # type: ignore[assignment]
            e = 0.5 * self.E_V[sites] + pot.embed_F(self.E_R[sites], t)
        else:
            from ..nnp.model import NNPotential

            model: NNPotential = self.potential  # type: ignore[assignment]
            e = model._atom_energies(self.features[sites], t).astype(np.float64)
        return np.where(is_atom, e, 0.0)

    # ------------------------------------------------------------------
    # Event hook: keep the per-atom arrays and T in sync after each hop
    # ------------------------------------------------------------------
    def step(self) -> KMCEvent:
        event = super().step()
        # Per-atom array maintenance is part of this baseline's rebuild cost
        # (the very overhead the vacancy cache removes), so it is charged to
        # the same profiler phase as the cache rebuilds.
        with self.profiler.phase("rebuild"):
            self.T[event.from_site] = self.lattice.occupancy[event.from_site]
            self.T[event.to_site] = self.lattice.occupancy[event.to_site]
            if self.maintain_atom_arrays:
                affected = set()
                for site in (event.from_site, event.to_site):
                    affected.add(site)
                    affected.update(
                        int(s)
                        for s in self.lattice.neighbor_ids(
                            site, self.tet.cet_offsets
                        )
                    )
                self.refresh_atom_arrays(sorted(affected))
        return event

    # ------------------------------------------------------------------
    def memory_report(self) -> Dict[str, int]:
        """Bytes held by each OpenKMC-style array (Table 1 rows)."""
        report = {
            "lattice": int(self.lattice.occupancy.nbytes),
            "T": int(self.T.nbytes),
            "POS_ID": int(self.pos_id.nbytes),
        }
        if self._is_eam:
            report["E_V"] = int(self.E_V.nbytes)
            report["E_R"] = int(self.E_R.nbytes)
        else:
            report["features"] = int(self.features.nbytes)
        report["total"] = sum(v for k, v in report.items() if k != "total")
        return report
