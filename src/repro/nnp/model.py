"""The neural network potential (NNP) used by the TensorKMC engines.

``NNPotential`` combines the tabulated descriptor (Eq. 6), a per-feature
standardiser, per-element reference energies, and the per-element atomistic
networks.  It implements :class:`repro.potentials.base.CountsPotential`, so
the KMC engines can use it interchangeably with the EAM baseline, and it
additionally offers the continuous off-lattice path used for training and
force validation (Fig. 7).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..core.backend import get_backend, to_numpy
from ..potentials.base import CountsPotential
from ..potentials.tables import FeatureTable
from .dataset import Structure
from .descriptors import build_pair_list, structure_features, structure_forces
from .network import ElementNetworks

__all__ = ["NNPotential"]


class NNPotential(CountsPotential):
    """Neural network potential over exponential descriptors.

    Parameters
    ----------
    table:
        The descriptor table; its shell distances define the lattice shells
        this potential can evaluate.
    networks:
        Per-element atomistic networks whose input width must equal
        ``n_elements * table.n_dim``.
    rcut:
        Cutoff radius in Angstrom (for the continuous path).
    """

    #: All rigid-lattice inference runs through the deterministic
    #: tiled-GEMM kernel (:mod:`repro.operators.tilegemm`): every GEMM call
    #: has a fixed ``(m_tile, k_tile)`` shape with partial products summed
    #: in a fixed order, so each atom's energy is bit-identical whether it
    #: is evaluated alone or inside any batch.  The engines' ``auto``
    #: batching therefore takes the batched miss path for the NNP while the
    #: Fig. 8 cache-equivalence guarantee stays bitwise.
    batch_row_invariant = True

    def __init__(
        self,
        table: FeatureTable,
        networks: ElementNetworks,
        rcut: float,
    ) -> None:
        expected = networks.n_elements * table.n_dim
        if networks.channels[0] != expected:
            raise ValueError(
                f"network input width {networks.channels[0]} != "
                f"n_elements*n_dim = {expected}"
            )
        self.table = table
        self.networks = networks
        self.n_elements = networks.n_elements
        self.rcut = float(rcut)
        self.shell_distances = table.shell_distances
        n_feat = expected
        # Standardiser and energy references; identity until trained.
        self.set_standardisation(
            np.zeros(n_feat, dtype=np.float32),
            np.ones(n_feat, dtype=np.float32),
            np.zeros(self.n_elements, dtype=np.float64),
            1.0,
        )

    # ------------------------------------------------------------------
    # Standardisation plumbing (set by the trainer)
    # ------------------------------------------------------------------
    def set_standardisation(
        self,
        feature_mean: np.ndarray,
        feature_std: np.ndarray,
        reference_energies: np.ndarray,
        energy_scale: float,
    ) -> None:
        """Install the feature scaler and energy references fitted in training.

        Zero-variance features (constant over the training set — common for
        shells a species never reaches) are clamped to a unit standard
        deviation here, at install time: dividing by ``std == 0`` would turn
        every downstream energy into NaN.  The clamp is exact for such
        features because their centred value is always 0 anyway.
        """
        self.feature_mean = np.asarray(feature_mean, dtype=np.float32)
        std = np.asarray(feature_std, dtype=np.float32).copy()
        std[~(std > 0.0)] = 1.0  # also catches NaN stds
        self.feature_std = std
        self.reference_energies = np.asarray(reference_energies, dtype=np.float64)
        self.energy_scale = float(energy_scale)
        # Per-call overhead killers for the inference hot loop: the divide
        # becomes a cached multiply, and the per-type reference gather runs
        # against a padded table whose extra slot absorbs vacancy codes.
        self._inv_std = (
            np.float32(1.0) / self.feature_std
        ).astype(np.float32)
        self._ref_padded = np.concatenate(
            [self.reference_energies.astype(np.float64), [0.0]]
        )
        # New scaler == new energy function: bump the parameter epoch so
        # persistent row-energy caches drop values produced by the old one.
        self.params_epoch = getattr(self, "params_epoch", 0) + 1
        self._stage_standardisation()

    def _stage_standardisation(self) -> None:
        """Move the scaler/reference buffers onto the active array backend.

        Identity (the very same NumPy arrays) when the potential is
        NumPy-resident; zero-copy views on torch CPU.
        """
        xp = self.array_backend
        if xp is None or xp.is_numpy:
            self._mean_x = self.feature_mean
            self._inv_std_x = self._inv_std
            self._ref_padded_x = self._ref_padded
        else:
            self._mean_x = xp.from_numpy(self.feature_mean)
            self._inv_std_x = xp.from_numpy(self._inv_std)
            self._ref_padded_x = xp.from_numpy(self._ref_padded)

    def set_backend(self, backend) -> bool:
        """Run all rigid-lattice inference on ``backend``.

        Installs the backend on the per-element networks (their tiled-GEMM
        kernels re-stage weights) and moves the standardisation buffers.
        The training / continuous off-lattice paths stay NumPy-resident.
        """
        xp = get_backend(backend) if backend is not None else None
        self.array_backend = xp
        self.networks.set_backend(xp if xp is not None else "numpy")
        self._stage_standardisation()
        return True

    def normalise(self, features: np.ndarray, xp=None) -> np.ndarray:
        """Standardise raw descriptor features (cached reciprocal scale).

        ``xp=None`` (or the NumPy backend) runs the original NumPy path
        bit-exactly; other backends subtract/scale against the staged
        buffers.
        """
        if xp is None or xp.is_numpy:
            out = np.subtract(features, self.feature_mean, dtype=np.float32)
            out *= self._inv_std
            return out
        out = xp.astype(xp.asarray(features), xp.float32) - self._mean_x
        out *= self._inv_std_x
        return out

    @property
    def network_channels(self) -> Tuple[int, ...]:
        """Layer widths of the atomistic networks (for Fig. 9 cost charging)."""
        return self.networks.channels

    # ------------------------------------------------------------------
    # Rigid-lattice path (CountsPotential, used by the KMC engines)
    # ------------------------------------------------------------------
    def energies_from_counts(
        self, center_types: np.ndarray, counts: np.ndarray
    ) -> np.ndarray:
        xp = self.array_backend
        if xp is None or xp.is_numpy:
            center_types = np.asarray(center_types)
        feats = self.table.features_from_counts(counts, xp=xp)
        return self._atom_energies(feats, center_types)

    def energies_from_counts_fused(
        self, center_types: np.ndarray, counts: np.ndarray, spec=None, ledger=None
    ) -> np.ndarray:
        """Big-fusion variant of :meth:`energies_from_counts`.

        Routes the atomistic networks through
        :meth:`~repro.nnp.network.ElementNetworks.forward_big_fusion`, so an
        optional :class:`~repro.sunway.costmodel.CostLedger` receives the
        modeled Sunway cost of the whole batched evaluation.  Both paths run
        the same deterministic tiled-GEMM kernel, so results are
        bit-identical to :meth:`energies_from_counts`.
        """
        xp = self.array_backend
        if xp is None or xp.is_numpy:
            center_types = np.asarray(center_types)
        feats = self.table.features_from_counts(counts, xp=xp)
        return self._atom_energies(feats, center_types, spec=spec, ledger=ledger)

    def _atom_energies(
        self,
        features: np.ndarray,
        species: np.ndarray,
        spec=None,
        ledger=None,
    ) -> np.ndarray:
        """Per-atom energies; vacancies get exactly 0.

        One shared path for scalar and batched callers: the deterministic
        tiled kernel makes each row a pure function of that row's features,
        and the reference-energy gather runs once against the padded table
        (vacancy codes hit the zero slot) instead of per direction.

        NumPy-resident potentials run the original NumPy body verbatim
        (bit-exact); with an installed backend the same program runs on
        backend arrays, with species routing kept host-side.
        """
        xp = self.array_backend
        if xp is None or xp.is_numpy:
            species = np.asarray(species)
            is_atom = species < self.n_elements
            t = np.where(is_atom, species, 0)
            norm = self.normalise(features)
            net = self.networks.forward_big_fusion(
                norm, t, spec=spec, ledger=ledger
            ).astype(np.float64)
            refs = self._ref_padded[np.where(is_atom, species, self.n_elements)]
            energies = refs + self.energy_scale * net
            return np.where(is_atom, energies, 0.0)
        species_np = np.asarray(xp.to_numpy(species))
        is_atom = species_np < self.n_elements
        t = np.where(is_atom, species_np, 0)
        norm = self.normalise(features, xp=xp)
        net = xp.astype(
            self.networks.forward_big_fusion(norm, t, spec=spec, ledger=ledger),
            xp.float64,
        )
        ref_idx = np.where(is_atom, species_np, self.n_elements).astype(np.int64)
        refs = self._ref_padded_x[xp.from_numpy(ref_idx)]
        energies = refs + self.energy_scale * net
        return xp.where(xp.from_numpy(is_atom), energies, 0.0)

    # ------------------------------------------------------------------
    # Continuous off-lattice path (training / Fig. 7 validation)
    # ------------------------------------------------------------------
    def structure_energy(self, structure: Structure) -> float:
        """Total energy of an off-lattice periodic structure."""
        pairs = build_pair_list(structure.positions, structure.cell, self.rcut)
        feats = structure_features(
            structure.species, pairs, self.table, n_elements=self.n_elements
        )
        return float(np.sum(to_numpy(self._atom_energies(feats, structure.species))))

    def structure_energy_and_forces(
        self, structure: Structure
    ) -> Tuple[float, np.ndarray]:
        """Total energy and analytic forces for an off-lattice structure.

        Forces follow the chain rule through the descriptor Jacobian; the
        network input gradient is exact for ReLU activations (a.e.).
        """
        pairs = build_pair_list(structure.positions, structure.cell, self.rcut)
        feats = structure_features(
            structure.species, pairs, self.table, n_elements=self.n_elements
        )
        species = structure.species
        energy = float(np.sum(to_numpy(self._atom_energies(feats, species))))
        norm = self.normalise(feats)
        dE_dnorm = self.networks.input_gradient(norm, species).astype(np.float64)
        dE_dfeat = self.energy_scale * dE_dnorm / self.feature_std.astype(np.float64)
        forces = structure_forces(
            species, pairs, self.table, dE_dfeat, n_elements=self.n_elements
        )
        # F = -dE/dpos: structure_forces returns +dE/df * df/dpos contributions
        # signed as forces already (see its docstring), so no extra negation.
        return energy, forces

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str) -> None:
        """Serialise weights, scaler, and hyper-parameters to an ``.npz``."""
        payload = {
            "pq": self.table.pq,
            "shell_distances": self.shell_distances,
            "rcut": np.array([self.rcut]),
            "channels": np.array(self.networks.channels),
            "n_elements": np.array([self.networks.n_elements]),
            "feature_mean": self.feature_mean,
            "feature_std": self.feature_std,
            "reference_energies": self.reference_energies,
            "energy_scale": np.array([self.energy_scale]),
        }
        for e, net in self.networks.nets.items():
            for l, (w, b) in enumerate(zip(net.weights, net.biases)):
                payload[f"w_{e}_{l}"] = w
                payload[f"b_{e}_{l}"] = b
        np.savez(path, **payload)

    @classmethod
    def load(cls, path: str) -> "NNPotential":
        """Inverse of :meth:`save`."""
        data = np.load(path)
        table = FeatureTable(data["shell_distances"], pq=data["pq"])
        channels = tuple(int(c) for c in data["channels"])
        n_elements = int(data["n_elements"][0])
        networks = ElementNetworks(
            channels, np.random.default_rng(0), n_elements=n_elements
        )
        for e, net in networks.nets.items():
            for l in range(net.n_layers):
                net.weights[l][...] = data[f"w_{e}_{l}"]
                net.biases[l][...] = data[f"b_{e}_{l}"]
        model = cls(table, networks, rcut=float(data["rcut"][0]))
        model.set_standardisation(
            data["feature_mean"],
            data["feature_std"],
            data["reference_energies"],
            float(data["energy_scale"][0]),
        )
        return model
