"""The atomistic neural network — a stack of 1x1 convolutions.

A convolution with 1x1 kernels and stride 1 over an (N, H, W, C) tensor is an
MLP applied independently to every pixel (paper Fig. 6a); in TensorAlloy each
"pixel" is one atom.  This module implements that MLP from scratch in NumPy
with full backpropagation, plus the input-gradient path needed for force
prediction, and a per-element container (one subnetwork per chemical element,
TensorAlloy style).

The same weights feed the operator studies in :mod:`repro.operators`.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..constants import N_ELEMENTS
from ..core.backend import get_backend

__all__ = ["AtomicNetwork", "ElementNetworks"]


def _he_init(rng: np.random.Generator, fan_in: int, fan_out: int, dtype) -> np.ndarray:
    scale = np.sqrt(2.0 / fan_in)
    return (rng.standard_normal((fan_in, fan_out)) * scale).astype(dtype)


class AtomicNetwork:
    """Fully-connected ReLU network mapping feature vectors to atomic energies.

    Parameters
    ----------
    channels:
        Layer widths including input and output, e.g. the paper's
        ``(64, 128, 128, 128, 64, 1)``.  The output width must be 1.
    rng:
        Source of initial weights (He initialisation).
    dtype:
        Working precision; float32 matches the Sunway kernels.
    """

    def __init__(
        self,
        channels: Sequence[int],
        rng: np.random.Generator,
        dtype: np.dtype = np.float32,
    ) -> None:
        channels = tuple(int(c) for c in channels)
        if len(channels) < 2:
            raise ValueError("need at least input and output widths")
        if channels[-1] != 1:
            raise ValueError(f"output width must be 1, got {channels[-1]}")
        self.channels = channels
        self.dtype = np.dtype(dtype)
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        for cin, cout in zip(channels[:-1], channels[1:]):
            self.weights.append(_he_init(rng, cin, cout, self.dtype))
            self.biases.append(np.zeros(cout, dtype=self.dtype))

    @property
    def n_layers(self) -> int:
        return len(self.weights)

    @property
    def n_parameters(self) -> int:
        return sum(w.size for w in self.weights) + sum(b.size for b in self.biases)

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Per-atom energies ``(n,)`` from features ``(n, c_in)``."""
        h = np.asarray(x, dtype=self.dtype)
        last = self.n_layers - 1
        for l, (w, b) in enumerate(zip(self.weights, self.biases)):
            h = h @ w + b
            if l != last:
                np.maximum(h, 0.0, out=h)
        return h[:, 0]

    def forward_cached(self, x: np.ndarray) -> Tuple[np.ndarray, List[np.ndarray]]:
        """Forward pass keeping post-activation tensors for backprop.

        Returns ``(energies, cache)`` where ``cache[l]`` is the input of
        layer ``l`` (``cache[0]`` is ``x`` itself).
        """
        h = np.asarray(x, dtype=self.dtype)
        cache = [h]
        last = self.n_layers - 1
        for l, (w, b) in enumerate(zip(self.weights, self.biases)):
            h = h @ w + b
            if l != last:
                np.maximum(h, 0.0, out=h)
            cache.append(h)
        return h[:, 0], cache

    def backward(
        self, grad_out: np.ndarray, cache: List[np.ndarray]
    ) -> Tuple[List[np.ndarray], List[np.ndarray], np.ndarray]:
        """Backpropagate ``dL/dE`` through the network.

        Parameters
        ----------
        grad_out:
            ``(n,)`` gradient of the loss with respect to each atomic energy.
        cache:
            The cache from :meth:`forward_cached`.

        Returns
        -------
        ``(grad_weights, grad_biases, grad_input)`` with ``grad_input`` of
        shape ``(n, c_in)`` (used for force training).
        """
        g = np.asarray(grad_out, dtype=self.dtype)[:, None]
        grad_w: List[np.ndarray] = [np.empty(0)] * self.n_layers
        grad_b: List[np.ndarray] = [np.empty(0)] * self.n_layers
        last = self.n_layers - 1
        for l in range(last, -1, -1):
            if l != last:
                # grad through ReLU of layer l's output.
                g = g * (cache[l + 1] > 0)
            grad_w[l] = cache[l].T @ g
            grad_b[l] = g.sum(axis=0)
            if l > 0:
                g = g @ self.weights[l].T
            else:
                g = g @ self.weights[0].T
        return grad_w, grad_b, g

    def input_gradient(self, x: np.ndarray) -> np.ndarray:
        """``dE_i/dx_i`` for each atom — the force chain-rule factor.

        Returns ``(n, c_in)``; exact for ReLU activations (a.e.).
        """
        _, cache = self.forward_cached(x)
        return self.input_gradient_cached(cache)

    def input_gradient_cached(self, cache: List[np.ndarray]) -> np.ndarray:
        """``dE/dx`` from an existing forward cache (no re-forward)."""
        n = cache[0].shape[0]
        g = np.ones((n, 1), dtype=self.dtype)
        last = self.n_layers - 1
        for l in range(last, -1, -1):
            if l != last:
                g = g * (cache[l + 1] > 0)
            g = g @ self.weights[l].T
        return g

    def force_param_gradients(
        self, cache: List[np.ndarray], v: np.ndarray
    ) -> List[np.ndarray]:
        """Gradient of ``S = sum_i grad_x E(x_i) . v_i`` w.r.t. parameters.

        This is the double-backprop pass of force training: the force loss
        is linear in the network's input gradient, so its parameter gradient
        is ``dS/dtheta`` for the adjoint direction ``v``.  ``S`` equals the
        Jacobian-vector product of the network along ``v``; for ReLU
        activations the second derivative vanishes almost everywhere, so the
        masks from the cached forward are constants and ``S``'s computation
        graph is the linear chain ``t_l = (t_{l-1} W_l) o m_l`` — which this
        method differentiates in reverse.  Bias gradients are exactly zero
        (the input gradient does not depend on biases a.e.).

        Returns a list aligned with :meth:`get_parameters`.
        """
        last = self.n_layers - 1
        masks = [
            (cache[l + 1] > 0) if l != last else None
            for l in range(self.n_layers)
        ]
        # JVP forward: t_l per layer (store pre-mask inputs t_{l-1}).
        t = np.asarray(v, dtype=self.dtype)
        t_inputs: List[np.ndarray] = []
        for l in range(self.n_layers):
            t_inputs.append(t)
            t = t @ self.weights[l]
            if masks[l] is not None:
                t = t * masks[l]
        # Reverse: r_l = dS/d(u_l) with u_l = t_{l-1} W_l; S = sum t_L.
        n = cache[0].shape[0]
        r = np.ones((n, 1), dtype=self.dtype)
        grads: List[np.ndarray] = [np.empty(0)] * (2 * self.n_layers)
        for l in range(last, -1, -1):
            if masks[l] is not None:
                r = r * masks[l]
            grads[2 * l] = t_inputs[l].T @ r
            grads[2 * l + 1] = np.zeros_like(self.biases[l])
            r = r @ self.weights[l].T
        return grads

    # ------------------------------------------------------------------
    # Parameter (de)serialisation for optimisers and snapshots
    # ------------------------------------------------------------------
    def get_parameters(self) -> List[np.ndarray]:
        """Flat list [W0, b0, W1, b1, ...] (views, not copies)."""
        out: List[np.ndarray] = []
        for w, b in zip(self.weights, self.biases):
            out.append(w)
            out.append(b)
        return out

    def set_parameters(self, params: Sequence[np.ndarray]) -> None:
        """Inverse of :meth:`get_parameters` (copies values in)."""
        if len(params) != 2 * self.n_layers:
            raise ValueError("parameter list length mismatch")
        for l in range(self.n_layers):
            self.weights[l][...] = params[2 * l]
            self.biases[l][...] = params[2 * l + 1]


class ElementNetworks:
    """One :class:`AtomicNetwork` per chemical element (TensorAlloy style).

    All subnetworks share the architecture; an atom's energy is produced by
    the subnetwork of its own species.
    """

    def __init__(
        self,
        channels: Sequence[int],
        rng: np.random.Generator,
        n_elements: int = N_ELEMENTS,
        dtype: np.dtype = np.float32,
    ) -> None:
        self.nets: Dict[int, AtomicNetwork] = {
            e: AtomicNetwork(channels, rng, dtype=dtype) for e in range(n_elements)
        }
        self.n_elements = n_elements
        self.channels = tuple(int(c) for c in channels)
        self.dtype = np.dtype(dtype)
        # Inference array backend (training/backprop stays NumPy-resident).
        self.xp = get_backend("numpy")
        # Lazily-built per-element deterministic tiled-GEMM executors
        # (:class:`~repro.operators.tilegemm.TileGEMMKernel`).  They alias
        # the live weight arrays (set_parameters copies in place), so no
        # invalidation on training updates is needed.  The tile plan is
        # pinned to the canonical machine spec, so every inference call —
        # whatever spec it charges costs against — runs the exact same
        # accumulation order.
        self._fusers: Dict[int, object] = {}

    def set_backend(self, backend) -> None:
        """Run inference on ``backend``; drops the cached per-element kernels
        so they re-stage their weights on the new backend."""
        self.xp = get_backend(backend)
        self._fusers = {}

    def _kernel_for(self, e: int):
        """The cached deterministic inference kernel for element ``e``."""
        kernel = self._fusers.get(e)
        if kernel is None:
            from ..operators.tilegemm import TileGEMMKernel

            net = self.nets[e]
            kernel = TileGEMMKernel(
                net.weights, net.biases, dtype=self.dtype, backend=self.xp
            )
            self._fusers[e] = kernel
        return kernel

    def forward(self, features: np.ndarray, species: np.ndarray) -> np.ndarray:
        """Per-atom energies: each atom is routed to its element's network.

        Inference runs through the deterministic tiled-GEMM kernel (same
        executor as :meth:`forward_big_fusion`), so each atom's energy is
        bit-identical regardless of how many other atoms share the call.
        Runs on ``self.xp``; species routing stays host-side (NumPy masks).
        """
        xp = self.xp
        features = xp.asarray(features, dtype=self.dtype)
        species = np.asarray(xp.to_numpy(species))
        energies = xp.zeros(features.shape[0], dtype=self.dtype)
        for e in self.nets:
            mask = species == e
            if np.any(mask):
                mask_x = mask if xp.is_numpy else xp.asarray(mask)
                energies[mask_x] = self._kernel_for(e)(features[mask_x])[:, 0]
        return energies

    def forward_big_fusion(
        self,
        features: np.ndarray,
        species: np.ndarray,
        spec=None,
        ledger=None,
    ):
        """Per-atom energies through the whole-network fused operator.

        Same element routing — and the exact same
        :class:`~repro.operators.tilegemm.TileGEMMKernel` arithmetic, hence
        bit-identical results — as :meth:`forward`, with the big-fusion cost
        accounting of paper Sec. 3.5 on top: when a ``ledger`` is given,
        DMA/RMA/SIMD costs are charged per Algorithm 1.

        Parameters
        ----------
        spec:
            Accepted for backward compatibility; the tile plan is pinned to
            the canonical SW26010-pro so the accumulation order (and thus
            the bits) cannot depend on the machine model being studied.
        ledger:
            Optional :class:`~repro.sunway.costmodel.CostLedger` accumulating
            the modeled cost of every per-element launch.
        """
        xp = self.xp
        features = xp.asarray(features, dtype=self.dtype)
        species = np.asarray(xp.to_numpy(species))
        energies = xp.zeros(features.shape[0], dtype=self.dtype)
        for e in self.nets:
            mask = species == e
            if not np.any(mask):
                continue
            kernel = self._kernel_for(e)
            mask_x = mask if xp.is_numpy else xp.asarray(mask)
            energies[mask_x] = kernel(features[mask_x], ledger=ledger)[:, 0]
        return energies

    def input_gradient(self, features: np.ndarray, species: np.ndarray) -> np.ndarray:
        """Per-atom ``dE/df`` routed per element."""
        features = np.asarray(features, dtype=self.dtype)
        species = np.asarray(species)
        grads = np.zeros_like(features)
        for e, net in self.nets.items():
            mask = species == e
            if np.any(mask):
                grads[mask] = net.input_gradient(features[mask])
        return grads

    @property
    def n_parameters(self) -> int:
        return sum(net.n_parameters for net in self.nets.values())
