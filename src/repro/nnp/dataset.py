"""Synthetic Fe-Cu training data — the FHI-aims substitution (DESIGN.md).

The paper trains on 540 Fe-Cu structures of 60-64 atoms labelled by DFT
(Sec. 4.1.1).  We generate the same ensemble — BCC supercells with random Cu
substitution, 0-4 vacancies, and thermal displacements — and label it with
the analytic EAM oracle from :mod:`repro.potentials.eam`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..constants import CU, FE, LATTICE_CONSTANT
from ..potentials.eam import EAMPotential

__all__ = ["Structure", "generate_structures", "train_test_split"]


@dataclass
class Structure:
    """One labelled periodic training structure."""

    positions: np.ndarray  # (n, 3) Angstrom
    species: np.ndarray  # (n,) FE / CU
    cell: np.ndarray  # (3,) orthorhombic box lengths, Angstrom
    energy: float  # total energy, eV
    forces: np.ndarray  # (n, 3) eV / Angstrom

    @property
    def n_atoms(self) -> int:
        return int(self.species.shape[0])

    @property
    def composition(self) -> Tuple[int, int]:
        """(n_Fe, n_Cu)."""
        return int(np.sum(self.species == FE)), int(np.sum(self.species == CU))


def _bcc_supercell(
    cells: Sequence[int], a: float
) -> Tuple[np.ndarray, np.ndarray]:
    """Ideal BCC site positions and the box lengths for a cell grid."""
    nx, ny, nz = cells
    corners = np.stack(
        np.meshgrid(np.arange(nx), np.arange(ny), np.arange(nz), indexing="ij"),
        axis=-1,
    ).reshape(-1, 3).astype(np.float64)
    centers = corners + 0.5
    positions = np.concatenate([corners, centers], axis=0) * a
    box = np.array([nx, ny, nz], dtype=np.float64) * a
    return positions, box


def generate_structures(
    oracle: EAMPotential,
    rng: np.random.Generator,
    n_structures: int = 540,
    cells: Sequence[int] = (2, 4, 4),
    a: float = LATTICE_CONSTANT,
    cu_fraction_max: float = 0.25,
    max_vacancies: int = 4,
    displacement_sigmas: Tuple[float, float] = (0.01, 0.10),
    solute_codes: Sequence[int] = (CU,),
) -> List[Structure]:
    """Generate the paper's training ensemble labelled by the oracle.

    Each structure starts from a 64-site BCC supercell, substitutes a random
    Cu fraction, removes 0-``max_vacancies`` atoms (sizes 60-64, as in the
    paper), and applies Gaussian thermal displacements with a per-structure
    amplitude so the force distribution has diverse magnitudes.
    """
    base_positions, box = _bcc_supercell(cells, a)
    n_sites = base_positions.shape[0]
    structures: List[Structure] = []
    for _ in range(n_structures):
        species = np.full(n_sites, FE, dtype=np.int64)
        for code in solute_codes:
            frac = rng.uniform(0.0, cu_fraction_max / len(solute_codes))
            species = np.where(
                (rng.random(n_sites) < frac) & (species == FE), code, species
            )
        n_vac = int(rng.integers(0, max_vacancies + 1))
        keep = np.ones(n_sites, dtype=bool)
        if n_vac:
            keep[rng.choice(n_sites, size=n_vac, replace=False)] = False
        sigma = rng.uniform(*displacement_sigmas)
        positions = base_positions[keep] + rng.normal(0.0, sigma, (keep.sum(), 3))
        spec = species[keep]
        energy, forces = oracle.energy_and_forces(positions, spec, box)
        structures.append(
            Structure(
                positions=positions,
                species=spec,
                cell=box.copy(),
                energy=energy,
                forces=forces,
            )
        )
    return structures


def train_test_split(
    structures: List[Structure], rng: np.random.Generator, n_train: int = 400
) -> Tuple[List[Structure], List[Structure]]:
    """Random split, paper-style: 400 train / remainder test (Sec. 4.1.1)."""
    if n_train >= len(structures):
        raise ValueError("n_train must leave a non-empty test set")
    order = rng.permutation(len(structures))
    train = [structures[i] for i in order[:n_train]]
    test = [structures[i] for i in order[n_train:]]
    return train, test
