"""Neural network potential stack: descriptors, networks, datasets, training."""

from .dataset import Structure, generate_structures, train_test_split
from .descriptors import PairList, build_pair_list, structure_features, structure_forces
from .metrics import mae, parity_report, r2_score, rmse
from .model import NNPotential
from .network import AtomicNetwork, ElementNetworks
from .training import Adam, NNPTrainer, TrainingHistory

__all__ = [
    "Structure",
    "generate_structures",
    "train_test_split",
    "PairList",
    "build_pair_list",
    "structure_features",
    "structure_forces",
    "mae",
    "parity_report",
    "r2_score",
    "rmse",
    "NNPotential",
    "AtomicNetwork",
    "ElementNetworks",
    "Adam",
    "NNPTrainer",
    "TrainingHistory",
]
