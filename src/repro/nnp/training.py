"""From-scratch training loop for the NNP (replaces TensorFlow).

The trainer fits per-element reference energies by linear regression on
composition, standardises the descriptor features, and then minimises

    L = L_energy + force_weight * L_force

with Adam.  ``L_energy`` is the mean squared per-atom total-energy error.
``L_force`` (optional, ``force_weight > 0``) is the mean squared force-
component error; its parameter gradient needs double backpropagation —
the force is linear in the network's *input gradient*, whose parameter
derivative is computed exactly for ReLU networks by
:meth:`repro.nnp.network.AtomicNetwork.force_param_gradients`.  The paper's
force accuracy (R^2 = 0.88, clearly below its energy R^2 = 0.998) indicates
an energy-dominated objective; a small force weight reproduces that regime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from .dataset import Structure
from .descriptors import (
    build_pair_list,
    structure_features,
    structure_forces,
    structure_forces_vjp,
)
from .model import NNPotential

__all__ = ["Adam", "TrainingHistory", "NNPTrainer"]


class Adam:
    """Adam optimiser over a list of parameter arrays (Kingma & Ba 2015)."""

    def __init__(
        self,
        params: Sequence[np.ndarray],
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ) -> None:
        self.params = list(params)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.m = [np.zeros_like(p, dtype=np.float64) for p in self.params]
        self.v = [np.zeros_like(p, dtype=np.float64) for p in self.params]
        self.t = 0

    def step(self, grads: Sequence[np.ndarray]) -> None:
        """Apply one update in place on the registered parameter arrays."""
        if len(grads) != len(self.params):
            raise ValueError("gradient list length mismatch")
        self.t += 1
        b1c = 1.0 - self.beta1**self.t
        b2c = 1.0 - self.beta2**self.t
        for p, g, m, v in zip(self.params, grads, self.m, self.v):
            g64 = np.asarray(g, dtype=np.float64)
            m *= self.beta1
            m += (1.0 - self.beta1) * g64
            v *= self.beta2
            v += (1.0 - self.beta2) * g64 * g64
            update = self.lr * (m / b1c) / (np.sqrt(v / b2c) + self.eps)
            p -= update.astype(p.dtype)


@dataclass
class TrainingHistory:
    """Loss curve and metadata recorded during training."""

    epoch_loss: List[float] = field(default_factory=list)
    best_loss: float = np.inf
    n_epochs: int = 0

    def record(self, loss: float) -> None:
        self.epoch_loss.append(loss)
        self.best_loss = min(self.best_loss, loss)
        self.n_epochs += 1


class NNPTrainer:
    """Fits an :class:`NNPotential` to labelled structures.

    Parameters
    ----------
    model:
        The potential to train (modified in place).
    structures:
        Training structures (energies in eV; forces optional for training).
    """

    def __init__(self, model: NNPotential, structures: Sequence[Structure]) -> None:
        if not structures:
            raise ValueError("empty training set")
        self.model = model
        self.structures = list(structures)
        self._prepare()

    def _prepare(self) -> None:
        """Precompute features, fit the standardiser and reference energies."""
        model = self.model
        feats_list: List[np.ndarray] = []
        species_list: List[np.ndarray] = []
        struct_index: List[np.ndarray] = []
        n_el = model.n_elements
        compositions = np.zeros((len(self.structures), n_el), dtype=np.float64)
        energies = np.zeros(len(self.structures), dtype=np.float64)
        self.pair_lists = []
        self.atom_slices = []
        start = 0
        for b, s in enumerate(self.structures):
            pairs = build_pair_list(s.positions, s.cell, model.rcut)
            self.pair_lists.append(pairs)
            self.atom_slices.append((start, start + s.n_atoms))
            start += s.n_atoms
            feats_list.append(
                structure_features(s.species, pairs, model.table, n_elements=n_el)
            )
            species_list.append(np.asarray(s.species, dtype=np.int64))
            struct_index.append(np.full(s.n_atoms, b, dtype=np.int64))
            for e in range(n_el):
                compositions[b, e] = np.sum(s.species == e)
            energies[b] = s.energy

        self.features = np.concatenate(feats_list, axis=0)
        self.species = np.concatenate(species_list, axis=0)
        self.struct_index = np.concatenate(struct_index, axis=0)
        self.n_atoms_per_struct = compositions.sum(axis=1)
        self.energies = energies

        # Per-element reference energies by least squares on composition.
        ref, *_ = np.linalg.lstsq(compositions, energies, rcond=None)
        residual = energies - compositions @ ref
        scale = float(np.std(residual / self.n_atoms_per_struct))
        scale = max(scale, 1e-6)

        mean = self.features.mean(axis=0)
        std = self.features.std(axis=0)
        std[std < 1e-8] = 1.0
        model.set_standardisation(mean, std, ref, scale)

        self.norm_features = model.normalise(self.features)
        self.residual_targets = residual  # total residual energy per structure

    # ------------------------------------------------------------------
    def train(
        self,
        rng: np.random.Generator,
        n_epochs: int = 200,
        batch_structures: int = 32,
        lr: float = 1e-3,
        lr_decay: float = 1.0,
        force_weight: float = 0.0,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Run Adam training; returns the loss history.

        The energy loss is the mean squared *per-atom* energy error in units
        of the model's energy scale.  With ``force_weight > 0`` a force MSE
        term (eV/A units, scaled by the weight) is added via exact double
        backpropagation.
        """
        model = self.model
        params: List[np.ndarray] = []
        for e in sorted(model.networks.nets):
            params.extend(model.networks.nets[e].get_parameters())
        opt = Adam(params, lr=lr)

        n_structs = len(self.structures)
        history = TrainingHistory()
        for epoch in range(n_epochs):
            order = rng.permutation(n_structs)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n_structs, batch_structures):
                batch = order[start : start + batch_structures]
                loss = self._batch_step(batch, opt, force_weight)
                epoch_loss += loss
                n_batches += 1
            opt.lr *= lr_decay
            history.record(epoch_loss / max(n_batches, 1))
            if verbose and (epoch % 10 == 0 or epoch == n_epochs - 1):
                print(f"epoch {epoch:4d}  loss {history.epoch_loss[-1]:.6f}")
        return history

    def _batch_step(
        self, batch: np.ndarray, opt: Adam, force_weight: float = 0.0
    ) -> float:
        """One Adam step on a batch of structure indices; returns the loss."""
        model = self.model
        scale = model.energy_scale
        mask_atoms = np.isin(self.struct_index, batch)
        feats = self.norm_features[mask_atoms]
        species = self.species[mask_atoms]
        sidx = self.struct_index[mask_atoms]

        # Map global structure ids to 0..B-1 slots.
        remap = {int(b): i for i, b in enumerate(batch)}
        slots = np.fromiter((remap[int(b)] for b in sidx), count=sidx.size, dtype=np.int64)
        B = len(batch)
        n_atoms = self.n_atoms_per_struct[batch]
        target = self.residual_targets[batch]

        # Forward through per-element networks with caches.
        atomic = np.zeros(feats.shape[0], dtype=np.float64)
        caches: Dict[int, tuple] = {}
        for e, net in model.networks.nets.items():
            m = species == e
            if np.any(m):
                out, cache = net.forward_cached(feats[m])
                atomic[m] = out.astype(np.float64)
                caches[e] = (m, cache)

        pred_residual = np.zeros(B, dtype=np.float64)
        np.add.at(pred_residual, slots, scale * atomic)
        err_per_atom = (pred_residual - target) / n_atoms
        loss = float(np.mean((err_per_atom / scale) ** 2))

        # dL/d(atomic_i) — chain through per-atom normalisation and scale.
        dL_dpred = 2.0 * err_per_atom / (n_atoms * B * scale**2)
        grad_atomic = dL_dpred[slots] * scale

        grads: List[np.ndarray] = []
        for e in sorted(model.networks.nets):
            net = model.networks.nets[e]
            if e in caches:
                m, cache = caches[e]
                gw, gb, _ = net.backward(grad_atomic[m], cache)
                for w, b in zip(gw, gb):
                    grads.append(w)
                    grads.append(b)
            else:
                for p in net.get_parameters():
                    grads.append(np.zeros_like(p))

        if force_weight > 0.0:
            force_loss, v_adjoint = self._force_adjoint(
                batch, species, slots, caches, feats.shape[0]
            )
            loss += force_weight * force_loss
            offset = 0
            for e in sorted(model.networks.nets):
                net = model.networks.nets[e]
                if e in caches:
                    m, cache = caches[e]
                    fg = net.force_param_gradients(
                        cache, force_weight * v_adjoint[m]
                    )
                    for idx, g in enumerate(fg):
                        grads[offset + idx] = grads[offset + idx] + g
                offset += 2 * net.n_layers

        opt.step(grads)
        return loss

    def _force_adjoint(self, batch, species, slots, caches, n_batch_atoms):
        """Force MSE over the batch and its adjoint direction dL_f/d(grad_x E).

        Returns ``(force_loss, v)`` with ``v`` of shape
        ``(n_batch_atoms, n_feat)`` such that the parameter gradient of the
        force loss is ``d/dtheta sum_i grad_x E(x_i) . v_i``.
        """
        model = self.model
        scale = model.energy_scale
        std = model.feature_std.astype(np.float64)

        # Input gradient of every batch atom from the cached forwards.
        g = np.zeros((n_batch_atoms, self.norm_features.shape[1]), dtype=np.float64)
        for e, (m, cache) in caches.items():
            net = model.networks.nets[e]
            g[m] = net.input_gradient_cached(cache).astype(np.float64)
        dE_dfeat = scale * g / std

        # Per-structure forces and adjoints.
        n_components = 0
        sq_err_total = 0.0
        v = np.zeros_like(g)
        # batch atoms are ordered by ascending global structure id
        batch_sorted = np.sort(batch)
        local_start = 0
        for b in batch_sorted:
            s = self.structures[int(b)]
            pairs = self.pair_lists[int(b)]
            n = s.n_atoms
            rows = slice(local_start, local_start + n)
            local_start += n
            f_pred = structure_forces(
                s.species, pairs, model.table, dE_dfeat[rows],
                n_elements=model.n_elements,
            )
            diff = f_pred - np.asarray(s.forces, dtype=np.float64)
            sq_err_total += float(np.sum(diff * diff))
            n_components += 3 * n
            # dL_f/dF for this structure, before the 1/n_components factor.
            residual = 2.0 * diff
            v_raw = structure_forces_vjp(
                s.species, pairs, model.table, residual,
                n_elements=model.n_elements,
            )
            v[rows] = v_raw * scale / std
        if n_components == 0:
            return 0.0, v
        v /= n_components
        return sq_err_total / n_components, v

    # ------------------------------------------------------------------
    def evaluate_energies(
        self, structures: Optional[Sequence[Structure]] = None
    ) -> Dict[str, np.ndarray]:
        """Predicted vs reference per-atom energies for a structure set."""
        structures = list(structures) if structures is not None else self.structures
        pred = np.array([self.model.structure_energy(s) for s in structures])
        ref = np.array([s.energy for s in structures])
        n = np.array([s.n_atoms for s in structures], dtype=np.float64)
        return {"predicted": pred / n, "reference": ref / n}

    def evaluate_forces(
        self, structures: Optional[Sequence[Structure]] = None
    ) -> Dict[str, np.ndarray]:
        """Predicted vs reference force components for a structure set."""
        structures = list(structures) if structures is not None else self.structures
        pred: List[np.ndarray] = []
        ref: List[np.ndarray] = []
        for s in structures:
            _, f = self.model.structure_energy_and_forces(s)
            pred.append(f.ravel())
            ref.append(np.asarray(s.forces).ravel())
        return {"predicted": np.concatenate(pred), "reference": np.concatenate(ref)}
