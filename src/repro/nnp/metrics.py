"""Regression metrics for the Fig. 7 parity evaluation."""

from __future__ import annotations

from typing import Dict

import numpy as np

__all__ = ["mae", "rmse", "r2_score", "parity_report"]


def mae(predicted: np.ndarray, reference: np.ndarray) -> float:
    """Mean absolute error."""
    return float(np.mean(np.abs(np.asarray(predicted) - np.asarray(reference))))


def rmse(predicted: np.ndarray, reference: np.ndarray) -> float:
    """Root mean squared error."""
    d = np.asarray(predicted) - np.asarray(reference)
    return float(np.sqrt(np.mean(d * d)))


def r2_score(predicted: np.ndarray, reference: np.ndarray) -> float:
    """Coefficient of determination R^2 (1 = perfect regression)."""
    reference = np.asarray(reference, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    ss_res = float(np.sum((reference - predicted) ** 2))
    ss_tot = float(np.sum((reference - reference.mean()) ** 2))
    if ss_tot == 0.0:
        return 1.0 if ss_res == 0.0 else 0.0
    return 1.0 - ss_res / ss_tot


def parity_report(predicted: np.ndarray, reference: np.ndarray) -> Dict[str, float]:
    """The three numbers Fig. 7 reports for one quantity."""
    return {
        "mae": mae(predicted, reference),
        "rmse": rmse(predicted, reference),
        "r2": r2_score(predicted, reference),
    }
