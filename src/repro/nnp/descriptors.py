"""Off-lattice descriptor evaluation (paper Eq. 5) for training structures.

The rigid-lattice engines use the tabulated Eq. 6 path in
:mod:`repro.potentials.tables`; training structures have *continuous*
positions (thermal displacement snapshots), so here the exponential term is
evaluated directly, summing over all periodic images within the cutoff.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..constants import N_ELEMENTS
from ..potentials.tables import FeatureTable

__all__ = [
    "PairList",
    "build_pair_list",
    "structure_features",
    "structure_forces",
    "structure_forces_vjp",
]


@dataclass(frozen=True)
class PairList:
    """All ordered in-cutoff pairs (including periodic images) of a structure.

    ``i`` and ``j`` index atoms; ``unit[p]`` is the unit vector from atom
    ``i[p]`` to the image of atom ``j[p]``; ``r[p]`` its length.
    """

    i: np.ndarray
    j: np.ndarray
    r: np.ndarray
    unit: np.ndarray

    @property
    def n_pairs(self) -> int:
        return int(self.i.shape[0])


def build_pair_list(
    positions: np.ndarray, cell: np.ndarray, rcut: float
) -> PairList:
    """Enumerate ordered in-cutoff pairs with full periodic-image summation."""
    positions = np.asarray(positions, dtype=np.float64)
    cell = np.asarray(cell, dtype=np.float64)
    n = positions.shape[0]
    reps = np.ceil(rcut / cell).astype(np.int64)
    shifts = np.stack(
        np.meshgrid(*(np.arange(-m, m + 1) for m in reps), indexing="ij"), axis=-1
    ).reshape(-1, 3).astype(np.float64) * cell

    delta = (
        positions[None, :, None, :] + shifts[None, None, :, :]
        - positions[:, None, None, :]
    )
    dist = np.sqrt(np.sum(delta**2, axis=-1))
    self_pair = (
        (np.arange(n)[:, None, None] == np.arange(n)[None, :, None])
        & (np.sum(np.abs(shifts), axis=-1) < 1e-12)[None, None, :]
    )
    within = (dist < rcut) & ~self_pair
    ii, jj, ss = np.nonzero(within)
    r = dist[ii, jj, ss]
    unit = delta[ii, jj, ss] / r[:, None]
    return PairList(i=ii, j=jj, r=r, unit=unit)


def structure_features(
    species: np.ndarray,
    pairs: PairList,
    table: FeatureTable,
    n_elements: int = N_ELEMENTS,
) -> np.ndarray:
    """Eq. 5 feature matrix ``(n_atoms, n_elements * n_dim)``.

    Layout matches :meth:`FeatureTable.features_from_counts`:
    ``f[i, e * n_dim + d] = sum over neighbours j of species e``.
    """
    species = np.asarray(species)
    n_atoms = species.shape[0]
    n_dim = table.n_dim
    terms = table.continuous_term(pairs.r)  # (n_pairs, n_dim)
    feats = np.zeros((n_atoms, n_elements, n_dim), dtype=np.float64)
    np.add.at(feats, (pairs.i, species[pairs.j]), terms)
    return feats.reshape(n_atoms, n_elements * n_dim)


def structure_forces(
    species: np.ndarray,
    pairs: PairList,
    table: FeatureTable,
    dE_dfeat: np.ndarray,
    n_elements: int = N_ELEMENTS,
) -> np.ndarray:
    """Forces ``(n_atoms, 3)`` from per-atom feature gradients.

    Parameters
    ----------
    dE_dfeat:
        ``(n_atoms, n_elements * n_dim)`` gradient of the total energy with
        respect to each atom's features (network input gradient).

    Notes
    -----
    For pair ``(i -> j)`` the feature block of atom i for element
    ``species[j]`` changes by ``g(r_ij)``; moving atom j along ``unit_ij``
    increases r, so the chain rule yields a scalar
    ``w = dE/df_i[spec_j block] . g'(r_ij)`` and force contributions
    ``-w * unit`` on atom j and ``+w * unit`` on atom i.
    """
    species = np.asarray(species)
    n_atoms = species.shape[0]
    n_dim = table.n_dim
    dE = np.asarray(dE_dfeat, dtype=np.float64).reshape(n_atoms, n_elements, n_dim)
    gprime = table.continuous_term_deriv(pairs.r)  # (n_pairs, n_dim)
    w = np.einsum("pd,pd->p", dE[pairs.i, species[pairs.j]], gprime)
    forces = np.zeros((n_atoms, 3), dtype=np.float64)
    contrib = w[:, None] * pairs.unit
    np.add.at(forces, pairs.j, -contrib)
    np.add.at(forces, pairs.i, contrib)
    return forces


def structure_forces_vjp(
    species: np.ndarray,
    pairs: PairList,
    table: FeatureTable,
    force_residual: np.ndarray,
    n_elements: int = N_ELEMENTS,
) -> np.ndarray:
    """Transpose of :func:`structure_forces` — the force-training adjoint.

    Given ``dL/dF`` (``force_residual``, shape ``(n_atoms, 3)``) this returns
    ``dL/d(dE_dfeat)`` with shape ``(n_atoms, n_elements * n_dim)``:
    exactly the vector the double-backprop pass needs to differentiate the
    force loss with respect to the network parameters.

    Derivation: :func:`structure_forces` computes
    ``F[a] = sum_p w_p * unit_p * ([a == i_p] - [a == j_p])`` with
    ``w_p = dE[i_p, spec(j_p) block] . g'(r_p)``, so
    ``dL/dw_p = (R[i_p] - R[j_p]) . unit_p`` and the adjoint scatters
    ``dL/dw_p * g'(r_p)`` into the ``(i_p, spec(j_p))`` feature block.
    """
    species = np.asarray(species)
    n_atoms = species.shape[0]
    n_dim = table.n_dim
    R = np.asarray(force_residual, dtype=np.float64)
    gprime = table.continuous_term_deriv(pairs.r)  # (n_pairs, n_dim)
    dL_dw = np.einsum(
        "pc,pc->p", R[pairs.i] - R[pairs.j], pairs.unit
    )
    out = np.zeros((n_atoms, n_elements, n_dim), dtype=np.float64)
    np.add.at(out, (pairs.i, species[pairs.j]), dL_dw[:, None] * gprime)
    return out.reshape(n_atoms, n_elements * n_dim)
