"""Per-rank padded domain windows for the parallel AKMC engine.

Each MPI rank owns a rectangular box of cubic cells out of the global periodic
box, surrounded by a ghost margin wide enough to cover the interaction range
(paper Fig. 2).  The window stores occupancy for local *and* ghost sites in a
non-periodic ``(2, px, py, pz)`` array; ghost planes are refreshed from the
neighbouring ranks by :mod:`repro.parallel.ghost`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..constants import FE, LATTICE_CONSTANT, VACANCY
from .indexing import PaddedWindow

__all__ = ["DomainBox", "LocalWindow", "ghost_cells_for_cutoff"]


def ghost_cells_for_cutoff(rcut: float, a: float = LATTICE_CONSTANT) -> int:
    """Ghost margin (in cubic cells) needed to cover an interaction cutoff.

    A vacancy hop changes sites up to ``rcut + 1NN`` away from the moving
    vacancy and its energy depends on neighbours another ``rcut`` out, so the
    ghost margin must span ``2 * rcut`` plus one 1NN step.
    """
    reach = 2.0 * rcut + a * np.sqrt(3.0) / 2.0
    return int(np.ceil(reach / a))


@dataclass(frozen=True)
class DomainBox:
    """A rank's cell box ``[lo, hi)`` within the global box (cell units)."""

    lo: Tuple[int, int, int]
    hi: Tuple[int, int, int]

    def __post_init__(self) -> None:
        if any(h <= l for l, h in zip(self.lo, self.hi)):
            raise ValueError(f"empty domain box: lo={self.lo} hi={self.hi}")

    @property
    def shape(self) -> Tuple[int, int, int]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))

    @property
    def n_cells(self) -> int:
        sx, sy, sz = self.shape
        return sx * sy * sz

    @property
    def n_sites(self) -> int:
        return 2 * self.n_cells

    def contains_cell(self, cell: np.ndarray) -> np.ndarray:
        """Whether global cell coordinates (already wrapped) fall in the box."""
        cell = np.asarray(cell, dtype=np.int64)
        lo = np.array(self.lo, dtype=np.int64)
        hi = np.array(self.hi, dtype=np.int64)
        return np.all((cell >= lo) & (cell < hi), axis=-1)


class LocalWindow:
    """Occupancy window of one rank: local cells plus a ghost margin.

    Parameters
    ----------
    box:
        The rank's local cell box within the global lattice.
    global_shape:
        ``(nx, ny, nz)`` of the global periodic box, used to wrap ghost
        coordinates back onto owning ranks.
    ghost:
        Ghost margin in cells.
    a:
        Lattice constant in Angstrom.
    """

    def __init__(
        self,
        box: DomainBox,
        global_shape: Tuple[int, int, int],
        ghost: int,
        a: float = LATTICE_CONSTANT,
    ) -> None:
        self.box = box
        self.global_shape = tuple(int(v) for v in global_shape)
        self.ghost = int(ghost)
        self.a = float(a)
        self.window = PaddedWindow(local_shape=box.shape, ghost=self.ghost)
        px, py, pz = self.window.padded_shape
        self.occupancy = np.full((2, px, py, pz), FE, dtype=np.uint8)
        self._global_dims = np.array(self.global_shape, dtype=np.int64)
        self._origin = np.array(box.lo, dtype=np.int64) - self.ghost

    # ------------------------------------------------------------------
    # Coordinate mapping
    # ------------------------------------------------------------------
    @property
    def padded_shape(self) -> Tuple[int, int, int]:
        return self.window.padded_shape

    def padded_cell_of_global(self, global_cell: np.ndarray) -> np.ndarray:
        """Padded-window cell coordinates of global cells (minimum image).

        The global box is periodic; a global cell may map into the window
        through a periodic image.  The image closest to the window interior is
        chosen, which is unique as long as the window spans less than half the
        global box (asserted by the decomposition layer).
        """
        global_cell = np.asarray(global_cell, dtype=np.int64)
        rel = global_cell - self._origin
        dims = self._global_dims
        rel = rel - dims * np.round((rel - (np.array(self.padded_shape) - 1) / 2.0) / dims).astype(np.int64)
        return rel

    def in_window(self, padded_cell: np.ndarray) -> np.ndarray:
        """Whether padded cell coordinates fall inside the window."""
        padded_cell = np.asarray(padded_cell, dtype=np.int64)
        shape = np.array(self.padded_shape, dtype=np.int64)
        return np.all((padded_cell >= 0) & (padded_cell < shape), axis=-1)

    def half_coords(self, s: np.ndarray, cell: np.ndarray) -> np.ndarray:
        """Window half-unit coordinates of sites (sublattice, padded cell)."""
        s = np.asarray(s, dtype=np.int64)
        cell = np.asarray(cell, dtype=np.int64)
        return 2 * cell + s[..., None]

    def site_from_half(self, half: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(sublattice, padded cell) of window half-unit coordinates."""
        half = np.asarray(half, dtype=np.int64)
        s = half[..., 0] & 1
        cell = (half - s[..., None]) >> 1
        return s, cell

    def species_at_half(self, half: np.ndarray) -> np.ndarray:
        """Occupancy at window half-unit coordinates (must be in-window)."""
        s, cell = self.site_from_half(half)
        return self.occupancy[s, cell[..., 0], cell[..., 1], cell[..., 2]]

    def set_species_at_half(self, half: np.ndarray, species: np.ndarray | int) -> None:
        """Write occupancy at window half-unit coordinates."""
        s, cell = self.site_from_half(half)
        self.occupancy[s, cell[..., 0], cell[..., 1], cell[..., 2]] = species

    def is_local_half(self, half: np.ndarray) -> np.ndarray:
        """Whether half-unit coordinates lie in the local (owned) box."""
        _, cell = self.site_from_half(np.asarray(half, dtype=np.int64))
        g = self.ghost
        shape = np.array(self.box.shape, dtype=np.int64)
        return np.all((cell >= g) & (cell < g + shape), axis=-1)

    def global_cell_of_padded(self, padded_cell: np.ndarray) -> np.ndarray:
        """Global (wrapped) cell coordinates of padded window cells."""
        padded_cell = np.asarray(padded_cell, dtype=np.int64)
        return np.mod(padded_cell + self._origin, self._global_dims)

    # ------------------------------------------------------------------
    # Bulk fill / extract (used by tests and the gather step)
    # ------------------------------------------------------------------
    def fill_from_global(self, occupancy: np.ndarray) -> None:
        """Copy local + ghost occupancy out of a global ``(2,nx,ny,nz)`` array."""
        px, py, pz = self.padded_shape
        gi = np.mod(self._origin[0] + np.arange(px), self.global_shape[0])
        gj = np.mod(self._origin[1] + np.arange(py), self.global_shape[1])
        gk = np.mod(self._origin[2] + np.arange(pz), self.global_shape[2])
        self.occupancy[:] = occupancy[:, gi[:, None, None], gj[None, :, None], gk[None, None, :]]

    def local_block(self) -> np.ndarray:
        """View of the owned (non-ghost) occupancy block."""
        g = self.ghost
        sx, sy, sz = self.box.shape
        return self.occupancy[:, g : g + sx, g : g + sy, g : g + sz]

    def local_vacancy_half_coords(self, vacancy_code: int = VACANCY) -> np.ndarray:
        """Window half-unit coordinates of all vacancies in the owned box."""
        g = self.ghost
        sx, sy, sz = self.box.shape
        block = self.local_block()
        s, i, j, k = np.nonzero(block == vacancy_code)
        cell = np.stack([i + g, j + g, k + g], axis=-1)
        return self.half_coords(s, cell)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LocalWindow(box={self.box.lo}->{self.box.hi}, ghost={self.ghost}, "
            f"padded={self.padded_shape})"
        )
