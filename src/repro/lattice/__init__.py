"""BCC lattice substrate: geometry, occupancy, indexing, and domain windows."""

from .bcc import BCCGeometry, NeighborShells, first_nn_offsets
from .domain import DomainBox, LocalWindow, ghost_cells_for_cutoff
from .indexing import DirectIndexer, PaddedWindow, PosIdIndexer
from .occupancy import LatticeState

__all__ = [
    "BCCGeometry",
    "NeighborShells",
    "first_nn_offsets",
    "DomainBox",
    "LocalWindow",
    "ghost_cells_for_cutoff",
    "DirectIndexer",
    "PaddedWindow",
    "PosIdIndexer",
    "LatticeState",
]
