"""Lattice occupancy state for the Fe-Cu-vacancy AKMC system.

The full simulation box is a periodic BCC supercell of ``nx * ny * nz`` cubic
cells, i.e. ``2 * nx * ny * nz`` lattice sites.  The occupancy of every site is
one of the species codes from :mod:`repro.constants` (``FE``, ``CU``,
``VACANCY``) stored in a flat ``uint8`` array ordered as
``((s * nx + i) * ny + j) * nz + k``.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from ..constants import CU, FE, LATTICE_CONSTANT, VACANCY
from .bcc import BCCGeometry

__all__ = ["LatticeState"]


class LatticeState:
    """Periodic BCC occupancy state.

    Parameters
    ----------
    shape:
        ``(nx, ny, nz)`` number of cubic cells along each axis.
    a:
        Lattice constant in Angstrom.
    fill:
        Species code used to initialise every site (default Fe).
    """

    def __init__(
        self,
        shape: Sequence[int],
        a: float = LATTICE_CONSTANT,
        fill: int = FE,
        vacancy_code: int = VACANCY,
    ) -> None:
        nx, ny, nz = (int(v) for v in shape)
        if min(nx, ny, nz) < 1:
            raise ValueError(f"box shape must be positive, got {shape!r}")
        self.shape = (nx, ny, nz)
        self.geometry = BCCGeometry(a)
        self.occupancy = np.full(2 * nx * ny * nz, fill, dtype=np.uint8)
        self._dims = np.array([nx, ny, nz], dtype=np.int64)
        #: Species code marking vacant sites (``n_elements`` by convention;
        #: 2 for the default binary Fe-Cu system, 3 for a ternary, ...).
        self.vacancy_code = int(vacancy_code)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def a(self) -> float:
        """Lattice constant in Angstrom."""
        return self.geometry.a

    @property
    def n_sites(self) -> int:
        """Total number of lattice sites (2 per cubic cell)."""
        return int(self.occupancy.shape[0])

    @property
    def volume(self) -> float:
        """Box volume in Angstrom^3."""
        nx, ny, nz = self.shape
        return nx * ny * nz * self.a**3

    def copy(self) -> "LatticeState":
        """Deep copy of the state (geometry is shared, occupancy copied)."""
        out = LatticeState(self.shape, a=self.a, vacancy_code=self.vacancy_code)
        out.occupancy = self.occupancy.copy()
        return out

    # ------------------------------------------------------------------
    # Index arithmetic
    # ------------------------------------------------------------------
    def site_id(self, s: int, i: int, j: int, k: int) -> int:
        """Flat site index from (sublattice, cell) coordinates."""
        nx, ny, nz = self.shape
        return ((s * nx + i % nx) * ny + j % ny) * nz + k % nz

    def site_coords(self, ids: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Inverse of :meth:`site_id` for an array of flat indices."""
        ids = np.asarray(ids, dtype=np.int64)
        nx, ny, nz = self.shape
        k = ids % nz
        j = (ids // nz) % ny
        i = (ids // (nz * ny)) % nx
        s = ids // (nz * ny * nx)
        return s, i, j, k

    def half_coords(self, ids: np.ndarray) -> np.ndarray:
        """Half-unit integer coordinates ``(2 i + s, 2 j + s, 2 k + s)``."""
        s, i, j, k = self.site_coords(ids)
        return np.stack([2 * i + s, 2 * j + s, 2 * k + s], axis=-1)

    def ids_from_half(self, half: np.ndarray, checked: bool = True) -> np.ndarray:
        """Flat site indices from half-unit coordinates with periodic wrap.

        ``checked=False`` skips the parity validation for callers whose
        coordinates are valid BCC sites by construction (e.g. a lattice
        site plus BCC offsets) — the hot re-rate path takes this branch.
        """
        half = np.asarray(half, dtype=np.int64)
        s = half[..., 0] & 1
        if checked:
            parity_ok = ((half[..., 1] & 1) == s) & ((half[..., 2] & 1) == s)
            if not np.all(parity_ok):
                raise ValueError(
                    "half coordinates with mixed parity are not BCC sites"
                )
        cells = (half - s[..., None]) >> 1
        cells = np.mod(cells, self._dims)
        nx, ny, nz = self.shape
        return ((s * nx + cells[..., 0]) * ny + cells[..., 1]) * nz + cells[..., 2]

    def neighbor_ids(self, center_id: int, offsets: np.ndarray) -> np.ndarray:
        """Flat indices of the sites at ``offsets`` (half-units) from a site.

        This is the hot path used to translate the CET (relative coordinates
        encoding tabulation) onto an arbitrary centre site; periodic wrapping
        is applied, so the result is always valid.
        """
        center = self.half_coords(np.asarray([center_id]))[0]
        return self.ids_from_half(center[None, :] + np.asarray(offsets, dtype=np.int64))

    def positions(self, ids: np.ndarray) -> np.ndarray:
        """Cartesian positions in Angstrom of the given sites."""
        return self.half_coords(ids) * (self.a / 2.0)

    def minimum_image_displacement(self, id_a: int, id_b: int) -> np.ndarray:
        """Minimum-image displacement vector (Angstrom) from site a to site b."""
        half = self.half_coords(np.asarray([id_a, id_b]))
        delta = (half[1] - half[0]).astype(np.float64)
        span = 2.0 * self._dims.astype(np.float64)
        delta -= span * np.round(delta / span)
        return delta * (self.a / 2.0)

    # ------------------------------------------------------------------
    # Occupancy manipulation
    # ------------------------------------------------------------------
    def species_of(self, ids: np.ndarray) -> np.ndarray:
        """Species codes of the given site indices."""
        return self.occupancy[np.asarray(ids, dtype=np.int64)]

    def set_species(self, ids: np.ndarray, species: np.ndarray | int) -> None:
        """Assign species codes to sites."""
        self.occupancy[np.asarray(ids, dtype=np.int64)] = species

    def swap(self, id_a: int, id_b: int) -> None:
        """Exchange the occupants of two sites (one vacancy-hop event)."""
        occ = self.occupancy
        occ[id_a], occ[id_b] = occ[id_b], occ[id_a]

    def species_counts(self) -> np.ndarray:
        """Counts per species code (vacancy last)."""
        n = self.vacancy_code + 1
        return np.bincount(self.occupancy, minlength=n)[:n]

    def sites_of_species(self, species: int) -> np.ndarray:
        """Flat indices of all sites holding the given species."""
        return np.flatnonzero(self.occupancy == species)

    @property
    def vacancy_ids(self) -> np.ndarray:
        """Flat indices of all vacancies."""
        return self.sites_of_species(self.vacancy_code)

    # ------------------------------------------------------------------
    # Initialisation helpers
    # ------------------------------------------------------------------
    def randomize_alloy(
        self,
        rng: np.random.Generator,
        cu_fraction: float,
        vacancy_fraction: float,
        min_vacancies: int = 1,
    ) -> None:
        """Populate a random Fe-Cu solid solution with dilute vacancies.

        ``cu_fraction`` and ``vacancy_fraction`` are site fractions; the paper
        uses 1.34 at.% Cu and 8e-4 at.% vacancies.  At least ``min_vacancies``
        vacancies are placed so that small test boxes still evolve.
        """
        if not 0.0 <= cu_fraction <= 1.0:
            raise ValueError(f"cu_fraction out of range: {cu_fraction!r}")
        if not 0.0 <= vacancy_fraction <= 1.0:
            raise ValueError(f"vacancy_fraction out of range: {vacancy_fraction!r}")
        self.randomize_multicomponent(
            rng, {CU: cu_fraction}, vacancy_fraction, min_vacancies
        )

    def randomize_multicomponent(
        self,
        rng: np.random.Generator,
        solute_fractions: dict,
        vacancy_fraction: float,
        min_vacancies: int = 1,
    ) -> None:
        """Random solid solution with several solute species.

        ``solute_fractions`` maps species codes (1 .. n_elements-1) to site
        fractions; the remainder is the host (Fe).  Vacancies are placed
        with ``self.vacancy_code``.
        """
        n = self.n_sites
        n_vac = max(int(round(vacancy_fraction * n)), int(min_vacancies))
        solute_counts = {
            int(code): int(round(frac * n))
            for code, frac in solute_fractions.items()
        }
        total = n_vac + sum(solute_counts.values())
        if total > n:
            raise ValueError("solute + vacancy fractions exceed the box size")
        for code in solute_counts:
            if not 0 < code < self.vacancy_code:
                raise ValueError(
                    f"solute code {code} outside (0, {self.vacancy_code})"
                )
        self.occupancy[:] = FE
        chosen = rng.choice(n, size=total, replace=False)
        start = 0
        for code, count in solute_counts.items():
            self.occupancy[chosen[start : start + count]] = code
            start += count
        self.occupancy[chosen[start:]] = self.vacancy_code

    def place_species(self, ids: Iterable[int], species: int) -> None:
        """Place a species on specific sites (test/construction helper)."""
        for sid in ids:
            self.occupancy[int(sid)] = species

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    def concentration(self, species: int) -> float:
        """Site fraction of a species."""
        return float(self.species_counts()[species]) / self.n_sites

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        nfe, ncu, nvac = self.species_counts()
        return (
            f"LatticeState(shape={self.shape}, a={self.a}, "
            f"Fe={nfe}, Cu={ncu}, vac={nvac})"
        )
