"""Site indexing schemes for a padded (local + ghost) domain window.

OpenKMC resolves a site's storage index via a dense ``POS_ID`` lookup array
covering the whole padded window, which wastes memory and bandwidth (paper
Fig. 5).  TensorKMC replaces it with *direct computation* (paper Eq. 4): sites
are stored with all local sites first and all ghost sites after, and the index
of a site at traversal position ``t`` is derived from the number of ghost
sites preceding ``t``::

    index = N + nghost(x, y, z)        if (x, y, z) is a ghost site
    index = ID(x, y, z) - nghost(...)  otherwise

where ``ID`` is the row-major traversal id over the padded window and ``N`` is
the number of local sites.  Both schemes are implemented here with identical
semantics so they can be validated against each other and compared for memory
cost (Table 1) and speed (ablation bench).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = ["PaddedWindow", "DirectIndexer", "PosIdIndexer"]


@dataclass(frozen=True)
class PaddedWindow:
    """Geometry of a rank's padded domain window.

    The window covers ``(2, px, py, pz)`` BCC sites in padded cell coordinates
    where ``px = nx + 2 * ghost`` etc.; the *local* (inner) cells occupy the
    box ``[ghost, ghost + n)`` along each axis.
    """

    local_shape: Tuple[int, int, int]
    ghost: int

    def __post_init__(self) -> None:
        if self.ghost < 0:
            raise ValueError(f"ghost width must be >= 0, got {self.ghost!r}")
        if min(self.local_shape) < 1:
            raise ValueError(f"local shape must be positive, got {self.local_shape!r}")

    @property
    def padded_shape(self) -> Tuple[int, int, int]:
        g2 = 2 * self.ghost
        nx, ny, nz = self.local_shape
        return (nx + g2, ny + g2, nz + g2)

    @property
    def n_local_sites(self) -> int:
        nx, ny, nz = self.local_shape
        return 2 * nx * ny * nz

    @property
    def n_padded_sites(self) -> int:
        px, py, pz = self.padded_shape
        return 2 * px * py * pz

    @property
    def n_ghost_sites(self) -> int:
        return self.n_padded_sites - self.n_local_sites

    def is_local(self, i: np.ndarray, j: np.ndarray, k: np.ndarray) -> np.ndarray:
        """Whether padded cell coordinates fall in the local (inner) box."""
        g = self.ghost
        nx, ny, nz = self.local_shape
        return (
            (i >= g) & (i < g + nx)
            & (j >= g) & (j < g + ny)
            & (k >= g) & (k < g + nz)
        )

    def traversal_id(self, s: np.ndarray, i: np.ndarray, j: np.ndarray, k: np.ndarray) -> np.ndarray:
        """Row-major traversal id over the padded window (``ID(x, y, z)``)."""
        px, py, pz = self.padded_shape
        return ((np.asarray(s, dtype=np.int64) * px + i) * py + j) * pz + k


class DirectIndexer:
    """Eq. 4 direct index computation — no lookup array at all.

    The only state kept is the window geometry; ``nghost`` is evaluated in
    closed form by counting inner sites inside a row-major prefix of the
    padded box.
    """

    def __init__(self, window: PaddedWindow) -> None:
        self.window = window

    @property
    def memory_bytes(self) -> int:
        """Auxiliary lookup memory: zero, the defining advantage of Eq. 4."""
        return 0

    def _inner_before(
        self, s: np.ndarray, i: np.ndarray, j: np.ndarray, k: np.ndarray
    ) -> np.ndarray:
        """Number of *local* sites with traversal id strictly before (s,i,j,k)."""
        w = self.window
        g = w.ghost
        nx, ny, nz = w.local_shape
        s = np.asarray(s, dtype=np.int64)
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        k = np.asarray(k, dtype=np.int64)
        per_sub = nx * ny * nz
        count = s * per_sub
        full_i = np.clip(i - g, 0, nx)
        count = count + full_i * (ny * nz)
        i_inner = (i >= g) & (i < g + nx)
        full_j = np.where(i_inner, np.clip(j - g, 0, ny), 0)
        count = count + full_j * nz
        j_inner = i_inner & (j >= g) & (j < g + ny)
        full_k = np.where(j_inner, np.clip(k - g, 0, nz), 0)
        return count + full_k

    def index_of(
        self, s: np.ndarray, i: np.ndarray, j: np.ndarray, k: np.ndarray
    ) -> np.ndarray:
        """Storage indices (local-first layout) for padded coordinates."""
        w = self.window
        s = np.asarray(s, dtype=np.int64)
        i = np.asarray(i, dtype=np.int64)
        j = np.asarray(j, dtype=np.int64)
        k = np.asarray(k, dtype=np.int64)
        t = w.traversal_id(s, i, j, k)
        inner_before = self._inner_before(s, i, j, k)
        nghost = t - inner_before
        local = w.is_local(i, j, k)
        return np.where(local, inner_before, w.n_local_sites + nghost)


class PosIdIndexer:
    """OpenKMC-style dense ``POS_ID`` lookup array over the padded window.

    Functionally identical to :class:`DirectIndexer`, but materialises the
    whole mapping in memory — this is the array whose cost Table 1 reports.
    """

    def __init__(self, window: PaddedWindow) -> None:
        self.window = window
        px, py, pz = window.padded_shape
        s, i, j, k = np.meshgrid(
            np.arange(2, dtype=np.int64),
            np.arange(px, dtype=np.int64),
            np.arange(py, dtype=np.int64),
            np.arange(pz, dtype=np.int64),
            indexing="ij",
        )
        direct = DirectIndexer(window)
        self.pos_id = direct.index_of(s, i, j, k).reshape(2, px, py, pz)

    @property
    def memory_bytes(self) -> int:
        """Bytes held by the POS_ID lookup array."""
        return int(self.pos_id.nbytes)

    def index_of(
        self, s: np.ndarray, i: np.ndarray, j: np.ndarray, k: np.ndarray
    ) -> np.ndarray:
        """Storage indices via table lookup."""
        return self.pos_id[s, i, j, k]
