"""Body-centred-cubic lattice geometry.

A BCC lattice is represented as two interpenetrating simple-cubic sublattices:
sublattice 0 sits at integer cell corners ``(i, j, k) * a`` and sublattice 1 at
body centres ``(i + 1/2, j + 1/2, k + 1/2) * a``.  Internally all displacement
arithmetic uses *half-unit* integer coordinates (units of ``a / 2``): a site on
sublattice ``s`` in cell ``(i, j, k)`` has half-coordinates
``(2 i + s, 2 j + s, 2 k + s)``.  A half-unit vector connects two valid BCC
sites iff its three components share parity: all-even offsets stay on the same
sublattice, all-odd offsets cross to the other one.

This module is purely geometric; occupancy lives in
:mod:`repro.lattice.occupancy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..constants import LATTICE_CONSTANT

__all__ = ["BCCGeometry", "NeighborShells", "first_nn_offsets"]


def first_nn_offsets() -> np.ndarray:
    """The eight first-nearest-neighbour half-unit offsets ``(+-1, +-1, +-1)``.

    In a BCC lattice every site has exactly eight 1NN sites at distance
    ``sqrt(3)/2 * a``; these are the only legal vacancy-hop directions in the
    AKMC model (paper Sec. 2.1).
    """
    signs = np.array([-1, 1], dtype=np.int64)
    grid = np.stack(np.meshgrid(signs, signs, signs, indexing="ij"), axis=-1)
    return grid.reshape(8, 3)


@dataclass(frozen=True)
class NeighborShells:
    """Neighbour shells of a BCC site within a Euclidean cutoff.

    Attributes
    ----------
    offsets:
        ``(n, 3)`` int64 array of half-unit offsets, sorted by distance then
        lexicographically, excluding the origin.
    distances:
        ``(n,)`` float64 array of Euclidean distances in Angstrom, aligned with
        ``offsets``.
    shell_index:
        ``(n,)`` int64 array mapping each offset to its shell (0 = 1NN shell).
    shell_distances:
        ``(n_shells,)`` float64 array with the distance of each shell.
    shell_counts:
        ``(n_shells,)`` int64 array with the multiplicity of each shell.
    """

    offsets: np.ndarray
    distances: np.ndarray
    shell_index: np.ndarray
    shell_distances: np.ndarray
    shell_counts: np.ndarray

    @property
    def n_sites(self) -> int:
        """Number of neighbour sites within the cutoff."""
        return int(self.offsets.shape[0])

    @property
    def n_shells(self) -> int:
        """Number of distinct neighbour shells within the cutoff."""
        return int(self.shell_distances.shape[0])


class BCCGeometry:
    """Stateless BCC geometry helper for a given lattice constant.

    Parameters
    ----------
    a:
        Cubic lattice constant in Angstrom.  Defaults to the paper's
        2.87 Angstrom for Fe.
    """

    def __init__(self, a: float = LATTICE_CONSTANT) -> None:
        if a <= 0:
            raise ValueError(f"lattice constant must be positive, got {a!r}")
        self.a = float(a)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BCCGeometry(a={self.a})"

    def half_unit(self) -> float:
        """Length of one half-unit in Angstrom (``a / 2``)."""
        return self.a / 2.0

    def offset_distance(self, offsets: np.ndarray) -> np.ndarray:
        """Euclidean length in Angstrom of half-unit offset vectors."""
        offsets = np.asarray(offsets, dtype=np.float64)
        return self.half_unit() * np.sqrt(np.sum(offsets * offsets, axis=-1))

    def shells_within(self, rcut: float) -> NeighborShells:
        """Enumerate all neighbour sites within ``rcut`` Angstrom of a site.

        The enumeration walks half-unit vectors with matching component parity
        (the BCC validity condition) inside the bounding cube and filters by
        Euclidean distance.  For the paper's standard cutoff of 6.5 Angstrom at
        ``a = 2.87`` this yields exactly 112 sites in 8 shells (Sec. 4.1.1).
        """
        if rcut <= 0:
            raise ValueError(f"rcut must be positive, got {rcut!r}")
        max_half = int(np.floor(2.0 * rcut / self.a))
        rng = np.arange(-max_half, max_half + 1, dtype=np.int64)
        grid = np.stack(np.meshgrid(rng, rng, rng, indexing="ij"), axis=-1)
        cand = grid.reshape(-1, 3)
        parity = cand & 1
        same_parity = (parity[:, 0] == parity[:, 1]) & (parity[:, 1] == parity[:, 2])
        nonzero = np.any(cand != 0, axis=1)
        cand = cand[same_parity & nonzero]
        dist = self.offset_distance(cand)
        keep = dist <= rcut + 1e-9
        cand = cand[keep]
        dist = dist[keep]
        order = np.lexsort((cand[:, 2], cand[:, 1], cand[:, 0], dist))
        cand = cand[order]
        dist = dist[order]
        # Group into shells by distance (discrete on a rigid lattice).
        shell_distances, shell_index = _group_shells(dist)
        shell_counts = np.bincount(shell_index, minlength=shell_distances.shape[0])
        return NeighborShells(
            offsets=cand,
            distances=dist,
            shell_index=shell_index,
            shell_distances=shell_distances,
            shell_counts=shell_counts.astype(np.int64),
        )

    def shell_table(self, rcut: float) -> List[Tuple[float, int]]:
        """Convenience list of ``(distance, multiplicity)`` per shell."""
        shells = self.shells_within(rcut)
        return [
            (float(d), int(c))
            for d, c in zip(shells.shell_distances, shells.shell_counts)
        ]


def _group_shells(sorted_distances: np.ndarray, tol: float = 1e-8) -> Tuple[np.ndarray, np.ndarray]:
    """Group sorted distances into discrete shells within a tolerance."""
    if sorted_distances.size == 0:
        return np.empty(0, dtype=np.float64), np.empty(0, dtype=np.int64)
    boundaries = np.diff(sorted_distances) > tol
    shell_index = np.concatenate(([0], np.cumsum(boundaries))).astype(np.int64)
    n_shells = int(shell_index[-1]) + 1
    shell_distances = np.empty(n_shells, dtype=np.float64)
    for s in range(n_shells):
        shell_distances[s] = sorted_distances[shell_index == s].mean()
    return shell_distances, shell_index
