"""Vacancy cache: invalidation semantics and statistics."""

import numpy as np
import pytest

from repro.core.vacancy_cache import CachedVacancySystem, VacancyCache
from repro.core.vacancy_system import StateEnergies
from repro.lattice import LatticeState


def _entry(site):
    return CachedVacancySystem(
        site=site,
        vet_ids=np.arange(10, dtype=np.int64),
        vet=np.zeros(10, dtype=np.uint8),
        energies=StateEnergies(
            initial=0.0,
            delta=np.zeros(8),
            valid=np.ones(8, dtype=bool),
            migrating_species=np.zeros(8, dtype=np.uint8),
        ),
        rates=np.ones(8),
    )


@pytest.fixture()
def lattice():
    return LatticeState((10, 10, 10))


class TestBasics:
    def test_slots_follow_input_order(self):
        cache = VacancyCache([5, 2, 9])
        assert [cache.slot_site(i) for i in range(3)] == [5, 2, 9]

    def test_total_rate(self):
        e = _entry(3)
        assert e.total_rate == 8.0

    def test_move_invalidates(self):
        cache = VacancyCache([5])
        cache.store(0, _entry(5))
        cache.move(0, 7)
        assert cache.slot_site(0) == 7
        assert cache.get(0) is None

    def test_stale_slots(self):
        cache = VacancyCache([1, 2, 3])
        cache.store(1, _entry(2))
        assert cache.stale_slots() == [0, 2]

    def test_invalidate_all(self):
        cache = VacancyCache([1, 2])
        cache.store(0, _entry(1))
        cache.store(1, _entry(2))
        cache.invalidate_all()
        assert cache.stale_slots() == [0, 1]
        assert cache.stats.invalidations == 2


class TestDistanceInvalidation:
    def test_nearby_change_invalidates(self, lattice):
        center = lattice.site_id(0, 5, 5, 5)
        near = lattice.site_id(0, 5, 5, 6)  # one cell away (= a)
        cache = VacancyCache([center])
        cache.store(0, _entry(center))
        cache.invalidate_near([near], lattice, radius=lattice.a + 0.1)
        assert cache.get(0) is None

    def test_far_change_preserved(self, lattice):
        center = lattice.site_id(0, 5, 5, 5)
        far = lattice.site_id(0, 0, 0, 0)
        cache = VacancyCache([center])
        cache.store(0, _entry(center))
        cache.invalidate_near([far], lattice, radius=lattice.a)
        assert cache.get(0) is not None

    def test_periodic_distance_used(self, lattice):
        """A change across the periodic boundary still invalidates."""
        center = lattice.site_id(0, 0, 0, 0)
        wrapped = lattice.site_id(0, 9, 0, 0)  # distance a through the wrap
        cache = VacancyCache([center])
        cache.store(0, _entry(center))
        cache.invalidate_near([wrapped], lattice, radius=lattice.a + 0.1)
        assert cache.get(0) is None

    def test_empty_changes_noop(self, lattice):
        cache = VacancyCache([0])
        cache.store(0, _entry(0))
        cache.invalidate_near([], lattice, radius=10.0)
        assert cache.get(0) is not None


class TestStats:
    def test_hit_rate(self):
        cache = VacancyCache([0, 1])
        cache.store(0, _entry(0))
        cache.mark_reused(0)
        cache.mark_reused(0)
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_memory_bytes_counts_live_entries(self):
        cache = VacancyCache([0, 1])
        assert cache.memory_bytes() == 0
        cache.store(0, _entry(0))
        one = cache.memory_bytes()
        cache.store(1, _entry(1))
        assert cache.memory_bytes() == 2 * one

    def test_summary_keys(self):
        cache = VacancyCache([0])
        summary = cache.summary()
        assert {"n_slots", "live_entries", "hit_rate", "memory_bytes"} <= set(summary)
