"""Sunway machine model: spec invariants, cost ledger, roofline (Fig. 9)."""

import numpy as np
import pytest

from repro.constants import PAPER_CHANNELS
from repro.sunway import (
    EPYC_7452,
    SW26010_PRO,
    CostLedger,
    analyse_network,
    charge_batched_rate_eval,
    layer_flops,
)


class TestSpec:
    def test_ridge_point_matches_paper(self):
        """The paper's roofline quotes a 43.63 FLOPs/Byte balance point."""
        assert SW26010_PRO.ridge_point == pytest.approx(43.63, rel=0.01)

    def test_cpe_cluster_shape(self):
        assert SW26010_PRO.n_cpes == 64
        assert SW26010_PRO.ldm_bytes == 256 * 1024

    def test_peak_aggregates_cpes(self):
        assert SW26010_PRO.peak_flops_sp == pytest.approx(
            64 * SW26010_PRO.cpe_peak_flops
        )

    def test_x86_is_gather_friendlier(self):
        assert EPYC_7452.random_bandwidth > SW26010_PRO.mpe_random_bandwidth


class TestCostLedger:
    def test_compute_time_simd(self):
        ledger = CostLedger(SW26010_PRO)
        ledger.add_simd(SW26010_PRO.peak_flops_sp)  # one second at peak
        ledger.simd_efficiency = 1.0
        assert ledger.compute_time == pytest.approx(1.0)

    def test_efficiency_scales_time(self):
        ledger = CostLedger(SW26010_PRO)
        ledger.add_simd(1e12)
        ledger.simd_efficiency = 0.5
        assert ledger.compute_time == pytest.approx(
            2e12 / SW26010_PRO.peak_flops_sp
        )

    def test_memory_time_includes_latency(self):
        ledger = CostLedger(SW26010_PRO)
        ledger.add_dma(SW26010_PRO.mem_bandwidth, transactions=3)
        expected = 1.0 + 3 * SW26010_PRO.dma_latency
        assert ledger.memory_time == pytest.approx(expected)

    def test_overlap_vs_serial(self):
        ledger = CostLedger(SW26010_PRO)
        ledger.add_simd(1e9)
        ledger.add_dma(1e8)
        assert ledger.overlapped_time() == pytest.approx(
            max(ledger.compute_time, ledger.memory_time)
        )
        assert ledger.serial_time() == pytest.approx(
            ledger.compute_time + ledger.memory_time
        )

    def test_arithmetic_intensity(self):
        ledger = CostLedger(SW26010_PRO)
        ledger.add_simd(100.0)
        ledger.add_dma(50.0)
        assert ledger.arithmetic_intensity == pytest.approx(2.0)

    def test_merge(self):
        a = CostLedger(SW26010_PRO)
        b = CostLedger(SW26010_PRO)
        a.add_simd(10)
        b.add_simd(5)
        b.add_rma(100, transactions=2)
        a.merge(b)
        assert a.simd_flops == 15
        assert a.rma_bytes == 100
        assert a.rma_transactions == 2

    def test_merge_accumulates_notes(self):
        a = CostLedger(SW26010_PRO)
        b = CostLedger(SW26010_PRO)
        a.notes["rate_eval_vets"] = 3.0
        b.notes["rate_eval_vets"] = 4.0
        b.notes["n_blocks"] = 2.0
        a.merge(b)
        assert a.notes == {"rate_eval_vets": 7.0, "n_blocks": 2.0}


class TestChargeBatchedRateEval:
    """Fig. 9 applied to the miss path: fused batching beats per-VET launches."""

    KW = dict(
        n_vets=128, n_states=9, n_region=59, n_local=14,
        channels=(64, 128, 128, 1),
    )

    def _pair(self):
        fused = charge_batched_rate_eval(
            CostLedger(SW26010_PRO), fused=True, **self.KW
        )
        unfused = charge_batched_rate_eval(
            CostLedger(SW26010_PRO), fused=False, **self.KW
        )
        return fused, unfused

    def test_fused_ai_exceeds_unfused(self):
        fused, unfused = self._pair()
        assert fused.arithmetic_intensity > unfused.arithmetic_intensity
        assert fused.total_flops == unfused.total_flops  # same arithmetic

    def test_fused_has_fewer_transactions_and_is_faster(self):
        fused, unfused = self._pair()
        assert fused.dma_transactions < unfused.dma_transactions
        assert fused.overlapped_time() < unfused.serial_time()

    def test_transactions_scale_with_n_vets_only_unfused(self):
        small = charge_batched_rate_eval(
            CostLedger(SW26010_PRO), fused=False,
            **{**self.KW, "n_vets": 8},
        )
        big = charge_batched_rate_eval(
            CostLedger(SW26010_PRO), fused=False, **self.KW
        )
        assert big.dma_transactions == 16 * small.dma_transactions
        f_small = charge_batched_rate_eval(
            CostLedger(SW26010_PRO), fused=True,
            **{**self.KW, "n_vets": 8},
        )
        f_big = charge_batched_rate_eval(
            CostLedger(SW26010_PRO), fused=True, **self.KW
        )
        assert f_big.dma_transactions == f_small.dma_transactions

    def test_accumulates_notes(self):
        ledger = CostLedger(SW26010_PRO)
        charge_batched_rate_eval(ledger, **self.KW)
        charge_batched_rate_eval(ledger, **{**self.KW, "n_vets": 2})
        assert ledger.notes["rate_eval_vets"] == 130.0
        assert ledger.notes["rate_eval_rows"] == 130.0 * 9 * 59

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            charge_batched_rate_eval(
                CostLedger(SW26010_PRO), **{**self.KW, "n_vets": -1}
            )
        with pytest.raises(ValueError):
            charge_batched_rate_eval(
                CostLedger(SW26010_PRO), **{**self.KW, "channels": (64,)}
            )


class TestRooflineFig9:
    @pytest.fixture(scope="class")
    def analysis(self):
        return analyse_network(32 * 16 * 16, PAPER_CHANNELS, SW26010_PRO)

    def test_layer_flops(self):
        assert layer_flops(10, 4, 8) == 2 * 10 * 4 * 8 + 2 * 10 * 8

    def test_per_layer_ai_spans_paper_range(self, analysis):
        """Paper: per-layer AI from 0.48 to 21.3 — all below the ridge."""
        ais = analysis.per_layer_ai
        assert min(ais) == pytest.approx(0.5, abs=0.1)  # paper 0.48
        assert max(ais) < SW26010_PRO.ridge_point

    def test_original_is_memory_bound(self, analysis):
        assert analysis.original_bound == "memory"

    def test_fused_is_compute_bound(self, analysis):
        """Paper: big-fusion AI ~509 >> ridge 43.6 -> compute bound."""
        assert analysis.fused_ai > SW26010_PRO.ridge_point
        assert analysis.fused_bound == "compute"
        assert analysis.fused_ai > 300.0

    def test_traffic_reduction(self, analysis):
        """Paper: 56 MB -> 2 MB; ours: ~32 MB -> ~2.1 MB (fewer passes
        counted), a >10x reduction either way."""
        assert analysis.fused_bytes == pytest.approx(2.13e6, rel=0.05)
        assert analysis.original_total_bytes / analysis.fused_bytes > 10.0

    def test_attainable_performance(self, analysis):
        low = analysis.attainable(0.5)
        high = analysis.attainable(500.0)
        assert low == pytest.approx(0.5 * SW26010_PRO.mem_bandwidth)
        assert high == SW26010_PRO.peak_flops_sp
