"""EAM potential: analytic derivatives, oracle consistency, alloy physics."""

import numpy as np
import pytest

from repro.constants import CU, FE, VACANCY
from repro.lattice import LatticeState
from repro.potentials import EAMPotential, counts_from_types


def _total_lattice_energy(lattice, potential, shells):
    ids = np.arange(lattice.n_sites)
    half = lattice.half_coords(ids)
    nb = lattice.ids_from_half(half[:, None, :] + shells.offsets[None, :, :])
    counts = counts_from_types(
        lattice.occupancy[nb], shells.shell_index, shells.n_shells
    )
    return potential.region_energy(lattice.occupancy[ids], counts)


@pytest.fixture(scope="module")
def structure():
    rng = np.random.default_rng(3)
    a = 2.87
    pos = []
    for i in range(2):
        for j in range(4):
            for k in range(4):
                pos.append([i * a, j * a, k * a])
                pos.append([(i + 0.5) * a, (j + 0.5) * a, (k + 0.5) * a])
    pos = np.asarray(pos) + rng.normal(0, 0.04, (64, 3))
    spec = rng.choice([FE, CU], size=64, p=[0.85, 0.15])
    cell = np.array([2 * a, 4 * a, 4 * a])
    return pos, spec, cell


class TestRadialFunctions:
    def test_cutoff_vanishes(self, eam_standard):
        assert eam_standard.cutoff_fn(np.array([6.5, 7.0])).max() == 0.0

    def test_cutoff_is_one_at_zero(self, eam_standard):
        assert eam_standard.cutoff_fn(np.array([0.0]))[0] == pytest.approx(1.0)

    def test_pair_phi_symmetric_in_species(self, eam_standard):
        r = np.linspace(2.0, 6.0, 10)
        assert np.allclose(
            eam_standard.pair_phi(r, FE, CU), eam_standard.pair_phi(r, CU, FE)
        )

    def test_pair_phi_deriv_fd(self, eam_standard):
        r = np.linspace(2.0, 6.0, 13)
        h = 1e-6
        fd = (eam_standard.pair_phi(r + h, FE, FE) - eam_standard.pair_phi(r - h, FE, FE)) / (2 * h)
        assert np.allclose(fd, eam_standard.pair_phi_deriv(r, FE, FE), atol=1e-6)

    def test_density_psi_deriv_fd(self, eam_standard):
        r = np.linspace(2.0, 6.0, 13)
        h = 1e-6
        fd = (eam_standard.density_psi(r + h, CU) - eam_standard.density_psi(r - h, CU)) / (2 * h)
        assert np.allclose(fd, eam_standard.density_psi_deriv(r, CU), atol=1e-6)

    def test_embedding_negative(self, eam_standard):
        rho = np.array([0.5, 1.0, 2.0])
        assert np.all(eam_standard.embed_F(rho, np.zeros(3, dtype=int)) < 0)

    def test_shells_beyond_cutoff_rejected(self):
        with pytest.raises(ValueError):
            EAMPotential(np.array([2.0, 7.0]))


class TestOracle:
    def test_forces_match_finite_differences(self, eam_standard, structure):
        pos, spec, cell = structure
        _, forces = eam_standard.energy_and_forces(pos, spec, cell)
        h = 1e-5
        rng = np.random.default_rng(0)
        for idx in rng.choice(len(spec), size=4, replace=False):
            for c in range(3):
                p1, p2 = pos.copy(), pos.copy()
                p1[idx, c] += h
                p2[idx, c] -= h
                e1, _ = eam_standard.energy_and_forces(p1, spec, cell)
                e2, _ = eam_standard.energy_and_forces(p2, spec, cell)
                assert -(e1 - e2) / (2 * h) == pytest.approx(forces[idx, c], abs=1e-6)

    def test_forces_vanish_on_perfect_lattice(self, eam_standard):
        lattice = LatticeState((4, 4, 4))
        pos = lattice.positions(np.arange(lattice.n_sites)).astype(float)
        _, forces = eam_standard.energy_and_forces(
            pos, lattice.occupancy.astype(int), np.array([4 * lattice.a] * 3)
        )
        assert np.abs(forces).max() < 1e-10

    def test_oracle_matches_counts_path_on_lattice(self, eam_standard, tet_standard):
        lattice = LatticeState((4, 4, 4))
        rng = np.random.default_rng(5)
        lattice.occupancy[:] = np.where(rng.random(lattice.n_sites) < 0.1, CU, FE)
        pos = lattice.positions(np.arange(lattice.n_sites)).astype(float)
        e_oracle, _ = eam_standard.energy_and_forces(
            pos, lattice.occupancy.astype(int), np.array([4 * lattice.a] * 3)
        )
        e_counts = _total_lattice_energy(lattice, eam_standard, tet_standard.shells)
        assert e_oracle == pytest.approx(e_counts, abs=1e-9)

    def test_energy_extensive(self, eam_standard):
        small = LatticeState((3, 3, 3))
        big = LatticeState((3, 3, 6))
        for lat in (small, big):
            lat.occupancy[:] = FE
        pos_s = small.positions(np.arange(small.n_sites)).astype(float)
        pos_b = big.positions(np.arange(big.n_sites)).astype(float)
        e_s, _ = eam_standard.energy_and_forces(
            pos_s, small.occupancy.astype(int), np.array([3 * small.a] * 3)
        )
        e_b, _ = eam_standard.energy_and_forces(
            pos_b, big.occupancy.astype(int),
            np.array([3 * big.a, 3 * big.a, 6 * big.a]),
        )
        assert 2 * e_s == pytest.approx(e_b, rel=1e-10)


class TestAlloyPhysics:
    def test_cu_clustering_is_favorable(self, eam_standard, tet_standard):
        """The demixing driving force behind Fig. 14's precipitation."""
        shells = tet_standard.shells
        base = LatticeState((6, 6, 6))
        base.occupancy[:] = FE
        dispersed = base.copy()
        for cell in [(0, 0, 0), (3, 0, 0), (0, 3, 0), (0, 0, 3),
                     (3, 3, 0), (3, 0, 3), (0, 3, 3), (3, 3, 3)]:
            dispersed.occupancy[dispersed.site_id(0, *cell)] = CU
        clustered = base.copy()
        for site in [(0, 0, 0, 0), (0, 1, 0, 0), (0, 0, 1, 0), (0, 1, 1, 0),
                     (1, 0, 0, 0), (1, 1, 0, 0), (1, 0, 1, 0), (1, 1, 1, 0)]:
            clustered.occupancy[clustered.site_id(*site)] = CU
        e_disp = _total_lattice_energy(dispersed, eam_standard, shells)
        e_clus = _total_lattice_energy(clustered, eam_standard, shells)
        assert e_clus < e_disp

    def test_vacancy_site_energy_is_zero(self, eam_small, tet_small):
        counts = np.zeros((1, tet_small.n_shells, 2), dtype=np.float32)
        counts[0, 0, 0] = 8
        e = eam_small.energies_from_counts(np.array([VACANCY]), counts)
        assert e[0] == 0.0

    def test_counts_energy_monotone_in_coordination(self, eam_small, tet_small):
        """Removing neighbours (toward a free atom) raises the energy."""
        full = np.zeros((1, tet_small.n_shells, 2), dtype=np.float32)
        full[0, 0, 0] = 8
        full[0, 1, 0] = 6
        fewer = full.copy()
        fewer[0, 0, 0] = 4
        e_full = eam_small.energies_from_counts(np.array([FE]), full)
        e_fewer = eam_small.energies_from_counts(np.array([FE]), fewer)
        assert e_full[0] < e_fewer[0]
