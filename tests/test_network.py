"""Atomistic network: forward semantics, backprop gradients, input gradient."""

import numpy as np
import pytest

from repro.nnp.network import AtomicNetwork, ElementNetworks


@pytest.fixture()
def net():
    return AtomicNetwork((6, 8, 5, 1), np.random.default_rng(0), dtype=np.float64)


class TestForward:
    def test_output_shape(self, net):
        x = np.random.default_rng(1).standard_normal((7, 6))
        assert net.forward(x).shape == (7,)

    def test_relu_not_applied_to_output(self):
        """Outputs can be negative (no ReLU on the last layer)."""
        rng = np.random.default_rng(2)
        net = AtomicNetwork((4, 8, 1), rng)
        x = rng.standard_normal((200, 4)).astype(np.float32)
        assert net.forward(x).min() < 0

    def test_forward_cached_matches_forward(self, net):
        x = np.random.default_rng(3).standard_normal((5, 6))
        out, cache = net.forward_cached(x)
        assert np.allclose(out, net.forward(x))
        assert len(cache) == net.n_layers + 1

    def test_invalid_channels(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            AtomicNetwork((4,), rng)
        with pytest.raises(ValueError):
            AtomicNetwork((4, 8, 2), rng)  # output must be 1

    def test_n_parameters(self, net):
        expected = 6 * 8 + 8 + 8 * 5 + 5 + 5 * 1 + 1
        assert net.n_parameters == expected


class TestBackward:
    def test_weight_gradients_match_fd(self, net):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((9, 6))
        target = rng.standard_normal(9)

        def loss():
            return 0.5 * np.sum((net.forward(x) - target) ** 2)

        out, cache = net.forward_cached(x)
        gw, gb, _ = net.backward(out - target, cache)
        h = 1e-6
        for layer in range(net.n_layers):
            w = net.weights[layer]
            for idx in [(0, 0), (w.shape[0] - 1, w.shape[1] - 1)]:
                w[idx] += h
                up = loss()
                w[idx] -= 2 * h
                down = loss()
                w[idx] += h
                assert (up - down) / (2 * h) == pytest.approx(
                    gw[layer][idx], rel=1e-4, abs=1e-6
                )
            b = net.biases[layer]
            b[0] += h
            up = loss()
            b[0] -= 2 * h
            down = loss()
            b[0] += h
            assert (up - down) / (2 * h) == pytest.approx(
                gb[layer][0], rel=1e-4, abs=1e-6
            )

    def test_input_gradient_matches_fd(self, net):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((4, 6))
        grad = net.input_gradient(x)
        h = 1e-6
        for i in (0, 3):
            for c in (0, 5):
                xp, xm = x.copy(), x.copy()
                xp[i, c] += h
                xm[i, c] -= h
                fd = (net.forward(xp)[i] - net.forward(xm)[i]) / (2 * h)
                assert fd == pytest.approx(grad[i, c], rel=1e-4, abs=1e-7)

    def test_backward_grad_input_consistent(self, net):
        """grad_input from backward(ones) equals input_gradient."""
        rng = np.random.default_rng(6)
        x = rng.standard_normal((5, 6))
        _, cache = net.forward_cached(x)
        _, _, grad_in = net.backward(np.ones(5), cache)
        assert np.allclose(grad_in, net.input_gradient(x), atol=1e-12)


class TestParameterIO:
    def test_roundtrip(self, net):
        params = [p.copy() for p in net.get_parameters()]
        for p in net.get_parameters():
            p += 1.0
        net.set_parameters(params)
        for a, b in zip(net.get_parameters(), params):
            assert np.array_equal(a, b)

    def test_length_checked(self, net):
        with pytest.raises(ValueError):
            net.set_parameters([np.zeros(1)])


class TestElementNetworks:
    def test_routing_by_species(self):
        rng = np.random.default_rng(7)
        nets = ElementNetworks((4, 6, 1), rng, dtype=np.float64)
        x = rng.standard_normal((10, 4))
        species = np.array([0, 1] * 5)
        out = nets.forward(x, species)
        for e in (0, 1):
            mask = species == e
            assert np.allclose(out[mask], nets.nets[e].forward(x[mask]))

    def test_input_gradient_routing(self):
        rng = np.random.default_rng(8)
        nets = ElementNetworks((4, 6, 1), rng, dtype=np.float64)
        x = rng.standard_normal((6, 4))
        species = np.array([0, 0, 1, 1, 0, 1])
        grads = nets.input_gradient(x, species)
        for e in (0, 1):
            mask = species == e
            assert np.allclose(grads[mask], nets.nets[e].input_gradient(x[mask]))

    def test_distinct_networks_per_element(self):
        nets = ElementNetworks((4, 6, 1), np.random.default_rng(9))
        x = np.random.default_rng(10).standard_normal((3, 4)).astype(np.float32)
        out_fe = nets.nets[0].forward(x)
        out_cu = nets.nets[1].forward(x)
        assert not np.allclose(out_fe, out_cu)


class TestForwardBigFusion:
    def test_matches_plain_forward(self):
        rng = np.random.default_rng(12)
        nets = ElementNetworks((8, 16, 1), rng)
        x = rng.standard_normal((40, 8)).astype(np.float32)
        species = rng.integers(0, 2, size=40)
        fused = nets.forward_big_fusion(x, species)
        assert np.allclose(fused, nets.forward(x, species), atol=1e-6)

    def test_charges_ledger_and_caches_fusers(self):
        from repro.sunway import SW26010_PRO, CostLedger

        rng = np.random.default_rng(13)
        nets = ElementNetworks((8, 16, 1), rng)
        x = rng.standard_normal((20, 8)).astype(np.float32)
        species = rng.integers(0, 2, size=20)
        ledger = CostLedger(SW26010_PRO)
        nets.forward_big_fusion(x, species, ledger=ledger)
        assert ledger.simd_flops > 0
        assert ledger.dma_bytes > 0
        assert ledger.rma_bytes > 0
        assert len(nets._fusers) == 2  # one cached operator per element
        nets.forward_big_fusion(x, species)
        assert len(nets._fusers) == 2

    def test_tracks_in_place_weight_updates(self):
        rng = np.random.default_rng(14)
        nets = ElementNetworks((8, 16, 1), rng)
        x = rng.standard_normal((10, 8)).astype(np.float32)
        species = np.zeros(10, dtype=np.int64)
        before = nets.forward_big_fusion(x, species).copy()
        net = nets.nets[0]
        net.set_parameters([p * 0.5 for p in net.get_parameters()])
        after = nets.forward_big_fusion(x, species)
        assert not np.allclose(before, after)
        assert np.allclose(after, nets.forward(x, species), atol=1e-6)
