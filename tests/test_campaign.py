"""Cross-replica campaign: shared batched evaluation, bit-identity, swaps.

The contract under test is the strongest one the campaign makes: funneling
R replicas' stale rows into one fused ``evaluate_batch`` call per round
changes *when and where* rows are evaluated but never their values, so each
replica's fixed-seed trajectory — occupancy digest, clock, and event count —
is bit-identical to running that replica solo.  Hot swaps (completed or
frozen replicas replaced by queued specs mid-campaign) must not perturb
anyone else's trajectory either.
"""

import numpy as np
import pytest

from repro.campaign import (
    ReplicaCampaign,
    ReplicaSpec,
    alloy_engine_factory,
    occupancy_digest,
    seed_sweep,
    temperature_ladder,
)
from repro.constants import VACANCY
from repro.core.engine import TensorKMCEngine
from repro.lattice import LatticeState
from repro.potentials import EAMPotential


def _factory(pot, tet, box=8):
    return alloy_engine_factory(
        box, pot, tet, cu_fraction=0.05, vacancy_fraction=0.004
    )


def _solo_reference(factory, spec):
    """(executed, time, digest) of the spec run through a lone engine."""
    engine = factory(spec)
    executed = engine.run(n_steps=spec.n_steps, on_no_moves="stop")
    return executed, engine.time, occupancy_digest(engine.lattice)


def _assert_matches_solo(results, factory):
    for r in results:
        executed, time, digest = _solo_reference(factory, r.spec)
        assert r.executed == executed
        assert r.time == time  # exact float equality, not approx
        assert r.digest == digest


# ----------------------------------------------------------------------
# Spec construction
# ----------------------------------------------------------------------
class TestSpecs:
    def test_seed_sweep_names_and_seeds(self):
        specs = seed_sweep([3, 9], n_steps=5, temperature=800.0)
        assert [s.name for s in specs] == ["seed3", "seed9"]
        assert [s.seed for s in specs] == [3, 9]
        assert all(s.temperature == 800.0 and s.n_steps == 5 for s in specs)

    def test_temperature_ladder_names(self):
        specs = temperature_ladder([700.0, 1100.0], n_steps=4, seed=2)
        assert [s.name for s in specs] == ["T700", "T1100"]
        assert all(s.seed == 2 for s in specs)

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            ReplicaSpec(name="x", seed=0, n_steps=-1)

    def test_duplicate_names_rejected(self, tet_small, eam_small):
        specs = [ReplicaSpec("a", 0), ReplicaSpec("a", 1)]
        with pytest.raises(ValueError, match="unique"):
            ReplicaCampaign(specs, _factory(eam_small, tet_small))

    def test_unknown_mode_rejected(self, tet_small, eam_small):
        with pytest.raises(ValueError, match="mode"):
            ReplicaCampaign(
                seed_sweep([0]), _factory(eam_small, tet_small),
                mode="batched",
            )

    def test_bad_max_in_flight_rejected(self, tet_small, eam_small):
        with pytest.raises(ValueError, match="max_in_flight"):
            ReplicaCampaign(
                seed_sweep([0]), _factory(eam_small, tet_small),
                max_in_flight=0,
            )

    def test_empty_campaign_rejected(self, tet_small, eam_small):
        with pytest.raises(ValueError, match="at least one"):
            ReplicaCampaign([], _factory(eam_small, tet_small))


# ----------------------------------------------------------------------
# Bit-identity of shared batched evaluation
# ----------------------------------------------------------------------
class TestBitIdentity:
    def test_r8_seed_sweep_matches_solo_eam(self, tet_small, eam_small):
        factory = _factory(eam_small, tet_small)
        specs = seed_sweep(range(8), n_steps=25)
        campaign = ReplicaCampaign(specs, factory, mode="shared")
        results = campaign.run()
        assert len(results) == 8
        # The rows really were fused: every round with work issued exactly
        # one shared batch, and the widest batch spans several replicas'
        # cold-start rows at once.
        agg = campaign.summary()
        assert agg["shared_batches"] == agg["rounds"]
        assert agg["max_shared_batch"] > max(
            r.summary["max_batch_size"] for r in results
        )
        _assert_matches_solo(results, factory)

    def test_r8_seed_sweep_matches_solo_nnp(self, tet_small, nnp_small):
        factory = _factory(nnp_small, tet_small)
        specs = seed_sweep(range(8), n_steps=8)
        results = ReplicaCampaign(specs, factory, mode="shared").run()
        _assert_matches_solo(results, factory)

    def test_temperature_ladder_matches_solo(self, tet_small, eam_small):
        # Per-replica rate models: one shared energy batch, different
        # temperatures on the way to rates.
        factory = _factory(eam_small, tet_small)
        specs = temperature_ladder([600.0, 900.0, 1200.0], n_steps=15, seed=4)
        results = ReplicaCampaign(specs, factory, mode="shared").run()
        assert len({r.digest for r in results}) > 1  # ladder actually diverges
        _assert_matches_solo(results, factory)

    def test_sequential_mode_matches_shared(self, tet_small, eam_small):
        factory = _factory(eam_small, tet_small)
        specs = seed_sweep(range(4), n_steps=20)
        shared = ReplicaCampaign(specs, factory, mode="shared").run()
        sequential = ReplicaCampaign(specs, factory, mode="sequential").run()
        assert [r.digest for r in shared] == [r.digest for r in sequential]
        assert [r.time for r in shared] == [r.time for r in sequential]

    def test_replica_summaries_carry_engine_counters(
        self, tet_small, eam_small
    ):
        factory = _factory(eam_small, tet_small)
        results = ReplicaCampaign(
            seed_sweep([0, 1], n_steps=10), factory
        ).run()
        for r in results:
            assert r.summary["steps"] == r.executed
            assert "cache_hits" in r.summary


# ----------------------------------------------------------------------
# Hot swap
# ----------------------------------------------------------------------
class TestHotSwap:
    def test_queue_deeper_than_max_in_flight(self, tet_small, eam_small):
        factory = _factory(eam_small, tet_small)
        specs = seed_sweep(range(6), n_steps=12)
        campaign = ReplicaCampaign(specs, factory, max_in_flight=2)
        results = campaign.run()
        assert campaign.admitted == 6
        # Two in flight for six specs: at least three waves of rounds.
        assert campaign.rounds >= 3 * 12
        _assert_matches_solo(results, factory)

    def test_mixed_budgets_swap_early(self, tet_small, eam_small):
        # Short-budget replicas retire early and later specs take their
        # slots mid-campaign; everyone still matches their solo run.
        factory = _factory(eam_small, tet_small)
        specs = [
            ReplicaSpec("short", seed=0, n_steps=3),
            ReplicaSpec("long", seed=1, n_steps=30),
            ReplicaSpec("late", seed=2, n_steps=10),
        ]
        campaign = ReplicaCampaign(specs, factory, max_in_flight=2)
        results = campaign.run()
        assert [r.spec.name for r in results] == ["short", "long", "late"]
        _assert_matches_solo(results, factory)


# ----------------------------------------------------------------------
# Dead replicas (NoMovesError) are results, not crashes
# ----------------------------------------------------------------------
class TestDeadReplicas:
    def test_frozen_replica_swapped_out(self, tet_small, eam_small):
        base = _factory(eam_small, tet_small)

        def factory(spec):
            if spec.name == "dead":
                lattice = LatticeState((4, 4, 4))
                lattice.occupancy[:] = VACANCY  # zero total propensity
                return TensorKMCEngine(
                    lattice, eam_small, tet_small,
                    temperature=spec.temperature,
                    rng=np.random.default_rng(spec.seed + 1),
                    rebuild_path="full",
                )
            return base(spec)

        specs = [
            ReplicaSpec("dead", seed=7, n_steps=50),
            ReplicaSpec("a", seed=0, n_steps=10),
            ReplicaSpec("b", seed=1, n_steps=10),
        ]
        campaign = ReplicaCampaign(specs, factory, max_in_flight=2)
        results = campaign.run()
        dead = results[0]
        assert dead.frozen and dead.executed == 0
        # The dead slot freed up for "b", and the survivors are untouched.
        assert campaign.admitted == 3
        _assert_matches_solo(results[1:], base)


# ----------------------------------------------------------------------
# Compatibility validation
# ----------------------------------------------------------------------
class TestValidation:
    def test_row_variant_potential_rejected(self, tet_small):
        pot = EAMPotential(tet_small.shell_distances)
        pot.batch_row_invariant = False
        with pytest.raises(ValueError, match="batch_row_invariant"):
            ReplicaCampaign(
                seed_sweep([0], n_steps=1), _factory(pot, tet_small)
            ).run()
        # The same potential is fine sequentially (no shared batches).
        results = ReplicaCampaign(
            seed_sweep([0], n_steps=3), _factory(pot, tet_small),
            mode="sequential",
        ).run()
        assert results[0].executed == 3

    def test_batch_incompatible_replica_rejected(self, tet_small, eam_small):
        other_pot = EAMPotential(tet_small.shell_distances)
        base = _factory(eam_small, tet_small)
        swap = _factory(other_pot, tet_small)

        def factory(spec):
            return swap(spec) if spec.name == "seed1" else base(spec)

        with pytest.raises(ValueError, match="batch-compatible"):
            ReplicaCampaign(seed_sweep([0, 1], n_steps=2), factory).run()
