"""Propensity stores: linear scan vs Fenwick tree equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.propensity import FenwickPropensity, LinearPropensity

values_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=64,
)


def _filled(cls, values):
    store = cls(len(values))
    for i, v in enumerate(values):
        store.update(i, v)
    return store


class TestBasics:
    @pytest.mark.parametrize("cls", [LinearPropensity, FenwickPropensity])
    def test_total(self, cls):
        store = _filled(cls, [1.0, 2.0, 3.0])
        assert store.total == pytest.approx(6.0)

    @pytest.mark.parametrize("cls", [LinearPropensity, FenwickPropensity])
    def test_get_after_update(self, cls):
        store = _filled(cls, [1.0, 2.0, 3.0])
        store.update(1, 5.0)
        assert store.get(1) == 5.0
        assert store.total == pytest.approx(9.0)

    @pytest.mark.parametrize("cls", [LinearPropensity, FenwickPropensity])
    def test_negative_rejected(self, cls):
        store = cls(3)
        with pytest.raises(ValueError):
            store.update(0, -1.0)

    @pytest.mark.parametrize("cls", [LinearPropensity, FenwickPropensity])
    def test_select_bounds_checked(self, cls):
        store = _filled(cls, [1.0, 1.0])
        with pytest.raises(ValueError):
            store.select(2.5)
        with pytest.raises(ValueError):
            store.select(-0.1)

    @pytest.mark.parametrize("cls", [LinearPropensity, FenwickPropensity])
    def test_select_simple(self, cls):
        store = _filled(cls, [1.0, 2.0, 3.0])
        slot, rem = store.select(0.5)
        assert slot == 0 and rem == pytest.approx(0.5)
        slot, rem = store.select(1.5)
        assert slot == 1 and rem == pytest.approx(0.5)
        slot, rem = store.select(5.9)
        assert slot == 2 and rem == pytest.approx(2.9)

    @pytest.mark.parametrize("cls", [LinearPropensity, FenwickPropensity])
    def test_select_skips_zero_slots(self, cls):
        store = _filled(cls, [0.0, 2.0, 0.0, 1.0])
        slot, _ = store.select(0.0)
        assert slot == 1
        slot, _ = store.select(2.5)
        assert slot == 3

    def test_fenwick_resize(self):
        store = FenwickPropensity(3)
        store.update(2, 4.0)
        store.resize(5)
        assert store.total == 0.0
        store.update(4, 1.0)
        assert store.select(0.5)[0] == 4


class TestEquivalence:
    @given(values=values_strategy, fractions=st.lists(
        st.floats(min_value=0.0, max_value=0.999999), min_size=1, max_size=8))
    @settings(max_examples=80, deadline=None)
    def test_tree_matches_linear(self, values, fractions):
        total = sum(values)
        if total <= 0:
            return
        lin = _filled(LinearPropensity, values)
        fen = _filled(FenwickPropensity, values)
        assert fen.total == pytest.approx(lin.total, rel=1e-12)
        for f in fractions:
            u = f * min(lin.total, fen.total)
            if not u < min(lin.total, fen.total):  # denormal rounding edge
                continue
            slot_l, rem_l = lin.select(u)
            slot_f, rem_f = fen.select(u)
            assert slot_l == slot_f
            assert rem_l == pytest.approx(rem_f, abs=1e-6 * max(total, 1.0))

    @given(values=values_strategy, updates=st.lists(
        st.tuples(st.integers(min_value=0, max_value=63),
                  st.floats(min_value=0.0, max_value=1e6)),
        max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_totals_track_under_updates(self, values, updates):
        lin = _filled(LinearPropensity, values)
        fen = _filled(FenwickPropensity, values)
        for slot, v in updates:
            if slot < len(values):
                lin.update(slot, v)
                fen.update(slot, v)
        assert fen.total == pytest.approx(lin.total, rel=1e-9, abs=1e-9)

    def test_statistical_selection_distribution(self):
        """Selections land proportionally to the weights."""
        rng = np.random.default_rng(0)
        weights = np.array([1.0, 0.0, 3.0, 6.0])
        fen = _filled(FenwickPropensity, list(weights))
        hits = np.zeros(4)
        for _ in range(4000):
            slot, _ = fen.select(rng.random() * fen.total)
            hits[slot] += 1
        freq = hits / hits.sum()
        assert np.allclose(freq, weights / weights.sum(), atol=0.03)


class TestUpdateMany:
    """Shared batch-update contract of both store implementations."""

    @pytest.mark.parametrize("cls", [LinearPropensity, FenwickPropensity])
    def test_matches_sequential_updates(self, cls):
        values = [1.0, 0.0, 3.0, 2.5, 0.25]
        batch = _filled(cls, values)
        sequential = _filled(cls, values)
        slots = np.array([4, 0, 2])
        news = np.array([0.75, 9.0, 0.0])
        batch.update_many(slots, news)
        for s, v in zip(slots, news):
            sequential.update(int(s), float(v))
        assert np.array_equal(batch.values, sequential.values)
        assert batch.total == sequential.total
        if cls is FenwickPropensity:
            assert np.array_equal(batch.tree, sequential.tree)

    @pytest.mark.parametrize("cls", [LinearPropensity, FenwickPropensity])
    def test_duplicate_slots_last_write_wins(self, cls):
        store = _filled(cls, [1.0, 1.0, 1.0])
        store.update_many([1, 1, 1], [5.0, 7.0, 2.0])
        assert store.get(1) == 2.0

    @pytest.mark.parametrize("cls", [LinearPropensity, FenwickPropensity])
    def test_empty_batch_is_a_noop(self, cls):
        store = _filled(cls, [1.0, 2.0])
        store.update_many([], [])
        assert store.total == pytest.approx(3.0)

    @pytest.mark.parametrize("cls", [LinearPropensity, FenwickPropensity])
    def test_length_mismatch_rejected(self, cls):
        store = cls(3)
        with pytest.raises(ValueError):
            store.update_many([0, 1], [1.0])

    @pytest.mark.parametrize("cls", [LinearPropensity, FenwickPropensity])
    def test_negative_values_rejected(self, cls):
        store = cls(3)
        with pytest.raises(ValueError):
            store.update_many([0, 1], [1.0, -0.5])

    @pytest.mark.parametrize("cls", [LinearPropensity, FenwickPropensity])
    def test_out_of_range_slots_rejected(self, cls):
        store = cls(3)
        with pytest.raises(IndexError):
            store.update_many([3], [1.0])
        with pytest.raises(IndexError):
            store.update_many([-1], [1.0])

    @given(
        values=values_strategy,
        updates=st.lists(
            st.tuples(st.integers(min_value=0, max_value=63),
                      st.floats(min_value=0.0, max_value=1e6)),
            max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_fuzz_batch_equals_sequential_bitwise(self, values, updates):
        updates = [(s, v) for s, v in updates if s < len(values)]
        batch_lin = _filled(LinearPropensity, values)
        batch_fen = _filled(FenwickPropensity, values)
        seq_lin = _filled(LinearPropensity, values)
        seq_fen = _filled(FenwickPropensity, values)
        if updates:
            slots = np.array([s for s, _ in updates], dtype=np.int64)
            news = np.array([v for _, v in updates])
            batch_lin.update_many(slots, news)
            batch_fen.update_many(slots, news)
            for s, v in updates:
                seq_lin.update(s, v)
                seq_fen.update(s, v)
        assert np.array_equal(batch_lin.values, seq_lin.values)
        assert np.array_equal(batch_fen.values, seq_fen.values)
        assert np.array_equal(batch_fen.tree, seq_fen.tree)
        assert batch_fen.total == seq_fen.total


class TestUpdateManyAboveLegacyCap:
    """Batch updates on trees larger than the old hardcoded 4096 cap.

    ``update_many`` used to route every capacity above 4096 through the
    per-slot scalar loop; the touched-fraction heuristic now picks between
    scalar refresh, the host-side batch ancestor refresh, and a full
    rebuild.  All three must stay bitwise identical to sequential updates
    (they perform the same additions in the same order), so each branch is
    pinned here on an 8192-capacity tree.
    """

    N = 8192

    def _pair(self):
        rng = np.random.default_rng(17)
        values = rng.uniform(0.0, 1e3, self.N)
        batch = FenwickPropensity(self.N)
        seq = FenwickPropensity(self.N)
        batch.update_many(np.arange(self.N), values)  # rebuild-branch fill
        for i, v in enumerate(values):
            seq.update(i, float(v))
        return batch, seq

    def _assert_branch(self, n_unique, expect):
        batch, seq = self._pair()
        assert batch._cap == self.N > FenwickPropensity.BATCH_REFRESH_MIN_CAP
        rng = np.random.default_rng(23)
        slots = rng.choice(self.N, size=n_unique, replace=False)
        news = rng.uniform(0.0, 1e3, n_unique)
        # Pin which heuristic branch this batch lands in.
        s = np.asarray(slots)
        if expect == "rebuild":
            assert s.size * batch.REBUILD_FRACTION >= batch._cap
        elif expect == "batched":
            assert s.size * batch.REBUILD_FRACTION < batch._cap
            assert s.size * batch.BATCH_REFRESH_FRACTION >= batch._cap
        else:
            assert s.size * batch.BATCH_REFRESH_FRACTION < batch._cap
        batch.update_many(slots, news)
        for slot, v in zip(slots, news):
            seq.update(int(slot), float(v))
        assert np.array_equal(batch.values, seq.values)
        assert np.array_equal(batch.tree, seq.tree)
        assert batch.total == seq.total

    def test_sparse_batch_uses_scalar_loop_bitwise(self):
        self._assert_branch(50, "scalar")

    def test_mid_batch_uses_ancestor_refresh_bitwise(self):
        self._assert_branch(400, "batched")

    def test_dense_batch_uses_rebuild_bitwise(self):
        self._assert_branch(2048, "rebuild")

    def test_sample_draws_agree_after_large_batch(self):
        batch, seq = self._pair()
        slots = np.random.default_rng(29).choice(self.N, 400, replace=False)
        batch.update_many(slots, np.zeros(len(slots)))
        for slot in slots:
            seq.update(int(slot), 0.0)
        for frac in (0.0, 0.25, 0.5, 0.999999):
            assert batch.select(frac * batch.total) == seq.select(
                frac * seq.total
            )


class TestHistoryIndependence:
    """The tree must be a pure function of the values (checkpoint-exactness)."""

    @given(
        values=values_strategy,
        updates=st.lists(
            st.tuples(st.integers(min_value=0, max_value=63),
                      st.floats(min_value=0.0, max_value=1e6)),
            max_size=30),
    )
    @settings(max_examples=60, deadline=None)
    def test_rebuilt_tree_matches_updated_tree(self, values, updates):
        incremental = _filled(FenwickPropensity, values)
        for slot, v in updates:
            if slot < len(values):
                incremental.update(slot, v)
        rebuilt = FenwickPropensity(len(values))
        for i, v in enumerate(incremental.values):
            rebuilt.update(i, float(v))
        assert np.array_equal(incremental.tree, rebuilt.tree)
        assert incremental.total == rebuilt.total

    def test_update_order_does_not_matter(self):
        a = FenwickPropensity(5)
        b = FenwickPropensity(5)
        vals = [0.1, 0.2, 0.3, 0.4, 0.5]
        for i in range(5):
            a.update(i, vals[i])
        for i in reversed(range(5)):
            b.update(i, vals[i])
        assert np.array_equal(a.tree, b.tree)
