"""SimComm: messaging semantics and traffic accounting."""

import numpy as np
import pytest

from repro.parallel.comm import SimCommWorld, allreduce_sum


class TestMessaging:
    def test_send_recv(self):
        world = SimCommWorld(2)
        a, b = world.comm(0), world.comm(1)
        a.send(1, "tag", np.arange(4))
        assert np.array_equal(b.recv(0, "tag"), np.arange(4))

    def test_recv_preserves_send_order(self):
        world = SimCommWorld(2)
        a, b = world.comm(0), world.comm(1)
        a.send(1, "t", 1)
        a.send(1, "t", 2)
        assert b.recv(0, "t") == 1
        assert b.recv(0, "t") == 2

    def test_recv_by_source(self):
        world = SimCommWorld(3)
        world.comm(0).send(2, "t", "from0")
        world.comm(1).send(2, "t", "from1")
        c = world.comm(2)
        assert c.recv(1, "t") == "from1"
        assert c.recv(0, "t") == "from0"

    def test_recv_missing_raises(self):
        world = SimCommWorld(2)
        with pytest.raises(RuntimeError):
            world.comm(1).recv(0, "t")

    def test_recv_all_drains(self):
        world = SimCommWorld(3)
        world.comm(0).send(2, "t", 10)
        world.comm(1).send(2, "t", 11)
        got = world.comm(2).recv_all("t")
        assert sorted(got) == [(0, 10), (1, 11)]
        assert world.comm(2).recv_all("t") == []

    def test_tags_are_independent(self):
        world = SimCommWorld(2)
        world.comm(0).send(1, "a", 1)
        world.comm(0).send(1, "b", 2)
        assert world.comm(1).recv(0, "b") == 2
        assert world.comm(1).recv(0, "a") == 1

    def test_assert_drained(self):
        world = SimCommWorld(2)
        world.assert_drained()
        world.comm(0).send(1, "t", 5)
        with pytest.raises(RuntimeError):
            world.assert_drained()

    def test_bad_ranks_rejected(self):
        world = SimCommWorld(2)
        with pytest.raises(ValueError):
            world.comm(5)
        with pytest.raises(ValueError):
            world.comm(0).send(7, "t", 1)
        with pytest.raises(ValueError):
            SimCommWorld(0)


class TestAccounting:
    def test_bytes_counted_for_arrays(self):
        world = SimCommWorld(2)
        payload = np.zeros(100, dtype=np.float64)
        world.comm(0).send(1, "t", payload)
        assert world.stats.bytes_sent == 800
        assert world.stats.messages_sent == 1

    def test_tuple_payload_bytes(self):
        world = SimCommWorld(2)
        world.comm(0).send(1, "t", (np.zeros(10, dtype=np.uint8), 3.0))
        assert world.stats.bytes_sent == 18

    def test_barrier_counted(self):
        world = SimCommWorld(2)
        world.comm(0).barrier()
        world.comm(1).barrier()
        assert world.stats.barriers == 2

    def test_local_stats_per_rank(self):
        world = SimCommWorld(2)
        c0 = world.comm(0)
        c0.send(1, "t", 1)
        assert c0.local_stats.messages_sent == 1

    def test_allreduce(self):
        world = SimCommWorld(3)
        assert allreduce_sum(world, [1.0, 2.0, 3.0]) == 6.0
        assert world.stats.collectives == 1
        with pytest.raises(ValueError):
            allreduce_sum(world, [1.0])

    def test_allreduce_traffic_is_accounted(self):
        """Regression: collectives used to count as zero messages and zero
        bytes, hiding allreduce traffic from scaling-model calibration."""
        world = SimCommWorld(3)
        allreduce_sum(world, [1.0, 2.0, 3.0])
        assert world.stats.messages_sent == 3  # one contribution per rank
        assert world.stats.bytes_sent == 3 * 8  # one float64 each
        allreduce_sum(world, [4.0, 5.0, 6.0])
        assert world.stats.messages_sent == 6
        assert world.stats.bytes_sent == 48
