"""Domain windows: global/window coordinate mapping and fills."""

import numpy as np
import pytest

from repro.constants import CU, FE, VACANCY
from repro.lattice import DomainBox, LatticeState, LocalWindow, ghost_cells_for_cutoff


class TestDomainBox:
    def test_shape_and_counts(self):
        box = DomainBox((1, 2, 3), (4, 6, 9))
        assert box.shape == (3, 4, 6)
        assert box.n_cells == 72
        assert box.n_sites == 144

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            DomainBox((2, 2, 2), (2, 4, 4))

    def test_contains(self):
        box = DomainBox((2, 2, 2), (5, 5, 5))
        assert box.contains_cell(np.array([3, 4, 2]))
        assert not box.contains_cell(np.array([5, 4, 2]))


class TestGhostWidth:
    def test_covers_double_cutoff(self):
        g = ghost_cells_for_cutoff(6.5)
        assert g >= int(np.ceil(2 * 6.5 / 2.87))

    def test_small_cutoff(self):
        assert ghost_cells_for_cutoff(2.87) >= 2


class TestLocalWindow:
    @pytest.fixture()
    def setup(self):
        global_lat = LatticeState((10, 10, 10))
        rng = np.random.default_rng(4)
        global_lat.occupancy[:] = np.where(
            rng.random(global_lat.n_sites) < 0.2, CU, FE
        )
        window = LocalWindow(DomainBox((2, 2, 2), (7, 7, 7)), (10, 10, 10), 2)
        window.fill_from_global(global_lat.occupancy.reshape(2, 10, 10, 10))
        return global_lat, window

    def test_fill_matches_global(self, setup):
        global_lat, window = setup
        occ4d = global_lat.occupancy.reshape(2, 10, 10, 10)
        # every padded cell holds the wrapped global species
        px, py, pz = window.padded_shape
        for probe in [(0, 0, 0, 0), (1, 3, 4, 5), (0, px - 1, py - 1, pz - 1)]:
            s, i, j, k = probe
            gc = window.global_cell_of_padded(np.array([i, j, k]))
            assert window.occupancy[s, i, j, k] == occ4d[s, gc[0], gc[1], gc[2]]

    def test_local_block_matches_box(self, setup):
        global_lat, window = setup
        occ4d = global_lat.occupancy.reshape(2, 10, 10, 10)
        block = window.local_block()
        assert np.array_equal(block, occ4d[:, 2:7, 2:7, 2:7])

    def test_half_coord_roundtrip(self, setup):
        _, window = setup
        s = np.array([0, 1, 1])
        cell = np.array([[1, 2, 3], [4, 5, 6], [0, 0, 0]])
        half = window.half_coords(s, cell)
        s2, cell2 = window.site_from_half(half)
        assert np.array_equal(s, s2)
        assert np.array_equal(cell, cell2)

    def test_species_read_write_at_half(self, setup):
        _, window = setup
        half = window.half_coords(np.array([1]), np.array([[3, 3, 3]]))
        window.set_species_at_half(half, VACANCY)
        assert window.species_at_half(half)[0] == VACANCY

    def test_is_local_half(self, setup):
        _, window = setup
        ghost_half = window.half_coords(np.array([0]), np.array([[0, 3, 3]]))
        local_half = window.half_coords(np.array([0]), np.array([[3, 3, 3]]))
        assert not window.is_local_half(ghost_half)[0]
        assert window.is_local_half(local_half)[0]

    def test_local_vacancy_scan(self, setup):
        _, window = setup
        half = window.half_coords(np.array([0]), np.array([[4, 4, 4]]))
        window.set_species_at_half(half, VACANCY)
        found = window.local_vacancy_half_coords()
        assert any(np.array_equal(h, half[0]) for h in found)
        # a ghost vacancy must NOT be reported
        ghost_half = window.half_coords(np.array([0]), np.array([[0, 0, 0]]))
        window.set_species_at_half(ghost_half, VACANCY)
        found = window.local_vacancy_half_coords()
        assert not any(np.array_equal(h, ghost_half[0]) for h in found)
