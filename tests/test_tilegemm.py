"""The deterministic tiled-GEMM kernel: correctness + batch invariance.

The property under test is the whole reason :mod:`repro.operators.tilegemm`
exists: every output row must be a pure function of that row's input —
bit-identical whether the row is computed alone, inside any batch split, or
at any position after a shuffle.  Plain float32 BLAS GEMMs do *not* have
this property (their blocking follows the row count); the fixed-shape
padded tiling must restore it exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.nnp.network import AtomicNetwork, ElementNetworks
from repro.operators.tilegemm import (
    MAX_M_TILE,
    MIN_TILE,
    TileGEMMKernel,
    plan_tiles,
    tiled_matmul,
)
from repro.sunway.costmodel import CostLedger
from repro.sunway.ldm import LDMOverflowError
from repro.sunway.spec import SW26010_PRO

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the dev env
    HAVE_HYPOTHESIS = False


def _net(channels=(64, 16, 8, 1), seed=0, dtype=np.float32):
    return AtomicNetwork(channels, np.random.default_rng(seed), dtype=dtype)


class TestTiledMatmul:
    def test_matches_blas_to_tolerance(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((137, 70)).astype(np.float32)
        w = rng.standard_normal((70, 33)).astype(np.float32)
        out = tiled_matmul(x, w, 32, 16)
        np.testing.assert_allclose(out, x @ w, rtol=1e-5, atol=1e-5)

    def test_float64_supported(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((21, 40))
        w = rng.standard_normal((40, 5))
        out = tiled_matmul(x, w, 8, 16)
        assert out.dtype == np.float64
        np.testing.assert_allclose(out, x @ w, rtol=1e-12)

    def test_rejects_mismatched_inner_dims(self):
        with pytest.raises(ValueError, match="inner dims"):
            tiled_matmul(np.zeros((3, 4)), np.zeros((5, 2)), 8, 8)

    def test_rows_are_batch_invariant(self):
        """Row alone == row in batch == row after shuffle, bitwise."""
        rng = np.random.default_rng(3)
        for k, n in [(64, 16), (17, 3), (130, 1)]:
            x = rng.standard_normal((101, k)).astype(np.float32)
            w = rng.standard_normal((k, n)).astype(np.float32)
            full = tiled_matmul(x, w, 32, 16)
            for i in (0, 50, 100):
                alone = tiled_matmul(x[i : i + 1], w, 32, 16)
                assert np.array_equal(alone[0], full[i])
            perm = rng.permutation(101)
            assert np.array_equal(tiled_matmul(x[perm], w, 32, 16), full[perm])


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestFuzzBatchSplitInvariance:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        m=st.integers(min_value=1, max_value=90),
        split=st.integers(min_value=1, max_value=90),
        m_tile=st.sampled_from([8, 16, 32]),
        k_tile=st.sampled_from([8, 16, 32]),
    )
    def test_every_split_gives_identical_rows(self, seed, m, split, m_tile, k_tile):
        """B=1, B=split, B=m and a shuffle all agree bitwise per row."""
        rng = np.random.default_rng(seed)
        k, n = 48, 7
        x = (rng.standard_normal((m, k)) * 10).astype(np.float32)
        w = rng.standard_normal((k, n)).astype(np.float32)
        full = tiled_matmul(x, w, m_tile, k_tile)
        # Arbitrary contiguous split.
        pieces = [
            tiled_matmul(x[lo : lo + split], w, m_tile, k_tile)
            for lo in range(0, m, split)
        ]
        assert np.array_equal(np.concatenate(pieces), full)
        # Every row alone.
        ones = np.concatenate(
            [tiled_matmul(x[i : i + 1], w, m_tile, k_tile) for i in range(m)]
        )
        assert np.array_equal(ones, full)
        # Shuffled order.
        perm = rng.permutation(m)
        assert np.array_equal(tiled_matmul(x[perm], w, m_tile, k_tile), full[perm])

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        m=st.integers(min_value=1, max_value=70),
    )
    def test_kernel_network_rows_batch_invariant(self, seed, m):
        """The whole fused network, not just one GEMM, is row-invariant."""
        rng = np.random.default_rng(seed)
        kernel = TileGEMMKernel(*_weights_biases(_net(seed=7)))
        x = rng.standard_normal((m, 64)).astype(np.float32)
        full = kernel(x)
        ones = np.concatenate([kernel(x[i : i + 1]) for i in range(m)])
        assert np.array_equal(ones, full)
        perm = rng.permutation(m)
        assert np.array_equal(kernel(x[perm]), full[perm])


def _weights_biases(net):
    return net.weights, net.biases


class TestTileGEMMKernel:
    def test_matches_blas_forward_to_tolerance(self):
        net = _net(seed=5)
        kernel = TileGEMMKernel(net.weights, net.biases)
        x = np.random.default_rng(5).standard_normal((200, 64)).astype(np.float32)
        np.testing.assert_allclose(
            kernel(x)[:, 0], net.forward(x), rtol=1e-4, atol=1e-5
        )

    def test_aliases_live_weights(self):
        """In-place weight updates (training) flow into the kernel."""
        net = _net(seed=6)
        kernel = TileGEMMKernel(net.weights, net.biases)
        x = np.random.default_rng(6).standard_normal((9, 64)).astype(np.float32)
        before = kernel(x).copy()
        params = [p.copy() for p in net.get_parameters()]
        params[0] += 0.25
        net.set_parameters(params)
        after = kernel(x)
        assert not np.array_equal(before, after)
        np.testing.assert_allclose(after[:, 0], net.forward(x), rtol=1e-4, atol=1e-5)

    def test_rejects_wrong_feature_width(self):
        kernel = TileGEMMKernel(*_weights_biases(_net(seed=8)))
        with pytest.raises(ValueError, match="features"):
            kernel(np.zeros((4, 63), dtype=np.float32))

    def test_charges_ledger(self):
        kernel = TileGEMMKernel(*_weights_biases(_net(seed=9)))
        ledger = CostLedger(SW26010_PRO)
        kernel(np.zeros((700, 64), dtype=np.float32), ledger=ledger)
        assert ledger.simd_flops > 0
        assert ledger.dma_bytes > 0
        assert ledger.rma_bytes > 0
        assert ledger.notes["m_tile"] == kernel.plan.m_tile
        assert ledger.notes["n_blocks"] >= 1
        assert kernel.modeled_time(700) > 0.0

    def test_element_networks_forward_equals_big_fusion_bitwise(self):
        nets = ElementNetworks((64, 16, 8, 1), np.random.default_rng(3), n_elements=2)
        rng = np.random.default_rng(4)
        feats = rng.standard_normal((333, 64)).astype(np.float32)
        species = rng.integers(0, 2, 333)
        a = nets.forward(feats, species)
        b = nets.forward_big_fusion(feats, species)
        assert np.array_equal(a, b)


class TestTilePlan:
    def test_plan_is_fixed_and_clamped(self):
        plan = plan_tiles(*_weights_biases(_net(seed=1)))
        assert MIN_TILE <= plan.m_tile <= MAX_M_TILE
        assert plan.m_tile & (plan.m_tile - 1) == 0  # power of two
        assert plan.k_tile & (plan.k_tile - 1) == 0
        assert plan.channels == (64, 16, 8, 1)
        assert plan.k_panels(64) == -(-64 // plan.k_tile)
        # Pure function of shape + spec: rebuilt plans are identical.
        assert plan == plan_tiles(*_weights_biases(_net(seed=2)))

    def test_paper_network_fits(self):
        """The paper's (64, 128, 128, 128, 64, 1) network plans cleanly."""
        plan = plan_tiles(*_weights_biases(_net((64, 128, 128, 128, 64, 1))))
        assert plan.m_tile >= MIN_TILE
        assert plan.k_tile >= MIN_TILE

    def test_oversized_network_overflows_ldm(self):
        with pytest.raises(LDMOverflowError):
            plan_tiles(*_weights_biases(_net((4096, 4096, 1))))

    def test_mismatched_lists_rejected(self):
        net = _net(seed=1)
        with pytest.raises(ValueError, match="mismatch"):
            plan_tiles(net.weights, net.biases[:-1])


class TestZeroVarianceStandardisation:
    """Regression: ``feature_std == 0`` used to turn every energy into NaN.

    Before the install-time clamp, ``normalise`` divided by the raw std, so
    a feature that was constant over the training set (std exactly 0 —
    routine for shells a species never reaches) poisoned all downstream
    energies with NaN/Inf.
    """

    def _poisoned(self, nnp_template):
        from repro.nnp import ElementNetworks, NNPotential
        from repro.potentials import FeatureTable

        table = FeatureTable(nnp_template.shell_distances)
        nets = ElementNetworks((2 * table.n_dim, 16, 8, 1), np.random.default_rng(0))
        model = NNPotential(table, nets, rcut=2.87)
        n_feat = 2 * table.n_dim
        std = np.full(n_feat, 2.0, dtype=np.float32)
        std[[0, 5, n_feat - 1]] = 0.0  # zero-variance features
        model.set_standardisation(
            feature_mean=np.zeros(n_feat, dtype=np.float32),
            feature_std=std,
            reference_energies=np.array([-4.0, -3.5]),
            energy_scale=0.05,
        )
        return model

    def test_zero_std_is_clamped_at_install(self, nnp_small):
        model = self._poisoned(nnp_small)
        assert np.all(model.feature_std > 0.0)
        assert np.all(np.isfinite(model._inv_std))

    def test_energies_stay_finite(self, nnp_small, tet_small):
        model = self._poisoned(nnp_small)
        rng = np.random.default_rng(1)
        types = rng.integers(0, 3, size=32)
        counts = rng.integers(0, 5, size=(32, tet_small.n_shells, 2)).astype(
            np.float32
        )
        energies = model.energies_from_counts(types, counts)
        assert np.all(np.isfinite(energies))

    def test_nan_std_also_clamped(self, nnp_small):
        model = self._poisoned(nnp_small)
        n_feat = model.feature_mean.shape[0]
        std = np.full(n_feat, 1.0, dtype=np.float32)
        std[3] = np.nan
        model.set_standardisation(
            model.feature_mean, std, model.reference_energies, model.energy_scale
        )
        assert np.all(model.feature_std > 0.0)
        assert np.all(np.isfinite(model._inv_std))
