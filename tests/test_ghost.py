"""Ghost exchange: padded-box tests, image enumeration, update routing."""

import numpy as np
import pytest

from repro.constants import CU, FE
from repro.lattice import DomainBox, LocalWindow
from repro.parallel.comm import SimCommWorld
from repro.parallel.decomposition import GridDecomposition
from repro.parallel.ghost import (
    GhostExchanger,
    SiteUpdates,
    in_padded_box,
    window_images,
)


class TestInPaddedBox:
    def test_inside(self):
        box = DomainBox(lo=(2, 2, 2), hi=(6, 6, 6))
        assert in_padded_box(np.array([[3, 3, 3]]), box, 1, (12, 12, 12))[0]
        assert in_padded_box(np.array([[1, 3, 3]]), box, 1, (12, 12, 12))[0]

    def test_outside(self):
        box = DomainBox(lo=(2, 2, 2), hi=(6, 6, 6))
        assert not in_padded_box(np.array([[8, 3, 3]]), box, 1, (12, 12, 12))[0]

    def test_wraps(self):
        box = DomainBox(lo=(0, 0, 0), hi=(4, 4, 4))
        # cell 11 == -1 (mod 12): inside the ghost of a box at the origin.
        assert in_padded_box(np.array([[11, 0, 0]]), box, 1, (12, 12, 12))[0]

    def test_window_spanning_axis_sees_everything(self):
        box = DomainBox(lo=(0, 0, 0), hi=(8, 4, 4))
        # padded x-width 10 > global 8: every x qualifies.
        cells = np.array([[x, 0, 0] for x in range(8)])
        assert np.all(in_padded_box(cells, box, 1, (8, 12, 12)))


class TestWindowImages:
    def test_unique_image(self):
        window = LocalWindow(DomainBox((2, 2, 2), (6, 6, 6)), (12, 12, 12), 2)
        images = window_images(window, np.array([3, 3, 3]))
        assert images.shape == (1, 3)

    def test_no_image(self):
        window = LocalWindow(DomainBox((2, 2, 2), (6, 6, 6)), (12, 12, 12), 1)
        assert window_images(window, np.array([9, 9, 9])).shape == (0, 3)

    def test_multiple_images_with_wrap(self):
        # box spans the whole axis; padded width 8+2*2 = 12 > global 8.
        window = LocalWindow(DomainBox((0, 0, 0), (8, 4, 4)), (8, 12, 12), 2)
        images = window_images(window, np.array([1, 1, 1]))
        # x=1 appears at padded x = 3 and x = 11 (image through the wrap).
        assert images.shape[0] == 2
        assert sorted(images[:, 0].tolist()) == [3, 11]


class TestExchanger:
    def _setup(self, grid=(2, 1, 1), shape=(12, 8, 8), ghost=2):
        decomp = GridDecomposition(shape, grid)
        world = SimCommWorld(decomp.n_ranks)
        windows, exchangers = [], []
        for r in range(decomp.n_ranks):
            w = LocalWindow(decomp.box_of_rank(r), shape, ghost)
            w.occupancy[:] = FE
            windows.append(w)
            exchangers.append(GhostExchanger(world.comm(r), decomp, w))
        return decomp, world, windows, exchangers

    def test_update_reaches_neighbor_ghost(self):
        decomp, world, windows, exchangers = self._setup()
        # rank 0 changes its cell (5, 3, 3) -> lies in rank 1's ghost.
        updates = SiteUpdates(
            np.array([0]), np.array([[5, 3, 3]]), np.array([CU])
        )
        s, cell = np.array([0]), np.array([[5, 3, 3]])
        half = windows[0].half_coords(
            s, windows[0].padded_cell_of_global(cell)
        )
        windows[0].set_species_at_half(half, CU)
        for ex in exchangers:
            ex.send_updates(updates if ex.comm.rank == 0 else SiteUpdates.empty())
        for ex in exchangers:
            ex.apply_updates()
        world.assert_drained()
        # rank 1's window must now see Cu at global cell (5, 3, 3).
        images = window_images(windows[1], np.array([5, 3, 3]))
        assert images.shape[0] >= 1
        for img in images:
            half1 = windows[1].half_coords(np.array([0]), img[None, :])
            assert windows[1].species_at_half(half1)[0] == CU

    def test_self_wrap_update(self):
        """With one rank along an axis the rank updates its own ghost images."""
        decomp, world, windows, exchangers = self._setup(
            grid=(1, 1, 1), shape=(8, 8, 8), ghost=2
        )
        w, ex = windows[0], exchangers[0]
        # change cell (0,0,0): its ghost images at the far side must update.
        updates = SiteUpdates(np.array([0]), np.array([[0, 0, 0]]), np.array([CU]))
        ex.send_updates(updates)
        ex.apply_updates()
        world.assert_drained()
        images = window_images(w, np.array([0, 0, 0]))
        assert images.shape[0] == 8  # corner cell: 2 images per axis
        for img in images:
            half = w.half_coords(np.array([0]), img[None, :])
            assert w.species_at_half(half)[0] == CU

    def test_empty_updates_flow(self):
        decomp, world, windows, exchangers = self._setup()
        for ex in exchangers:
            ex.send_updates(SiteUpdates.empty())
        for ex in exchangers:
            assert ex.apply_updates().shape == (0, 3)
        world.assert_drained()

    def test_update_lengths_validated(self):
        with pytest.raises(ValueError):
            SiteUpdates(np.zeros(2), np.zeros((1, 3)), np.zeros(2))
