"""Process-parallel rank execution: pickle contracts, bit-identity, faults.

The process executor's whole claim is that it is *invisible*: a fixed-seed
trajectory, its kernel counters, and its comm transcript are bit-identical
whether the rank loops run inline in the driver or on a persistent forked
worker pool.  These tests pin that claim, plus the failure surface — every
object that crosses the pipe must pickle faithfully, and a worker that
really dies (SIGKILL, not an injected fault) must surface as a structured
:class:`ProtocolError` instead of a hang.
"""

import os
import pickle
import signal

import numpy as np
import pytest

from repro.campaign import occupancy_digest
from repro.lattice import LatticeState
from repro.parallel import (
    CycleStats,
    FaultEvent,
    FaultPlan,
    ProcComm,
    ProtocolError,
    SublatticeKMC,
    resolve_workers,
    run_resilient,
)
from repro.parallel.executor import _effective_cores
from repro.parallel.ghost import GHOST_TAG

#: The sublattice protocol needs 4 cells of sector width per rank; with 4
#: ranks (grid (1, 2, 2)) that puts the floor at a 16^3 box.
BOX = (16, 16, 16)
N_CYCLES = 8


def _alloy(seed=3, vac=0.003):
    lat = LatticeState(BOX)
    lat.randomize_alloy(np.random.default_rng(seed), 0.05, vac)
    return lat

def _sim(tet, pot, seed=5, n_ranks=4, **kw):
    return SublatticeKMC(
        _alloy(), pot, tet, n_ranks=n_ranks, temperature=900.0,
        t_stop=2e-10, seed=seed, **kw,
    )


def _trajectory(sim, n_cycles=N_CYCLES):
    """(digest, clock, per-cycle events, sectors) — the identity tuple."""
    sim.run(n_cycles)
    return (
        occupancy_digest(sim.gather_global()),
        sim.time,
        [c.events for c in sim.cycles],
        [c.sector for c in sim.cycles],
    )


# ----------------------------------------------------------------------
# Satellite: everything that crosses the pipe must pickle faithfully.
# ----------------------------------------------------------------------
class TestPickleContracts:
    def test_protocol_error_round_trip(self):
        err = ProtocolError(
            "recv contract violated", rank=2, tag=GHOST_TAG, cycle=7,
            transcript=["send 0->2", "recv 2"],
        )
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, ProtocolError)
        assert clone.rank == 2
        assert clone.tag == GHOST_TAG
        assert clone.cycle == 7
        assert list(clone.transcript) == ["send 0->2", "recv 2"]
        assert clone.transcript == err.transcript
        assert clone.message == err.message
        assert str(clone) == str(err)

    def test_protocol_error_str_is_stable_across_round_trips(self):
        """Regression: the default ``RuntimeError`` reduce re-fed the
        *formatted* detail string through ``__init__``, stacking a fresh
        ``[rank=... tag=... cycle=...]`` prefix on every hop."""
        err = ProtocolError("boom", rank=1, tag="t", cycle=3)
        once = pickle.loads(pickle.dumps(err))
        twice = pickle.loads(pickle.dumps(once))
        assert str(twice) == str(err)
        assert str(err).count("[rank=") == 1

    def test_protocol_error_defaults_round_trip(self):
        err = ProtocolError("plain")
        clone = pickle.loads(pickle.dumps(err))
        assert (clone.rank, clone.tag, clone.cycle) == (None, None, None)
        assert str(clone) == str(err)
        assert clone.message == "plain"

    def test_fault_event_round_trip(self):
        event = FaultEvent("drop", cycle=4, rank=1, tag=GHOST_TAG, count=2)
        assert pickle.loads(pickle.dumps(event)) == event

    def test_fault_plan_round_trip_preserves_fired_state(self):
        plan = FaultPlan(
            events=[
                FaultEvent("drop", cycle=1, rank=0),
                FaultEvent("kill", cycle=9, rank=2),
            ],
            p_drop=0.25, seed=42,
        )
        plan.action_for_send(1, 0, 1, "t")  # fire the one-shot drop
        draws = plan._rng.random(3)  # advance the seeded stream
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.fired == plan.fired
        assert clone.pending_events == plan.pending_events == 1
        # The chaos stream resumes where it left off — recovery replays
        # with the *same* plan object semantics on both sides of the pipe.
        assert np.array_equal(clone._rng.random(3), plan._rng.random(3))
        assert not np.array_equal(clone._rng.random(3), draws)

    def test_cycle_stats_round_trip(self):
        stats = CycleStats(
            sector=3, events=17, rejected=2, compute_seconds=0.125,
            comm_messages=20, comm_bytes=424, cache_hits=5,
            exchange_wait_seconds=0.003,
        )
        assert pickle.loads(pickle.dumps(stats)) == stats


# ----------------------------------------------------------------------
# Knob validation.
# ----------------------------------------------------------------------
class TestResolveWorkers:
    def test_inline_has_no_pool(self):
        assert resolve_workers("inline", None, 8) == 0

    def test_workers_with_inline_is_an_error(self):
        with pytest.raises(ValueError, match="only valid with executor='process'"):
            resolve_workers("inline", 4, 8)

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_workers("threads", None, 8)

    def test_process_defaults_to_one_worker_per_rank(self):
        assert resolve_workers("process", None, 8) == 8

    def test_pool_capped_at_rank_count(self):
        assert resolve_workers("process", 64, 8) == 8

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(ValueError, match="workers must be >= 1"):
            resolve_workers("process", 0, 8)

    def test_engine_rejects_workers_with_inline(self, tet_small, eam_small):
        with pytest.raises(ValueError, match="only valid with executor='process'"):
            _sim(tet_small, eam_small, workers=4)


# ----------------------------------------------------------------------
# The worker-side comm endpoint honours the SimComm surface.
# ----------------------------------------------------------------------
class TestProcComm:
    def test_recv_all_returns_delivered_messages_in_order(self):
        comm = ProcComm(rank=1)
        comm.deliver("t", [(0, "a"), (2, "b")])
        assert comm.recv_all("t") == [(0, "a"), (2, "b")]
        assert comm.recv_all("t") == []  # drained

    def test_phase_contract_enforced(self):
        comm = ProcComm(rank=1)
        comm.deliver("t", [(0, "a"), (0, "dup")])
        with pytest.raises(ProtocolError, match="phase"):
            comm.recv_all("t", expected_sources=[0, 2])

    def test_worker_side_send_is_forbidden(self):
        with pytest.raises(ProtocolError, match="driver"):
            ProcComm(rank=0).send(1, "t", b"x")

    def test_barrier_is_counted(self):
        comm = ProcComm(rank=0)
        comm.barrier()
        comm.barrier()
        assert comm.local_stats.barriers == 2


# ----------------------------------------------------------------------
# The tentpole invariant: executor-independence of the trajectory.
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def eam_reference(tet_small, eam_small):
    sim = _sim(tet_small, eam_small)
    identity = _trajectory(sim)
    return identity, sim.summary(), sim.world.stats


class TestBitIdentity:
    def test_process_matches_inline(self, tet_small, eam_small, eam_reference):
        identity, ref_summary, ref_stats = eam_reference
        with _sim(tet_small, eam_small, executor="process") as sim:
            assert _trajectory(sim) == identity
            # The authoritative world stats are driver-side replays —
            # byte counts, message counts and barriers all match.
            assert sim.world.stats == ref_stats
            summary = sim.summary()
        for key in (
            "events", "rejected", "cache_hits", "cache_misses",
            "invalidations", "rates_evaluated", "selections",
            "rate_batches", "batched_rows",
        ):
            assert summary[key] == ref_summary[key], key

    def test_fewer_workers_than_ranks(self, tet_small, eam_small, eam_reference):
        with _sim(tet_small, eam_small, executor="process", workers=2) as sim:
            assert sim.n_workers == 2
            assert _trajectory(sim) == eam_reference[0]

    def test_ghosts_consistent_under_process_executor(self, tet_small, eam_small):
        with _sim(tet_small, eam_small, executor="process") as sim:
            sim.run(4)
            assert sim.check_ghost_consistency()

    def test_summary_reports_the_executor(self, tet_small, eam_small):
        with _sim(tet_small, eam_small, executor="process", workers=2) as sim:
            sim.run(2)
            summary = sim.summary()
        assert summary["executor"] == "process"
        assert summary["workers"] == 2
        assert summary["exchange_wait_seconds"] > 0.0
        inline = _sim(tet_small, eam_small)
        inline.run(2)
        assert inline.summary()["executor"] == "inline"
        assert inline.summary()["workers"] == 0

    def test_close_is_idempotent_and_sim_survives(self, tet_small, eam_small):
        sim = _sim(tet_small, eam_small, executor="process")
        sim.run(2)
        sim.close()
        sim.close()
        # Shadow state was synced on close-path gathers; reads still work.
        assert occupancy_digest(sim.gather_global())


class TestRowCacheMerge:
    """Satellite: per-worker cache replicas fold into one monotonic total."""

    TINY_MB = 64 * 16 / (1024.0 * 1024.0)

    def _nnp_sim(self, tet, pot, **kw):
        return _sim(
            tet, pot, row_cache="on", row_cache_mb=self.TINY_MB, **kw
        )

    def test_merged_totals_match_inline_probes(self, tet_small, nnp_small):
        inline = self._nnp_sim(tet_small, nnp_small)
        identity = _trajectory(inline)
        with self._nnp_sim(tet_small, nnp_small, executor="process") as sim:
            assert _trajectory(sim) == identity
            summary = sim.summary()
        ref = inline.summary()
        # The hit/miss *split* legitimately differs (each worker owns a
        # forked replica, so cross-rank reuse becomes a local miss), but
        # every probe is accounted for exactly once in the merged total.
        probes = summary["row_cache_hits"] + summary["row_cache_misses"]
        assert probes == ref["row_cache_hits"] + ref["row_cache_misses"]
        assert probes > 0
        assert summary["row_cache_hits"] > 0

    def test_absorb_delta_rejects_negative_counts(self, tet_small, nnp_small):
        sim = self._nnp_sim(tet_small, nnp_small)
        with pytest.raises(ValueError, match="negative"):
            sim.row_cache.absorb_delta(-1, 0, 0)

    def test_footprint_comes_from_worker_replicas(self, tet_small, nnp_small):
        with self._nnp_sim(
            tet_small, nnp_small, executor="process", workers=2
        ) as sim:
            sim.run(4)
            summary = sim.summary()
            # Two forked replicas, each bounded by the full byte budget.
            assert 0 < summary["row_cache_entries"]
            assert summary["row_cache_bytes"] <= 2 * 64 * 16


# ----------------------------------------------------------------------
# Worker death and recovery.
# ----------------------------------------------------------------------
class TestWorkerDeath:
    def test_sigkill_surfaces_as_structured_error(self, tet_small, eam_small):
        sim = _sim(tet_small, eam_small, executor="process")
        try:
            sim.run(1)  # spin the pool up
            victim = sim._executor.worker_pids()[1]
            os.kill(victim, signal.SIGKILL)
            with pytest.raises(ProtocolError) as excinfo:
                sim.run(3)
            err = excinfo.value
            assert err.tag == "worker"
            assert err.rank is not None
            assert err.cycle is not None
            assert "died unexpectedly" in str(err)
            # The error itself must survive the pipe it arrived through.
            assert str(pickle.loads(pickle.dumps(err))) == str(err)
        finally:
            sim.close()

    def test_broken_pool_stays_broken_until_rebuilt(self, tet_small, eam_small):
        sim = _sim(tet_small, eam_small, executor="process")
        try:
            sim.run(1)
            os.kill(sim._executor.worker_pids()[0], signal.SIGKILL)
            with pytest.raises(ProtocolError):
                sim.run(3)
            with pytest.raises(ProtocolError, match="broken"):
                sim.cycle()
        finally:
            sim.close()

    def test_run_resilient_recovers_injected_kill(
        self, tmp_path, tet_small, eam_small, eam_reference
    ):
        """A scripted rank kill under the process executor rolls back and
        replays to the exact fault-free inline trajectory."""
        plan = FaultPlan(events=[FaultEvent("kill", cycle=4, rank=1)])
        sim = _sim(
            tet_small, eam_small, fault_plan=plan, executor="process",
        )
        path = str(tmp_path / "resilient.npz")
        sim, recoveries = run_resilient(
            sim, N_CYCLES, path, eam_small, tet=tet_small, checkpoint_every=3
        )
        try:
            assert recoveries == 1
            assert sim.executor_kind == "process"
            assert sim.n_workers == 4
            digest, clock, events, sectors = eam_reference[0]
            assert occupancy_digest(sim.gather_global()) == digest
            assert sim.time == clock
            assert [c.events for c in sim.cycles] == events
        finally:
            sim.close()

    def test_run_resilient_recovers_real_worker_death(
        self, tmp_path, tet_small, eam_small, eam_reference
    ):
        """SIGKILL a live worker mid-campaign; the recovery driver rebuilds
        the pool from the checkpoint and finishes on-trajectory."""
        sim = _sim(tet_small, eam_small, executor="process")
        path = str(tmp_path / "hardkill.npz")
        sim, _ = run_resilient(
            sim, 4, path, eam_small, tet=tet_small, checkpoint_every=2
        )
        os.kill(sim._executor.worker_pids()[2], signal.SIGKILL)
        sim, recoveries = run_resilient(
            sim, N_CYCLES - 4, path, eam_small, tet=tet_small,
            checkpoint_every=2,
        )
        try:
            assert recoveries >= 1
            digest, clock, events, sectors = eam_reference[0]
            assert occupancy_digest(sim.gather_global()) == digest
            assert sim.time == clock
            assert [c.events for c in sim.cycles] == events
        finally:
            sim.close()


def test_effective_cores_positive():
    assert _effective_cores() >= 1
