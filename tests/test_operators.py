"""Operator kernels: functional equivalence and the Fig. 10 ladder."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nnp import ElementNetworks
from repro.operators import (
    BigFusionOperator,
    bias_add,
    conv1x1_loop,
    conv1x1_matmul,
    fig10_ladder,
    fused_layer,
    ladder_speedups,
    layered_forward,
    paper_bands,
    relu,
)
from repro.sunway import SW26010_PRO, CostLedger, LDMOverflowError


@pytest.fixture(scope="module")
def paper_net():
    nets = ElementNetworks((64, 128, 128, 128, 64, 1), np.random.default_rng(0))
    return nets.nets[0]


@pytest.fixture(scope="module")
def tiny_net():
    nets = ElementNetworks((6, 8, 1), np.random.default_rng(1))
    return nets.nets[0]


class TestConvEquivalence:
    @given(
        m=st.integers(min_value=1, max_value=6),
        c_in=st.integers(min_value=1, max_value=5),
        c_out=st.integers(min_value=1, max_value=5),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_loop_equals_matmul(self, m, c_in, c_out, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((m, c_in)).astype(np.float32)
        w = rng.standard_normal((c_in, c_out)).astype(np.float32)
        assert np.allclose(conv1x1_loop(x, w), conv1x1_matmul(x, w), atol=1e-5)

    def test_channel_mismatch(self):
        with pytest.raises(ValueError):
            conv1x1_loop(np.zeros((2, 3)), np.zeros((4, 5)))

    def test_fused_equals_separate_passes(self, tiny_net):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((10, 6)).astype(np.float32)
        w, b = tiny_net.weights[0], tiny_net.biases[0]
        separate = relu(bias_add(conv1x1_matmul(x, w), b))
        assert np.allclose(fused_layer(x, w, b), separate)

    def test_fused_last_layer_no_relu(self, tiny_net):
        x = -np.ones((4, 8), dtype=np.float32)
        w, b = tiny_net.weights[1], tiny_net.biases[1]
        out = fused_layer(x, w, b, last=True)
        assert np.allclose(out, x @ w + b)


class TestLayeredForward:
    def test_matches_network_forward(self, paper_net):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((50, 64)).astype(np.float32)
        out = layered_forward(x, paper_net.weights, paper_net.biases)
        assert np.allclose(out[:, 0], paper_net.forward(x), atol=1e-5)

    def test_fused_equals_unfused(self, paper_net):
        rng = np.random.default_rng(4)
        x = rng.standard_normal((20, 64)).astype(np.float32)
        fused = layered_forward(x, paper_net.weights, paper_net.biases, fused=True)
        unfused = layered_forward(x, paper_net.weights, paper_net.biases, fused=False)
        assert np.allclose(fused, unfused, atol=1e-6)

    def test_ledger_charges_per_layer_traffic(self, paper_net):
        ledger = CostLedger(SW26010_PRO)
        x = np.zeros((100, 64), dtype=np.float32)
        layered_forward(
            x, paper_net.weights, paper_net.biases, ledger=ledger,
        )
        # every intermediate makes a round trip: traffic well above in+out.
        minimal = 4 * 100 * (64 + 1)
        assert ledger.dma_bytes > 5 * minimal
        assert ledger.simd_flops > 0


class TestBigFusion:
    def test_matches_direct_forward(self, paper_net):
        rng = np.random.default_rng(5)
        op = BigFusionOperator(paper_net.weights, paper_net.biases)
        for m in (1, 64, 1000, 9000):  # below / at / above one block
            x = rng.standard_normal((m, 64)).astype(np.float32)
            assert np.allclose(op(x)[:, 0], paper_net.forward(x), atol=1e-5)

    def test_respects_max_layers(self):
        rng = np.random.default_rng(6)
        weights = [rng.standard_normal((4, 4)).astype(np.float32) for _ in range(9)]
        biases = [np.zeros(4, dtype=np.float32) for _ in range(9)]
        with pytest.raises(ValueError):
            BigFusionOperator(weights, biases)

    def test_ldm_overflow_detected(self):
        rng = np.random.default_rng(7)
        w = rng.standard_normal((4096, 4096)).astype(np.float32)  # 64 MB layer
        with pytest.raises(LDMOverflowError):
            BigFusionOperator([w], [np.zeros(4096, dtype=np.float32)])

    def test_traffic_is_first_in_plus_last_out(self, paper_net):
        op = BigFusionOperator(paper_net.weights, paper_net.biases)
        ledger = CostLedger(SW26010_PRO)
        m = 512
        op(np.zeros((m, 64), dtype=np.float32), ledger=ledger)
        assert ledger.dma_bytes == pytest.approx(4 * m * (64 + 1))
        assert ledger.rma_bytes > 0

    def test_m_block_fits_ldm(self, paper_net):
        op = BigFusionOperator(paper_net.weights, paper_net.biases)
        spec = SW26010_PRO
        per_cpe = (
            2 * op.m_block * op.c_max * 4
            + int(np.ceil(op.param_bytes / spec.n_cpes))
            + max(w.nbytes + b.nbytes for w, b in zip(op.weights, op.biases))
        )
        assert per_cpe <= spec.ldm_bytes


class TestFig10Ladder:
    def test_speedups_within_paper_bands(self, paper_net):
        ladder = fig10_ladder(paper_net.weights, paper_net.biases, 32 * 16 * 16)
        speedups = ladder_speedups(ladder)
        for name, (lo, hi) in paper_bands().items():
            assert lo * 0.9 <= speedups[name] <= hi * 1.1, (
                f"{name}: {speedups[name]:.1f}x outside paper band ({lo}, {hi})"
            )

    def test_ladder_monotone(self, paper_net):
        ladder = fig10_ladder(paper_net.weights, paper_net.biases, 4096)
        times = [v.modeled_time for v in ladder]
        assert all(b < a for a, b in zip(times, times[1:]))

    def test_all_variants_functionally_equal(self, paper_net):
        ladder = fig10_ladder(paper_net.weights, paper_net.biases, 256)
        x = np.random.default_rng(8).standard_normal((256, 64)).astype(np.float32)
        outputs = [v.run(x) for v in ladder]
        for out in outputs[1:]:
            assert np.allclose(out, outputs[0], atol=1e-5)
