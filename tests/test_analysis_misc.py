"""Precipitation statistics, time-series recording, snapshots, reports."""

import numpy as np
import pytest

from repro.analysis import (
    PrecipitationStats,
    TimeSeriesRecorder,
    analyse_precipitation,
    run_with_snapshots,
)
from repro.analysis.precipitation import isolated_series
from repro.constants import CU, FE
from repro.core import TensorKMCEngine
from repro.io import ExperimentReport, load_lattice, save_lattice
from repro.lattice import LatticeState


def _lattice_with_cu(sites, shape=(8, 8, 8)):
    lat = LatticeState(shape)
    lat.occupancy[:] = FE
    for s in sites:
        lat.occupancy[lat.site_id(*s)] = CU
    return lat


class TestPrecipitation:
    def test_counts_isolated_and_clusters(self):
        lat = _lattice_with_cu(
            [(0, 0, 0, 0), (1, 0, 0, 0), (0, 4, 4, 4)]  # one pair + one isolated
        )
        stats = analyse_precipitation(lat, time=1.5)
        assert stats.time == 1.5
        assert stats.isolated == 1
        assert stats.n_clusters == 1
        assert stats.max_size == 2
        assert stats.mean_size == 2.0
        assert stats.histogram == {1: 1, 2: 1}

    def test_number_density_units(self):
        lat = _lattice_with_cu([(0, 0, 0, 0), (1, 0, 0, 0)])
        stats = analyse_precipitation(lat)
        expected = 1.0 / (lat.volume * 1e-30)
        assert stats.number_density == pytest.approx(expected)

    def test_empty_lattice(self):
        stats = analyse_precipitation(LatticeState((4, 4, 4)))
        assert stats.isolated == 0 and stats.max_size == 0
        assert stats.number_density == 0.0

    def test_isolated_series(self):
        stats = [
            PrecipitationStats(0.0, 5, 0, 0, 0.0, 0.0, {}),
            PrecipitationStats(1.0, 3, 1, 2, 2.0, 1.0, {}),
        ]
        arr = isolated_series(stats)
        assert arr.shape == (2, 2)
        assert arr[1, 1] == 3


class TestTimeSeries:
    def test_stride_sampling(self):
        rec = TimeSeriesRecorder(probe=lambda t: t * 2, stride=1.0)

        class _Ev:
            def __init__(self, t):
                self.time = t

        for t in (0.3, 0.7, 1.2, 1.9, 3.4):
            rec(_Ev(t))
        # samples at first event >= 0.0, >= 1.0, >= 2.0, >= 3.0
        assert rec.times == [0.3, 1.2, 3.4]
        assert rec.values == [0.6, 2.4, 6.8]

    def test_invalid_stride(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder(probe=lambda t: t, stride=0.0)

    def test_run_with_snapshots(self, tet_small, eam_small):
        lat = LatticeState((8, 8, 8))
        lat.randomize_alloy(np.random.default_rng(1), 0.05, 0.003)
        engine = TensorKMCEngine(
            lat, eam_small, tet_small, temperature=900.0,
            rng=np.random.default_rng(2),
        )
        rec = run_with_snapshots(
            engine, probe=lambda t: engine.step_count, stride=1e-9, n_steps=20
        )
        assert rec.times[0] == 0.0
        assert rec.times[-1] == pytest.approx(engine.time)
        assert rec.values[-1] == 20
        assert len(rec.times) >= 2


class TestSnapshots:
    def test_roundtrip(self, tmp_path):
        lat = LatticeState((4, 5, 6))
        lat.randomize_alloy(np.random.default_rng(0), 0.1, 0.01)
        path = str(tmp_path / "snap.npz")
        save_lattice(path, lat, time=3.25)
        loaded, t = load_lattice(path)
        assert t == 3.25
        assert loaded.shape == lat.shape
        assert np.array_equal(loaded.occupancy, lat.occupancy)
        assert loaded.a == lat.a


class TestReport:
    def test_render_alignment(self):
        rep = ExperimentReport("Fig. X", "demo")
        rep.add("speedup", "10x", "11.2x", "modeled")
        rep.add("memory", "56 MB", "31.7 MB")
        text = rep.render()
        assert "Fig. X" in text
        lines = text.splitlines()
        assert len(lines) == 4
        assert "speedup" in lines[2] and "modeled" in lines[2]
