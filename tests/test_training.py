"""NNP training: dataset generation, convergence, persistence."""

import numpy as np
import pytest

from repro.constants import CU, FE
from repro.nnp import (
    Adam,
    ElementNetworks,
    NNPotential,
    NNPTrainer,
    generate_structures,
    parity_report,
    train_test_split,
)
from repro.nnp.metrics import mae, r2_score, rmse
from repro.potentials import EAMPotential, FeatureTable


@pytest.fixture(scope="module")
def small_dataset(tet_small):
    oracle = EAMPotential(tet_small.shell_distances)
    rng = np.random.default_rng(9)
    return generate_structures(oracle, rng, n_structures=36, cells=(2, 2, 2))


class TestDataset:
    def test_sizes_in_paper_range(self, small_dataset):
        # 2x2x2 cells = 16 sites minus up to 4 vacancies.
        for s in small_dataset:
            assert 12 <= s.n_atoms <= 16

    def test_paper_default_sizes(self, tet_small):
        oracle = EAMPotential(tet_small.shell_distances)
        structs = generate_structures(
            oracle, np.random.default_rng(0), n_structures=5
        )
        for s in structs:
            assert 60 <= s.n_atoms <= 64  # paper Sec. 4.1.1

    def test_labels_are_consistent_with_oracle(self, small_dataset, tet_small):
        oracle = EAMPotential(tet_small.shell_distances)
        s = small_dataset[0]
        e, f = oracle.energy_and_forces(s.positions, s.species, s.cell)
        assert e == pytest.approx(s.energy)
        assert np.allclose(f, s.forces)

    def test_species_are_fe_cu(self, small_dataset):
        for s in small_dataset:
            assert set(np.unique(s.species)) <= {FE, CU}

    def test_split(self, small_dataset):
        train, test = train_test_split(small_dataset, np.random.default_rng(1), 30)
        assert len(train) == 30 and len(test) == 6
        with pytest.raises(ValueError):
            train_test_split(small_dataset, np.random.default_rng(1), 36)


class TestMetrics:
    def test_perfect_prediction(self):
        x = np.array([1.0, 2.0, 3.0])
        assert mae(x, x) == 0.0
        assert rmse(x, x) == 0.0
        assert r2_score(x, x) == 1.0

    def test_r2_of_mean_predictor_is_zero(self):
        ref = np.array([1.0, 2.0, 3.0, 4.0])
        pred = np.full(4, ref.mean())
        assert r2_score(pred, ref) == pytest.approx(0.0)

    def test_parity_report_keys(self):
        rep = parity_report(np.ones(3), np.ones(3))
        assert set(rep) == {"mae", "rmse", "r2"}


class TestAdam:
    def test_minimises_quadratic(self):
        x = np.array([5.0, -3.0])
        opt = Adam([x], lr=0.1)
        for _ in range(300):
            opt.step([2.0 * x])
        assert np.allclose(x, 0.0, atol=1e-3)

    def test_grad_length_checked(self):
        opt = Adam([np.zeros(2)])
        with pytest.raises(ValueError):
            opt.step([])


class TestTraining:
    def test_loss_decreases_and_fits(self, tet_small, small_dataset):
        train, test = train_test_split(small_dataset, np.random.default_rng(2), 30)
        table = FeatureTable(tet_small.shell_distances)
        rng = np.random.default_rng(3)
        nets = ElementNetworks((2 * table.n_dim, 24, 1), rng)
        model = NNPotential(table, nets, rcut=tet_small.rcut)
        trainer = NNPTrainer(model, train)
        history = trainer.train(rng, n_epochs=80, lr=3e-3)
        assert history.epoch_loss[-1] < history.epoch_loss[0]
        ev = trainer.evaluate_energies(test)
        rep = parity_report(ev["predicted"], ev["reference"])
        assert rep["r2"] > 0.9
        assert rep["mae"] < 0.05  # eV/atom on the tiny smoke net

    def test_empty_training_set_rejected(self, tet_small):
        table = FeatureTable(tet_small.shell_distances)
        nets = ElementNetworks((2 * table.n_dim, 8, 1), np.random.default_rng(0))
        model = NNPotential(table, nets, rcut=tet_small.rcut)
        with pytest.raises(ValueError):
            NNPTrainer(model, [])

    def test_save_load_roundtrip(self, tmp_path, tet_small, small_dataset):
        table = FeatureTable(tet_small.shell_distances)
        rng = np.random.default_rng(4)
        nets = ElementNetworks((2 * table.n_dim, 12, 1), rng)
        model = NNPotential(table, nets, rcut=tet_small.rcut)
        trainer = NNPTrainer(model, small_dataset[:10])
        trainer.train(rng, n_epochs=5)
        path = str(tmp_path / "model.npz")
        model.save(path)
        loaded = NNPotential.load(path)
        s = small_dataset[0]
        assert loaded.structure_energy(s) == pytest.approx(
            model.structure_energy(s), rel=1e-6
        )
        counts = np.ones((3, tet_small.n_shells, 2), dtype=np.float32)
        types = np.array([FE, CU, FE])
        assert np.allclose(
            loaded.energies_from_counts(types, counts),
            model.energies_from_counts(types, counts),
        )

    def test_network_width_validated(self, tet_small):
        table = FeatureTable(tet_small.shell_distances)
        nets = ElementNetworks((7, 8, 1), np.random.default_rng(0))
        with pytest.raises(ValueError):
            NNPotential(table, nets, rcut=tet_small.rcut)

    def test_reference_energies_capture_composition(self, tet_small, small_dataset):
        """After _prepare, the composition model alone explains most energy."""
        table = FeatureTable(tet_small.shell_distances)
        nets = ElementNetworks((2 * table.n_dim, 8, 1), np.random.default_rng(5))
        model = NNPotential(table, nets, rcut=tet_small.rcut)
        trainer = NNPTrainer(model, small_dataset)
        per_atom_residual = trainer.residual_targets / trainer.n_atoms_per_struct
        per_atom_total = trainer.energies / trainer.n_atoms_per_struct
        assert np.std(per_atom_residual) < np.std(per_atom_total)


class TestForceTraining:
    """The double-backprop force loss (exact for ReLU networks)."""

    def test_force_param_gradients_match_fd(self):
        from repro.nnp.network import AtomicNetwork

        rng = np.random.default_rng(0)
        net = AtomicNetwork((5, 7, 6, 1), rng, dtype=np.float64)
        x = rng.standard_normal((9, 5))
        v = rng.standard_normal((9, 5))

        def S():
            return float(np.sum(net.input_gradient(x) * v))

        _, cache = net.forward_cached(x)
        grads = net.force_param_gradients(cache, v)
        h = 1e-6
        for layer in range(net.n_layers):
            w = net.weights[layer]
            idx = (0, 0)
            w[idx] += h
            up = S()
            w[idx] -= 2 * h
            down = S()
            w[idx] += h
            assert (up - down) / (2 * h) == pytest.approx(
                grads[2 * layer][idx], rel=1e-5, abs=1e-8
            )
            # bias gradients of the input-gradient functional vanish a.e.
            assert np.all(grads[2 * layer + 1] == 0.0)

    def test_forces_vjp_is_adjoint_of_forces(self, tet_small):
        """<R, F(dE)> == <VJP(R), dE> for random directions."""
        from repro.nnp.descriptors import (
            build_pair_list,
            structure_forces,
            structure_forces_vjp,
        )

        oracle = EAMPotential(tet_small.shell_distances)
        rng = np.random.default_rng(5)
        s = generate_structures(oracle, rng, n_structures=1, cells=(2, 2, 2))[0]
        table = FeatureTable(tet_small.shell_distances)
        pairs = build_pair_list(s.positions, s.cell, tet_small.rcut)
        n_feat = 2 * table.n_dim
        dE = rng.standard_normal((s.n_atoms, n_feat))
        R = rng.standard_normal((s.n_atoms, 3))
        F = structure_forces(s.species, pairs, table, dE)
        V = structure_forces_vjp(s.species, pairs, table, R)
        assert float(np.sum(R * F)) == pytest.approx(
            float(np.sum(V * dE)), rel=1e-10
        )

    def test_end_to_end_gradient_matches_fd(self, tet_small, small_dataset):
        """Total (energy + force) batch gradient vs finite differences."""
        table = FeatureTable(tet_small.shell_distances)
        nets = ElementNetworks(
            (2 * table.n_dim, 6, 1), np.random.default_rng(2), dtype=np.float64
        )
        model = NNPotential(table, nets, rcut=tet_small.rcut)
        structs = small_dataset[:3]
        trainer = NNPTrainer(model, structs)
        w_f = 0.7

        def total_loss():
            scale = model.energy_scale
            l_e = 0.0
            for s in structs:
                l_e += ((model.structure_energy(s) - s.energy) / s.n_atoms / scale) ** 2
            l_e /= len(structs)
            sq, ncomp = 0.0, 0
            for s in structs:
                _, f = model.structure_energy_and_forces(s)
                d = f - s.forces
                sq += float(np.sum(d * d))
                ncomp += 3 * s.n_atoms
            return l_e + w_f * sq / ncomp

        class Capture:
            def step(self, grads):
                self.grads = [np.array(g, dtype=np.float64) for g in grads]

        cap = Capture()
        trainer._batch_step(np.arange(3), cap, force_weight=w_f)
        h = 1e-6
        net = model.networks.nets[0]
        w = net.weights[0]
        w[0, 0] += h
        up = total_loss()
        w[0, 0] -= 2 * h
        down = total_loss()
        w[0, 0] += h
        assert (up - down) / (2 * h) == pytest.approx(
            cap.grads[0][0, 0], rel=1e-4, abs=1e-8
        )

    def test_force_training_improves_force_mae(self, tet_small, small_dataset):
        train = small_dataset[:28]
        test = small_dataset[28:]
        results = {}
        for w_f in (0.0, 1.0):
            rng = np.random.default_rng(4)
            table = FeatureTable(tet_small.shell_distances)
            nets = ElementNetworks((2 * table.n_dim, 16, 1), rng)
            model = NNPotential(table, nets, rcut=tet_small.rcut)
            trainer = NNPTrainer(model, train)
            trainer.train(rng, n_epochs=50, lr=3e-3, force_weight=w_f)
            fv = trainer.evaluate_forces(test)
            results[w_f] = mae(fv["predicted"], fv["reference"])
        assert results[1.0] < results[0.0]
