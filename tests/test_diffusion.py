"""Physical validation: vacancy diffusion against the analytic result."""

import numpy as np
import pytest

from repro.analysis import (
    DisplacementTracker,
    analytic_vacancy_diffusivity,
    arrhenius_series,
    cluster_sizes,
    find_clusters,
    measure_vacancy_diffusivity,
)
from repro.constants import EA0_FE, KB_EV, VACANCY
from repro.core import TensorKMCEngine
from repro.lattice import LatticeState


def _single_vacancy_engine(tet, pot, temperature, seed):
    lattice = LatticeState((8, 8, 8))
    lattice.occupancy[lattice.site_id(0, 4, 4, 4)] = VACANCY
    return TensorKMCEngine(
        lattice, pot, tet, temperature=temperature,
        rng=np.random.default_rng(seed),
    )


class TestAnalytic:
    def test_arrhenius_form(self):
        d1 = analytic_vacancy_diffusivity(600.0, 2.87, EA0_FE)
        d2 = analytic_vacancy_diffusivity(1200.0, 2.87, EA0_FE)
        expected = np.exp(-EA0_FE / KB_EV * (1 / 1200 - 1 / 600))
        assert d2 / d1 == pytest.approx(expected)

    def test_scales_with_hop_length_squared(self):
        d1 = analytic_vacancy_diffusivity(800.0, 2.87, EA0_FE)
        d2 = analytic_vacancy_diffusivity(800.0, 2 * 2.87, EA0_FE)
        assert d2 / d1 == pytest.approx(4.0)


class TestMeasured:
    def test_single_walker_matches_analytic_on_average(self, tet_small, eam_small):
        """Ensemble-averaged MSD slope reproduces the analytic D.

        A single random-walk trajectory's |R|^2 fluctuates with O(1) relative
        variance, so several independent walkers are averaged.
        """
        temperature = 800.0
        measured = []
        for seed in range(12):
            engine = _single_vacancy_engine(tet_small, eam_small, temperature, seed)
            measured.append(
                measure_vacancy_diffusivity(engine, n_steps=600)["D"]
            )
        d_measured = float(np.mean(measured))
        d_analytic = analytic_vacancy_diffusivity(temperature, 2.87, EA0_FE)
        assert d_measured == pytest.approx(d_analytic, rel=0.5)

    def test_tracker_counts_every_hop(self, tet_small, eam_small):
        engine = _single_vacancy_engine(tet_small, eam_small, 800.0, 3)
        tracker = DisplacementTracker(engine)
        engine.run(n_steps=50, callback=tracker)
        assert tracker.hops == 50
        assert len(tracker.times) == 51
        # every hop adds exactly one 1NN step length to the path
        path_steps = np.linalg.norm(tracker.displacements[0])
        assert path_steps <= 50 * 2.87 * np.sqrt(3) / 2 + 1e-9

    def test_msd_monotone_nondecreasing_in_hops(self, tet_small, eam_small):
        engine = _single_vacancy_engine(tet_small, eam_small, 800.0, 4)
        tracker = DisplacementTracker(engine)
        engine.run(n_steps=30, callback=tracker)
        # MSD can fluctuate, but must stay non-negative and start at zero.
        assert tracker.msd[0] == 0.0
        assert min(tracker.msd) >= 0.0

    def test_diffusivity_requires_trajectory(self, tet_small, eam_small):
        engine = _single_vacancy_engine(tet_small, eam_small, 800.0, 5)
        tracker = DisplacementTracker(engine)
        with pytest.raises(ValueError):
            tracker.diffusivity()

    def test_arrhenius_series_monotone(self, tet_small, eam_small):
        def make(t):
            return _single_vacancy_engine(tet_small, eam_small, t, 11)

        series = arrhenius_series(make, [700.0, 1100.0], n_steps=300)
        # D rises steeply with temperature; even single-walker noise cannot
        # flip a factor exp(-Ea/k (1/1100 - 1/700)) ~ 70.
        assert series[1100.0] > series[700.0]


class TestVoidFormation:
    def test_vacancies_aggregate_into_voids(self, tet_small, eam_small):
        """Many vacancies cluster (void nucleation, paper Fig. 14)."""
        lattice = LatticeState((16, 16, 16))
        rng = np.random.default_rng(0)
        ids = rng.choice(lattice.n_sites, 40, replace=False)
        lattice.occupancy[ids] = VACANCY
        engine = TensorKMCEngine(
            lattice, eam_small, tet_small, temperature=800.0,
            rng=np.random.default_rng(9),
        )
        engine.run(n_steps=4000)
        sizes = cluster_sizes(find_clusters(lattice, species=VACANCY))
        assert sizes[0] >= 4  # a void has nucleated
        assert sizes.sum() == 40  # no vacancy lost
