"""Multicomponent (Fe-Cu-Ni) support — the 'chemically complex alloys' path.

The paper's motivation names Cu, Ni, Mn and Si solutes; this exercises the
whole stack with a ternary system: element codes 0 (Fe), 1 (Cu), 2 (Ni) and
vacancy code 3.
"""

import numpy as np
import pytest

from repro.analysis import find_clusters, warren_cowley
from repro.constants import CU, FE
from repro.core import TensorKMCEngine, TripleEncoding
from repro.core.vacancy_system import VacancySystemEvaluator
from repro.lattice import LatticeState
from repro.nnp import ElementNetworks, NNPotential, NNPTrainer, generate_structures
from repro.potentials import EAMParameters, EAMPotential, FeatureTable, counts_from_types

NI = 2
VAC3 = 3


@pytest.fixture(scope="module")
def ternary_setup():
    tet = TripleEncoding(rcut=2.87)
    potential = EAMPotential(tet.shell_distances, EAMParameters.fe_cu_ni())
    return tet, potential


def _ternary_lattice(seed=5, shape=(8, 8, 8)):
    lattice = LatticeState(shape, vacancy_code=VAC3)
    rng = np.random.default_rng(seed)
    lattice.randomize_multicomponent(
        rng, {CU: 0.05, NI: 0.03}, vacancy_fraction=0.003
    )
    return lattice


class TestTernaryPotential:
    def test_n_elements(self, ternary_setup):
        _, potential = ternary_setup
        assert potential.n_elements == 3
        assert potential.vacancy_code == 3

    def test_oracle_forces_fd(self, ternary_setup):
        _, potential = ternary_setup
        rng = np.random.default_rng(0)
        a = 2.87
        pos = []
        for i in range(2):
            for j in range(2):
                for k in range(2):
                    pos.append([i * a, j * a, k * a])
                    pos.append([(i + 0.5) * a, (j + 0.5) * a, (k + 0.5) * a])
        pos = np.asarray(pos) + rng.normal(0, 0.04, (16, 3))
        spec = rng.choice([FE, CU, NI], size=16)
        cell = np.array([2 * a] * 3)
        _, forces = potential.energy_and_forces(pos, spec, cell)
        h = 1e-5
        for idx in (0, 9):
            p1, p2 = pos.copy(), pos.copy()
            p1[idx, 0] += h
            p2[idx, 0] -= h
            e1, _ = potential.energy_and_forces(p1, spec, cell)
            e2, _ = potential.energy_and_forces(p2, spec, cell)
            assert -(e1 - e2) / (2 * h) == pytest.approx(forces[idx, 0], abs=1e-6)

    def test_counts_mask_excludes_vacancy_code_3(self, ternary_setup):
        tet, _ = ternary_setup
        types = np.array([[FE, CU, NI, VAC3] + [FE] * (tet.n_local - 4)])
        counts = counts_from_types(
            types, tet.cet_shell, tet.n_shells, n_elements=3
        )
        assert counts.sum() == tet.n_local - 1  # the vacancy dropped
        assert counts[0, :, NI].sum() == 1


class TestTernaryLattice:
    def test_counts_and_codes(self):
        lattice = _ternary_lattice()
        counts = lattice.species_counts()
        assert counts.shape == (4,)
        assert counts[NI] > 0 and counts[VAC3] > 0
        assert counts.sum() == lattice.n_sites
        assert np.array_equal(
            lattice.vacancy_ids, lattice.sites_of_species(VAC3)
        )

    def test_solute_code_validated(self):
        lattice = LatticeState((4, 4, 4), vacancy_code=VAC3)
        with pytest.raises(ValueError):
            lattice.randomize_multicomponent(
                np.random.default_rng(0), {VAC3: 0.1}, 0.01
            )


class TestTernaryEngine:
    def test_delta_matches_brute_force(self, ternary_setup):
        tet, potential = ternary_setup
        lattice = _ternary_lattice(seed=9)
        evaluator = VacancySystemEvaluator(tet, potential)
        vac = int(lattice.vacancy_ids[0])
        vet = lattice.occupancy[lattice.neighbor_ids(vac, tet.all_offsets)]
        energies = evaluator.evaluate(vet)

        def total_energy(state):
            ids = np.arange(state.n_sites)
            half = state.half_coords(ids)
            nb = state.ids_from_half(half[:, None, :] + tet.cet_offsets[None, :, :])
            counts = counts_from_types(
                state.occupancy[nb], tet.cet_shell, tet.n_shells, n_elements=3
            )
            return potential.region_energy(state.occupancy[ids], counts)

        before = total_energy(lattice)
        for direction in (0, 4):
            if not energies.valid[direction]:
                continue
            target = int(
                lattice.neighbor_ids(vac, tet.nn_offsets[direction][None, :])[0]
            )
            trial = lattice.copy()
            trial.swap(vac, target)
            assert energies.delta[direction] == pytest.approx(
                total_energy(trial) - before, abs=1e-8
            )

    def test_evaluate_delta_matches_full(self, ternary_setup):
        tet, potential = ternary_setup
        lattice = _ternary_lattice(seed=11)
        evaluator = VacancySystemEvaluator(tet, potential)
        vac = int(lattice.vacancy_ids[0])
        vet = lattice.occupancy[lattice.neighbor_ids(vac, tet.all_offsets)]
        full = evaluator.evaluate(vet)
        fast = evaluator.evaluate_delta(vet)
        assert np.allclose(fast.delta, full.delta, atol=1e-9)

    def test_engine_conserves_all_species(self, ternary_setup):
        tet, potential = ternary_setup
        lattice = _ternary_lattice(seed=13)
        before = lattice.species_counts().copy()
        engine = TensorKMCEngine(
            lattice, potential, tet, temperature=900.0,
            rng=np.random.default_rng(1), ea0=(0.65, 0.56, 0.68),
        )
        engine.run(n_steps=60)
        assert np.array_equal(lattice.species_counts(), before)

    def test_vacancy_code_mismatch_rejected(self, ternary_setup):
        tet, potential = ternary_setup
        binary_lattice = LatticeState((8, 8, 8))  # vacancy code 2
        binary_lattice.occupancy[0] = 2
        with pytest.raises(ValueError):
            TensorKMCEngine(binary_lattice, potential, tet)

    def test_ni_cosegrates_with_cu(self, ternary_setup):
        """Ni decorates Cu clusters under aging (the RPV phenomenology)."""
        tet, potential = ternary_setup
        lattice = LatticeState((12, 12, 12), vacancy_code=VAC3)
        rng = np.random.default_rng(21)
        lattice.randomize_multicomponent(
            rng, {CU: 0.03, NI: 0.02}, vacancy_fraction=0.0
        )
        ids = rng.choice(lattice.n_sites, 6, replace=False)
        lattice.occupancy[ids] = VAC3
        engine = TensorKMCEngine(
            lattice, potential, tet, temperature=600.0,
            rng=np.random.default_rng(2), ea0=(0.65, 0.56, 0.60),
        )
        alpha_before = warren_cowley(lattice, rcut=2.87, species=NI).get(0, 0.0)
        engine.run(n_steps=4000)
        alpha_after = warren_cowley(lattice, rcut=2.87, species=NI).get(0, 0.0)
        assert alpha_after > alpha_before  # Ni orders toward solute clusters
        assert len(find_clusters(lattice, species=CU)) > 0


class TestTernaryNNP:
    def test_trains_on_ternary_data(self, ternary_setup):
        tet, oracle = ternary_setup
        rng = np.random.default_rng(3)
        structures = generate_structures(
            oracle, rng, n_structures=16, cells=(2, 2, 2),
            solute_codes=(CU, NI),
        )
        assert any(np.any(s.species == NI) for s in structures)
        table = FeatureTable(tet.shell_distances)
        nets = ElementNetworks((3 * table.n_dim, 12, 1), rng, n_elements=3)
        model = NNPotential(table, nets, rcut=tet.rcut)
        assert model.n_elements == 3
        trainer = NNPTrainer(model, structures[:12])
        history = trainer.train(rng, n_epochs=30, lr=3e-3)
        assert history.epoch_loss[-1] < history.epoch_loss[0]

    def test_ternary_nnp_drives_engine(self, ternary_setup):
        tet, oracle = ternary_setup
        rng = np.random.default_rng(4)
        table = FeatureTable(tet.shell_distances)
        nets = ElementNetworks((3 * table.n_dim, 8, 1), rng, n_elements=3)
        model = NNPotential(table, nets, rcut=tet.rcut)
        model.set_standardisation(
            np.zeros(3 * table.n_dim), np.ones(3 * table.n_dim),
            np.array([-4.0, -3.5, -3.8]), 0.05,
        )
        lattice = _ternary_lattice(seed=31)
        before = lattice.species_counts().copy()
        engine = TensorKMCEngine(
            lattice, model, tet, temperature=900.0,
            rng=np.random.default_rng(5), ea0=(0.65, 0.56, 0.68),
        )
        engine.run(n_steps=25)
        assert np.array_equal(lattice.species_counts(), before)
