"""Rate law (Eqs. 1-3) and residence-time algorithm."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import ATTEMPT_FREQUENCY, CU, EA0_CU, EA0_FE, FE, KB_EV
from repro.core.rates import RateModel, residence_time
from repro.core.vacancy_system import StateEnergies


def _energies(delta, valid=None, species=None):
    delta = np.asarray(delta, dtype=np.float64)
    valid = np.ones(8, dtype=bool) if valid is None else np.asarray(valid)
    species = (
        np.full(8, FE, dtype=np.int64) if species is None else np.asarray(species)
    )
    return StateEnergies(
        initial=0.0, delta=delta, valid=valid, migrating_species=species
    )


class TestRateModel:
    def test_zero_delta_gives_reference_barrier(self):
        model = RateModel(573.0)
        rates = model.rates(_energies(np.zeros(8)))
        expected = ATTEMPT_FREQUENCY * np.exp(-EA0_FE / (KB_EV * 573.0))
        assert np.allclose(rates, expected)

    def test_cu_migrates_faster_than_fe(self):
        """E_a^0(Cu) = 0.56 < E_a^0(Fe) = 0.65 -> higher rate."""
        model = RateModel(573.0)
        fe = model.rates(_energies(np.zeros(8)))[0]
        cu = model.rates(_energies(np.zeros(8), species=np.full(8, CU)))[0]
        assert cu > fe
        assert cu / fe == pytest.approx(
            np.exp((EA0_FE - EA0_CU) / (KB_EV * 573.0))
        )

    def test_downhill_hops_faster(self):
        model = RateModel(573.0)
        downhill = model.rates(_energies(np.full(8, -0.2)))[0]
        uphill = model.rates(_energies(np.full(8, 0.2)))[0]
        assert downhill > uphill

    def test_half_delta_in_barrier(self):
        model = RateModel(573.0)
        ea = model.migration_energies(_energies(np.full(8, 0.3)))
        assert np.allclose(ea, EA0_FE + 0.15)

    def test_invalid_hops_zero_rate(self):
        model = RateModel(573.0)
        valid = np.array([True] * 4 + [False] * 4)
        rates = model.rates(_energies(np.zeros(8), valid=valid))
        assert np.all(rates[:4] > 0) and np.all(rates[4:] == 0)

    @given(t1=st.floats(min_value=300, max_value=800),
           t2=st.floats(min_value=810, max_value=2000))
    @settings(max_examples=20, deadline=None)
    def test_rates_increase_with_temperature(self, t1, t2):
        e = _energies(np.zeros(8))
        assert RateModel(t2).rates(e)[0] > RateModel(t1).rates(e)[0]

    def test_invalid_temperature(self):
        with pytest.raises(ValueError):
            RateModel(0.0)

    def test_detailed_balance_ratio(self):
        """Forward/backward rates satisfy exp(-dE/kT) with Eq. 2's 1/2 rule."""
        model = RateModel(600.0)
        de = 0.12
        fwd = model.rates(_energies(np.full(8, de)))[0]
        bwd = model.rates(_energies(np.full(8, -de)))[0]
        assert fwd / bwd == pytest.approx(np.exp(-de / (KB_EV * 600.0)))


class TestResidenceTime:
    def test_deterministic_value(self):
        assert residence_time(2.0, np.exp(-1.0)) == pytest.approx(0.5)

    def test_u_one_gives_zero(self):
        assert residence_time(5.0, 1.0) == 0.0

    @given(
        rate=st.floats(min_value=1e-3, max_value=1e15),
        u=st.floats(min_value=1e-12, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_positive_and_scales_inversely(self, rate, u):
        dt = residence_time(rate, u)
        assert dt >= 0.0
        assert residence_time(rate * 2, u) == pytest.approx(dt / 2)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            residence_time(0.0, 0.5)
        with pytest.raises(ValueError):
            residence_time(1.0, 0.0)
        with pytest.raises(ValueError):
            residence_time(1.0, 1.5)

    def test_mean_matches_inverse_rate(self):
        rng = np.random.default_rng(0)
        total = 3.0e5
        samples = [residence_time(total, 1.0 - rng.random()) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(1.0 / total, rel=0.05)
