"""Vectorized vs legacy hot-path equivalence.

The SoA rewrite of the event hot path is only admissible because it changes
*layout*, not semantics: the broadcast invalidation query must hit exactly
the slots the old per-point candidate scan hit (edge cases included), batch
propensity updates must leave the same tree bits as scalar ones, and whole
trajectories — serial and parallel — must be bit-identical across
``EventKernel.set_hot_path`` modes.  See DESIGN.md ("Why the vectorized
invalidation must not change the hit set").
"""

import numpy as np
import pytest

from repro.core.engine import TensorKMCEngine
from repro.core.kernel import EventKernel, SimpleRateEntry
from repro.core.profiling import PHASES, PhaseProfiler
from repro.core.tet import TripleEncoding
from repro.core.vacancy_cache import VacancyCache
from repro.lattice.occupancy import LatticeState
from repro.parallel.engine import SublatticeKMC
from repro.potentials.eam import EAMPotential


def _make_kernel(keys, *, threshold, scale=1.0, periodic=None, hot_path):
    """A kernel over synthetic keys that *are* their half coordinates."""

    def build(key):
        return SimpleRateEntry(rates=np.full(8, 0.5))

    def pos(key):
        return np.asarray(key, dtype=np.int64)

    return EventKernel(
        build, pos, threshold=threshold, scale=scale,
        periodic_half=periodic, keys=list(keys), hot_path=hot_path,
    )


def _mode_pair(keys, **kwargs):
    return tuple(
        _make_kernel(keys, hot_path=mode, **kwargs)
        for mode in ("vectorized", "legacy")
    )


def _invalidate_both(kernels, points):
    """Invalidate in both kernels; assert identical counts and stale sets."""
    points = np.asarray(points, dtype=np.int64)
    counts = [k.invalidate_near(points) for k in kernels]
    assert counts[0] == counts[1]
    stales = [k.cache.stale_slots() for k in kernels]
    assert stales[0] == stales[1]
    return counts[0], stales[0]


class TestInvalidationEquivalence:
    def test_reach_boundary_is_inclusive_in_both_modes(self):
        keys = [(0, 0, 0), (4, 0, 0), (5, 0, 0)]
        kernels = _mode_pair(keys, threshold=4.0)
        for k in kernels:
            k.refresh()
        # (4,0,0) sits exactly at the threshold: the <= comparison (with the
        # shared 1e-9 guard) must include it; (5,0,0) must stay fresh.
        count, stale = _invalidate_both(kernels, [[0, 0, 0]])
        assert count == 2
        assert stale == [0, 1]

    def test_periodic_wrap_hits_across_the_boundary(self):
        periodic = (16, 16, 16)
        keys = [(1, 0, 0), (15, 0, 0), (8, 0, 0)]
        kernels = _mode_pair(keys, threshold=2.0, periodic=periodic)
        for k in kernels:
            k.refresh()
        # (15,0,0) is 15 half-units away unwrapped but 1 via the periodic
        # image; (8,0,0) is far either way.
        count, stale = _invalidate_both(kernels, [[0, 0, 0]])
        assert count == 2
        assert stale == [0, 1]

    def test_parked_slots_are_excluded(self):
        keys = [(0, 0, 0), (1, 0, 0), (2, 0, 0)]
        kernels = _mode_pair(keys, threshold=10.0)
        for k in kernels:
            k.refresh()
            k.remove(1)
        count, stale = _invalidate_both(kernels, [[0, 0, 0]])
        assert count == 2
        assert stale == [0, 2]

    def test_already_stale_slots_do_not_recount(self):
        keys = [(0, 0, 0), (1, 0, 0)]
        kernels = _mode_pair(keys, threshold=10.0)
        for k in kernels:
            k.refresh()
        _invalidate_both(kernels, [[0, 0, 0]])
        # Second hit on an already-stale registry: zero *new* invalidations.
        count, _ = _invalidate_both(kernels, [[0, 0, 0]])
        assert count == 0

    def test_fuzz_identical_hit_sets(self):
        rng = np.random.default_rng(5)
        periodic = (12, 12, 12)
        for _ in range(25):
            n = int(rng.integers(1, 20))
            keys = {
                tuple(int(v) for v in rng.integers(0, 12, size=3))
                for _ in range(n)
            }
            kernels = _mode_pair(
                sorted(keys), threshold=float(rng.uniform(0.5, 6.0)),
                periodic=periodic,
            )
            for k in kernels:
                k.refresh()
            points = rng.integers(0, 12, size=(int(rng.integers(1, 4)), 3))
            _invalidate_both(kernels, points)


class TestTrajectoryIdentity:
    def _engine(self, mode, seed=11):
        tet = TripleEncoding(rcut=2.87)
        potential = EAMPotential(tet.shell_distances)
        lattice = LatticeState((6, 6, 6))
        lattice.randomize_alloy(
            np.random.default_rng(seed), cu_fraction=0.05,
            vacancy_fraction=0.01,
        )
        engine = TensorKMCEngine(
            lattice, potential, tet, rng=np.random.default_rng(seed + 1)
        )
        if mode == "legacy":
            engine.evaluator.dedup = "always"
            engine.kernel.set_hot_path("legacy")
        engine.record_events = True
        return engine

    def test_serial_trajectories_bit_identical(self):
        vec = self._engine("vectorized")
        leg = self._engine("legacy")
        vec.run(n_steps=60)
        leg.run(n_steps=60)
        assert vec.time == leg.time
        assert np.array_equal(vec.lattice.occupancy, leg.lattice.occupancy)
        assert vec.events == leg.events

    def test_parallel_trajectories_bit_identical(self):
        sims = []
        for mode in ("vectorized", "legacy"):
            tet = TripleEncoding(rcut=2.87)
            potential = EAMPotential(tet.shell_distances)
            lattice = LatticeState((8, 8, 16))
            lattice.randomize_alloy(
                np.random.default_rng(3), cu_fraction=0.05,
                vacancy_fraction=0.01,
            )
            sim = SublatticeKMC(
                lattice, potential, tet, n_ranks=2, temperature=1100.0,
                t_stop=4e-9, seed=3,
            )
            if mode == "legacy":
                for rank in sim.ranks:
                    rank.evaluator.dedup = "always"
                    rank.kernel.set_hot_path("legacy")
            sim.run(6)
            sims.append(sim)
        vec, leg = sims
        assert vec.time == leg.time
        assert np.array_equal(
            vec.gather_global().occupancy, leg.gather_global().occupancy
        )
        assert [c.events for c in vec.cycles] == [c.events for c in leg.cycles]
        assert [c.sector for c in vec.cycles] == [c.sector for c in leg.cycles]


class TestStoreBatchEquivalence:
    def test_store_rates_matches_per_slot_store(self):
        keys = [(i, 0, 0) for i in range(5)]
        batch = VacancyCache(keys)
        scalar = VacancyCache(keys)
        rng = np.random.default_rng(2)
        rows = rng.uniform(0.0, 3.0, size=(5, 8))
        batch.store_rates(np.arange(5), rows)
        for slot in range(5):
            scalar.store(slot, SimpleRateEntry(rates=rows[slot]))
        assert np.array_equal(batch.rates[:5], scalar.rates[:5])
        assert np.array_equal(batch.total_rates[:5], scalar.total_rates[:5])
        assert batch.stale_slots() == scalar.stale_slots() == []


class TestPhaseProfiler:
    def test_profiler_accumulates_and_resets(self):
        prof = PhaseProfiler()
        with prof.phase("select"):
            pass
        with prof.phase("select"):
            pass
        assert prof.calls["select"] == 2
        assert prof.seconds["select"] >= 0.0
        assert "select_seconds" in prof.summary()
        prof.reset()
        # Reset zeroes in place: cached timers keep their dict slots.
        assert all(v == 0.0 for v in prof.seconds.values())
        assert all(v == 0 for v in prof.calls.values())

    def test_serial_summary_has_phase_seconds(self):
        tet = TripleEncoding(rcut=2.87)
        potential = EAMPotential(tet.shell_distances)
        lattice = LatticeState((6, 6, 6))
        lattice.randomize_alloy(
            np.random.default_rng(1), cu_fraction=0.05, vacancy_fraction=0.01
        )
        engine = TensorKMCEngine(
            lattice, potential, tet, rng=np.random.default_rng(2)
        )
        engine.run(n_steps=5)
        summary = engine.summary()
        for name in ("rebuild", "select", "hop", "invalidate"):
            assert summary[f"{name}_seconds"] > 0.0

    def test_parallel_cycle_stats_and_checkpoint_round_trip(self, tmp_path):
        from repro.io.checkpoint import (
            load_parallel_checkpoint,
            save_parallel_checkpoint,
        )

        tet = TripleEncoding(rcut=2.87)
        potential = EAMPotential(tet.shell_distances)
        lattice = LatticeState((8, 8, 16))
        lattice.randomize_alloy(
            np.random.default_rng(7), cu_fraction=0.05, vacancy_fraction=0.01
        )
        sim = SublatticeKMC(
            lattice, potential, tet, n_ranks=2, temperature=1100.0,
            t_stop=4e-9, seed=7,
        )
        sim.run(4)
        assert sum(c.rebuild_seconds for c in sim.cycles) > 0.0
        assert sum(c.exchange_seconds for c in sim.cycles) > 0.0
        summary = sim.summary()
        for name in PHASES:
            assert f"{name}_seconds" in summary

        path = tmp_path / "phases.npz"
        save_parallel_checkpoint(str(path), sim)
        resumed = load_parallel_checkpoint(str(path), potential, tet=tet)
        # CycleStats equality covers every field, the float64 phase seconds
        # included — the archive must round-trip them bit-exactly.
        assert resumed.cycles == sim.cycles
