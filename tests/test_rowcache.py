"""Persistent row-energy cache: unit behaviour and bit-exact trajectories.

The :class:`~repro.core.rowcache.RowEnergyCache` memoizes unique-row
energies across batches under the same ``batch_row_invariant`` contract
that licenses in-batch dedup, so the observable guarantee is absolute:
every fixed-seed trajectory (serial, parallel, campaign, resumed from a
checkpoint) is bit-identical with the cache on and off — including when a
tiny byte budget forces constant evict/re-insert cycling.  The packed
int64 signature is the content address, so its injectivity over the
admissible domain (values < 256, at most 7 channels) is fuzzed here too.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baseline.memory_model import tensorkmc_memory_model
from repro.campaign import ReplicaCampaign, ReplicaSpec, occupancy_digest
from repro.core.engine import TensorKMCEngine
from repro.core.rowcache import (
    ROW_CACHE_MODES,
    ROW_ENTRY_BYTES,
    RowEnergyCache,
    resolve_row_cache,
)
from repro.core.vacancy_system import VacancySystemEvaluator
from repro.io import (
    load_checkpoint,
    load_parallel_checkpoint,
    save_checkpoint,
    save_parallel_checkpoint,
)
from repro.lattice import LatticeState
from repro.parallel import SublatticeKMC


def _torch_available() -> bool:
    try:
        import torch  # noqa: F401
    except Exception:
        return False
    return True


needs_torch = pytest.mark.skipif(
    not _torch_available(), reason="torch not importable in this environment"
)

BACKENDS = [
    pytest.param("numpy", id="numpy"),
    pytest.param("torch", id="torch", marks=needs_torch),
]


# ---------------------------------------------------------------------------
# Unit behaviour
# ---------------------------------------------------------------------------


class TestRowEnergyCacheUnit:
    def test_roundtrip_is_bit_exact(self):
        cache = RowEnergyCache()
        for dtype in (np.float32, np.float64):
            cache.clear()
            keys = np.array([3, 7, 11], dtype=np.int64)
            values = np.array(
                [0.1, -4.000000001, np.pi], dtype=dtype
            )
            cache.insert(keys, values)
            found, got = cache.lookup(keys)
            assert found.all()
            assert got.dtype == values.dtype
            # Bit-exact through the Python-float staging, not just close.
            assert np.array_equal(
                got.view(np.uint8), values.view(np.uint8)
            )

    def test_lookup_counts_hits_and_misses(self):
        cache = RowEnergyCache()
        cache.insert(np.array([1, 2]), np.array([0.5, 1.5]))
        found, _ = cache.lookup(np.array([1, 2, 3]))
        assert found.tolist() == [True, True, False]
        assert (cache.hits, cache.misses) == (2, 1)
        assert cache.hit_rate == pytest.approx(2.0 / 3.0)

    def test_lru_eviction_order(self):
        # Budget for exactly two entries; touching key 1 must save it.
        cache = RowEnergyCache(max_bytes=2 * ROW_ENTRY_BYTES)
        cache.insert(np.array([1, 2]), np.array([1.0, 2.0]))
        cache.lookup(np.array([1]))  # key 1 is now hottest
        cache.insert(np.array([3]), np.array([3.0]))
        assert cache.evictions == 1
        found, _ = cache.lookup(np.array([1, 2, 3]))
        assert found.tolist() == [True, False, True]

    def test_budget_too_small_rejected(self):
        with pytest.raises(ValueError, match="cannot hold a single"):
            RowEnergyCache(max_bytes=ROW_ENTRY_BYTES - 1)

    def test_sync_invalidates_on_epoch_change(self, nnp_small):
        cache = RowEnergyCache()
        cache.sync(nnp_small)
        cache.insert(np.array([1]), np.array([1.0]))
        cache.lookup(np.array([1]))
        assert len(cache) == 1
        # Same potential, same epoch: contents survive.
        cache.sync(nnp_small)
        assert len(cache) == 1
        # A weight/standardisation update bumps the epoch: contents are
        # stale energies of a *different* function and must be dropped —
        # but the counters are monotonic work totals and persist.
        nnp_small.set_standardisation(
            feature_mean=nnp_small.feature_mean,
            feature_std=nnp_small.feature_std,
            reference_energies=nnp_small.reference_energies,
            energy_scale=nnp_small.energy_scale,
        )
        cache.sync(nnp_small)
        assert len(cache) == 0
        assert (cache.hits, cache.misses) == (1, 0)

    def test_restore_counters(self):
        cache = RowEnergyCache()
        cache.restore_counters(10, 4, 2)
        assert cache.counters() == {
            "row_cache_hits": 10,
            "row_cache_misses": 4,
            "row_cache_evictions": 2,
        }
        assert len(cache) == 0  # contents stay cold

    def test_memory_bytes_matches_analytic_model(self, tet_small):
        cache = RowEnergyCache()
        cache.insert(np.arange(37), np.arange(37, dtype=np.float64))
        report = tensorkmc_memory_model(
            n_sites=1024, n_vacancies=4, tet=tet_small, row_cache=len(cache)
        )
        assert report["row_cache"] == cache.memory_bytes()
        assert cache.memory_bytes() == 37 * ROW_ENTRY_BYTES

    def test_summary_keys(self):
        cache = RowEnergyCache()
        summary = cache.summary()
        for key in (
            "row_cache_hits", "row_cache_misses", "row_cache_evictions",
            "row_cache_hit_rate", "row_cache_entries", "row_cache_bytes",
        ):
            assert key in summary


class TestResolveRowCache:
    def test_unknown_mode_lists_allowed(self, eam_small):
        with pytest.raises(ValueError) as err:
            resolve_row_cache("sometimes", eam_small)
        for mode in ROW_CACHE_MODES:
            assert mode in str(err.value)

    def test_auto_gates_like_dedup(self, eam_small, nnp_small):
        assert resolve_row_cache("auto", nnp_small) is True
        assert resolve_row_cache("auto", eam_small) is False
        assert resolve_row_cache("on", eam_small) is True
        assert resolve_row_cache("off", nnp_small) is False

    def test_engine_knob_validates_eagerly(self, tet_small, eam_small):
        lattice = LatticeState((8, 8, 8))
        lattice.randomize_alloy(np.random.default_rng(1), 0.05, 0.003)
        with pytest.raises(ValueError, match="allowed modes"):
            TensorKMCEngine(
                lattice, eam_small, tet_small, temperature=900.0,
                rng=np.random.default_rng(2), row_cache="maybe",
            )


# ---------------------------------------------------------------------------
# Packed-signature injectivity (the content address must not collide)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def evaluator(tet_small, nnp_small):
    """A dedup-enabled evaluator whose ``_dedup_rows`` we probe directly."""
    return VacancySystemEvaluator(tet_small, nnp_small)


admissible_row = st.tuples(
    st.integers(min_value=0, max_value=255),  # centre species byte
    st.lists(
        st.integers(min_value=0, max_value=255), min_size=1, max_size=7
    ),
)


class TestPackedSignature:
    @settings(max_examples=200, deadline=None)
    @given(st.data())
    def test_injective_over_admissible_domain(self, evaluator, data):
        """Distinct rows -> distinct packed keys (and vice versa).

        The admissible domain of the one-int64 packing is values < 256
        over at most 7 channels plus the centre byte; within it the key
        is a bijection onto 8-byte strings, so the unique-row count seen
        by dedup (and the cache) equals the true distinct-row count.
        """
        n_vals = data.draw(st.integers(min_value=1, max_value=7))
        rows = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=255),
                    st.lists(
                        st.integers(min_value=0, max_value=255),
                        min_size=n_vals, max_size=n_vals,
                    ),
                ),
                min_size=1, max_size=24,
            )
        )
        center = np.array([r[0] for r in rows], dtype=np.int64)
        counts = np.array([r[1] for r in rows], dtype=np.float32)
        first, inverse, packed = evaluator._dedup_rows(center, counts)
        assert packed is not None
        truth = {(r[0], tuple(r[1])) for r in rows}
        keys = evaluator.xp.to_numpy(packed)
        assert len(np.unique(keys)) == len(truth)
        # first/inverse must reconstruct the exact rows.
        assert np.array_equal(keys[first][inverse], keys)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_wide_fallback_keys_are_integer_exact(
        self, tet_small, nnp_small, backend
    ):
        """Regression: >7-channel rows used a float32 staging matrix whose
        24-bit mantissa collapsed distinct large counts onto one key."""
        ev = VacancySystemEvaluator(tet_small, nnp_small, backend=backend)
        center = ev.xp.from_numpy(np.zeros(2, dtype=np.int64))
        wide = np.zeros((2, 8), dtype=np.float64)  # 8 channels -> fallback
        wide[0, 0] = 2.0**24
        wide[1, 0] = 2.0**24 + 1  # float32(2**24 + 1) == float32(2**24)
        first, inverse, packed = ev._dedup_rows(
            center, ev.xp.from_numpy(wide)
        )
        assert packed is None  # out of the packed content-address domain
        assert len(first) == 2  # the two rows must NOT collapse
        assert inverse[0] != inverse[1]


# ---------------------------------------------------------------------------
# Trajectory bit-identity: serial / parallel / campaign / resume
# ---------------------------------------------------------------------------

N_STEPS = 40


def _serial_engine(tet, pot, **kw):
    lattice = LatticeState((8, 8, 8))
    lattice.randomize_alloy(np.random.default_rng(9), 0.05, 0.004)
    return TensorKMCEngine(
        lattice, pot, tet, temperature=900.0,
        rng=np.random.default_rng(10), **kw,
    )


@pytest.fixture(scope="module")
def serial_off(tet_small, nnp_small):
    """Digest + clock of the cache-off NNP run every variant must hit."""
    engine = _serial_engine(tet_small, nnp_small, row_cache="off")
    assert engine.row_cache is None
    engine.run(n_steps=N_STEPS, on_no_moves="stop")
    return occupancy_digest(engine.lattice), engine.time


class TestSerialTrajectory:
    def test_cache_on_is_bit_identical_and_hits(
        self, tet_small, nnp_small, serial_off
    ):
        engine = _serial_engine(tet_small, nnp_small)  # auto -> on for NNP
        assert engine.row_cache is not None
        engine.run(n_steps=N_STEPS, on_no_moves="stop")
        assert (occupancy_digest(engine.lattice), engine.time) == serial_off
        assert engine.row_cache.hits > 0
        summary = engine.summary()
        assert summary["row_cache_hit_rate"] > 0.0
        assert summary["row_cache_bytes"] == engine.row_cache.memory_bytes()

    def test_evict_reinsert_cycling_stays_identical(
        self, tet_small, nnp_small, serial_off
    ):
        # A 16-entry budget far below the working set forces continuous
        # evict/re-insert churn; the trajectory must not notice.
        engine = _serial_engine(
            tet_small, nnp_small, row_cache="on",
            row_cache_mb=16 * ROW_ENTRY_BYTES / (1024.0 * 1024.0),
        )
        assert engine.row_cache.max_bytes == 16 * ROW_ENTRY_BYTES
        engine.run(n_steps=N_STEPS, on_no_moves="stop")
        assert (occupancy_digest(engine.lattice), engine.time) == serial_off
        assert engine.row_cache.evictions > 0
        assert len(engine.row_cache) <= 16

    def test_on_mode_with_table_potential_is_inert(
        self, tet_small, eam_small
    ):
        """``on`` attaches a cache for a non-network potential, but dedup
        never runs so the cache is never consulted — same permissive
        semantics as ``dedup="always"``; the trajectory is unaffected."""
        ref = _serial_engine(tet_small, eam_small, row_cache="off")
        ref.run(n_steps=N_STEPS, on_no_moves="stop")
        engine = _serial_engine(tet_small, eam_small, row_cache="on")
        assert engine.row_cache is not None
        engine.run(n_steps=N_STEPS, on_no_moves="stop")
        assert occupancy_digest(engine.lattice) == occupancy_digest(
            ref.lattice
        )
        assert engine.time == ref.time
        assert (engine.row_cache.hits, engine.row_cache.misses) == (0, 0)

    def test_checkpoint_resume_is_cold_but_counters_persist(
        self, tmp_path, tet_small, nnp_small, serial_off
    ):
        path = str(tmp_path / "rc.npz")
        interrupted = _serial_engine(tet_small, nnp_small, row_cache="on")
        interrupted.run(n_steps=N_STEPS // 2, on_no_moves="stop")
        resident = len(interrupted.row_cache)
        counters = interrupted.row_cache.counters()
        assert resident > 0
        save_checkpoint(path, interrupted)
        resumed = load_checkpoint(path, nnp_small, tet=tet_small)
        # Contents are deliberately not serialised: the restart is cold...
        assert resumed.row_cache is not None
        assert len(resumed.row_cache) == 0
        # ...but the monotonic counters carry over.
        assert resumed.row_cache.counters() == counters
        resumed.run(n_steps=N_STEPS - N_STEPS // 2, on_no_moves="stop")
        # Cold cache after restart rebuilds bit-identically.
        assert (occupancy_digest(resumed.lattice), resumed.time) == serial_off

    def test_checkpoint_round_trips_mode_and_budget(
        self, tmp_path, tet_small, nnp_small
    ):
        engine = _serial_engine(
            tet_small, nnp_small, row_cache="on", row_cache_mb=0.5
        )
        engine.run(n_steps=5, on_no_moves="stop")
        path = str(tmp_path / "rc2.npz")
        save_checkpoint(path, engine)
        resumed = load_checkpoint(path, nnp_small, tet=tet_small)
        assert resumed.row_cache_mode == "on"
        assert resumed.row_cache.max_bytes == engine.row_cache.max_bytes


def _parallel_sim(tet, pot, **kw):
    lattice = LatticeState((16, 16, 16))
    lattice.randomize_alloy(np.random.default_rng(3), 0.05, 0.003)
    return SublatticeKMC(
        lattice, pot, tet, n_ranks=4, temperature=900.0,
        t_stop=2e-10, seed=5, **kw,
    )


class TestParallelTrajectory:
    N_CYCLES = 4

    def _digest(self, sim):
        return occupancy_digest(sim.gather_global()), sim.time

    def test_cache_on_is_bit_identical(self, tet_small, nnp_small):
        off = _parallel_sim(tet_small, nnp_small, row_cache="off")
        assert off.row_cache is None
        on = _parallel_sim(tet_small, nnp_small)  # auto -> on
        assert on.row_cache is not None
        for _ in range(self.N_CYCLES):
            off.cycle()
            on.cycle()
        assert self._digest(on) == self._digest(off)
        assert on.row_cache.hits > 0
        summary = on.summary()
        assert summary["row_cache_hit_rate"] > 0.0

    def test_cycle_stats_count_shared_cache_once(self, tet_small, nnp_small):
        """Rank kernels share one cache; the per-cycle deltas must merge
        its counters exactly once, so summed stats equal the totals."""
        sim = _parallel_sim(tet_small, nnp_small)
        for _ in range(self.N_CYCLES):
            sim.cycle()
        hits = sum(c.row_cache_hits for c in sim.cycles)
        misses = sum(c.row_cache_misses for c in sim.cycles)
        assert (hits, misses) == (sim.row_cache.hits, sim.row_cache.misses)

    def test_parallel_checkpoint_resume_is_cold_and_identical(
        self, tmp_path, tet_small, nnp_small
    ):
        ref = _parallel_sim(tet_small, nnp_small, row_cache="off")
        for _ in range(self.N_CYCLES):
            ref.cycle()

        sim = _parallel_sim(tet_small, nnp_small, row_cache="on")
        for _ in range(self.N_CYCLES // 2):
            sim.cycle()
        counters = sim.row_cache.counters()
        path = str(tmp_path / "par.npz")
        save_parallel_checkpoint(path, sim)
        resumed = load_parallel_checkpoint(path, nnp_small, tet=tet_small)
        assert resumed.row_cache_mode == "on"
        assert len(resumed.row_cache) == 0  # cold restart
        assert resumed.row_cache.counters() == counters
        for _ in range(self.N_CYCLES - self.N_CYCLES // 2):
            resumed.cycle()
        assert self._digest(resumed) == self._digest(ref)


class TestCampaignSharedCache:
    SPECS = [
        ReplicaSpec("r0", seed=0, n_steps=N_STEPS),
        ReplicaSpec("r1", seed=1, n_steps=N_STEPS),
        ReplicaSpec("r2", seed=2, n_steps=N_STEPS),
    ]

    def _factory(self, tet, pot):
        def factory(spec):
            lattice = LatticeState((8, 8, 8))
            lattice.randomize_alloy(
                np.random.default_rng(9 + spec.seed), 0.05, 0.004
            )
            return TensorKMCEngine(
                lattice, pot, tet, temperature=900.0,
                rng=np.random.default_rng(10 + spec.seed),
                row_cache="off",  # campaign owns the shared cache
            )
        return factory

    def _run(self, tet, pot, mode, row_cache):
        campaign = ReplicaCampaign(
            self.SPECS, self._factory(tet, pot), mode=mode,
            row_cache=row_cache,
        )
        results = campaign.run()
        return campaign, [(r.digest, r.time) for r in results]

    def test_shared_cache_is_bit_identical_and_shared(
        self, tet_small, nnp_small
    ):
        _, off = self._run(tet_small, nnp_small, "shared", "off")
        campaign, on = self._run(tet_small, nnp_small, "shared", "on")
        assert on == off
        # One campaign-wide cache, hit by every replica.
        assert campaign.row_cache is not None
        assert campaign.row_cache.hits > 0
        assert campaign.summary()["row_cache_hit_rate"] > 0.0

    def test_sequential_mode_matches_too(self, tet_small, nnp_small):
        _, off = self._run(tet_small, nnp_small, "sequential", "off")
        _, on = self._run(tet_small, nnp_small, "sequential", "on")
        assert on == off

    def test_unknown_mode_rejected_eagerly(self, tet_small, nnp_small):
        with pytest.raises(ValueError, match="allowed modes"):
            ReplicaCampaign(
                self.SPECS, self._factory(tet_small, nnp_small),
                row_cache="perhaps",
            )
