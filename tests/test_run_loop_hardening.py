"""Regression tests for the run-loop hardening fixes.

Three long-standing sharp edges in the run loops, each with the test that
failed before its fix:

* :meth:`SerialAKMCBase.run` used to propagate :class:`NoMovesError` out of
  any frozen system, killing the whole process even when "no moves left" is
  a perfectly good terminal state; ``on_no_moves="stop"`` now ends the run
  cleanly and returns the executed-event count.
* :func:`run_resilient` used to overwrite whatever file sat at
  ``checkpoint_path`` with its entry checkpoint — including an unrelated
  archive or a *later* checkpoint of the same campaign; it now validates
  kind/shape/grid/cycle-count compatibility and refuses with a clear error.
* :meth:`SerialAKMCBase.summary` (and the parallel driver's) used to blind
  ``dict.update`` three namespaces, so a counter name drifting between the
  kernel and the engine silently overwrote data; merges now raise on any
  key collision.
"""

import numpy as np
import pytest

from repro.constants import VACANCY
from repro.core.engine import NoMovesError, TensorKMCEngine
from repro.core.profiling import PHASES, merge_disjoint
from repro.io.checkpoint import save_checkpoint, save_parallel_checkpoint
from repro.lattice import LatticeState
from repro.parallel import SublatticeKMC, run_resilient


def _engine(lattice, tet, pot, seed=7):
    return TensorKMCEngine(
        lattice, pot, tet, temperature=900.0, rng=np.random.default_rng(seed)
    )


def _frozen_engine(tet, pot):
    """A system with zero total propensity: every site is a vacancy, so no
    direction has a migrating atom and the rate tree is empty from step 0."""
    lattice = LatticeState((4, 4, 4))
    lattice.occupancy[:] = VACANCY
    return _engine(lattice, tet, pot)


def _parallel_sim(tet, pot, shape=(16, 16, 16), n_ranks=4, seed=5, lattice_seed=3):
    lattice = LatticeState(shape)
    lattice.randomize_alloy(np.random.default_rng(lattice_seed), 0.05, 0.003)
    return SublatticeKMC(
        lattice, pot, tet, n_ranks=n_ranks, temperature=900.0,
        t_stop=2e-10, seed=seed,
    )


# ----------------------------------------------------------------------
# S1: frozen systems are results, not crashes
# ----------------------------------------------------------------------
class TestNoMovesPolicy:
    def test_frozen_system_raises_by_default(self, tet_small, eam_small):
        engine = _frozen_engine(tet_small, eam_small)
        with pytest.raises(NoMovesError):
            engine.run(n_steps=5)

    def test_stop_policy_returns_executed_count(self, tet_small, eam_small):
        # Failed before the fix: run() had no policy knob and NoMovesError
        # escaped to the caller even for a legitimately frozen system.
        engine = _frozen_engine(tet_small, eam_small)
        assert engine.run(n_steps=5, on_no_moves="stop") == 0
        assert engine.step_count == 0

    def test_stop_policy_mid_horizon(
        self, tet_small, eam_small, alloy_lattice, monkeypatch
    ):
        # A system that freezes after a few events must return the events
        # it did execute, not lose them to an exception.
        engine = _engine(alloy_lattice, tet_small, eam_small)
        real_step = engine.step
        calls = {"n": 0}

        def step():
            if calls["n"] >= 3:
                raise NoMovesError("frozen mid-run")
            calls["n"] += 1
            return real_step()

        monkeypatch.setattr(engine, "step", step)
        assert engine.run(n_steps=10, on_no_moves="stop") == 3

    def test_raise_policy_mid_horizon(
        self, tet_small, eam_small, alloy_lattice, monkeypatch
    ):
        engine = _engine(alloy_lattice, tet_small, eam_small)
        monkeypatch.setattr(
            engine, "step", lambda: (_ for _ in ()).throw(NoMovesError("x"))
        )
        with pytest.raises(NoMovesError):
            engine.run(n_steps=10, on_no_moves="raise")

    def test_unknown_policy_rejected(self, tet_small, eam_small, alloy_lattice):
        engine = _engine(alloy_lattice, tet_small, eam_small)
        with pytest.raises(ValueError, match="on_no_moves"):
            engine.run(n_steps=1, on_no_moves="ignore")


# ----------------------------------------------------------------------
# S2: run_resilient must not clobber incompatible archives
# ----------------------------------------------------------------------
class TestCheckpointClobberGuard:
    def test_refuses_serial_archive(self, tmp_path, tet_small, eam_small):
        # Failed before the fix: the entry checkpoint overwrote the serial
        # archive without looking at it.
        path = str(tmp_path / "ck.npz")
        lattice = LatticeState((8, 8, 8))
        lattice.randomize_alloy(np.random.default_rng(1), 0.05, 0.003)
        save_checkpoint(path, _engine(lattice, tet_small, eam_small))
        sim = _parallel_sim(tet_small, eam_small)
        with pytest.raises(ValueError, match="serial"):
            run_resilient(sim, 1, path, eam_small, tet=tet_small)

    def test_refuses_unreadable_file(self, tmp_path, tet_small, eam_small):
        path = tmp_path / "ck.npz"
        path.write_text("definitely not an npz archive")
        sim = _parallel_sim(tet_small, eam_small)
        with pytest.raises(ValueError, match="not a readable"):
            run_resilient(sim, 1, str(path), eam_small, tet=tet_small)

    def test_refuses_shape_mismatch(self, tmp_path, tet_small, eam_small):
        path = str(tmp_path / "ck.npz")
        other = _parallel_sim(tet_small, eam_small, shape=(16, 16, 32))
        save_parallel_checkpoint(path, other)
        sim = _parallel_sim(tet_small, eam_small)
        with pytest.raises(ValueError, match="shape"):
            run_resilient(sim, 1, path, eam_small, tet=tet_small)

    def test_refuses_grid_mismatch(self, tmp_path, tet_small, eam_small):
        path = str(tmp_path / "ck.npz")
        other = _parallel_sim(tet_small, eam_small, n_ranks=2)
        save_parallel_checkpoint(path, other)
        sim = _parallel_sim(tet_small, eam_small, n_ranks=4)
        with pytest.raises(ValueError, match="grid"):
            run_resilient(sim, 1, path, eam_small, tet=tet_small)

    def test_refuses_archive_ahead_of_sim(self, tmp_path, tet_small, eam_small):
        path = str(tmp_path / "ck.npz")
        ahead = _parallel_sim(tet_small, eam_small)
        ahead.cycle()
        ahead.cycle()
        save_parallel_checkpoint(path, ahead)
        fresh = _parallel_sim(tet_small, eam_small)
        with pytest.raises(ValueError, match="ahead"):
            run_resilient(fresh, 1, path, eam_small, tet=tet_small)

    def test_accepts_compatible_earlier_archive(
        self, tmp_path, tet_small, eam_small
    ):
        path = str(tmp_path / "ck.npz")
        sim = _parallel_sim(tet_small, eam_small)
        save_parallel_checkpoint(path, sim)
        sim.cycle()
        sim, recoveries = run_resilient(sim, 1, path, eam_small, tet=tet_small)
        assert recoveries == 0
        assert len(sim.cycles) == 2

    def test_fresh_path_still_works(self, tmp_path, tet_small, eam_small):
        sim = _parallel_sim(tet_small, eam_small)
        sim, recoveries = run_resilient(
            sim, 1, str(tmp_path / "new.npz"), eam_small, tet=tet_small
        )
        assert recoveries == 0
        assert len(sim.cycles) == 1


# ----------------------------------------------------------------------
# S3: summary namespaces must stay disjoint
# ----------------------------------------------------------------------
class TestSummaryCollisions:
    def test_merge_disjoint_raises_and_names_key(self):
        with pytest.raises(ValueError, match="'steps'"):
            merge_disjoint({"steps": 1}, {"steps": 2})

    def test_merge_disjoint_merges_disjoint(self):
        assert merge_disjoint({"a": 1}, {"b": 2}, {"c": 3}) == {
            "a": 1, "b": 2, "c": 3
        }

    def test_engine_summary_collision_detected(
        self, tet_small, eam_small, alloy_lattice
    ):
        # Failed before the fix: a kernel counter named like an engine field
        # was silently overwritten by dict.update.
        engine = _engine(alloy_lattice, tet_small, eam_small)
        real = engine.kernel.summary()
        engine.kernel.summary = lambda: {**real, "steps": -1}
        with pytest.raises(ValueError, match="'steps'"):
            engine.summary()

    def test_engine_summary_contains_all_namespaces(
        self, tet_small, eam_small, alloy_lattice
    ):
        engine = _engine(alloy_lattice, tet_small, eam_small)
        engine.run(n_steps=3)
        out = engine.summary()
        assert out["steps"] == 3
        assert "cache_hits" in out  # kernel counters
        assert "rebuild_seconds" in out  # profiler phases

    def test_parallel_summary_contains_all_namespaces(
        self, tet_small, eam_small
    ):
        sim = _parallel_sim(tet_small, eam_small)
        sim.cycle()
        out = sim.summary()
        assert out["cycles"] == 1
        for name in PHASES:
            assert f"{name}_seconds" in out
