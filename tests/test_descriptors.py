"""Off-lattice descriptors: Eq. 5 vs the tabulated Eq. 6 path, force chain rule."""

import numpy as np
import pytest

from repro.constants import CU, FE
from repro.lattice import LatticeState
from repro.nnp.dataset import Structure
from repro.nnp.descriptors import build_pair_list, structure_features
from repro.potentials import FeatureTable, counts_from_types


class TestPairList:
    def test_pairs_symmetric(self):
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 8.0, (20, 3))
        pairs = build_pair_list(pos, np.array([8.0, 8.0, 8.0]), rcut=3.0)
        # every ordered pair has its reverse
        fwd = set(zip(pairs.i.tolist(), pairs.j.tolist()))
        assert all((j, i) in fwd for i, j in fwd)

    def test_distances_below_cutoff(self):
        rng = np.random.default_rng(1)
        pos = rng.uniform(0, 10.0, (15, 3))
        pairs = build_pair_list(pos, np.array([10.0] * 3), rcut=4.0)
        assert np.all(pairs.r < 4.0)
        assert np.all(pairs.r > 0.0)

    def test_unit_vectors_normalised(self):
        rng = np.random.default_rng(2)
        pos = rng.uniform(0, 9.0, (12, 3))
        pairs = build_pair_list(pos, np.array([9.0] * 3), rcut=4.0)
        norms = np.linalg.norm(pairs.unit, axis=1)
        assert np.allclose(norms, 1.0)

    def test_small_cell_includes_multiple_images(self):
        """A cell smaller than 2*rcut must count periodic images."""
        pos = np.zeros((1, 3))
        pairs = build_pair_list(pos, np.array([3.0, 3.0, 3.0]), rcut=4.0)
        # The lone atom sees its own images.
        assert pairs.n_pairs > 0
        assert np.all(pairs.i == 0) and np.all(pairs.j == 0)


class TestEq5VsEq6:
    def test_continuous_matches_tabulated_on_perfect_lattice(self, tet_small):
        """Eq. 5 on ideal positions == Eq. 6 from shell counts (exactly)."""
        lattice = LatticeState((6, 6, 6))
        rng = np.random.default_rng(3)
        lattice.occupancy[:] = np.where(rng.random(lattice.n_sites) < 0.15, CU, FE)
        table = FeatureTable(tet_small.shell_distances, dtype=np.float64)

        # Tabulated path.
        ids = np.arange(lattice.n_sites)
        half = lattice.half_coords(ids)
        nb = lattice.ids_from_half(half[:, None, :] + tet_small.cet_offsets[None, :, :])
        counts = counts_from_types(
            lattice.occupancy[nb], tet_small.cet_shell, tet_small.n_shells
        )
        feats_tab = table.features_from_counts(counts.astype(np.float64))

        # Continuous path.
        pos = lattice.positions(ids).astype(np.float64)
        cell = np.array([6 * lattice.a] * 3)
        pairs = build_pair_list(pos, cell, rcut=tet_small.rcut + 1e-9)
        feats_cont = structure_features(lattice.occupancy.astype(int), pairs, table)

        assert np.allclose(feats_tab, feats_cont, atol=1e-10)


class TestForces:
    def test_nnp_forces_match_finite_differences(self, nnp_small):
        rng = np.random.default_rng(4)
        a = 2.87
        pos = []
        for i in range(3):
            for j in range(3):
                for k in range(3):
                    pos.append([i * a, j * a, k * a])
                    pos.append([(i + 0.5) * a, (j + 0.5) * a, (k + 0.5) * a])
        pos = np.asarray(pos) + rng.normal(0, 0.03, (54, 3))
        spec = rng.choice([FE, CU], size=54, p=[0.8, 0.2])
        s = Structure(
            positions=pos, species=spec, cell=np.array([3 * a] * 3),
            energy=0.0, forces=np.zeros((54, 3)),
        )
        energy, forces = nnp_small.structure_energy_and_forces(s)
        assert np.isfinite(energy)
        h = 2e-4  # float32 network -> coarser probe
        for idx in (0, 17):
            for c in range(3):
                sp = Structure(pos.copy(), spec, s.cell, 0.0, s.forces)
                sp.positions[idx, c] += h
                sm = Structure(pos.copy(), spec, s.cell, 0.0, s.forces)
                sm.positions[idx, c] -= h
                fd = -(nnp_small.structure_energy(sp) - nnp_small.structure_energy(sm)) / (2 * h)
                assert fd == pytest.approx(forces[idx, c], rel=0.08, abs=2e-2)

    def test_forces_sum_to_zero(self, nnp_small):
        """Translational invariance: total force vanishes."""
        rng = np.random.default_rng(5)
        a = 2.87
        base, _ = [], None
        for i in range(2):
            for j in range(2):
                for k in range(2):
                    base.append([i * a, j * a, k * a])
                    base.append([(i + 0.5) * a, (j + 0.5) * a, (k + 0.5) * a])
        pos = np.asarray(base) + rng.normal(0, 0.05, (16, 3))
        spec = rng.choice([FE, CU], size=16)
        s = Structure(pos, spec, np.array([2 * a] * 3), 0.0, np.zeros((16, 3)))
        _, forces = nnp_small.structure_energy_and_forces(s)
        assert np.allclose(forces.sum(axis=0), 0.0, atol=1e-6)
