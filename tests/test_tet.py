"""Triple-encoding tabulation: the paper's Sec. 4.1.1 sizes and invariants."""

import numpy as np
import pytest

from repro.constants import RCUT_SHORT, RCUT_STANDARD
from repro.core.tet import TripleEncoding


class TestPaperSizes:
    def test_standard_cutoff_sizes(self, tet_standard):
        d = tet_standard.describe()
        assert d["n_local"] == 112  # paper Sec. 4.1.1
        assert d["n_region"] == 253  # paper Sec. 4.1.1

    def test_short_cutoff_n_local(self):
        assert TripleEncoding(RCUT_SHORT).n_local == 64

    def test_n_all_partition(self, tet_standard):
        assert tet_standard.n_all == tet_standard.n_region + tet_standard.n_out


class TestOrdering:
    def test_center_first(self, tet_small):
        assert np.array_equal(tet_small.all_offsets[0], [0, 0, 0])

    def test_1nn_block(self, tet_small):
        block = tet_small.all_offsets[1:9]
        assert np.array_equal(block, tet_small.nn_offsets)
        assert np.all(np.abs(block) == 1)

    def test_direction_vet_index(self, tet_small):
        assert [tet_small.direction_vet_index(k) for k in range(8)] == list(range(1, 9))
        with pytest.raises(ValueError):
            tet_small.direction_vet_index(8)

    def test_all_offsets_unique(self, tet_standard):
        keys = {tuple(o) for o in tet_standard.all_offsets}
        assert len(keys) == tet_standard.n_all


class TestNET:
    def test_net_shape(self, tet_standard):
        assert tet_standard.net_ids.shape == (
            tet_standard.n_region,
            tet_standard.n_local,
        )

    def test_net_is_consistent_with_cet(self, tet_small):
        """all_offsets[net_ids[i, j]] == all_offsets[i] + cet_offsets[j]."""
        for i in range(tet_small.n_region):
            expected = tet_small.all_offsets[i] + tet_small.cet_offsets
            actual = tet_small.all_offsets[tet_small.net_ids[i]]
            assert np.array_equal(actual, expected)

    def test_center_neighbors_are_cet(self, tet_small):
        """NET row 0 maps exactly onto the CET offsets."""
        actual = tet_small.all_offsets[tet_small.net_ids[0]]
        assert np.array_equal(actual, tet_small.cet_offsets)

    def test_region_closed_under_1nn_neighborhoods(self, tet_small):
        """Every neighbour of the centre or a 1NN site is a region site."""
        region = {tuple(o) for o in tet_small.all_offsets[: tet_small.n_region]}
        for base in np.vstack([[0, 0, 0], tet_small.nn_offsets]):
            for off in tet_small.cet_offsets:
                assert tuple(base + off) in region

    def test_shell_of_cet_entries(self, tet_standard):
        d = tet_standard.geometry.offset_distance(tet_standard.cet_offsets)
        assert np.allclose(
            tet_standard.shell_distances[tet_standard.cet_shell], d
        )


class TestInvalidation:
    def test_invalidation_radius_covers_all_sites(self, tet_standard):
        d = tet_standard.geometry.offset_distance(tet_standard.all_offsets)
        assert tet_standard.invalidation_radius >= d.max() - 1e-9

    def test_invalidation_radius_bounded(self, tet_standard):
        # at most 2*rcut + one 1NN step (region reach + neighbour reach)
        bound = 2 * tet_standard.rcut + tet_standard.geometry.a * np.sqrt(3) / 2
        assert tet_standard.invalidation_radius <= bound + 1e-9


class TestErrors:
    def test_rcut_below_1nn_rejected(self):
        with pytest.raises(ValueError):
            TripleEncoding(rcut=1.0)

    def test_standard_constant(self):
        assert TripleEncoding(RCUT_STANDARD).rcut == RCUT_STANDARD
