"""Table 1 memory models validated against the live engine allocations."""

import numpy as np
import pytest

from repro.baseline import (
    OpenKMCEngine,
    format_table,
    openkmc_memory_model,
    per_atom_bytes,
    tensorkmc_memory_model,
)
from repro.core import TensorKMCEngine
from repro.lattice import LatticeState
from repro.potentials import FeatureTable


def _alloy(seed=5):
    lat = LatticeState((8, 8, 8))
    lat.randomize_alloy(np.random.default_rng(seed), 0.05, 0.003)
    return lat


class TestOpenKMCModel:
    def test_model_matches_live_engine(self, tet_small, eam_small):
        lat = _alloy()
        engine = OpenKMCEngine(
            lat, eam_small, tet_small, maintain_atom_arrays=False
        )
        live = engine.memory_report()
        model = openkmc_memory_model(lat.n_sites, mode="eam")
        for key in ("lattice", "T", "POS_ID", "E_V", "E_R"):
            assert model[key] == live[key], key
        assert model["total"] == live["total"]

    def test_nnp_mode_charges_features(self, tet_small, nnp_small):
        lat = _alloy()
        engine = OpenKMCEngine(
            lat, nnp_small, tet_small, maintain_atom_arrays=False
        )
        live = engine.memory_report()
        model = openkmc_memory_model(lat.n_sites, mode="nnp")
        assert model["features"] == live["features"]

    def test_linear_scaling(self):
        small = openkmc_memory_model(1_000_000)
        big = openkmc_memory_model(2_000_000)
        assert big["total"] == pytest.approx(2 * small["total"])

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            openkmc_memory_model(100, mode="bogus")


class TestTensorKMCModel:
    def test_cache_entry_bytes_close_to_live(self, tet_small, eam_small):
        lat = _alloy()
        engine = TensorKMCEngine(
            lat, eam_small, tet_small, rng=np.random.default_rng(0)
        )
        engine.run(n_steps=5)
        live = engine.cache.memory_bytes()
        n_live = sum(e is not None for e in engine.cache.entries)
        model = tensorkmc_memory_model(lat.n_sites, n_live, tet_small)
        assert model["VAC_cache"] == pytest.approx(live, rel=0.1)

    def test_vacancy_cache_independent_of_domain_size(self, tet_small):
        a = tensorkmc_memory_model(1_000_000, 10, tet_small)
        b = tensorkmc_memory_model(100_000_000, 10, tet_small)
        assert a["VAC_cache"] == b["VAC_cache"]

    def test_paper_memory_ratio(self, tet_standard):
        """TensorKMC needs a small fraction of OpenKMC's memory (Table 1)."""
        n_sites = 128_000_000
        n_vac = int(8e-6 * n_sites)
        table = FeatureTable(tet_standard.shell_distances)
        open_mem = openkmc_memory_model(n_sites, mode="eam")
        tensor_mem = tensorkmc_memory_model(n_sites, n_vac, tet_standard, table)
        ratio = tensor_mem["total"] / open_mem["total"]
        assert ratio < 0.34  # paper: ~1/3 at runtime, far less on arrays

    def test_per_atom_bytes(self):
        rep = {"total": 1000.0}
        assert per_atom_bytes(rep, 100) == 10.0


class TestFormatting:
    def test_format_table_contains_rows(self, tet_small):
        rows = {
            "OpenKMC": openkmc_memory_model(1000),
            "TensorKMC": tensorkmc_memory_model(1000, 2, tet_small),
        }
        text = format_table(rows)
        assert "POS_ID" in text and "VAC_cache" in text and "total" in text
