"""Serial AKMC engines: conservation laws, determinism, cache equivalence."""

import numpy as np
import pytest

from repro.baseline import OpenKMCEngine
from repro.constants import CU, FE, VACANCY
from repro.core import NoMovesError, TensorKMCEngine
from repro.lattice import LatticeState


def _make_lattice(seed=7, shape=(8, 8, 8), cu=0.05, vac=0.003):
    lattice = LatticeState(shape)
    lattice.randomize_alloy(np.random.default_rng(seed), cu, vac)
    return lattice


class TestBasicStepping:
    def test_time_strictly_increases(self, tet_small, eam_small):
        engine = TensorKMCEngine(
            _make_lattice(), eam_small, tet_small, rng=np.random.default_rng(1)
        )
        times = [engine.step().time for _ in range(20)]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_species_conserved(self, tet_small, eam_small):
        lattice = _make_lattice()
        before = lattice.species_counts().copy()
        engine = TensorKMCEngine(
            lattice, eam_small, tet_small, rng=np.random.default_rng(2)
        )
        engine.run(n_steps=50)
        assert np.array_equal(lattice.species_counts(), before)

    def test_events_are_1nn_hops(self, tet_small, eam_small):
        lattice = _make_lattice()
        engine = TensorKMCEngine(
            lattice, eam_small, tet_small, rng=np.random.default_rng(3)
        )
        for _ in range(30):
            ev = engine.step()
            d = lattice.minimum_image_displacement(ev.from_site, ev.to_site)
            assert np.linalg.norm(d) == pytest.approx(
                lattice.a * np.sqrt(3) / 2
            )

    def test_vacancy_moves_to_target(self, tet_small, eam_small):
        lattice = _make_lattice()
        engine = TensorKMCEngine(
            lattice, eam_small, tet_small, rng=np.random.default_rng(4)
        )
        ev = engine.step()
        assert lattice.occupancy[ev.to_site] == VACANCY
        assert lattice.occupancy[ev.from_site] == ev.migrating_species
        assert ev.migrating_species in (FE, CU)

    def test_registry_tracks_vacancies(self, tet_small, eam_small):
        lattice = _make_lattice()
        engine = TensorKMCEngine(
            lattice, eam_small, tet_small, rng=np.random.default_rng(5)
        )
        engine.run(n_steps=40)
        assert sorted(engine.cache.sites) == sorted(int(s) for s in lattice.vacancy_ids)

    def test_run_until_time(self, tet_small, eam_small):
        engine = TensorKMCEngine(
            _make_lattice(), eam_small, tet_small,
            temperature=900.0, rng=np.random.default_rng(6),
        )
        engine.step()
        horizon = engine.time * 5
        engine.run(t_end=horizon, n_steps=10_000)
        assert engine.time >= horizon

    def test_run_requires_budget(self, tet_small, eam_small):
        engine = TensorKMCEngine(
            _make_lattice(), eam_small, tet_small, rng=np.random.default_rng(7)
        )
        with pytest.raises(ValueError):
            engine.run()

    def test_no_vacancies_rejected(self, tet_small, eam_small):
        lattice = LatticeState((4, 4, 4))
        with pytest.raises(ValueError):
            TensorKMCEngine(lattice, eam_small, tet_small)

    def test_callback_sees_every_event(self, tet_small, eam_small):
        engine = TensorKMCEngine(
            _make_lattice(), eam_small, tet_small, rng=np.random.default_rng(8)
        )
        seen = []
        engine.run(n_steps=15, callback=seen.append)
        assert len(seen) == 15
        assert [e.step for e in seen] == list(range(1, 16))


class TestDeterminism:
    def test_same_seed_same_trajectory(self, tet_small, eam_small):
        results = []
        for _ in range(2):
            lattice = _make_lattice(seed=11)
            engine = TensorKMCEngine(
                lattice, eam_small, tet_small, rng=np.random.default_rng(99)
            )
            engine.run(n_steps=40)
            results.append((lattice.occupancy.copy(), engine.time))
        assert np.array_equal(results[0][0], results[1][0])
        assert results[0][1] == results[1][1]

    def test_different_seeds_diverge(self, tet_small, eam_small):
        finals = []
        for seed in (1, 2):
            lattice = _make_lattice(seed=11)
            engine = TensorKMCEngine(
                lattice, eam_small, tet_small, rng=np.random.default_rng(seed)
            )
            engine.run(n_steps=40)
            finals.append(lattice.occupancy.copy())
        assert not np.array_equal(finals[0], finals[1])


class TestCacheEquivalence:
    """The Fig. 8 claim: cached TensorKMC == recompute-everything baseline."""

    @pytest.mark.parametrize("potential_fixture", ["eam_small", "nnp_small"])
    def test_identical_trajectories(self, request, tet_small, potential_fixture):
        potential = request.getfixturevalue(potential_fixture)
        lat_a = _make_lattice(seed=21)
        lat_b = lat_a.copy()
        fast = TensorKMCEngine(
            lat_a, potential, tet_small, rng=np.random.default_rng(5)
        )
        slow = OpenKMCEngine(
            lat_b, potential, tet_small, rng=np.random.default_rng(5),
            maintain_atom_arrays=False,
        )
        for _ in range(60):
            ev_f = fast.step()
            ev_s = slow.step()
            assert (ev_f.from_site, ev_f.to_site) == (ev_s.from_site, ev_s.to_site)
            assert ev_f.dt == ev_s.dt
        assert np.array_equal(lat_a.occupancy, lat_b.occupancy)

    def test_cache_actually_reuses(self, tet_small, eam_small):
        lattice = _make_lattice(seed=31, vac=0.004)
        engine = TensorKMCEngine(
            lattice, eam_small, tet_small, rng=np.random.default_rng(0)
        )
        engine.run(n_steps=50)
        assert engine.cache.stats.reuses > 0

    def test_linear_vs_tree_propensity(self, tet_small, eam_small):
        finals = []
        for store in ("tree", "linear"):
            lattice = _make_lattice(seed=41)
            engine = TensorKMCEngine(
                lattice, eam_small, tet_small,
                rng=np.random.default_rng(77), propensity=store,
            )
            engine.run(n_steps=50)
            finals.append((lattice.occupancy.copy(), engine.time))
        assert np.array_equal(finals[0][0], finals[1][0])
        assert finals[0][1] == pytest.approx(finals[1][1], rel=1e-12)


class TestOpenKMCArrays:
    def test_atom_arrays_stay_consistent(self, tet_small, eam_small):
        lattice = _make_lattice(seed=51)
        engine = OpenKMCEngine(
            lattice, eam_small, tet_small, rng=np.random.default_rng(1),
            maintain_atom_arrays=True,
        )
        engine.run(n_steps=25)
        sites = np.arange(lattice.n_sites)
        direct = eam_small.energies_from_counts(
            lattice.occupancy[sites], engine._site_counts(sites)
        )
        stored = engine.atom_energy_from_arrays(sites)
        assert np.allclose(direct, stored, atol=1e-10)

    def test_nnp_feature_arrays_consistent(self, tet_small, nnp_small):
        lattice = _make_lattice(seed=52)
        engine = OpenKMCEngine(
            lattice, nnp_small, tet_small, rng=np.random.default_rng(2),
            maintain_atom_arrays=True,
        )
        engine.run(n_steps=10)
        sites = np.arange(lattice.n_sites)
        fresh = nnp_small.table.features_from_counts(engine._site_counts(sites))
        assert np.allclose(engine.features[sites], fresh, atol=1e-6)

    def test_T_array_tracks_occupancy(self, tet_small, eam_small):
        lattice = _make_lattice(seed=53)
        engine = OpenKMCEngine(
            lattice, eam_small, tet_small, rng=np.random.default_rng(3)
        )
        engine.run(n_steps=20)
        assert np.array_equal(engine.T, lattice.occupancy.astype(np.int32))

    def test_memory_report_keys(self, tet_small, eam_small, nnp_small):
        lattice = _make_lattice(seed=54)
        eam_engine = OpenKMCEngine(
            lattice.copy(), eam_small, tet_small, maintain_atom_arrays=False
        )
        assert {"T", "POS_ID", "E_V", "E_R"} <= set(eam_engine.memory_report())
        nnp_engine = OpenKMCEngine(
            lattice.copy(), nnp_small, tet_small, maintain_atom_arrays=False
        )
        assert "features" in nnp_engine.memory_report()


class TestFrozenSystem:
    def test_no_moves_raises(self, tet_small, eam_small):
        """A fully-vacant lattice has no valid hops: NoMovesError."""
        tiny = LatticeState((2, 2, 2))
        tiny.occupancy[:] = VACANCY
        frozen = TensorKMCEngine(
            tiny, eam_small, tet_small, rng=np.random.default_rng(0)
        )
        with pytest.raises(NoMovesError):
            frozen.step()
