"""CLI: all five subcommands end-to-end."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.io import load_lattice
from repro.nnp.model import NNPotential


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.command == "run"
        assert args.steps == 1000
        assert args.evaluation == "full"

    def test_train_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train"])

    def test_row_cache_defaults_and_validation(self, capsys):
        for command in ("run", "parallel", "campaign"):
            args = build_parser().parse_args([command])
            assert args.row_cache == "auto"
            assert args.row_cache_mb is None
            with pytest.raises(SystemExit):
                build_parser().parse_args([command, "--row-cache", "maybe"])
        # argparse's rejection must list the allowed values.
        err = capsys.readouterr().err
        assert "'auto', 'on', 'off'" in err


class TestRunCommand:
    def test_run_prints_summary(self, capsys, tmp_path):
        snap = str(tmp_path / "final.npz")
        xyz = str(tmp_path / "final.xyz")
        code = main([
            "run", "--box", "8", "--steps", "40", "--temperature", "800",
            "--snapshot", snap, "--xyz", xyz, "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "events = 40" in out
        assert "time_s = " in out
        lattice, t = load_lattice(snap)
        assert t > 0
        assert lattice.shape == (8, 8, 8)
        assert open(xyz).readline().strip() == str(lattice.n_sites)

    def test_run_delta_evaluation(self, capsys):
        code = main([
            "run", "--box", "8", "--steps", "10", "--temperature", "800",
            "--evaluation", "delta",
        ])
        assert code == 0
        assert "events = 10" in capsys.readouterr().out

    def test_run_reports_row_cache(self, capsys):
        code = main([
            "run", "--box", "8", "--steps", "10", "--temperature", "800",
            "--row-cache", "on", "--row-cache-mb", "1",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "row_cache_hit_rate = " in out
        assert "row_cache_resident_mb = " in out


class TestParallelCommand:
    def test_parallel_conserves_species(self, capsys):
        code = main([
            "parallel", "--box", "16", "--ranks", "2", "--cycles", "8",
            "--temperature", "900", "--vacancies", "0.003",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "species_conserved = True" in out
        assert "ghosts_consistent = True" in out


class TestParallelCheckpointing:
    def _grab(self, out, key):
        for line in out.splitlines():
            if line.startswith(key):
                return line
        raise AssertionError(key)

    def test_checkpoint_restart_resume_chain(self, capsys, tmp_path):
        ck = str(tmp_path / "par.npz")
        base = ["parallel", "--ranks", "2", "--temperature", "900",
                "--vacancies", "0.003", "--seed", "2"]
        # uninterrupted reference: 8 cycles
        assert main(base + ["--cycles", "8"]) == 0
        full = capsys.readouterr().out
        # 4 cycles + checkpoint, restart for 2, resume for the last 2
        assert main(base + ["--cycles", "4", "--checkpoint", ck]) == 0
        capsys.readouterr()
        assert main(base + ["--cycles", "2", "--restart", ck,
                            "--checkpoint", ck]) == 0
        capsys.readouterr()
        assert main(["resume", ck, "--cycles", "2"]) == 0
        resumed = capsys.readouterr().out
        assert "kind = parallel" in resumed
        assert self._grab(resumed, "cycles") == "cycles = 8"
        assert self._grab(resumed, "time_s") == self._grab(full, "time_s")
        assert self._grab(resumed, "events") == self._grab(full, "events")

    def test_kill_rank_recovers(self, capsys, tmp_path):
        ck = str(tmp_path / "par.npz")
        code = main([
            "parallel", "--ranks", "2", "--cycles", "6", "--seed", "2",
            "--temperature", "900", "--vacancies", "0.003",
            "--checkpoint", ck, "--kill-rank", "0", "--kill-cycle", "3",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "recoveries = 1" in out
        assert "species_conserved = True" in out

    def test_kill_requires_checkpoint(self):
        with pytest.raises(SystemExit):
            main(["parallel", "--cycles", "2", "--kill-rank", "0"])

    def test_resume_serial_checkpoint(self, capsys, tmp_path):
        ck = str(tmp_path / "ser.npz")
        assert main([
            "run", "--box", "8", "--steps", "10", "--temperature", "800",
            "--seed", "3", "--checkpoint", ck,
        ]) == 0
        capsys.readouterr()
        assert main(["resume", ck, "--steps", "5"]) == 0
        out = capsys.readouterr().out
        assert "kind = serial" in out
        assert "events = 15" in out


class TestExecutorFlags:
    """--executor / --workers: validation and trajectory-invisible output."""

    BASE = ["parallel", "--box", "16", "--ranks", "4", "--cycles", "6",
            "--temperature", "900", "--vacancies", "0.003", "--seed", "2"]

    def _grab(self, out, key):
        for line in out.splitlines():
            if line.startswith(key):
                return line
        raise AssertionError(key)

    def test_process_executor_matches_inline(self, capsys):
        assert main(list(self.BASE)) == 0
        inline = capsys.readouterr().out
        assert self._grab(inline, "executor") == "executor = inline"
        assert self._grab(inline, "workers") == "workers = 0"

        assert main(self.BASE + ["--executor", "process"]) == 0
        proc = capsys.readouterr().out
        assert self._grab(proc, "executor") == "executor = process"
        assert self._grab(proc, "workers") == "workers = 4"
        assert "exchange_wait_ms_per_cycle" in proc
        for key in ("time_s", "events", "species_conserved",
                    "ghosts_consistent"):
            assert self._grab(proc, key) == self._grab(inline, key)

    def test_workers_sizes_the_pool(self, capsys):
        assert main(
            self.BASE + ["--executor", "process", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert self._grab(out, "workers") == "workers = 2"

    def test_workers_with_inline_executor_rejected(self):
        with pytest.raises(SystemExit, match="only valid with"):
            main(self.BASE + ["--workers", "4"])

    def test_unknown_executor_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(self.BASE + ["--executor", "threads"])

    def test_resume_across_executors(self, capsys, tmp_path):
        ck = str(tmp_path / "par.npz")
        assert main(list(self.BASE) + ["--cycles", "8"]) == 0
        full = capsys.readouterr().out
        assert main(self.BASE + ["--cycles", "4", "--checkpoint", ck]) == 0
        capsys.readouterr()
        assert main(["resume", ck, "--cycles", "4", "--executor", "process",
                     "--workers", "2"]) == 0
        resumed = capsys.readouterr().out
        assert self._grab(resumed, "executor") == "executor = process"
        assert self._grab(resumed, "workers") == "workers = 2"
        assert self._grab(resumed, "time_s") == self._grab(full, "time_s")
        assert self._grab(resumed, "events") == self._grab(full, "events")

    def test_kill_rank_recovers_under_process_executor(self, capsys, tmp_path):
        ck = str(tmp_path / "par.npz")
        assert main(
            self.BASE + ["--checkpoint", ck, "--kill-rank", "1",
                         "--kill-cycle", "3", "--executor", "process"]
        ) == 0
        out = capsys.readouterr().out
        assert "recoveries = 1" in out
        assert self._grab(out, "executor") == "executor = process"
        assert "species_conserved = True" in out

    def test_resume_serial_rejects_process_executor(self, capsys, tmp_path):
        ck = str(tmp_path / "ser.npz")
        assert main([
            "run", "--box", "8", "--steps", "5", "--temperature", "800",
            "--seed", "3", "--checkpoint", ck,
        ]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="parallel checkpoints"):
            main(["resume", ck, "--steps", "2", "--executor", "process"])


class TestCampaignCommand:
    def test_seed_sweep_matches_solo_runs(self, capsys):
        # The campaign's replicas must be the same trajectories the `run`
        # subcommand produces for the same seeds (shared batching is an
        # execution detail, not a physics change) — compare the clocks.
        assert main([
            "campaign", "--box", "8", "--replicas", "2", "--steps", "25",
            "--seed", "3", "--vacancies", "0.004",
        ]) == 0
        out = capsys.readouterr().out
        assert "mode = shared" in out
        assert "replicas = 2" in out
        times = {}
        for line in out.splitlines():
            if line.startswith("replica[seed"):
                name = line.split("]")[0].split("[")[1]
                times[name] = line.split("time_s=")[1].split()[0]
        assert set(times) == {"seed3", "seed4"}
        for seed in (3, 4):
            assert main([
                "run", "--box", "8", "--steps", "25", "--seed", str(seed),
                "--vacancies", "0.004",
            ]) == 0
            solo = capsys.readouterr().out
            solo_time = [
                line.split(" = ")[1] for line in solo.splitlines()
                if line.startswith("time_s")
            ][0]
            assert times[f"seed{seed}"] == solo_time

    def test_temperature_ladder_and_hot_swap(self, capsys):
        assert main([
            "campaign", "--box", "8", "--temperatures", "700", "1000",
            "--steps", "10", "--max-in-flight", "1",
            "--vacancies", "0.004",
        ]) == 0
        out = capsys.readouterr().out
        assert "replica[T700]" in out and "replica[T1000]" in out
        assert "rounds = 20" in out  # one in flight: budgets run back-to-back

    def test_sequential_mode(self, capsys):
        assert main([
            "campaign", "--box", "8", "--replicas", "2", "--steps", "5",
            "--mode", "sequential", "--vacancies", "0.004",
        ]) == 0
        out = capsys.readouterr().out
        assert "mode = sequential" in out
        assert "shared_batches = 0" in out

    def test_seeds_and_temperatures_exclusive(self):
        with pytest.raises(SystemExit):
            main([
                "campaign", "--seeds", "1", "2", "--temperatures", "900",
            ])


class TestTrainCommand:
    def test_train_saves_loadable_model(self, capsys, tmp_path):
        path = str(tmp_path / "model.npz")
        code = main([
            "train", "--rcut", "2.87", "--structures", "14",
            "--epochs", "8", "--channels", "64", "8", "1",
            "--output", path,
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "energy_mae_ev_per_atom" in out
        model = NNPotential.load(path)
        counts = np.ones((2, model.table.n_shells, 2), dtype=np.float32)
        energies = model.energies_from_counts(np.array([0, 1]), counts)
        assert np.all(np.isfinite(energies))

    def test_trained_model_drives_run(self, capsys, tmp_path):
        path = str(tmp_path / "model.npz")
        assert main([
            "train", "--rcut", "2.87", "--structures", "12",
            "--epochs", "4", "--channels", "64", "8", "1",
            "--output", path,
        ]) == 0
        capsys.readouterr()
        code = main([
            "run", "--box", "8", "--steps", "5", "--temperature", "900",
            "--potential", path,
        ])
        assert code == 0
        assert "events = 5" in capsys.readouterr().out

    def test_shell_mismatch_detected(self, tmp_path, capsys):
        path = str(tmp_path / "model.npz")
        assert main([
            "train", "--rcut", "2.87", "--structures", "12",
            "--epochs", "2", "--channels", "64", "8", "1",
            "--output", path,
        ]) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main([
                "run", "--box", "8", "--steps", "5", "--rcut", "5.8",
                "--potential", path,
            ])


class TestRestart:
    def test_run_checkpoint_restart_continues(self, capsys, tmp_path):
        ck = str(tmp_path / "ck.npz")
        # full run: 40 steps
        assert main([
            "run", "--box", "8", "--steps", "40", "--temperature", "800",
            "--seed", "3",
        ]) == 0
        full = capsys.readouterr().out
        # split run: 20 steps + checkpoint, then restart + 20 steps
        assert main([
            "run", "--box", "8", "--steps", "20", "--temperature", "800",
            "--seed", "3", "--checkpoint", ck,
        ]) == 0
        capsys.readouterr()
        assert main([
            "run", "--box", "8", "--steps", "20", "--restart", ck,
        ]) == 0
        resumed = capsys.readouterr().out

        def grab(out, key):
            for line in out.splitlines():
                if line.startswith(key):
                    return line
            raise AssertionError(key)

        assert grab(resumed, "time_s") == grab(full, "time_s")
        assert "events = 40" in resumed  # step counter carried over
