"""Every shipped example must run to completion (smallest workloads)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True, text=True, timeout=420,
    )


class TestExamplesRun:
    def test_quickstart(self):
        result = _run("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "executed 2000 events" in result.stdout

    def test_train_nnp_fast(self):
        result = _run("train_nnp.py", "--fast")
        assert result.returncode == 0, result.stderr
        assert "test energies" in result.stdout
        assert "KMC with the trained NNP" in result.stdout

    def test_cu_precipitation(self):
        result = _run("cu_precipitation.py", "--steps", "1200", "--box", "10")
        assert result.returncode == 0, result.stderr
        assert "cluster-size histogram" in result.stdout

    def test_parallel_sublattice(self):
        result = _run("parallel_sublattice.py", "--ranks", "2", "--cycles", "8")
        assert result.returncode == 0, result.stderr
        assert "species conserved OK" in result.stdout

    def test_vacancy_diffusion(self):
        result = _run("vacancy_diffusion.py")
        assert result.returncode == 0, result.stderr
        assert "void nucleation" in result.stdout

    def test_ternary_alloy(self):
        result = _run("ternary_alloy.py", "--steps", "1500", "--box", "10")
        assert result.returncode == 0, result.stderr
        assert "species conserved" in result.stdout

    def test_aging_campaign(self):
        result = _run("aging_campaign.py", "--steps", "1200")
        assert result.returncode == 0, result.stderr
        assert "Arrhenius acceleration" in result.stdout
