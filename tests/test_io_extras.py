"""XYZ export and the portability mapping (paper Sec. 3.6)."""

import io

import numpy as np
import pytest

from repro.constants import CU, FE, PAPER_CHANNELS, VACANCY
from repro.io.xyz import write_xyz, write_xyz_trajectory
from repro.lattice import LatticeState
from repro.sunway import (
    FUGAKU_CMG,
    compare_targets,
    map_bigfusion,
    sunway_target,
)


@pytest.fixture()
def small_lattice():
    lattice = LatticeState((3, 3, 3))
    lattice.occupancy[0] = CU
    lattice.occupancy[5] = VACANCY
    return lattice


class TestXYZ:
    def test_full_snapshot(self, small_lattice):
        buf = io.StringIO()
        n = write_xyz(buf, small_lattice, time=1.5)
        lines = buf.getvalue().splitlines()
        assert n == 54
        assert lines[0] == "54"
        assert "Lattice=" in lines[1] and "Time=1.5" in lines[1]
        assert len(lines) == 56

    def test_species_filter(self, small_lattice):
        buf = io.StringIO()
        n = write_xyz(buf, small_lattice, species_filter=[CU, VACANCY])
        assert n == 2
        body = buf.getvalue().splitlines()[2:]
        symbols = {line.split()[0] for line in body}
        assert symbols == {"Cu", "X"}

    def test_exclude_vacancies(self, small_lattice):
        buf = io.StringIO()
        n = write_xyz(buf, small_lattice, include_vacancies=False)
        assert n == 53
        assert "X" not in {l.split()[0] for l in buf.getvalue().splitlines()[2:]}

    def test_positions_match_lattice(self, small_lattice):
        buf = io.StringIO()
        write_xyz(buf, small_lattice, species_filter=[CU])
        line = buf.getvalue().splitlines()[2]
        _, x, y, z = line.split()
        pos = small_lattice.positions(np.array([0]))[0]
        assert [float(x), float(y), float(z)] == pytest.approx(list(pos))

    def test_trajectory(self, tmp_path, small_lattice):
        path = str(tmp_path / "traj.xyz")
        frames = write_xyz_trajectory(
            path, [(small_lattice, 0.0), (small_lattice, 1.0)],
            species_filter=[CU],
        )
        assert frames == 2
        content = open(path).read().splitlines()
        assert content.count("1") == 2  # two frames of one Cu atom


class TestPortability:
    def test_bigfusion_compute_bound_on_both_targets(self):
        """Sec. 3.6: the data-centric design survives the port to Fugaku."""
        mapped = compare_targets(PAPER_CHANNELS, 32 * 16 * 16)
        assert set(mapped) == {"SW26010-pro CG", "Fugaku A64FX CMG"}
        for m in mapped.values():
            assert m.compute_bound
            assert m.modeled_time > 0

    def test_memory_traffic_is_target_independent(self):
        m = 4096
        sw = map_bigfusion(PAPER_CHANNELS, m, sunway_target())
        fj = map_bigfusion(PAPER_CHANNELS, m, FUGAKU_CMG)
        assert sw.mem_bytes == fj.mem_bytes  # first in + last out, always
        assert sw.arithmetic_intensity == fj.arithmetic_intensity

    def test_share_fabric_differs(self):
        sw = sunway_target()
        assert sw.share_bandwidth != FUGAKU_CMG.share_bandwidth
        assert FUGAKU_CMG.n_cores == 12

    def test_local_store_check(self):
        from dataclasses import replace

        tiny = replace(FUGAKU_CMG, local_store_bytes=1024)
        with pytest.raises(ValueError):
            map_bigfusion(PAPER_CHANNELS, 64, tiny)

    def test_ridge_points(self):
        # HBM2 makes the Fugaku CMG far less memory-starved than a CG.
        assert FUGAKU_CMG.ridge_point < sunway_target().ridge_point

    def test_fe_constant_unused_guard(self):
        assert FE == 0  # anchors the XYZ symbol table
