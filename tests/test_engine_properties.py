"""Property-based engine tests: invariants under randomised configurations."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.constants import CU, FE, VACANCY
from repro.core import TensorKMCEngine
from repro.core.vacancy_system import VacancySystemEvaluator
from repro.lattice import LatticeState
from repro.potentials import counts_from_types

config = st.fixed_dictionaries(
    {
        "seed": st.integers(min_value=0, max_value=2**31),
        "cu": st.floats(min_value=0.0, max_value=0.3),
        "n_vac": st.integers(min_value=1, max_value=6),
        "engine_seed": st.integers(min_value=0, max_value=2**31),
    }
)


def _build(tet, pot, cfg, shape=(8, 8, 8)):
    lattice = LatticeState(shape)
    rng = np.random.default_rng(cfg["seed"])
    lattice.occupancy[:] = np.where(
        rng.random(lattice.n_sites) < cfg["cu"], CU, FE
    )
    ids = rng.choice(lattice.n_sites, cfg["n_vac"], replace=False)
    lattice.occupancy[ids] = VACANCY
    engine = TensorKMCEngine(
        lattice, pot, tet, temperature=900.0,
        rng=np.random.default_rng(cfg["engine_seed"]),
    )
    return lattice, engine


class TestEngineInvariants:
    @given(cfg=config)
    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_conservation_and_registry(self, tet_small, eam_small, cfg):
        lattice, engine = _build(tet_small, eam_small, cfg)
        before = lattice.species_counts().copy()
        engine.run(n_steps=20)
        assert np.array_equal(lattice.species_counts(), before)
        assert sorted(engine.cache.sites) == sorted(
            int(s) for s in lattice.vacancy_ids
        )
        assert engine.time > 0

    @given(cfg=config)
    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_store_total_equals_sum_of_entries(self, tet_small, eam_small, cfg):
        _, engine = _build(tet_small, eam_small, cfg)
        engine.run(n_steps=10)
        engine._refresh()
        expected = sum(
            engine.cache.get(slot).total_rate
            for slot in range(engine.cache.n_slots)
        )
        assert engine.store.total == pytest.approx(expected, rel=1e-12)

    @given(cfg=config)
    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_cached_rates_match_fresh_rebuild(self, tet_small, eam_small, cfg):
        """Every live cache entry equals a from-scratch rebuild."""
        _, engine = _build(tet_small, eam_small, cfg)
        engine.run(n_steps=15)
        engine._refresh()
        for slot in range(engine.cache.n_slots):
            cached = engine.cache.get(slot)
            fresh = engine.build_system(slot)
            assert np.array_equal(cached.rates, fresh.rates)
            assert np.array_equal(cached.vet, fresh.vet)


class TestEvaluatorProperties:
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        cu=st.floats(min_value=0.0, max_value=0.4),
    )
    @settings(
        max_examples=15, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_delta_path_always_matches_full(self, tet_small, eam_small, seed, cu):
        lattice = LatticeState((8, 8, 8))
        rng = np.random.default_rng(seed)
        lattice.occupancy[:] = np.where(rng.random(lattice.n_sites) < cu, CU, FE)
        vac = int(rng.integers(0, lattice.n_sites))
        lattice.occupancy[vac] = VACANCY
        evaluator = VacancySystemEvaluator(tet_small, eam_small)
        vet = lattice.occupancy[lattice.neighbor_ids(vac, tet_small.all_offsets)]
        full = evaluator.evaluate(vet)
        fast = evaluator.evaluate_delta(vet)
        assert np.allclose(fast.delta, full.delta, atol=1e-9)
        assert np.array_equal(fast.valid, full.valid)

    @given(seed=st.integers(min_value=0, max_value=2**31))
    @settings(
        max_examples=10, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_region_delta_equals_brute_force(self, tet_small, eam_small, seed):
        """Randomised version of the central triple-encoding claim."""
        lattice = LatticeState((8, 8, 8))
        rng = np.random.default_rng(seed)
        lattice.occupancy[:] = np.where(
            rng.random(lattice.n_sites) < 0.15, CU, FE
        )
        vac = int(rng.integers(0, lattice.n_sites))
        lattice.occupancy[vac] = VACANCY
        evaluator = VacancySystemEvaluator(tet_small, eam_small)
        vet = lattice.occupancy[lattice.neighbor_ids(vac, tet_small.all_offsets)]
        energies = evaluator.evaluate(vet)
        direction = int(rng.integers(0, 8))
        if not energies.valid[direction]:
            return
        target = int(
            lattice.neighbor_ids(vac, tet_small.nn_offsets[direction][None, :])[0]
        )

        def total_energy(state):
            ids = np.arange(state.n_sites)
            half = state.half_coords(ids)
            nb = state.ids_from_half(
                half[:, None, :] + tet_small.cet_offsets[None, :, :]
            )
            counts = counts_from_types(
                state.occupancy[nb], tet_small.cet_shell, tet_small.n_shells
            )
            return eam_small.region_energy(state.occupancy[ids], counts)

        before = total_energy(lattice)
        trial = lattice.copy()
        trial.swap(vac, target)
        after = total_energy(trial)
        assert energies.delta[direction] == pytest.approx(
            after - before, abs=1e-8
        )
