"""Unit tests for the shared event kernel layer (core/kernel.py)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernel import (
    EventKernel,
    NoMovesError,
    SimpleRateEntry,
    SpatialHashIndex,
    select_direction,
)
from repro.core.propensity import FenwickPropensity, LinearPropensity


# ----------------------------------------------------------------------
# select_direction: the zero-rate fallback guard
# ----------------------------------------------------------------------
class TestSelectDirection:
    def test_plain_selection(self):
        rates = np.array([1.0, 2.0, 3.0, 0.0, 0.0, 0.0, 0.0, 0.0])
        assert select_direction(rates, 0.5) == 0
        assert select_direction(rates, 1.5) == 1
        assert select_direction(rates, 3.5) == 2

    def test_walkdown_skips_trailing_zeros(self):
        # A boundary remainder lands past the last nonzero direction; the
        # walk-down must settle on the nearest executable one.
        rates = np.array([0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 0.0, 0.0])
        assert select_direction(rates, 2.0) == 2

    def test_all_zero_row_raises_instead_of_impossible_hop(self):
        # Regression for the seed walk-down, which would return direction 0
        # with zero rate and execute an impossible (vacancy-vacancy) hop.
        rates = np.zeros(8)
        with pytest.raises(NoMovesError):
            select_direction(rates, 0.0)

    def test_zero_leading_directions_never_selected(self):
        rates = np.array([0.0, 0.0, 0.0, 4.0, 0.0, 0.0, 0.0, 1.0])
        for remainder in (0.0, 1e-300, 3.999, 4.0, 4.5, 5.0):
            direction = select_direction(rates, remainder)
            assert rates[direction] > 0.0


# ----------------------------------------------------------------------
# PropensityStore: grow + parked slots
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cls", [FenwickPropensity, LinearPropensity])
class TestStoreGrow:
    def test_grow_preserves_values(self, cls):
        store = cls(3)
        for slot, v in enumerate([1.0, 2.0, 3.0]):
            store.update(slot, v)
        store.grow(10)
        assert store.n_slots == 10
        assert [store.get(s) for s in range(3)] == [1.0, 2.0, 3.0]
        assert store.total == pytest.approx(6.0)
        store.update(9, 4.0)
        assert store.total == pytest.approx(10.0)
        slot, rem = store.select(9.5)
        assert slot == 9
        assert rem == pytest.approx(3.5)

    def test_grow_cannot_shrink(self, cls):
        store = cls(4)
        with pytest.raises(ValueError):
            store.grow(2)

    def test_select_depth_is_recorded(self, cls):
        store = cls(8)
        store.update(2, 5.0)
        store.select(1.0)
        assert store.last_select_depth > 0


def test_fenwick_grow_matches_rebuilt_tree():
    rng = np.random.default_rng(3)
    store = FenwickPropensity(5)
    values = rng.random(5)
    for slot, v in enumerate(values):
        store.update(slot, float(v))
    store.grow(23)  # beyond the power-of-two capacity: forces a rebuild
    reference = FenwickPropensity(23)
    for slot, v in enumerate(values):
        reference.update(slot, float(v))
    assert np.array_equal(store.tree, reference.tree)
    assert store.total == reference.total


# ----------------------------------------------------------------------
# SpatialHashIndex vs brute force
# ----------------------------------------------------------------------
def _brute_near(positions, point, reach, periodic):
    hits = set()
    for slot, pos in positions.items():
        delta = (np.asarray(point) - pos).astype(np.float64)
        if periodic is not None:
            span = np.asarray(periodic, dtype=np.float64)
            delta -= span * np.round(delta / span)
        if np.sqrt(np.sum(delta * delta)) <= reach:
            hits.add(slot)
    return hits


@pytest.mark.parametrize("periodic", [None, (21, 16, 13)])
def test_candidates_cover_brute_force(periodic):
    # Dimensions deliberately not multiples of the bucket size: the wrapped
    # interval decomposition must still cover every bucket.
    rng = np.random.default_rng(42)
    dims = np.array(periodic if periodic is not None else (40, 40, 40))
    index = SpatialHashIndex(4, periodic_half=periodic)
    positions = {}
    for slot in range(60):
        pos = rng.integers(0, dims, size=3)
        index.insert(slot, pos)
        positions[slot] = np.mod(pos, dims) if periodic is not None else pos
    for _ in range(200):
        point = rng.integers(-4, dims + 4, size=3)
        if periodic is None:
            point = np.clip(point, 0, None)
        required = _brute_near(positions, np.mod(point, dims) if periodic is not None else point, 4.0, periodic)
        candidates = index.candidates_near(point, 4)
        assert required <= candidates, (point, required - candidates)


def test_index_move_and_remove():
    index = SpatialHashIndex(4, periodic_half=(16, 16, 16))
    index.insert(0, np.array([1, 1, 1]))
    index.insert(1, np.array([10, 10, 10]))
    assert 0 in index.candidates_near(np.array([0, 0, 0]), 4)
    index.move(0, np.array([10, 10, 10]))
    assert 0 not in index.candidates_near(np.array([0, 0, 0]), 4)
    assert 0 in index.candidates_near(np.array([9, 9, 9]), 4)
    index.remove(0)
    assert 0 not in index.candidates_near(np.array([9, 9, 9]), 4)
    assert len(index) == 1


# ----------------------------------------------------------------------
# EventKernel: dynamic slots, refresh accounting, invalidation
# ----------------------------------------------------------------------
def _toy_kernel(rates_by_key, periodic=None, **kwargs):
    return EventKernel(
        lambda key: np.asarray(rates_by_key[key], dtype=np.float64),
        lambda key: np.asarray(key, dtype=np.int64),
        threshold=4.0,
        scale=1.0,
        periodic_half=periodic,
        keys=sorted(rates_by_key),
        **kwargs,
    )


def _row(total):
    row = np.zeros(8)
    row[0] = total
    return row


def test_kernel_refresh_and_select():
    rates = {(0, 0, 0): _row(1.0), (10, 0, 0): _row(3.0)}
    kernel = _toy_kernel(rates)
    kernel.refresh()
    assert kernel.total == pytest.approx(4.0)
    slot, direction, entry = kernel.select(2.0)
    assert kernel.key_of(slot) == (10, 0, 0)
    assert direction == 0
    assert isinstance(entry, SimpleRateEntry)
    counters = kernel.counters()
    assert counters["cache_misses"] == 2
    assert counters["selections"] == 1
    assert counters["selection_depth"] > 0
    assert counters["rates_evaluated"] == 16


def test_kernel_dynamic_add_remove_recycles_slots():
    rates = {(0, 0, 0): _row(1.0), (10, 0, 0): _row(2.0)}
    kernel = _toy_kernel(rates)
    kernel.refresh()
    slot0 = kernel.slot_of((0, 0, 0))
    kernel.remove(slot0)
    assert kernel.total == pytest.approx(2.0)
    rates[(5, 5, 5)] = _row(7.0)
    new_slot = kernel.add((5, 5, 5))
    assert new_slot == slot0  # free-list reuse
    kernel.refresh()
    assert kernel.total == pytest.approx(9.0)
    # Growth past the initial capacity re-anchors everything correctly.
    for i in range(1, 9):
        rates[(i, 9, 9)] = _row(1.0)
        kernel.add((i, 9, 9))
    kernel.refresh()
    assert kernel.total == pytest.approx(17.0)
    assert kernel.store.n_slots >= 10


def test_kernel_invalidate_near_matches_distance_rule():
    rates = {(0, 0, 0): _row(1.0), (3, 0, 0): _row(1.0), (9, 0, 0): _row(1.0)}
    kernel = _toy_kernel(rates)
    kernel.refresh()
    n = kernel.invalidate_near(np.array([[1, 0, 0]]))
    # threshold 4.0: slots at distance 1 and 2 go stale, distance 8 survives
    assert n == 2
    stale = {kernel.key_of(s) for s in kernel.cache.stale_slots()}
    assert stale == {(0, 0, 0), (3, 0, 0)}
    kernel.refresh()
    assert kernel.counters()["cache_hits"] >= 1
    assert kernel.total == pytest.approx(3.0)


def test_kernel_periodic_invalidation_wraps():
    rates = {(0, 0, 0): _row(1.0), (10, 0, 0): _row(1.0)}
    kernel = _toy_kernel(rates, periodic=(21, 21, 21))
    kernel.refresh()
    # 20 is distance 1 from 0 across the wrap (and 10 from the middle slot).
    n = kernel.invalidate_near(np.array([[20, 0, 0]]))
    assert n == 1
    assert {kernel.key_of(s) for s in kernel.cache.stale_slots()} == {(0, 0, 0)}


def test_kernel_active_set_restricts_selection():
    rates = {(0, 0, 0): _row(1.0), (10, 0, 0): _row(3.0)}
    kernel = _toy_kernel(rates)
    kernel.refresh()
    kernel.set_active([kernel.slot_of((0, 0, 0))])
    kernel.refresh()
    assert kernel.total == pytest.approx(1.0)
    slot, _, _ = kernel.select(0.5)
    assert kernel.key_of(slot) == (0, 0, 0)
    kernel.deactivate(slot)
    assert kernel.total == 0.0
    kernel.set_active(None)
    assert kernel.total == pytest.approx(4.0)


def test_kernel_set_keys_resyncs_index():
    rates = {(0, 0, 0): _row(1.0), (10, 0, 0): _row(3.0)}
    kernel = _toy_kernel(rates)
    kernel.refresh()
    kernel.set_keys([(10, 0, 0), (0, 0, 0)])  # swapped slot order
    assert kernel.key_of(0) == (10, 0, 0)
    kernel.refresh()
    assert kernel.total == pytest.approx(4.0)
    kernel.invalidate_near(np.array([[1, 0, 0]]))
    assert {kernel.key_of(s) for s in kernel.cache.stale_slots()} == {(0, 0, 0)}
