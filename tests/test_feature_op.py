"""Feature operators: serial, CPE-parallel, and engine paths all agree."""

import numpy as np
import pytest

from repro.constants import CU, FE, VACANCY
from repro.core.vacancy_system import VacancySystemEvaluator
from repro.lattice import LatticeState
from repro.operators import FastFeatureOperator, features_mpe_serial
from repro.potentials import FeatureTable
from repro.sunway import SW26010_PRO, CostLedger, LDMOverflowError, LDMBudget


@pytest.fixture(scope="module")
def states_and_table(tet_small):
    lattice = LatticeState((8, 8, 8))
    rng = np.random.default_rng(12)
    lattice.occupancy[:] = np.where(rng.random(lattice.n_sites) < 0.1, CU, FE)
    vac = lattice.site_id(0, 4, 4, 4)
    lattice.occupancy[vac] = VACANCY
    vet = lattice.occupancy[lattice.neighbor_ids(vac, tet_small.all_offsets)]

    class _Stub:
        shell_distances = tet_small.shell_distances
        n_shells = tet_small.n_shells

        def energies_from_counts(self, t, c):
            return np.zeros(len(t))

    from repro.potentials.base import CountsPotential

    CountsPotential.register(_Stub)
    evaluator = VacancySystemEvaluator(tet_small, _Stub())
    states = evaluator.trial_vets(vet)
    table = FeatureTable(tet_small.shell_distances)
    return states, table, evaluator


class TestEquivalence:
    def test_serial_equals_fast(self, tet_small, states_and_table):
        states, table, _ = states_and_table
        serial = features_mpe_serial(states, tet_small, table)
        fast = FastFeatureOperator(tet_small, table)(states)
        assert np.allclose(serial, fast, atol=1e-5)

    def test_fast_equals_engine_counts_path(self, tet_small, states_and_table):
        states, table, evaluator = states_and_table
        fast = FastFeatureOperator(tet_small, table)(states)
        counts = evaluator.region_features_counts(states)
        via_counts = table.features_from_counts(counts)
        assert np.allclose(fast, via_counts, atol=1e-6)

    def test_vacancy_neighbors_excluded(self, tet_small):
        table = FeatureTable(tet_small.shell_distances)
        states = np.full((1, tet_small.n_all), VACANCY, dtype=np.uint8)
        feats = FastFeatureOperator(tet_small, table)(states)
        assert np.all(feats == 0.0)


class TestCostAccounting:
    def test_serial_charges_random_access(self, tet_small, states_and_table):
        states, table, _ = states_and_table
        ledger = CostLedger(SW26010_PRO)
        features_mpe_serial(states, tet_small, table, ledger=ledger)
        assert ledger.random_bytes > 0
        assert ledger.dma_bytes == 0

    def test_fast_operator_is_much_faster(self, tet_small, states_and_table):
        """Modeled speedup of the CPE feature operator is large (Fig. 11)."""
        states, table, _ = states_and_table
        serial_ledger = CostLedger(SW26010_PRO)
        features_mpe_serial(states, tet_small, table, ledger=serial_ledger)
        fast_ledger = CostLedger(SW26010_PRO)
        FastFeatureOperator(tet_small, table)(states, ledger=fast_ledger)
        speedup = serial_ledger.serial_time() / fast_ledger.overlapped_time()
        # With the small test TET fixed DMA costs dominate; the paper's ~60x
        # is reached at the standard cutoff (checked in bench_fig11).
        assert speedup > 8.0

    def test_standard_cutoff_speedup_near_paper(self, tet_standard):
        """At r_cut = 6.5 A the modeled feature speedup approaches ~60x."""
        table = FeatureTable(tet_standard.shell_distances)
        states = np.zeros((9, tet_standard.n_all), dtype=np.uint8)
        serial_ledger = CostLedger(SW26010_PRO)
        entries = 9 * tet_standard.n_region * tet_standard.n_local
        from repro.operators import FEATURE_ENTRY_BYTES

        serial_ledger.add_random_access(entries * FEATURE_ENTRY_BYTES)
        fast_ledger = CostLedger(SW26010_PRO)
        FastFeatureOperator(tet_standard, table)(states, ledger=fast_ledger)
        speedup = serial_ledger.serial_time() / fast_ledger.overlapped_time()
        assert 40.0 < speedup < 80.0  # paper: ~60x

    def test_ldm_residency_enforced(self, tet_small):
        """The LDM check is real: a tiny budget must overflow."""
        table = FeatureTable(tet_small.shell_distances)
        from dataclasses import replace

        tiny_spec = replace(SW26010_PRO, ldm_bytes=1024)
        with pytest.raises(LDMOverflowError):
            FastFeatureOperator(tet_small, table, spec=tiny_spec)

    def test_standard_tet_fits_ldm(self, tet_standard):
        """The paper's 6.5-A tables really do fit one CPE's scratchpad."""
        table = FeatureTable(tet_standard.shell_distances)
        op = FastFeatureOperator(tet_standard, table)
        assert op.ldm.used <= SW26010_PRO.ldm_bytes


class TestLDMBudget:
    def test_alloc_free(self):
        b = LDMBudget(100)
        b.alloc("a", 60)
        assert b.available == 40
        b.free("a")
        assert b.available == 100

    def test_overflow(self):
        b = LDMBudget(100)
        with pytest.raises(LDMOverflowError):
            b.alloc("a", 101)

    def test_duplicate_name(self):
        b = LDMBudget(100)
        b.alloc("a", 10)
        with pytest.raises(ValueError):
            b.alloc("a", 10)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LDMBudget(100).alloc("a", -1)

    def test_fits(self):
        b = LDMBudget(100)
        b.alloc("a", 90)
        assert b.fits(10) and not b.fits(11)
