"""Eq. 4 direct indexing vs the POS_ID lookup table: identical mappings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lattice import DirectIndexer, PaddedWindow, PosIdIndexer

dims = st.integers(min_value=1, max_value=5)
ghosts = st.integers(min_value=0, max_value=3)


def _all_coords(window: PaddedWindow):
    px, py, pz = window.padded_shape
    return np.meshgrid(
        np.arange(2), np.arange(px), np.arange(py), np.arange(pz), indexing="ij"
    )


class TestWindow:
    def test_site_counts(self):
        w = PaddedWindow((3, 4, 5), ghost=2)
        assert w.n_local_sites == 2 * 3 * 4 * 5
        assert w.padded_shape == (7, 8, 9)
        assert w.n_ghost_sites == w.n_padded_sites - w.n_local_sites

    def test_invalid(self):
        with pytest.raises(ValueError):
            PaddedWindow((0, 1, 1), ghost=1)
        with pytest.raises(ValueError):
            PaddedWindow((1, 1, 1), ghost=-1)

    def test_is_local(self):
        w = PaddedWindow((2, 2, 2), ghost=1)
        assert w.is_local(np.array(1), np.array(1), np.array(1))
        assert not w.is_local(np.array(0), np.array(1), np.array(1))
        assert not w.is_local(np.array(3), np.array(1), np.array(1))


class TestDirectVsPosId:
    @given(nx=dims, ny=dims, nz=dims, g=ghosts)
    @settings(max_examples=30, deadline=None)
    def test_identical_mapping(self, nx, ny, nz, g):
        w = PaddedWindow((nx, ny, nz), ghost=g)
        direct = DirectIndexer(w)
        table = PosIdIndexer(w)
        s, i, j, k = _all_coords(w)
        assert np.array_equal(direct.index_of(s, i, j, k), table.index_of(s, i, j, k))

    def test_layout_is_local_first(self):
        w = PaddedWindow((2, 3, 2), ghost=1)
        direct = DirectIndexer(w)
        s, i, j, k = _all_coords(w)
        idx = direct.index_of(s, i, j, k)
        local = w.is_local(i, j, k)
        assert idx[local].max() < w.n_local_sites
        assert idx[~local].min() >= w.n_local_sites

    def test_bijective(self):
        w = PaddedWindow((3, 3, 3), ghost=2)
        direct = DirectIndexer(w)
        s, i, j, k = _all_coords(w)
        idx = np.sort(direct.index_of(s, i, j, k).ravel())
        assert np.array_equal(idx, np.arange(w.n_padded_sites))

    def test_zero_ghost_is_traversal_order(self):
        w = PaddedWindow((2, 2, 2), ghost=0)
        direct = DirectIndexer(w)
        s, i, j, k = _all_coords(w)
        assert np.array_equal(
            direct.index_of(s, i, j, k).ravel(), np.arange(w.n_padded_sites)
        )

    def test_memory_accounting(self):
        w = PaddedWindow((4, 4, 4), ghost=2)
        assert DirectIndexer(w).memory_bytes == 0
        pos = PosIdIndexer(w)
        assert pos.memory_bytes == pos.pos_id.nbytes > 0
