"""BCC geometry: shell structure and the paper's Sec. 4.1.1 site counts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import LATTICE_CONSTANT, RCUT_SHORT, RCUT_STANDARD
from repro.lattice import BCCGeometry, first_nn_offsets


class TestFirstNN:
    def test_eight_neighbors(self):
        offs = first_nn_offsets()
        assert offs.shape == (8, 3)
        assert np.all(np.abs(offs) == 1)

    def test_all_distinct(self):
        offs = first_nn_offsets()
        assert len({tuple(o) for o in offs}) == 8

    def test_distance_is_sqrt3_over_2_a(self):
        g = BCCGeometry()
        d = g.offset_distance(first_nn_offsets())
        expected = LATTICE_CONSTANT * np.sqrt(3.0) / 2.0
        assert np.allclose(d, expected)


class TestShells:
    def test_paper_n_local_standard_cutoff(self):
        g = BCCGeometry()
        shells = g.shells_within(RCUT_STANDARD)
        assert shells.n_sites == 112  # paper Sec. 4.1.1
        assert shells.n_shells == 8

    def test_paper_n_local_short_cutoff(self):
        g = BCCGeometry()
        assert g.shells_within(RCUT_SHORT).n_sites == 64

    def test_first_two_shell_multiplicities(self):
        g = BCCGeometry()
        shells = g.shells_within(LATTICE_CONSTANT)
        assert list(shells.shell_counts[:2]) == [8, 6]

    def test_shell_distances_sorted(self):
        g = BCCGeometry()
        shells = g.shells_within(RCUT_STANDARD)
        assert np.all(np.diff(shells.shell_distances) > 0)

    def test_distances_match_offsets(self):
        g = BCCGeometry()
        shells = g.shells_within(RCUT_STANDARD)
        assert np.allclose(g.offset_distance(shells.offsets), shells.distances)

    def test_offsets_have_valid_parity(self):
        g = BCCGeometry()
        shells = g.shells_within(RCUT_STANDARD)
        parity = shells.offsets & 1
        assert np.all((parity[:, 0] == parity[:, 1]) & (parity[:, 1] == parity[:, 2]))

    def test_offsets_unique(self):
        g = BCCGeometry()
        shells = g.shells_within(RCUT_STANDARD)
        assert len({tuple(o) for o in shells.offsets}) == shells.n_sites

    def test_inversion_symmetry(self):
        """For every neighbour offset, its negation is also a neighbour."""
        g = BCCGeometry()
        shells = g.shells_within(RCUT_STANDARD)
        keys = {tuple(o) for o in shells.offsets}
        assert all(tuple(-o) in keys for o in shells.offsets)

    def test_shell_index_matches_distance_grouping(self):
        g = BCCGeometry()
        shells = g.shells_within(RCUT_STANDARD)
        for s in range(shells.n_shells):
            d = shells.distances[shells.shell_index == s]
            assert np.allclose(d, shells.shell_distances[s])

    @given(rcut=st.floats(min_value=2.49, max_value=9.0))
    @settings(max_examples=25, deadline=None)
    def test_counts_monotone_in_cutoff(self, rcut):
        g = BCCGeometry()
        inner = g.shells_within(rcut)
        outer = g.shells_within(rcut + 1.0)
        assert outer.n_sites >= inner.n_sites

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            BCCGeometry(a=0.0)
        with pytest.raises(ValueError):
            BCCGeometry().shells_within(-1.0)

    def test_shell_table(self):
        g = BCCGeometry()
        table = g.shell_table(LATTICE_CONSTANT)
        assert table[0][1] == 8 and table[1][1] == 6

    def test_scaling_with_lattice_constant(self):
        """Shell structure is scale-invariant in r/a."""
        small = BCCGeometry(a=1.0).shells_within(1.0)
        big = BCCGeometry(a=2.0).shells_within(2.0)
        assert small.n_sites == big.n_sites
        assert np.allclose(2.0 * small.shell_distances, big.shell_distances)
