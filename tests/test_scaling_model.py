"""Scaling model: cost structure and the Fig. 12/13 efficiency shapes."""

import numpy as np
import pytest

from repro.constants import ATTEMPT_FREQUENCY, EA0_FE, KB_EV
from repro.parallel import (
    CORES_PER_CG,
    ScalingParameters,
    parallel_efficiency,
    strong_scaling,
    weak_scaling,
)


@pytest.fixture(scope="module")
def paper_params():
    kT = KB_EV * 573.0
    rate_per_vac = 8 * ATTEMPT_FREQUENCY * np.exp(-EA0_FE / kT)
    return ScalingParameters(
        compute_seconds_per_event=2.0e-4,
        events_per_atom_second=rate_per_vac * 8e-6,
        bytes_per_boundary_cell=0.05,
    )


class TestStructure:
    def test_cores_per_cg(self):
        assert CORES_PER_CG == 65  # 1 MPE + 64 CPEs

    def test_strong_divides_atoms(self, paper_params):
        pts = strong_scaling(paper_params, 1.92e12, [12000, 24000])
        assert pts[0].atoms_per_cg == pytest.approx(2 * pts[1].atoms_per_cg)
        assert pts[0].atoms_total == pts[1].atoms_total

    def test_weak_fixes_atoms_per_cg(self, paper_params):
        pts = weak_scaling(paper_params, 128e6, [12000, 422400])
        assert pts[0].atoms_per_cg == pts[1].atoms_per_cg
        assert pts[1].atoms_total == pytest.approx(54.067e12, rel=0.01)

    def test_compute_dominates_at_baseline(self, paper_params):
        pt = strong_scaling(paper_params, 1.92e12, [12000])[0]
        assert pt.cycle_compute > 10 * (pt.cycle_comm + pt.cycle_sync)

    def test_total_time_scales_with_duration(self, paper_params):
        pt = weak_scaling(paper_params, 128e6, [12000])[0]
        assert pt.total_time(2e-7, 2e-8) == pytest.approx(10 * pt.cycle_time)


class TestCalibrationTraffic:
    """The model is calibrated from CommStats, so CommStats must see *all*
    protocol traffic — including the per-cycle time-sync collective."""

    def test_collective_traffic_reaches_comm_stats(self, tet_small, eam_small):
        from repro.lattice import LatticeState
        from repro.parallel import SublatticeKMC

        lattice = LatticeState((16, 16, 16))
        lattice.randomize_alloy(np.random.default_rng(3), 0.05, 0.003)
        sim = SublatticeKMC(
            lattice, eam_small, tet_small, n_ranks=2, temperature=900.0,
            t_stop=2e-10, seed=5,
        )
        n_cycles = 6
        sim.run(n_cycles)
        stats = sim.world.stats
        # one event-count allreduce per cycle ...
        assert stats.collectives == n_cycles
        # ... accounted as one message and one float64 per rank (regression:
        # collectives used to contribute zero messages and zero bytes, so
        # calibration under-counted the communication volume)
        assert stats.messages_sent >= n_cycles * sim.world.size
        assert stats.bytes_sent >= n_cycles * sim.world.size * 8
        # and the per-cycle deltas see the collective too
        for c in sim.cycles:
            assert c.comm_messages >= sim.world.size
            assert c.comm_bytes >= sim.world.size * 8


class TestPaperShapes:
    def test_strong_efficiency_near_85_percent_at_32x(self, paper_params):
        """Fig. 12: 85% parallel efficiency from 780k to 24.96M cores."""
        cgs = [12000, 24000, 48000, 96000, 192000, 384000]
        pts = strong_scaling(paper_params, 1.92e12, cgs)
        eff = parallel_efficiency(pts)
        assert eff[0] == pytest.approx(1.0)
        assert 0.78 <= eff[-1] <= 0.92  # paper: 0.85
        assert all(b <= a + 1e-12 for a, b in zip(eff, eff[1:]))

    def test_strong_core_counts_match_paper(self, paper_params):
        pts = strong_scaling(paper_params, 1.92e12, [12000, 384000])
        assert pts[0].n_cores == 780_000
        assert pts[-1].n_cores == 24_960_000

    def test_weak_efficiency_stays_high(self, paper_params):
        cgs = [12000, 48000, 192000, 422400]
        pts = weak_scaling(paper_params, 128e6, cgs)
        eff = parallel_efficiency(pts, weak=True)
        assert min(eff) > 0.9
        assert pts[-1].n_cores == 27_456_000

    def test_imbalance_grows_as_events_shrink(self, paper_params):
        """The strong-scaling tail comes from per-cycle event starvation."""
        pts = strong_scaling(paper_params, 1.92e12, [12000, 384000])
        per_event_base = pts[0].cycle_compute / (pts[0].atoms_per_cg)
        per_event_scaled = pts[1].cycle_compute / (pts[1].atoms_per_cg)
        assert per_event_scaled > per_event_base
