"""Domain decomposition: exact partition, ownership, neighbours."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.decomposition import GridDecomposition, choose_grid


class TestChooseGrid:
    def test_product_matches(self):
        for n in (1, 2, 4, 6, 8, 12):
            grid = choose_grid(n, (24, 24, 24))
            assert grid[0] * grid[1] * grid[2] == n

    def test_prefers_balance(self):
        assert sorted(choose_grid(8, (24, 24, 24))) == [2, 2, 2]

    def test_respects_box_shape(self):
        grid = choose_grid(4, (32, 8, 8))
        # the long axis should take the split
        assert grid[0] == 4

    def test_impossible_rejected(self):
        with pytest.raises(ValueError):
            choose_grid(64, (2, 2, 2))


class TestPartition:
    @given(
        n=st.sampled_from([1, 2, 3, 4, 6, 8]),
        nx=st.integers(min_value=6, max_value=20),
        ny=st.integers(min_value=6, max_value=20),
        nz=st.integers(min_value=6, max_value=20),
    )
    @settings(max_examples=30, deadline=None)
    def test_boxes_tile_the_domain(self, n, nx, ny, nz):
        shape = (nx, ny, nz)
        decomp = GridDecomposition(shape, choose_grid(n, shape))
        seen = np.zeros(shape, dtype=np.int64)
        for r in range(decomp.n_ranks):
            box = decomp.box_of_rank(r)
            seen[box.lo[0]:box.hi[0], box.lo[1]:box.hi[1], box.lo[2]:box.hi[2]] += 1
        assert np.all(seen == 1)

    def test_owner_matches_boxes(self):
        shape = (10, 12, 14)
        decomp = GridDecomposition(shape, (2, 3, 2))
        cells = np.stack(
            np.meshgrid(*(np.arange(s) for s in shape), indexing="ij"), axis=-1
        ).reshape(-1, 3)
        owners = decomp.owner_of_cell(cells)
        for r in range(decomp.n_ranks):
            box = decomp.box_of_rank(r)
            mine = cells[owners == r]
            assert np.all(box.contains_cell(mine))
            assert len(mine) == box.n_cells

    def test_owner_wraps(self):
        decomp = GridDecomposition((8, 8, 8), (2, 2, 2))
        assert decomp.owner_of_cell(np.array([9, 1, 1])) == decomp.owner_of_cell(
            np.array([1, 1, 1])
        )

    def test_rank_coords_roundtrip(self):
        decomp = GridDecomposition((12, 12, 12), (2, 3, 2))
        for r in range(decomp.n_ranks):
            assert decomp.rank_of_coords(decomp.rank_coords(r)) == r

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            GridDecomposition((4, 4, 4), (8, 1, 1))


class TestNeighbors:
    def test_2x2x2_all_others(self):
        decomp = GridDecomposition((12, 12, 12), (2, 2, 2))
        assert decomp.neighbors_of(0) == [1, 2, 3, 4, 5, 6, 7]

    def test_single_rank_no_neighbors(self):
        decomp = GridDecomposition((8, 8, 8), (1, 1, 1))
        assert decomp.neighbors_of(0) == []

    def test_neighbors_symmetric(self):
        decomp = GridDecomposition((18, 12, 12), (3, 2, 2))
        for r in range(decomp.n_ranks):
            for nb in decomp.neighbors_of(r):
                assert r in decomp.neighbors_of(nb)

    def test_describe(self):
        decomp = GridDecomposition((8, 8, 8), (2, 1, 1))
        d = decomp.describe()
        assert d["n_ranks"] == 2
        assert sum(d["cells_per_rank"]) == 512
