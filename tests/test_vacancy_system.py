"""Vacancy-system evaluation vs brute-force whole-lattice energies.

The defining claim of the triple encoding (paper Sec. 3.1) is that a hop's
energy change is fully captured by the jumping region: the delta computed
from one vacancy system must equal the difference of *total lattice* energies
before and after actually performing the swap.
"""

import numpy as np
import pytest

from repro.constants import CU, FE, VACANCY
from repro.core.vacancy_system import VacancySystemEvaluator
from repro.lattice import LatticeState
from repro.potentials import counts_from_types


def _total_lattice_energy(lattice, potential, tet):
    ids = np.arange(lattice.n_sites)
    half = lattice.half_coords(ids)
    nb = lattice.ids_from_half(half[:, None, :] + tet.cet_offsets[None, :, :])
    counts = counts_from_types(lattice.occupancy[nb], tet.cet_shell, tet.n_shells)
    return potential.region_energy(lattice.occupancy[ids], counts)


def _vet_of(lattice, tet, site):
    return lattice.occupancy[lattice.neighbor_ids(site, tet.all_offsets)]


@pytest.fixture()
def vacancy_setup(tet_small, eam_small):
    lattice = LatticeState((8, 8, 8))
    rng = np.random.default_rng(17)
    lattice.occupancy[:] = np.where(rng.random(lattice.n_sites) < 0.08, CU, FE)
    vac_site = lattice.site_id(0, 4, 4, 4)
    lattice.occupancy[vac_site] = VACANCY
    evaluator = VacancySystemEvaluator(tet_small, eam_small)
    return lattice, vac_site, evaluator


class TestDeltaAgainstBruteForce:
    @pytest.mark.parametrize("direction", range(8))
    def test_delta_matches_total_energy_difference(
        self, vacancy_setup, tet_small, eam_small, direction
    ):
        lattice, vac, evaluator = vacancy_setup
        energies = evaluator.evaluate(_vet_of(lattice, tet_small, vac))
        e_before = _total_lattice_energy(lattice, eam_small, tet_small)
        target = int(
            lattice.neighbor_ids(vac, tet_small.nn_offsets[direction][None, :])[0]
        )
        trial = lattice.copy()
        trial.swap(vac, target)
        e_after = _total_lattice_energy(trial, eam_small, tet_small)
        assert energies.delta[direction] == pytest.approx(
            e_after - e_before, abs=1e-8
        )

    def test_delta_with_nnp_matches_brute_force(self, tet_small, nnp_small):
        lattice = LatticeState((8, 8, 8))
        rng = np.random.default_rng(23)
        lattice.occupancy[:] = np.where(rng.random(lattice.n_sites) < 0.1, CU, FE)
        vac = lattice.site_id(1, 3, 3, 3)
        lattice.occupancy[vac] = VACANCY
        evaluator = VacancySystemEvaluator(tet_small, nnp_small)
        energies = evaluator.evaluate(_vet_of(lattice, tet_small, vac))
        e_before = _total_lattice_energy(lattice, nnp_small, tet_small)
        for direction in (0, 3, 7):
            target = int(
                lattice.neighbor_ids(vac, tet_small.nn_offsets[direction][None, :])[0]
            )
            trial = lattice.copy()
            trial.swap(vac, target)
            e_after = _total_lattice_energy(trial, nnp_small, tet_small)
            # float32 network -> looser tolerance than the EAM (float64) path.
            assert energies.delta[direction] == pytest.approx(
                e_after - e_before, abs=5e-4
            )


class TestTrialStates:
    def test_trial_vets_swap_semantics(self, vacancy_setup, tet_small):
        lattice, vac, evaluator = vacancy_setup
        vet = _vet_of(lattice, tet_small, vac)
        states = evaluator.trial_vets(vet)
        assert np.array_equal(states[0], vet)
        for k in range(8):
            s = states[1 + k]
            assert s[0] == vet[1 + k]
            assert s[1 + k] == VACANCY
            mask = np.ones(len(vet), dtype=bool)
            mask[[0, 1 + k]] = False
            assert np.array_equal(s[mask], vet[mask])

    def test_rejects_non_vacancy_center(self, vacancy_setup, tet_small):
        lattice, vac, evaluator = vacancy_setup
        vet = _vet_of(lattice, tet_small, vac).copy()
        vet[0] = FE
        with pytest.raises(ValueError):
            evaluator.evaluate(vet)

    def test_rejects_wrong_shape(self, vacancy_setup):
        _, _, evaluator = vacancy_setup
        with pytest.raises(ValueError):
            evaluator.trial_vets(np.zeros(3, dtype=np.uint8))

    def test_vacancy_neighbor_marked_invalid(self, tet_small, eam_small):
        lattice = LatticeState((8, 8, 8))
        lattice.occupancy[:] = FE
        vac = lattice.site_id(0, 4, 4, 4)
        lattice.occupancy[vac] = VACANCY
        # Put a second vacancy on the first 1NN site.
        nb = int(lattice.neighbor_ids(vac, tet_small.nn_offsets[0][None, :])[0])
        lattice.occupancy[nb] = VACANCY
        evaluator = VacancySystemEvaluator(tet_small, eam_small)
        energies = evaluator.evaluate(_vet_of(lattice, tet_small, vac))
        assert not energies.valid[0]
        assert np.all(energies.valid[1:])

    def test_pure_fe_deltas_are_symmetric_zero(self, tet_small, eam_small):
        """In pure Fe all eight hops are equivalent: delta == 0 exactly."""
        lattice = LatticeState((8, 8, 8))
        lattice.occupancy[:] = FE
        vac = lattice.site_id(0, 4, 4, 4)
        lattice.occupancy[vac] = VACANCY
        evaluator = VacancySystemEvaluator(tet_small, eam_small)
        energies = evaluator.evaluate(_vet_of(lattice, tet_small, vac))
        assert np.allclose(energies.delta, 0.0, atol=1e-10)

    def test_migrating_species_reported(self, vacancy_setup, tet_small):
        lattice, vac, evaluator = vacancy_setup
        vet = _vet_of(lattice, tet_small, vac)
        energies = evaluator.evaluate(vet)
        assert np.array_equal(energies.migrating_species, vet[1:9])

    def test_shell_mismatch_rejected(self, tet_standard, eam_small):
        with pytest.raises(ValueError):
            VacancySystemEvaluator(tet_standard, eam_small)


class TestDeltaPath:
    """The incremental evaluation extension: exact agreement with full."""

    def test_delta_matches_full_eam(self, vacancy_setup, tet_small):
        lattice, vac, evaluator = vacancy_setup
        vet = _vet_of(lattice, tet_small, vac)
        full = evaluator.evaluate(vet)
        fast = evaluator.evaluate_delta(vet)
        assert fast.initial == pytest.approx(full.initial, abs=1e-9)
        assert np.allclose(fast.delta, full.delta, atol=1e-9)
        assert np.array_equal(fast.valid, full.valid)
        assert np.array_equal(fast.migrating_species, full.migrating_species)

    def test_delta_matches_full_nnp(self, tet_small, nnp_small):
        lattice = LatticeState((8, 8, 8))
        rng = np.random.default_rng(31)
        lattice.occupancy[:] = np.where(rng.random(lattice.n_sites) < 0.1, CU, FE)
        vac = lattice.site_id(0, 4, 4, 4)
        lattice.occupancy[vac] = VACANCY
        evaluator = VacancySystemEvaluator(tet_small, nnp_small)
        vet = _vet_of(lattice, tet_small, vac)
        full = evaluator.evaluate(vet)
        fast = evaluator.evaluate_delta(vet)
        # float32 network outputs are bit-identical per site; only the final
        # float64 summation order differs.
        assert np.allclose(fast.delta, full.delta, atol=1e-4)

    def test_delta_standard_cutoff(self, tet_standard, eam_standard):
        lattice = LatticeState((10, 10, 10))
        rng = np.random.default_rng(41)
        lattice.occupancy[:] = np.where(rng.random(lattice.n_sites) < 0.08, CU, FE)
        vac = lattice.site_id(1, 5, 5, 5)
        lattice.occupancy[vac] = VACANCY
        evaluator = VacancySystemEvaluator(tet_standard, eam_standard)
        vet = _vet_of(lattice, tet_standard, vac)
        full = evaluator.evaluate(vet)
        fast = evaluator.evaluate_delta(vet)
        assert np.allclose(fast.delta, full.delta, atol=1e-9)

    def test_delta_handles_invalid_directions(self, tet_small, eam_small):
        lattice = LatticeState((8, 8, 8))
        lattice.occupancy[:] = FE
        vac = lattice.site_id(0, 4, 4, 4)
        lattice.occupancy[vac] = VACANCY
        nb = int(lattice.neighbor_ids(vac, tet_small.nn_offsets[2][None, :])[0])
        lattice.occupancy[nb] = VACANCY
        evaluator = VacancySystemEvaluator(tet_small, eam_small)
        fast = evaluator.evaluate_delta(_vet_of(lattice, tet_small, vac))
        assert not fast.valid[2]
        assert fast.delta[2] == 0.0

    def test_delta_validates_input(self, vacancy_setup, tet_small):
        _, _, evaluator = vacancy_setup
        with pytest.raises(ValueError):
            evaluator.evaluate_delta(np.zeros(3, dtype=np.uint8))
        bad = np.zeros(tet_small.n_all, dtype=np.uint8)  # centre not vacancy
        with pytest.raises(ValueError):
            evaluator.evaluate_delta(bad)

    def test_engine_delta_mode_matches_full(self, tet_small, eam_small):
        from repro.core import TensorKMCEngine

        finals = []
        for mode in ("full", "delta"):
            lattice = LatticeState((8, 8, 8))
            lattice.randomize_alloy(np.random.default_rng(7), 0.05, 0.003)
            engine = TensorKMCEngine(
                lattice, eam_small, tet_small, temperature=900.0,
                rng=np.random.default_rng(3), evaluation=mode,
            )
            engine.run(n_steps=60)
            finals.append(lattice.occupancy.copy())
        # delta path energies agree to ~1e-9 eV -> rates agree to ~1e-6
        # relative; over 60 steps the trajectories coincide.
        assert np.array_equal(finals[0], finals[1])

    def test_engine_rejects_unknown_mode(self, tet_small, eam_small):
        from repro.core import TensorKMCEngine

        lattice = LatticeState((8, 8, 8))
        lattice.randomize_alloy(np.random.default_rng(7), 0.05, 0.003)
        with pytest.raises(ValueError):
            TensorKMCEngine(
                lattice, eam_small, tet_small, evaluation="bogus"
            )


class TestDetailedBalance:
    """Physics: forward/backward hop rates obey detailed balance."""

    def test_reverse_hop_negates_delta(self, vacancy_setup, tet_small, eam_small):
        lattice, vac, evaluator = vacancy_setup
        fwd = evaluator.evaluate(_vet_of(lattice, tet_small, vac))
        for direction in (0, 5):
            target = int(
                lattice.neighbor_ids(vac, tet_small.nn_offsets[direction][None, :])[0]
            )
            trial = lattice.copy()
            trial.swap(vac, target)
            back = evaluator.evaluate(_vet_of(trial, tet_small, target))
            reverse = 7 - direction  # nn_offsets are inversion-ordered
            assert np.array_equal(
                tet_small.nn_offsets[reverse], -tet_small.nn_offsets[direction]
            )
            assert back.delta[reverse] == pytest.approx(
                -fwd.delta[direction], abs=1e-9
            )

    def test_rate_ratio_is_boltzmann(self, vacancy_setup, tet_small, eam_small):
        from repro.constants import KB_EV
        from repro.core.rates import RateModel

        lattice, vac, evaluator = vacancy_setup
        temperature = 700.0
        model = RateModel(temperature)
        fwd = evaluator.evaluate(_vet_of(lattice, tet_small, vac))
        rates_fwd = model.rates(fwd)
        direction = 3
        target = int(
            lattice.neighbor_ids(vac, tet_small.nn_offsets[direction][None, :])[0]
        )
        trial = lattice.copy()
        trial.swap(vac, target)
        back = evaluator.evaluate(_vet_of(trial, tet_small, target))
        rates_back = model.rates(back)
        reverse = 7 - direction
        expected = np.exp(-fwd.delta[direction] / (KB_EV * temperature))
        assert rates_fwd[direction] / rates_back[reverse] == pytest.approx(
            expected, rel=1e-9
        )
