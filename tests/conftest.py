"""Shared fixtures: small, fast instances of every subsystem."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import RCUT_STANDARD
from repro.core.tet import TripleEncoding
from repro.lattice import LatticeState
from repro.nnp import ElementNetworks, NNPotential
from repro.potentials import EAMPotential, FeatureTable


@pytest.fixture(scope="session")
def tet_small() -> TripleEncoding:
    """Cheap TET (1NN + 2NN shells) for engine tests."""
    return TripleEncoding(rcut=2.87)


@pytest.fixture(scope="session")
def tet_standard() -> TripleEncoding:
    """The paper's standard 6.5-Angstrom TET (geometry assertions)."""
    return TripleEncoding(rcut=RCUT_STANDARD)


@pytest.fixture(scope="session")
def eam_small(tet_small: TripleEncoding) -> EAMPotential:
    return EAMPotential(tet_small.shell_distances)


@pytest.fixture(scope="session")
def eam_standard(tet_standard: TripleEncoding) -> EAMPotential:
    return EAMPotential(tet_standard.shell_distances)


@pytest.fixture()
def alloy_lattice(tet_small: TripleEncoding) -> LatticeState:
    """An 8^3-cell random Fe-Cu lattice with a few vacancies."""
    lattice = LatticeState((8, 8, 8))
    rng = np.random.default_rng(2024)
    lattice.randomize_alloy(rng, cu_fraction=0.05, vacancy_fraction=0.002)
    return lattice


@pytest.fixture(scope="session")
def nnp_small(tet_small: TripleEncoding) -> NNPotential:
    """An untrained (random-weight) NNP over the small shells.

    Random weights are fine for algorithmic tests — the engines only need a
    deterministic CountsPotential.
    """
    rng = np.random.default_rng(11)
    table = FeatureTable(tet_small.shell_distances)
    nets = ElementNetworks((2 * table.n_dim, 16, 8, 1), rng)
    model = NNPotential(table, nets, rcut=2.87)
    # Non-trivial standardisation so both code paths are exercised.
    model.set_standardisation(
        feature_mean=np.full(2 * table.n_dim, 0.1, dtype=np.float32),
        feature_std=np.full(2 * table.n_dim, 2.0, dtype=np.float32),
        reference_energies=np.array([-4.0, -3.5]),
        energy_scale=0.05,
    )
    return model
