"""Synchronous sublattice KMC: invariants across rank configurations."""

import numpy as np
import pytest

from repro.constants import CU, VACANCY
from repro.core import TensorKMCEngine, TripleEncoding
from repro.lattice import LatticeState
from repro.parallel import N_SECTORS, SectorGeometry, SublatticeKMC
from repro.lattice.domain import DomainBox


def _alloy(shape=(16, 16, 16), seed=3, cu=0.05, vac=0.003):
    lat = LatticeState(shape)
    lat.randomize_alloy(np.random.default_rng(seed), cu, vac)
    return lat


@pytest.fixture(scope="module")
def small_parallel(tet_small, eam_small):
    lat = _alloy()
    sim = SublatticeKMC(
        lat, eam_small, tet_small, n_ranks=4, temperature=900.0,
        t_stop=2e-10, seed=5,
    )
    for _ in range(16):
        sim.cycle()
        # every cycle must leave the mail system empty (protocol invariant)
        sim.world.assert_drained()
    return lat, sim


class TestSectorGeometry:
    def test_sector_count(self):
        geo = SectorGeometry(DomainBox((0, 0, 0), (8, 8, 8)), min_width_cells=4)
        cells = np.stack(
            np.meshgrid(*(np.arange(8),) * 3, indexing="ij"), axis=-1
        ).reshape(-1, 3)
        sectors = geo.sector_of_local_cell(cells)
        assert set(sectors.tolist()) == set(range(N_SECTORS))
        counts = np.bincount(sectors)
        assert np.all(counts == 64)  # octants of an 8^3 box

    def test_sector_bounds_match_membership(self):
        geo = SectorGeometry(DomainBox((0, 0, 0), (8, 10, 12)), min_width_cells=4)
        for s in range(N_SECTORS):
            lo, hi = geo.sector_cell_bounds(s)
            mid = (lo + hi) // 2
            assert geo.sector_of_local_cell(mid) == s

    def test_too_small_box_rejected(self):
        with pytest.raises(ValueError):
            SectorGeometry(DomainBox((0, 0, 0), (6, 8, 8)), min_width_cells=4)

    def test_invalid_sector(self):
        geo = SectorGeometry(DomainBox((0, 0, 0), (8, 8, 8)), min_width_cells=4)
        with pytest.raises(ValueError):
            geo.sector_cell_bounds(8)


class TestInvariants:
    def test_species_conserved(self, small_parallel):
        lat, sim = small_parallel
        before = lat.species_counts()
        after = sim.gather_global().species_counts()
        assert np.array_equal(before, after)

    def test_ghost_consistency_after_run(self, small_parallel):
        _, sim = small_parallel
        assert sim.check_ghost_consistency()

    def test_events_executed(self, small_parallel):
        _, sim = small_parallel
        assert sim.total_events > 0

    def test_time_advances_by_t_stop(self, small_parallel):
        _, sim = small_parallel
        assert sim.time == pytest.approx(16 * sim.t_stop)

    def test_sector_rotation(self, small_parallel):
        _, sim = small_parallel
        sectors = [c.sector for c in sim.cycles]
        assert sectors[:8] == list(range(8))
        assert sectors[8:16] == list(range(8))

    @pytest.mark.parametrize("n_ranks,grid", [(1, None), (2, None), (8, (2, 2, 2))])
    def test_various_rank_counts(self, tet_small, eam_small, n_ranks, grid):
        lat = _alloy(seed=7)
        before = lat.species_counts().copy()
        sim = SublatticeKMC(
            lat, eam_small, tet_small, n_ranks=n_ranks, grid=grid,
            temperature=900.0, t_stop=2e-10, seed=1,
        )
        for _ in range(8):
            sim.cycle()
            sim.world.assert_drained()
        assert np.array_equal(sim.gather_global().species_counts(), before)
        assert sim.check_ghost_consistency()

    def test_stray_message_fails_next_cycle(self, tet_small, eam_small):
        """An unconsumed message is a protocol violation, not silent debris:
        the end-of-cycle drain check reports it as a ProtocolError."""
        from repro.parallel import ProtocolError

        lat = _alloy(seed=7)
        sim = SublatticeKMC(
            lat, eam_small, tet_small, n_ranks=2, temperature=900.0,
            t_stop=2e-10, seed=1,
        )
        sim.run(2)
        sim.world.comm(0).send(1, "stray", b"oops")
        with pytest.raises(ProtocolError) as exc:
            sim.cycle()
        assert exc.value.tag == "stray"

    def test_determinism(self, tet_small, eam_small):
        finals = []
        for _ in range(2):
            lat = _alloy(seed=9)
            sim = SublatticeKMC(
                lat, eam_small, tet_small, n_ranks=2, temperature=900.0,
                t_stop=2e-10, seed=4,
            )
            sim.run(8)
            finals.append(sim.gather_global().occupancy)
        assert np.array_equal(finals[0], finals[1])

    def test_vacancies_still_on_lattice(self, small_parallel):
        lat, sim = small_parallel
        g = sim.gather_global()
        n_vac = int(np.sum(g.occupancy == VACANCY))
        assert n_vac == int(np.sum(lat.occupancy == VACANCY))

    def test_communication_happened(self, small_parallel):
        _, sim = small_parallel
        assert sim.world.stats.messages_sent > 0

    def test_rejections_are_counted(self, tet_small, eam_small):
        # with a tiny t_stop nearly every sector cycle ends in a rejection
        lat = _alloy(seed=11)
        sim = SublatticeKMC(
            lat, eam_small, tet_small, n_ranks=2, temperature=900.0,
            t_stop=1e-16, seed=2,
        )
        sim.run(8)
        assert sum(c.rejected for c in sim.cycles) > 0
        assert sim.total_events == 0


class TestAgainstSerial:
    def test_event_rate_statistically_matches_serial(self, tet_small, eam_small):
        """Events per simulated second agree with the serial engine (~%)."""
        lat_s = _alloy(seed=21, vac=0.004)
        serial = TensorKMCEngine(
            lat_s, eam_small, tet_small, temperature=900.0,
            rng=np.random.default_rng(0),
        )
        serial.run(n_steps=200)
        serial_rate = serial.step_count / serial.time

        lat_p = _alloy(seed=21, vac=0.004)
        # pick t_stop so a sector cycle executes a handful of events
        t_stop = 20.0 / serial_rate
        sim = SublatticeKMC(
            lat_p, eam_small, tet_small, n_ranks=1, temperature=900.0,
            t_stop=t_stop, seed=0,
        )
        sim.run(16)
        parallel_rate = sim.total_events / sim.time
        # The sublattice algorithm is semirigorous: only 1/8 of the domain is
        # active per cycle, so the executed event rate is ~1/8 the serial one.
        assert parallel_rate == pytest.approx(serial_rate / 8.0, rel=0.35)


class TestHopGeometry:
    def test_parallel_hops_are_1nn(self, tet_small, eam_small):
        """Every executed parallel hop moves the vacancy one 1NN step."""
        lat = _alloy(seed=31, vac=0.004)
        sim = SublatticeKMC(
            lat, eam_small, tet_small, n_ranks=2, temperature=900.0,
            t_stop=5e-10, seed=2,
        )
        # Instrument: wrap run_sector so only compute-phase writes are seen.
        from repro.parallel.engine import RankState

        hops = []
        orig_run = RankState.run_sector

        def instrumented(self, sector, t_stop):
            orig_set = self.window.set_species_at_half

            def wrapped(half, species):
                hops.append(np.array(half))
                return orig_set(half, species)

            self.window.set_species_at_half = wrapped
            try:
                return orig_run(self, sector, t_stop)
            finally:
                self.window.set_species_at_half = orig_set

        RankState.run_sector = instrumented
        try:
            sim.run(8)
        finally:
            RankState.run_sector = orig_run
        assert sim.total_events > 0
        # writes come in (origin, target) pairs
        for origin, target in zip(hops[0::2], hops[1::2]):
            delta = (target - origin).reshape(3)
            assert sorted(np.abs(delta).tolist()) == [1, 1, 1]  # one 1NN step


class TestConflictDemonstration:
    """The Fig. 2b ablation: sublattice protocol vs naive decomposition."""

    def _run(self, tet, pot, mode, cycles=16):
        lat = LatticeState((16, 16, 16))
        lat.randomize_alloy(np.random.default_rng(3), 0.0134, 0.01)
        before = lat.species_counts().copy()
        sim = SublatticeKMC(
            lat, pot, tet, n_ranks=8, grid=(2, 2, 2), temperature=900.0,
            t_stop=5e-10, seed=5, sector_mode=mode,
        )
        sim.run(cycles)
        conserved = np.array_equal(
            sim.gather_global().species_counts(), before
        )
        return sim, conserved

    def test_sublattice_is_conflict_free(self, tet_small, eam_small):
        sim, conserved = self._run(tet_small, eam_small, "sublattice")
        assert sim.total_events > 0
        assert sim.proximity_violations == 0
        assert sim.total_anomalies == 0
        assert conserved

    def test_naive_mode_produces_conflicts(self, tet_small, eam_small):
        sim, conserved = self._run(tet_small, eam_small, "naive")
        assert sim.proximity_violations > 0
        # conflicting ghost writes destroy atoms — the failure the
        # synchronous sublattice algorithm exists to prevent
        assert not conserved

    def test_unknown_mode_rejected(self, tet_small, eam_small):
        lat = _alloy()
        with pytest.raises(ValueError):
            SublatticeKMC(
                lat, eam_small, tet_small, n_ranks=2, sector_mode="bogus"
            )
