"""The pluggable array backend: resolver, NumPy bit-exactness, torch parity.

Three layers of guarantees:

* the resolver (`get_backend`) honours explicit argument > ``REPRO_BACKEND``
  env > numpy, rejects unknown names with a clear ``ValueError``, and keeps
  the torch backend import-guarded;
* the NumPy backend is the bit-exact golden reference — fixed-seed engine
  runs under ``backend="numpy"`` reproduce the default path byte for byte,
  and the backend-threaded utilities (``counts_from_types``, ``fused_layer``)
  match an independent reference implementation exactly (hypothesis-fuzzed);
* the optional torch backend agrees with NumPy within documented tolerances
  (float32 GEMMs may differ in final bits across BLAS implementations);
  every torch test auto-skips when torch is not importable.

Also holds the mode-validation regression tests for
``VacancySystemEvaluator.dedup`` and ``EventKernel.set_hot_path`` — both
used to silently accept arbitrary strings.
"""

from __future__ import annotations

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TensorKMCEngine
from repro.core.backend import (
    ArrayBackend,
    BackendUnavailableError,
    NumpyBackend,
    TorchBackend,
    available_backends,
    get_backend,
    register_backend,
    to_numpy,
)
from repro.core.vacancy_system import VacancySystemEvaluator
from repro.io.checkpoint import load_checkpoint, save_checkpoint
from repro.lattice import LatticeState
from repro.operators.fused import fused_layer
from repro.potentials import counts_from_types


def _torch_available() -> bool:
    try:
        import torch  # noqa: F401
    except ImportError:
        return False
    return True


needs_torch = pytest.mark.skipif(
    not _torch_available(), reason="torch not importable in this environment"
)


def _alloy(shape=(6, 6, 6), seed=2024):
    lattice = LatticeState(shape)
    lattice.randomize_alloy(
        np.random.default_rng(seed), cu_fraction=0.05, vacancy_fraction=0.004
    )
    return lattice


def _digest(lattice) -> str:
    return hashlib.sha256(lattice.occupancy.tobytes()).hexdigest()


# ----------------------------------------------------------------------
# Resolver
# ----------------------------------------------------------------------
class TestResolver:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        xp = get_backend()
        assert isinstance(xp, NumpyBackend)
        assert xp.is_numpy and xp.name == "numpy"

    def test_name_and_instance_resolution(self):
        xp = get_backend("numpy")
        assert get_backend("numpy") is xp  # cached per name
        assert get_backend(xp) is xp  # instance passthrough

    def test_unknown_name_raises_listing_registry(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            get_backend("cupy")
        with pytest.raises(ValueError, match="numpy"):
            get_backend("cupy")

    def test_env_variable_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert get_backend().is_numpy
        monkeypatch.setenv("REPRO_BACKEND", "not-a-backend")
        with pytest.raises(ValueError, match="unknown array backend"):
            get_backend()

    def test_explicit_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "not-a-backend")
        assert get_backend("numpy").is_numpy

    def test_registry_lists_numpy_and_torch(self):
        names = available_backends()
        assert "numpy" in names and "torch" in names
        assert "numpy" in available_backends(probe=True)

    def test_register_backend_round_trip(self):
        class Fake(NumpyBackend):
            name = "fake-for-test"

        register_backend("fake-for-test", Fake)
        try:
            assert get_backend("fake-for-test").name == "fake-for-test"
        finally:
            # Leave the global registry as we found it.
            from repro.core import backend as backend_mod

            backend_mod._FACTORIES.pop("fake-for-test", None)
            backend_mod._INSTANCES.pop("fake-for-test", None)

    def test_torch_backend_import_guard(self):
        if _torch_available():
            assert get_backend("torch").name == "torch"
        else:
            with pytest.raises(BackendUnavailableError, match="torch"):
                get_backend("torch")

    def test_engine_rejects_unknown_backend(self, tet_small, eam_small):
        with pytest.raises(ValueError, match="unknown array backend"):
            TensorKMCEngine(
                _alloy(), eam_small, tet_small,
                rng=np.random.default_rng(0), backend="not-a-backend",
            )


# ----------------------------------------------------------------------
# NumPy backend op contract
# ----------------------------------------------------------------------
class TestNumpyBackendOps:
    xp = get_backend("numpy")

    def test_round_trip_is_identity(self):
        a = np.arange(6, dtype=np.float32)
        assert self.xp.from_numpy(a) is not None
        assert self.xp.to_numpy(a) is a
        assert to_numpy(a) is a

    def test_relu_is_in_place(self):
        a = np.array([-1.0, 2.0, -3.0])
        out = self.xp.relu_(a)
        assert out is a
        np.testing.assert_array_equal(a, [0.0, 2.0, 0.0])

    def test_broadcast_copy_is_writable(self):
        base = np.array([1.0, 2.0])
        out = self.xp.broadcast_copy(base[None, :], (3, 2))
        out[0, 0] = 9.0  # must not raise (np.broadcast_to alone is read-only)
        assert base[0] == 1.0

    def test_unique_first_inverse_matches_numpy(self):
        keys = np.array([5, 3, 5, 1, 3, 5], dtype=np.int64)
        first, inverse = self.xp.unique_first_inverse(keys)
        _, ref_first, ref_inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        np.testing.assert_array_equal(first, ref_first)
        np.testing.assert_array_equal(inverse, ref_inverse)

    @given(
        n_idx=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_scatter_add_accumulates_duplicates(self, n_idx, seed):
        # The contract: x[indices] += values with np.add.at semantics —
        # repeated index tuples accumulate (sequentially, in order) instead
        # of last-write-wins, and the array is updated in place.
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((4, 5)).astype(np.float32)
        rows = rng.integers(0, 4, size=n_idx)
        cols = rng.integers(0, 5, size=n_idx)
        vals = rng.standard_normal(n_idx).astype(np.float32)
        ref = x.copy()
        np.add.at(ref, (rows, cols), vals)
        out = self.xp.scatter_add(x, (rows, cols), vals)
        assert out is x
        np.testing.assert_array_equal(x, ref)

    def test_scatter_add_single_axis_and_scalar_values(self):
        x = np.zeros(6, dtype=np.float64)
        out = self.xp.scatter_add(
            x, (np.array([2, 2, 5, 2]),), np.array([1.0, 2.0, 3.0, 4.0])
        )
        assert out is x
        np.testing.assert_array_equal(x, [0.0, 0.0, 7.0, 0.0, 0.0, 3.0])

    @given(
        n=st.integers(min_value=1, max_value=32),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_reduction_ops_bitwise(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n)
        assert float(self.xp.sum(x)) == float(np.sum(x))
        np.testing.assert_array_equal(self.xp.cumsum(x), np.cumsum(x))
        s = np.sort(x)
        v = float(rng.standard_normal())
        assert self.xp.searchsorted(s, v, side="right") == np.searchsorted(
            s, v, side="right"
        )


# ----------------------------------------------------------------------
# Bit-exactness of the backend-threaded utilities (hypothesis fuzz)
# ----------------------------------------------------------------------
def _counts_reference(neighbor_types, neighbor_shell, n_shells, n_elements):
    """Straightforward loop reference for counts_from_types."""
    neighbor_types = np.asarray(neighbor_types)
    lead = neighbor_types.shape[:-1]
    flat = neighbor_types.reshape(-1, neighbor_types.shape[-1])
    out = np.zeros((flat.shape[0], n_shells, n_elements), dtype=np.float32)
    for row in range(flat.shape[0]):
        for slot, t in enumerate(flat[row]):
            if 0 <= int(t) < n_elements:
                out[row, int(neighbor_shell[slot]), int(t)] += 1.0
    return out.reshape(*lead, n_shells, n_elements)


class TestNumpyBitExactness:
    @given(
        n_rows=st.integers(min_value=1, max_value=6),
        n_local=st.integers(min_value=1, max_value=12),
        n_shells=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_counts_from_types_matches_reference(
        self, n_rows, n_local, n_shells, seed
    ):
        rng = np.random.default_rng(seed)
        types = rng.integers(0, 4, size=(n_rows, n_local)).astype(np.int16)
        shells = rng.integers(0, n_shells, size=n_local).astype(np.int16)
        got = counts_from_types(types, shells, n_shells, n_elements=2)
        ref = _counts_reference(types, shells, n_shells, 2)
        np.testing.assert_array_equal(got, ref)
        # Explicit numpy backend: the identical call, hence identical bits.
        via_xp = counts_from_types(
            types, shells, n_shells, n_elements=2, xp=get_backend("numpy")
        )
        np.testing.assert_array_equal(via_xp, got)

    @given(
        m=st.integers(min_value=1, max_value=8),
        k=st.integers(min_value=1, max_value=8),
        n=st.integers(min_value=1, max_value=8),
        last=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_fused_layer_matches_plain_numpy(self, m, k, n, last, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((m, k)).astype(np.float32)
        w = rng.standard_normal((k, n)).astype(np.float32)
        b = rng.standard_normal(n).astype(np.float32)
        got = fused_layer(x.copy(), w, b, last=last)
        ref = np.matmul(x, w) + b
        if not last:
            ref = np.maximum(ref, 0.0)
        np.testing.assert_array_equal(got, ref)

    def test_seeded_run_identical_under_explicit_numpy(
        self, tet_small, eam_small
    ):
        """backend="numpy" replays the default path byte for byte."""
        runs = {}
        for backend in (None, "numpy"):
            lattice = _alloy()
            engine = TensorKMCEngine(
                lattice, eam_small, tet_small,
                rng=np.random.default_rng(7), backend=backend,
            )
            engine.run(n_steps=60)
            runs[backend] = (_digest(lattice), engine.time)
        assert runs[None] == runs["numpy"]

    def test_seeded_nnp_run_identical_under_explicit_numpy(
        self, tet_small, nnp_small
    ):
        runs = {}
        for backend in (None, "numpy"):
            lattice = _alloy(seed=31)
            engine = TensorKMCEngine(
                lattice, nnp_small, tet_small,
                rng=np.random.default_rng(9), backend=backend,
            )
            engine.run(n_steps=30)
            runs[backend] = (_digest(lattice), engine.time)
        assert runs[None] == runs["numpy"]


# ----------------------------------------------------------------------
# Mode validation regressions (dedup / hot path)
# ----------------------------------------------------------------------
class TestModeValidation:
    def test_dedup_rejects_unknown_mode(self, tet_small, eam_small):
        evaluator = VacancySystemEvaluator(tet_small, eam_small)
        with pytest.raises(ValueError, match="unknown dedup mode"):
            evaluator.dedup = "alwayss"  # the typo that used to pass silently
        for mode in ("auto", "always", "never"):
            evaluator.dedup = mode
            assert evaluator.dedup == mode

    def test_set_hot_path_rejects_unknown_mode(self, tet_small, eam_small):
        engine = TensorKMCEngine(
            _alloy(), eam_small, tet_small, rng=np.random.default_rng(0)
        )
        with pytest.raises(ValueError, match="unknown hot path"):
            engine.kernel.set_hot_path("legacyy")
        # Direct attribute assignment must validate too (it used to bypass
        # the spatial-index bookkeeping entirely).
        with pytest.raises(ValueError, match="unknown hot path"):
            engine.kernel.hot_path = "vectorised"
        engine.kernel.hot_path = "legacy"
        assert engine.kernel.hot_path == "legacy"
        assert engine.kernel.index is not None
        engine.kernel.set_hot_path("vectorized")
        assert engine.kernel.index is None


# ----------------------------------------------------------------------
# Torch backend (auto-skips without torch)
# ----------------------------------------------------------------------
@needs_torch
class TestTorchBackend:
    #: float32 GEMMs may differ in the final bits between BLAS and torch;
    #: energies are float32 sums of O(10) such terms.
    RTOL = 1e-5
    ATOL = 1e-6

    def xp(self) -> ArrayBackend:
        return get_backend("torch")

    def test_round_trip(self):
        xp = self.xp()
        a = np.arange(12, dtype=np.float32).reshape(3, 4)
        t = xp.from_numpy(a)
        np.testing.assert_array_equal(xp.to_numpy(t), a)
        np.testing.assert_array_equal(to_numpy(t), a)

    def test_unique_first_inverse_matches_numpy(self):
        xp = self.xp()
        keys = np.array([7, 2, 7, 7, 5, 2, 9], dtype=np.int64)
        first, inverse = xp.unique_first_inverse(xp.from_numpy(keys))
        _, ref_first, ref_inverse = np.unique(
            keys, return_index=True, return_inverse=True
        )
        np.testing.assert_array_equal(np.asarray(first), ref_first)
        np.testing.assert_array_equal(xp.to_numpy(inverse), ref_inverse)

    def test_scatter_add_matches_numpy_on_integer_values(self):
        # Duplicate accumulation order may differ across backends, so the
        # parity check uses exact integer values where any order gives the
        # same bits.
        xp = self.xp()
        rng = np.random.default_rng(11)
        x = rng.integers(-5, 5, size=(3, 7)).astype(np.float32)
        rows = rng.integers(0, 3, size=40)
        cols = rng.integers(0, 7, size=40)
        vals = rng.integers(-3, 4, size=40).astype(np.float32)
        ref = x.copy()
        np.add.at(ref, (rows, cols), vals)
        t = xp.from_numpy(x)
        out = xp.scatter_add(t, (rows, cols), vals)
        assert out is t
        np.testing.assert_array_equal(xp.to_numpy(t), ref)

    def test_counts_from_types_exact(self):
        # Integer counts in float32 are exact on every backend.
        rng = np.random.default_rng(3)
        types = rng.integers(0, 4, size=(5, 14)).astype(np.int16)
        shells = rng.integers(0, 2, size=14).astype(np.int16)
        ref = counts_from_types(types, shells, 2, n_elements=2)
        xp = self.xp()
        got = xp.to_numpy(
            counts_from_types(types, shells, 2, n_elements=2, xp=xp)
        )
        np.testing.assert_array_equal(got, ref)

    def test_nnp_rates_agree_with_numpy(self, tet_small, nnp_small):
        ref = TensorKMCEngine(
            _alloy(seed=5), nnp_small, tet_small,
            rng=np.random.default_rng(1), backend="numpy",
        )
        ref.kernel.refresh()
        tor = TensorKMCEngine(
            _alloy(seed=5), nnp_small, tet_small,
            rng=np.random.default_rng(1), backend="torch",
        )
        tor.kernel.refresh()
        assert ref.kernel.total == pytest.approx(
            tor.kernel.total, rel=self.RTOL
        )
        for slot in ref.kernel.cache.live_slots():
            np.testing.assert_allclose(
                tor.kernel.cache.get(slot).rates,
                ref.kernel.cache.get(slot).rates,
                rtol=self.RTOL, atol=self.ATOL,
            )

    def test_checkpoint_cross_backend_restore(
        self, tmp_path, tet_small, eam_small
    ):
        engine = TensorKMCEngine(
            _alloy(), eam_small, tet_small,
            rng=np.random.default_rng(4), backend="numpy",
        )
        engine.run(n_steps=20)
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, engine)
        resumed = load_checkpoint(path, eam_small, backend="torch")
        assert resumed.xp.name == "torch"
        assert resumed.total_propensity() == pytest.approx(
            engine.total_propensity(), rel=self.RTOL
        )
