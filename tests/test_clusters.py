"""Cluster analysis: union-find vs networkx, known geometries."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    DisjointSet,
    cluster_sizes,
    find_clusters,
    find_clusters_networkx,
)
from repro.constants import CU, FE
from repro.lattice import LatticeState


class TestDisjointSet:
    def test_initial_singletons(self):
        dsu = DisjointSet(5)
        assert len(dsu.components()) == 5

    def test_union_merges(self):
        dsu = DisjointSet(4)
        dsu.union(0, 1)
        dsu.union(2, 3)
        dsu.union(1, 3)
        assert len(dsu.components()) == 1

    def test_union_idempotent(self):
        dsu = DisjointSet(3)
        dsu.union(0, 1)
        dsu.union(0, 1)
        comps = dsu.components()
        assert sorted(len(c) for c in comps.values()) == [1, 2]

    @given(
        n=st.integers(min_value=1, max_value=30),
        edges=st.lists(
            st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=50
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_matches_networkx_components(self, n, edges):
        import networkx as nx

        dsu = DisjointSet(n)
        g = nx.Graph()
        g.add_nodes_from(range(n))
        for a, b in edges:
            if a < n and b < n:
                dsu.union(a, b)
                g.add_edge(a, b)
        ours = sorted(sorted(c) for c in dsu.components().values())
        theirs = sorted(sorted(c) for c in nx.connected_components(g))
        assert ours == theirs


class TestFindClusters:
    def _lattice_with_cu(self, sites):
        lat = LatticeState((8, 8, 8))
        lat.occupancy[:] = FE
        for s in sites:
            lat.occupancy[lat.site_id(*s)] = CU
        return lat

    def test_no_solutes(self):
        lat = LatticeState((4, 4, 4))
        assert find_clusters(lat) == []

    def test_single_atom_is_isolated_cluster(self):
        lat = self._lattice_with_cu([(0, 2, 2, 2)])
        clusters = find_clusters(lat)
        assert len(clusters) == 1 and len(clusters[0]) == 1

    def test_1nn_pair_clusters(self):
        # corner site and body centre of the same cell are 1NN.
        lat = self._lattice_with_cu([(0, 2, 2, 2), (1, 2, 2, 2)])
        clusters = find_clusters(lat, max_shell=0)
        assert cluster_sizes(clusters).tolist() == [2]

    def test_2nn_pair_needs_max_shell_1(self):
        # (0,2,2,2) and (0,3,2,2) are 2NN (distance a).
        lat = self._lattice_with_cu([(0, 2, 2, 2), (0, 3, 2, 2)])
        assert cluster_sizes(find_clusters(lat, max_shell=0)).tolist() == [1, 1]
        assert cluster_sizes(find_clusters(lat, max_shell=1)).tolist() == [2]

    def test_distant_atoms_stay_separate(self):
        lat = self._lattice_with_cu([(0, 0, 0, 0), (0, 4, 4, 4)])
        assert len(find_clusters(lat)) == 2

    def test_cluster_through_periodic_boundary(self):
        lat = self._lattice_with_cu([(0, 0, 0, 0), (0, 7, 0, 0)])
        assert cluster_sizes(find_clusters(lat)).tolist() == [2]

    def test_union_find_matches_networkx(self):
        lat = LatticeState((6, 6, 6))
        rng = np.random.default_rng(8)
        lat.occupancy[:] = np.where(rng.random(lat.n_sites) < 0.12, CU, FE)
        ours = find_clusters(lat)
        theirs = find_clusters_networkx(lat)
        ours_sets = sorted(sorted(int(x) for x in c) for c in ours)
        theirs_sets = sorted(sorted(int(x) for x in c) for c in theirs)
        assert ours_sets == theirs_sets

    def test_sizes_sorted_descending(self):
        lat = LatticeState((6, 6, 6))
        rng = np.random.default_rng(9)
        lat.occupancy[:] = np.where(rng.random(lat.n_sites) < 0.2, CU, FE)
        sizes = cluster_sizes(find_clusters(lat))
        assert np.all(np.diff(sizes) <= 0)

    def test_total_atoms_partitioned(self):
        lat = LatticeState((6, 6, 6))
        rng = np.random.default_rng(10)
        lat.occupancy[:] = np.where(rng.random(lat.n_sites) < 0.1, CU, FE)
        clusters = find_clusters(lat)
        total = sum(len(c) for c in clusters)
        assert total == int(np.sum(lat.occupancy == CU))
