"""Warren-Cowley short-range order parameter."""

import numpy as np
import pytest

from repro.analysis import sro_series, warren_cowley
from repro.constants import CU, FE, VACANCY
from repro.core import TensorKMCEngine
from repro.lattice import LatticeState


class TestWarrenCowley:
    def test_random_solution_is_near_zero(self):
        lattice = LatticeState((10, 10, 10))
        rng = np.random.default_rng(0)
        lattice.occupancy[:] = np.where(rng.random(lattice.n_sites) < 0.2, CU, FE)
        alphas = warren_cowley(lattice, rcut=2.87)
        for alpha in alphas.values():
            assert abs(alpha) < 0.05

    def test_fully_clustered_is_positive(self):
        """A compact Cu block has strongly positive 1NN alpha."""
        lattice = LatticeState((8, 8, 8))
        lattice.occupancy[:] = FE
        for s in range(2):
            for i in range(3):
                for j in range(3):
                    for k in range(3):
                        lattice.occupancy[lattice.site_id(s, i, j, k)] = CU
        alphas = warren_cowley(lattice, rcut=2.87)
        assert alphas[0] > 0.5

    def test_pure_solute_gives_zero(self):
        lattice = LatticeState((4, 4, 4))
        lattice.occupancy[:] = CU
        alphas = warren_cowley(lattice, rcut=2.87)
        assert all(a == 0.0 for a in alphas.values())

    def test_no_solute_empty(self):
        lattice = LatticeState((4, 4, 4))
        assert warren_cowley(lattice, rcut=2.87) == {}

    def test_vacancies_excluded(self):
        """Alpha is unchanged when solvent sites are replaced by vacancies."""
        lattice = LatticeState((8, 8, 8))
        lattice.occupancy[:] = FE
        lattice.occupancy[lattice.site_id(0, 4, 4, 4)] = CU
        base = warren_cowley(lattice, rcut=2.87)
        # isolated Cu: p_same = 0 -> alpha = -c/(1-c), tiny negative
        assert base[0] < 0.0
        assert base[0] == pytest.approx(-1 / 1023, rel=1e-6)

    def test_sro_series_ordering(self):
        lattice = LatticeState((8, 8, 8))
        rng = np.random.default_rng(1)
        lattice.occupancy[:] = np.where(rng.random(lattice.n_sites) < 0.1, CU, FE)
        series = sro_series(lattice, rcut=6.5)
        assert series.shape == (8,)  # eight shells at the standard cutoff

    def test_aging_increases_sro(self, tet_small, eam_small):
        """Thermal aging drives Cu clustering: alpha_1NN grows."""
        lattice = LatticeState((12, 12, 12))
        rng = np.random.default_rng(12)
        lattice.randomize_alloy(rng, cu_fraction=0.0134, vacancy_fraction=0.0)
        ids = rng.choice(lattice.n_sites, 5, replace=False)
        lattice.occupancy[ids] = VACANCY
        before = warren_cowley(lattice, rcut=2.87).get(0, 0.0)
        engine = TensorKMCEngine(
            lattice, eam_small, tet_small, temperature=600.0,
            rng=np.random.default_rng(1),
        )
        engine.run(n_steps=5000)
        after = warren_cowley(lattice, rcut=2.87).get(0, 0.0)
        assert after > before + 0.005
        assert after > 0.0
