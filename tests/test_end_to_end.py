"""End-to-end pipeline: train -> simulate -> checkpoint -> restart -> analyse.

One test that walks the full user journey through the public API, the way
the README advertises it.
"""

import numpy as np
import pytest

from repro import (
    EAMPotential,
    FeatureTable,
    LatticeState,
    NNPotential,
    OpenKMCEngine,
    TensorKMCEngine,
    TripleEncoding,
)
from repro.analysis import analyse_precipitation, warren_cowley
from repro.constants import VACANCY
from repro.io import (
    load_checkpoint,
    load_events,
    load_lattice,
    replay_events,
    save_checkpoint,
    save_events,
    save_lattice,
    write_xyz,
)
from repro.nnp import ElementNetworks, NNPTrainer, generate_structures
from repro.parallel import SublatticeKMC


@pytest.mark.parametrize("seed", [0])
def test_full_pipeline(tmp_path, seed):
    rcut = 2.87
    tet = TripleEncoding(rcut=rcut)
    oracle = EAMPotential(tet.shell_distances)

    # 1. Train a (tiny) NNP against the oracle and persist it.
    rng = np.random.default_rng(seed)
    structures = generate_structures(oracle, rng, n_structures=14, cells=(2, 2, 2))
    table = FeatureTable(tet.shell_distances)
    nets = ElementNetworks((2 * table.n_dim, 12, 1), rng)
    model = NNPotential(table, nets, rcut=rcut)
    NNPTrainer(model, structures[:10]).train(rng, n_epochs=15, lr=3e-3)
    model_path = str(tmp_path / "model.npz")
    model.save(model_path)
    model = NNPotential.load(model_path)

    # 2. Serial simulation with the trained potential, recording events.
    lattice = LatticeState((8, 8, 8))
    lattice.randomize_alloy(np.random.default_rng(1), 0.05, 0.003)
    engine = TensorKMCEngine(
        lattice, model, tet, temperature=900.0, rng=np.random.default_rng(2)
    )
    engine.record_events = True
    initial = lattice.copy()
    engine.run(n_steps=25)

    # 3. Event log round-trips and replays onto the final state.
    events_path = str(tmp_path / "events.npz")
    save_events(events_path, engine.events)
    replayed = replay_events(initial, load_events(events_path))
    assert np.array_equal(replayed.occupancy, lattice.occupancy)

    # 4. Checkpoint, restart, and continue bit-exactly vs a straight run.
    ck_path = str(tmp_path / "ck.npz")
    save_checkpoint(ck_path, engine)
    resumed = load_checkpoint(ck_path, model, tet=tet)
    resumed.run(n_steps=25)
    reference = TensorKMCEngine(
        initial.copy(), model, tet, temperature=900.0,
        rng=np.random.default_rng(2),
    )
    reference.run(n_steps=50)
    assert np.array_equal(resumed.lattice.occupancy, reference.lattice.occupancy)
    assert resumed.time == reference.time

    # 5. The cached engine still agrees with the cache-all baseline.
    fast = TensorKMCEngine(
        initial.copy(), model, tet, temperature=900.0,
        rng=np.random.default_rng(7),
    )
    slow = OpenKMCEngine(
        initial.copy(), model, tet, temperature=900.0,
        rng=np.random.default_rng(7), maintain_atom_arrays=False,
    )
    for _ in range(20):
        assert fast.step().to_site == slow.step().to_site

    # 6. Parallel run on the gathered state conserves everything.
    big = LatticeState((16, 16, 16))
    big.randomize_alloy(np.random.default_rng(3), 0.0134, 0.002)
    before = big.species_counts().copy()
    sim = SublatticeKMC(
        big, model, tet, n_ranks=2, temperature=900.0, t_stop=2e-10, seed=4
    )
    sim.run(8)
    gathered = sim.gather_global()
    assert np.array_equal(gathered.species_counts(), before)

    # 7. Analysis + IO of the final configuration.
    stats = analyse_precipitation(resumed.lattice, resumed.time)
    assert stats.isolated >= 0
    alpha = warren_cowley(resumed.lattice, rcut=rcut)
    assert set(alpha) <= {0, 1}
    snap_path = str(tmp_path / "final.npz")
    save_lattice(snap_path, resumed.lattice, time=resumed.time)
    loaded, t = load_lattice(snap_path)
    assert t == resumed.time
    xyz_path = str(tmp_path / "final.xyz")
    with open(xyz_path, "w") as fh:
        n = write_xyz(fh, loaded, time=t, species_filter=[VACANCY])
    assert n == int(np.sum(loaded.occupancy == VACANCY))
