"""Descriptor tables: the paper's (p, q) grid and Eq. 5/6 consistency."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.potentials.tables import FeatureTable, make_pq_grid


class TestPQGrid:
    def test_paper_grid_shape(self):
        pq = make_pq_grid()
        assert pq.shape == (32, 2)

    def test_paper_grid_endpoints(self):
        pq = make_pq_grid()
        assert pq[0, 0] == pytest.approx(4.2)
        assert pq[-1, 0] == pytest.approx(1.1)  # 4.2 - 31*0.1
        assert pq[0, 1] == pytest.approx(1.85)
        assert pq[-1, 1] == pytest.approx(3.4)  # 1.85 + 31*0.05

    def test_grid_monotone(self):
        pq = make_pq_grid()
        assert np.all(np.diff(pq[:, 0]) < 0)
        assert np.all(np.diff(pq[:, 1]) > 0)

    def test_too_many_sets_rejected(self):
        with pytest.raises(ValueError):
            make_pq_grid(100)  # p would go negative


class TestFeatureTable:
    def test_table_matches_continuous_at_shells(self, tet_small):
        table = FeatureTable(tet_small.shell_distances, dtype=np.float64)
        cont = table.continuous_term(tet_small.shell_distances)
        assert np.allclose(table.table, cont, rtol=1e-12)

    def test_features_from_counts_layout(self, tet_small):
        table = FeatureTable(tet_small.shell_distances)
        counts = np.zeros((1, table.n_shells, 2), dtype=np.float32)
        counts[0, 0, 1] = 3.0  # three Cu in shell 0
        feats = table.features_from_counts(counts)
        n_dim = table.n_dim
        assert feats.shape == (1, 2 * n_dim)
        assert np.allclose(feats[0, :n_dim], 0.0)  # Fe block empty
        assert np.allclose(feats[0, n_dim:], 3.0 * table.table[0], rtol=1e-6)

    def test_features_linear_in_counts(self, tet_small):
        table = FeatureTable(tet_small.shell_distances)
        rng = np.random.default_rng(0)
        a = rng.integers(0, 5, (4, table.n_shells, 2)).astype(np.float32)
        b = rng.integers(0, 5, (4, table.n_shells, 2)).astype(np.float32)
        fa = table.features_from_counts(a)
        fb = table.features_from_counts(b)
        fab = table.features_from_counts(a + b)
        assert np.allclose(fab, fa + fb, atol=1e-5)

    @given(r=st.floats(min_value=1.5, max_value=6.4))
    @settings(max_examples=30, deadline=None)
    def test_continuous_term_deriv_fd(self, r):
        table = FeatureTable(np.array([2.5, 2.9]))
        h = 1e-6
        fd = (table.continuous_term(r + h) - table.continuous_term(r - h)) / (2 * h)
        assert np.allclose(fd, table.continuous_term_deriv(r), atol=1e-5)

    def test_terms_decay_with_distance(self):
        table = FeatureTable(np.array([2.5]))
        near = table.continuous_term(2.0)
        far = table.continuous_term(6.0)
        assert np.all(near > far)

    def test_bad_pq_shape_rejected(self):
        with pytest.raises(ValueError):
            FeatureTable(np.array([2.5]), pq=np.zeros((3, 3)))
