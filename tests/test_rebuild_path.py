"""Incremental (delta) rebuild path: bit-exactness against the full rebuild.

The delta path is only admissible because it changes *work*, not results:
patched VET snapshots must stay bitwise-equal to a from-scratch
``occupancy[vet_ids]`` gather after arbitrary hop sequences (periodic wrap
included), re-rated dirty rows spliced into cached row energies must
reproduce the full build's energy matrix bit for bit, and whole
trajectories — serial and parallel — must be identical across
``rebuild_path`` modes, including mid-run switches.  See DESIGN.md
("The incremental rebuild path: the miss as a re-rate").
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.engine import TensorKMCEngine
from repro.core.kernel import EventKernel, SimpleRateEntry
from repro.lattice.occupancy import LatticeState
from repro.parallel.engine import SublatticeKMC


def _alloy(shape, seed, vac=0.01):
    lattice = LatticeState(shape)
    lattice.randomize_alloy(
        np.random.default_rng(seed), cu_fraction=0.05, vacancy_fraction=vac
    )
    return lattice


def _serial_engine(tet, potential, mode, seed=11):
    return TensorKMCEngine(
        _alloy((6, 6, 6), seed),
        potential,
        tet,
        rng=np.random.default_rng(seed + 1),
        rebuild_path=mode,
    )


def _assert_snapshots_match_gather(cache, vets_of_slot, vet_ids_of_slot):
    """Every live snapshot must equal a from-scratch re-gather, bit for bit."""
    n = cache.n_slots
    slots = np.flatnonzero(cache.live[:n] & cache.delta_ready[:n])
    for slot in slots:
        slot = int(slot)
        assert np.array_equal(cache._vet_ids[slot], vet_ids_of_slot(slot))
        assert np.array_equal(cache._vets[slot], vets_of_slot(slot))
    return slots


class TestSnapshotIntegrity:
    """Fuzz: stored deltas equal from-scratch gathers after random hops."""

    @given(
        cfg=st.fixed_dictionaries(
            {
                "seed": st.integers(min_value=0, max_value=2**31),
                "engine_seed": st.integers(min_value=0, max_value=2**31),
                "n_steps": st.integers(min_value=0, max_value=40),
            }
        )
    )
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_patched_snapshots_equal_from_scratch_gather(
        self, tet_small, eam_small, cfg
    ):
        lattice = _alloy((6, 6, 6), cfg["seed"])
        engine = TensorKMCEngine(
            lattice,
            eam_small,
            tet_small,
            rng=np.random.default_rng(cfg["engine_seed"]),
            rebuild_path="delta",
        )
        engine.run(n_steps=cfg["n_steps"])
        cache = engine.kernel.cache
        # The (6,6,6) box is only 12 half-units wide, so VET windows wrap
        # constantly — lattice.ids_from_half's periodic fold is on the line.
        slots = _assert_snapshots_match_gather(
            cache,
            lambda s: lattice.occupancy[cache._vet_ids[s]],
            lambda s: engine._delta_gather([engine.kernel.key_of(s)])[0][0],
        )
        if cfg["n_steps"] > 0:
            assert slots.size > 0  # the delta path actually engaged
        # Fresh snapshot slots were refreshed after their last patch: no
        # pending dirty rows, and their cached row energies must equal a
        # from-scratch re-rate of every row.
        n = cache.n_slots
        fresh = np.flatnonzero(
            cache.live[:n] & cache.fresh[:n] & cache.delta_ready[:n]
        )
        if fresh.size:
            assert not cache._dirty_rows[fresh].any()
            n_region = tet_small.n_region
            pair_b = np.repeat(np.arange(fresh.size), n_region)
            pair_r = np.tile(np.arange(n_region, dtype=np.intp), fresh.size)
            rows = engine.evaluator.evaluate_rows(
                cache._vets[fresh], pair_b, pair_r
            )
            expect = np.empty_like(cache._row_e[fresh])
            expect[pair_b, :, pair_r] = rows
            assert np.array_equal(expect, cache._row_e[fresh])


class TestTrajectoryIdentity:
    def test_serial_bit_identical_across_modes(self, tet_small, eam_small):
        engines = {
            mode: _serial_engine(tet_small, eam_small, mode)
            for mode in ("full", "auto", "delta")
        }
        for engine in engines.values():
            engine.record_events = True
            engine.run(n_steps=60)
        ref = engines["full"]
        assert not ref.kernel.delta_active()
        assert engines["auto"].kernel.delta_active()
        assert engines["delta"].kernel.delta_active()
        for engine in engines.values():
            assert engine.time == ref.time
            assert np.array_equal(
                engine.lattice.occupancy, ref.lattice.occupancy
            )
            assert engine.events == ref.events

    def test_mid_run_switches_stay_bit_identical(self, tet_small, eam_small):
        ref = _serial_engine(tet_small, eam_small, "full")
        ref.run(n_steps=60)
        # Switching in either direction drops the snapshots and rebuilds
        # from scratch — the trajectory must not notice.
        switched = _serial_engine(tet_small, eam_small, "delta")
        switched.run(n_steps=25)
        switched.kernel.set_rebuild_path("full")
        switched.run(n_steps=15)
        switched.kernel.set_rebuild_path("delta")
        switched.run(n_steps=20)
        assert switched.time == ref.time
        assert np.array_equal(switched.lattice.occupancy, ref.lattice.occupancy)

    def test_parallel_bit_identical_across_modes(self, tet_small, eam_small):
        sims = {}
        for mode in ("full", "delta"):
            sim = SublatticeKMC(
                _alloy((8, 8, 16), 3),
                eam_small,
                tet_small,
                n_ranks=2,
                temperature=1100.0,
                t_stop=4e-9,
                seed=3,
                rebuild_path=mode,
            )
            sim.run(6)
            sims[mode] = sim
        ref, delta = sims["full"], sims["delta"]
        assert ref.summary()["rebuild_path"] == "full"
        assert delta.summary()["rebuild_path"] == "delta"
        assert delta.time == ref.time
        assert np.array_equal(
            delta.gather_global().occupancy, ref.gather_global().occupancy
        )
        assert [c.events for c in delta.cycles] == [
            c.events for c in ref.cycles
        ]
        assert [c.sector for c in delta.cycles] == [
            c.sector for c in ref.cycles
        ]
        # Rank snapshots must match a from-scratch window gather — this
        # also exercises the parked/recycled-slot path, because the
        # post-cycle rescan parks every vacancy that left the rank's box.
        for rank in delta.ranks:

            def vet_half_of(slot):
                half = np.asarray(rank.kernel.key_of(slot), dtype=np.int64)
                return half[None, :] + rank.tet.all_offsets

            _assert_snapshots_match_gather(
                rank.kernel.cache,
                lambda s: rank.window.species_at_half(vet_half_of(s)),
                lambda s: rank._window_flat_ids(vet_half_of(s)),
            )


class TestKnobValidation:
    def test_engine_rejects_unknown_mode(self, tet_small, eam_small):
        with pytest.raises(ValueError, match="unknown rebuild path"):
            _serial_engine(tet_small, eam_small, "incremental")

    def test_parallel_rejects_unknown_mode(self, tet_small, eam_small):
        with pytest.raises(ValueError, match="unknown rebuild path"):
            SublatticeKMC(
                _alloy((8, 8, 16), 3),
                eam_small,
                tet_small,
                n_ranks=2,
                rebuild_path="incremental",
            )

    def test_delta_requires_batched_miss_path(self, tet_small, eam_small):
        with pytest.raises(ValueError, match="batched full evaluation"):
            TensorKMCEngine(
                _alloy((6, 6, 6), 11),
                eam_small,
                tet_small,
                batching="scalar",
                rebuild_path="delta",
            )

    def test_kernel_delta_requires_callbacks(self):
        kernel = EventKernel(
            lambda key: SimpleRateEntry(rates=np.full(8, 0.5)),
            lambda key: np.asarray(key, dtype=np.int64),
            threshold=2.0,
            keys=[(0, 0, 0)],
        )
        with pytest.raises(ValueError, match="callbacks"):
            kernel.set_rebuild_path("delta")
        assert not kernel.delta_active()  # auto resolves to full

    def test_explicit_delta_blocks_legacy_hot_path(self, tet_small, eam_small):
        engine = _serial_engine(tet_small, eam_small, "delta")
        with pytest.raises(ValueError, match="vectorized"):
            engine.kernel.set_hot_path("legacy")

    def test_auto_mode_allows_legacy_hot_path(self, tet_small, eam_small):
        engine = _serial_engine(tet_small, eam_small, "auto")
        engine.run(n_steps=3)
        engine.kernel.set_hot_path("legacy")  # drops snapshots, no raise
        assert not engine.kernel.delta_active()
        assert not engine.kernel.cache.delta_ready.any()


class TestForcedFullFallbacks:
    """Every payload-free mutation must drop the affected snapshots."""

    @pytest.fixture()
    def warm(self, tet_small, eam_small):
        engine = _serial_engine(tet_small, eam_small, "delta")
        engine.run(n_steps=10)
        cache = engine.kernel.cache
        ready = np.flatnonzero(cache.live & cache.delta_ready)
        assert ready.size >= 3
        return engine, cache, ready

    def test_move_drops_the_mover(self, warm):
        _, cache, ready = warm
        slot = int(ready[0])
        cache.move(slot, (10**9,))  # synthetic unused key
        assert not cache.delta_ready[slot]

    def test_remove_and_payload_free_invalidation_drop(self, warm):
        _, cache, ready = warm
        cache.remove_slot(int(ready[0]))
        cache.invalidate_slot(int(ready[1]))
        cache.invalidate_slots(np.array([int(ready[2])]))
        assert not cache.delta_ready[ready[:3]].any()

    def test_scalar_and_rate_only_stores_drop(self, warm):
        _, cache, ready = warm
        a, b = int(ready[0]), int(ready[1])
        cache.store(a, SimpleRateEntry(rates=np.full(8, 0.5)))
        cache.store_rates(np.array([b]), np.full((1, 8), 0.5))
        assert not cache.delta_ready[a] and not cache.delta_ready[b]

    def test_invalidate_all_and_mode_switches_drop_everything(self, warm):
        engine, cache, _ = warm
        cache.invalidate_all()
        assert not cache.delta_ready.any()
        engine.run(n_steps=2)
        assert cache.delta_ready.any()
        engine.kernel.set_rebuild_path("full")
        assert not cache.delta_ready.any()
