"""Property tests for the scaling model, lattice metric, and ternary EAM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import CU, FE
from repro.lattice import LatticeState
from repro.parallel import (
    ScalingParameters,
    parallel_efficiency,
    strong_scaling,
    weak_scaling,
)
from repro.potentials import EAMParameters, EAMPotential, counts_from_types


def _params(**kw):
    defaults = dict(
        compute_seconds_per_event=2.0e-4,
        events_per_atom_second=750.0,
        bytes_per_boundary_cell=0.05,
    )
    defaults.update(kw)
    return ScalingParameters(**defaults)


class TestScalingModelProperties:
    @given(
        factor=st.floats(min_value=1.0, max_value=100.0),
        n=st.sampled_from([24000, 96000, 384000]),
    )
    @settings(max_examples=25, deadline=None)
    def test_more_latency_never_helps(self, factor, n):
        base = _params()
        slow = _params(message_latency=base.message_latency * factor)
        t_base = strong_scaling(base, 1.92e12, [12000, n])[1].cycle_time
        t_slow = strong_scaling(slow, 1.92e12, [12000, n])[1].cycle_time
        assert t_slow >= t_base - 1e-15

    @given(scale=st.floats(min_value=1.1, max_value=20.0))
    @settings(max_examples=25, deadline=None)
    def test_strong_efficiency_decreases_with_cg_count(self, scale):
        counts = [12000, int(12000 * scale) + 1]
        eff = parallel_efficiency(strong_scaling(_params(), 1.92e12, counts))
        assert eff[1] <= eff[0] + 1e-12

    @given(atoms=st.floats(min_value=1e6, max_value=1e9))
    @settings(max_examples=25, deadline=None)
    def test_weak_cycle_time_flat_in_cg_count(self, atoms):
        pts = weak_scaling(_params(), atoms, [12000, 422400])
        # only the log-depth sync term may grow
        assert pts[1].cycle_time >= pts[0].cycle_time
        assert pts[1].cycle_time - pts[0].cycle_time <= 1e-3

    def test_compute_scales_with_event_cost(self):
        cheap = strong_scaling(_params(), 1.92e12, [12000])[0]
        costly = strong_scaling(
            _params(compute_seconds_per_event=4.0e-4), 1.92e12, [12000]
        )[0]
        assert costly.cycle_compute == pytest.approx(2 * cheap.cycle_compute)


class TestMinimumImageProperties:
    @given(
        shape=st.tuples(*(st.integers(min_value=3, max_value=8),) * 3),
        a_id=st.integers(min_value=0, max_value=2 * 8 * 8 * 8 - 1),
        b_id=st.integers(min_value=0, max_value=2 * 8 * 8 * 8 - 1),
    )
    @settings(max_examples=50, deadline=None)
    def test_antisymmetric_and_bounded(self, shape, a_id, b_id):
        lattice = LatticeState(shape)
        a = a_id % lattice.n_sites
        b = b_id % lattice.n_sites
        d_ab = lattice.minimum_image_displacement(a, b)
        d_ba = lattice.minimum_image_displacement(b, a)
        assert np.allclose(d_ab, -d_ba)
        # every component is at most half the box span
        span = np.array(shape) * lattice.a
        assert np.all(np.abs(d_ab) <= span / 2 + 1e-9)

    @given(
        shape=st.tuples(*(st.integers(min_value=3, max_value=6),) * 3),
        site=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=30, deadline=None)
    def test_self_distance_zero(self, shape, site):
        lattice = LatticeState(shape)
        s = site % lattice.n_sites
        assert np.allclose(lattice.minimum_image_displacement(s, s), 0.0)


class TestTernaryEAMConsistency:
    def test_oracle_matches_counts_path_for_three_species(self):
        """The ternary lattice fast path equals the continuous oracle."""
        from repro.core.tet import TripleEncoding

        tet = TripleEncoding(rcut=2.87)
        potential = EAMPotential(
            tet.shell_distances, EAMParameters.fe_cu_ni()
        )
        lattice = LatticeState((6, 6, 6), vacancy_code=3)
        rng = np.random.default_rng(7)
        lattice.occupancy[:] = rng.choice(
            [FE, CU, 2], size=lattice.n_sites, p=[0.8, 0.1, 0.1]
        )
        ids = np.arange(lattice.n_sites)
        half = lattice.half_coords(ids)
        nb = lattice.ids_from_half(half[:, None, :] + tet.cet_offsets[None, :, :])
        counts = counts_from_types(
            lattice.occupancy[nb], tet.cet_shell, tet.n_shells, n_elements=3
        )
        e_counts = potential.region_energy(lattice.occupancy[ids], counts)

        # For an exact comparison the oracle must see only the same shells:
        # build a short-cutoff variant of the ternary potential.
        from dataclasses import replace

        short = EAMPotential(
            tet.shell_distances,
            replace(EAMParameters.fe_cu_ni(), rcut=2.87 + 1e-9),
        )
        ids_all = np.arange(lattice.n_sites)
        halfc = lattice.half_coords(ids_all)
        nb2 = lattice.ids_from_half(halfc[:, None, :] + tet.cet_offsets[None, :, :])
        counts2 = counts_from_types(
            lattice.occupancy[nb2], tet.cet_shell, tet.n_shells, n_elements=3
        )
        e_counts_short = short.region_energy(lattice.occupancy[ids_all], counts2)
        pos = lattice.positions(ids_all).astype(float)
        e_oracle, _ = short.energy_and_forces(
            pos, lattice.occupancy.astype(int), np.array([6 * lattice.a] * 3)
        )
        assert e_oracle == pytest.approx(e_counts_short, abs=1e-9)
        assert np.isfinite(e_counts)
