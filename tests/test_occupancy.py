"""LatticeState: indexing round-trips, periodic wrap, species bookkeeping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import CU, FE, VACANCY
from repro.lattice import LatticeState, first_nn_offsets

dims = st.integers(min_value=2, max_value=7)


class TestIndexing:
    @given(nx=dims, ny=dims, nz=dims)
    @settings(max_examples=20, deadline=None)
    def test_site_id_coords_roundtrip(self, nx, ny, nz):
        st_ = LatticeState((nx, ny, nz))
        ids = np.arange(st_.n_sites)
        s, i, j, k = st_.site_coords(ids)
        back = ((s * nx + i) * ny + j) * nz + k
        assert np.array_equal(back, ids)

    @given(nx=dims, ny=dims, nz=dims)
    @settings(max_examples=20, deadline=None)
    def test_half_coords_roundtrip(self, nx, ny, nz):
        st_ = LatticeState((nx, ny, nz))
        ids = np.arange(st_.n_sites)
        assert np.array_equal(st_.ids_from_half(st_.half_coords(ids)), ids)

    def test_wraps_periodically(self):
        st_ = LatticeState((4, 4, 4))
        # A full box translation maps every site to itself.
        ids = np.arange(st_.n_sites)
        half = st_.half_coords(ids)
        shifted = half + np.array([8, 0, 0])
        assert np.array_equal(st_.ids_from_half(shifted), ids)

    def test_mixed_parity_rejected(self):
        st_ = LatticeState((4, 4, 4))
        with pytest.raises(ValueError):
            st_.ids_from_half(np.array([[1, 0, 0]]))

    def test_neighbor_ids_are_1nn(self):
        st_ = LatticeState((4, 4, 4))
        center = st_.site_id(1, 1, 1, 1)
        nbs = st_.neighbor_ids(center, first_nn_offsets())
        pos_c = st_.positions(np.array([center]))[0]
        for nb in nbs:
            d = st_.minimum_image_displacement(center, int(nb))
            assert np.isclose(np.linalg.norm(d), st_.a * np.sqrt(3) / 2)
        assert len(set(int(n) for n in nbs)) == 8
        del pos_c

    def test_positions_shape_and_scale(self):
        st_ = LatticeState((3, 3, 3))
        pos = st_.positions(np.arange(st_.n_sites))
        assert pos.shape == (54, 3)
        assert pos.min() == 0.0
        assert pos.max() <= 3 * st_.a

    def test_minimum_image_shorter_than_half_box(self):
        st_ = LatticeState((6, 6, 6))
        d = st_.minimum_image_displacement(st_.site_id(0, 0, 0, 0), st_.site_id(0, 5, 5, 5))
        # (0,5,5,5) is one cell away through the periodic boundary.
        assert np.allclose(np.abs(d), st_.a)


class TestSpecies:
    def test_initial_fill(self):
        st_ = LatticeState((3, 3, 3))
        assert np.all(st_.occupancy == FE)

    def test_swap(self):
        st_ = LatticeState((3, 3, 3))
        st_.occupancy[0] = CU
        st_.occupancy[5] = VACANCY
        st_.swap(0, 5)
        assert st_.occupancy[0] == VACANCY and st_.occupancy[5] == CU

    def test_species_counts_sum(self, alloy_lattice):
        assert alloy_lattice.species_counts().sum() == alloy_lattice.n_sites

    @given(
        cu=st.floats(min_value=0.0, max_value=0.3),
        vac=st.floats(min_value=0.0, max_value=0.01),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=25, deadline=None)
    def test_randomize_alloy_concentrations(self, cu, vac, seed):
        st_ = LatticeState((6, 6, 6))
        rng = np.random.default_rng(seed)
        st_.randomize_alloy(rng, cu, vac)
        counts = st_.species_counts()
        assert counts.sum() == st_.n_sites
        assert counts[CU] == round(cu * st_.n_sites)
        assert counts[VACANCY] == max(round(vac * st_.n_sites), 1)

    def test_randomize_rejects_overfull(self):
        st_ = LatticeState((2, 2, 2))
        with pytest.raises(ValueError):
            st_.randomize_alloy(np.random.default_rng(0), 0.9, 0.5)

    def test_vacancy_ids(self):
        st_ = LatticeState((3, 3, 3))
        st_.occupancy[7] = VACANCY
        st_.occupancy[11] = VACANCY
        assert list(st_.vacancy_ids) == [7, 11]

    def test_copy_is_independent(self):
        st_ = LatticeState((3, 3, 3))
        clone = st_.copy()
        clone.occupancy[0] = CU
        assert st_.occupancy[0] == FE

    def test_concentration(self):
        st_ = LatticeState((3, 3, 3))
        st_.occupancy[:27] = CU
        assert st_.concentration(CU) == pytest.approx(0.5)

    def test_volume(self):
        st_ = LatticeState((2, 3, 4))
        assert st_.volume == pytest.approx(2 * 3 * 4 * st_.a**3)

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            LatticeState((0, 3, 3))
