"""Checkpoint/restart and event-log replay: bit-exact continuation."""

import numpy as np
import pytest

from repro.constants import FE, VACANCY
from repro.core import TensorKMCEngine
from repro.io import (
    load_checkpoint,
    load_events,
    replay_events,
    save_checkpoint,
    save_events,
)
from repro.lattice import LatticeState


def _engine(tet, pot, seed=5, **kw):
    lattice = LatticeState((8, 8, 8))
    lattice.randomize_alloy(np.random.default_rng(11), 0.05, 0.003)
    return TensorKMCEngine(
        lattice, pot, tet, temperature=900.0,
        rng=np.random.default_rng(seed), **kw,
    )


class TestCheckpoint:
    def test_restart_continues_bit_exactly(self, tmp_path, tet_small, eam_small):
        reference = _engine(tet_small, eam_small)
        reference.run(n_steps=30)
        path = str(tmp_path / "ck.npz")

        interrupted = _engine(tet_small, eam_small)
        interrupted.run(n_steps=15)
        save_checkpoint(path, interrupted)
        resumed = load_checkpoint(path, eam_small, tet=tet_small)
        resumed.run(n_steps=15)

        assert np.array_equal(
            resumed.lattice.occupancy, reference.lattice.occupancy
        )
        assert resumed.time == reference.time
        assert resumed.step_count == reference.step_count

    def test_checkpoint_restores_metadata(self, tmp_path, tet_small, eam_small):
        engine = _engine(tet_small, eam_small, propensity="linear",
                         evaluation="delta")
        engine.run(n_steps=5)
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, engine)
        resumed = load_checkpoint(path, eam_small, tet=tet_small)
        assert resumed.evaluation == "delta"
        assert type(resumed.store).__name__ == "LinearPropensity"
        assert resumed.rate_model.temperature == 900.0
        assert resumed.cache.sites == engine.cache.sites

    def test_tet_rebuilt_from_stored_cutoff(self, tmp_path, tet_small, eam_small):
        engine = _engine(tet_small, eam_small)
        engine.run(n_steps=3)
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, engine)
        resumed = load_checkpoint(path, eam_small)  # no tet passed
        assert resumed.tet.rcut == tet_small.rcut

    @pytest.mark.parametrize("batching", ["auto", "batched", "scalar"])
    def test_batching_mode_round_trips(self, tmp_path, tet_small, eam_small,
                                       batching):
        """Regression: load_checkpoint used to silently drop the batching
        mode (always resuming under "auto")."""
        engine = _engine(tet_small, eam_small, batching=batching)
        engine.run(n_steps=5)
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, engine)
        resumed = load_checkpoint(path, eam_small, tet=tet_small)
        # "auto" resolves at construction; the *resolved* mode must survive.
        assert resumed.batching == engine.batching

    def test_scalar_mode_survives_on_batch_invariant_potential(
        self, tmp_path, tet_small, eam_small
    ):
        """EAM is batch-row-invariant, so "auto" resolves to "batched" — a
        forced "scalar" engine must not come back batched."""
        engine = _engine(tet_small, eam_small, batching="scalar")
        engine.run(n_steps=3)
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, engine)
        resumed = load_checkpoint(path, eam_small, tet=tet_small)
        assert resumed.batching == "scalar"

    def test_checkpoint_after_slot_churn(self, tmp_path, tet_small, eam_small):
        """Regression: annihilating a vacancy parks its kernel slot (None in
        cache.sites), which used to crash save_checkpoint; the free-list
        recycling order is also trajectory state and must round-trip."""
        engine = _engine(tet_small, eam_small)
        engine.run(n_steps=10)
        lattice = engine.lattice
        # Annihilate two vacancies, then create one elsewhere (e.g. a sink /
        # source process outside the hop catalogue): the creation pops the
        # most recently parked slot, leaving one slot parked.
        touched = []
        for slot in engine.kernel.live_slots()[:2]:
            gone = int(engine.kernel.key_of(slot))
            lattice.occupancy[gone] = FE
            engine.kernel.remove(engine.kernel.slot_of(gone))
            touched.append(gone)
        born = int(np.flatnonzero(lattice.occupancy == FE)[17])
        lattice.occupancy[born] = VACANCY
        engine.kernel.add(born)
        touched.append(born)
        engine.kernel.invalidate_near(
            lattice.half_coords(np.asarray(touched, dtype=np.int64))
        )
        assert None in engine.cache.sites  # a parked slot survives the churn
        assert len(engine.kernel.cache.free_slots) == 1
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, engine)  # used to raise TypeError
        resumed = load_checkpoint(path, eam_small, tet=tet_small)
        assert resumed.cache.sites == engine.cache.sites
        assert resumed.kernel.cache.free_slots == engine.kernel.cache.free_slots
        engine.run(n_steps=25)
        resumed.run(n_steps=25)
        assert np.array_equal(
            resumed.lattice.occupancy, engine.lattice.occupancy
        )
        assert resumed.time == engine.time

    def test_corrupted_occupancy_detected(self, tmp_path, tet_small, eam_small):
        engine = _engine(tet_small, eam_small)
        engine.run(n_steps=3)
        path = str(tmp_path / "ck.npz")
        save_checkpoint(path, engine)
        data = dict(np.load(path, allow_pickle=False))
        occ = data["occupancy"].copy()
        occ[occ == 2] = 0  # erase the vacancies
        data["occupancy"] = occ
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError):
            load_checkpoint(path, eam_small, tet=tet_small)


class TestEventLog:
    def test_save_load_roundtrip(self, tmp_path, tet_small, eam_small):
        engine = _engine(tet_small, eam_small)
        engine.record_events = True
        engine.run(n_steps=20)
        path = str(tmp_path / "events.npz")
        save_events(path, engine.events)
        loaded = load_events(path)
        assert loaded == engine.events

    def test_replay_reaches_final_state(self, tmp_path, tet_small, eam_small):
        engine = _engine(tet_small, eam_small)
        initial = engine.lattice.copy()
        engine.record_events = True
        engine.run(n_steps=40)
        replayed = replay_events(initial, engine.events)
        assert np.array_equal(replayed.occupancy, engine.lattice.occupancy)
        assert not np.array_equal(initial.occupancy, engine.lattice.occupancy)

    def test_replay_detects_wrong_initial_state(self, tet_small, eam_small):
        engine = _engine(tet_small, eam_small)
        engine.record_events = True
        engine.run(n_steps=10)
        wrong = LatticeState((8, 8, 8))  # pure Fe, no vacancies
        with pytest.raises(ValueError):
            replay_events(wrong, engine.events)

    def test_empty_log(self, tmp_path):
        path = str(tmp_path / "empty.npz")
        save_events(path, [])
        assert load_events(path) == []
